"""Tests for the Mapper base class and trivial mappers."""

import numpy as np
import pytest

from repro.mappers import AllOnDeviceMapper, BestRandomMapper, RandomMapper
from repro.mappers.base import Mapper
from tests.conftest import make_evaluator
from repro.graphs.generators import random_sp_graph
from repro.platform import paper_platform


class BrokenShapeMapper(Mapper):
    name = "BrokenShape"

    def _run(self, evaluator, rng):
        return np.zeros(evaluator.n_tasks + 1, dtype=np.int64), {}


class BrokenRangeMapper(Mapper):
    name = "BrokenRange"

    def _run(self, evaluator, rng):
        m = np.zeros(evaluator.n_tasks, dtype=np.int64)
        m[0] = 99
        return m, {}


class TestValidation:
    def test_wrong_shape_rejected(self, small_evaluator):
        with pytest.raises(ValueError, match="shape"):
            BrokenShapeMapper().map(small_evaluator)

    def test_out_of_range_rejected(self, small_evaluator):
        with pytest.raises(ValueError, match="out of range"):
            BrokenRangeMapper().map(small_evaluator)

    def test_result_contents(self, small_evaluator):
        res = AllOnDeviceMapper(0).map(small_evaluator)
        assert res.makespan == pytest.approx(
            small_evaluator.cpu_construction_makespan
        )
        assert res.elapsed_s >= 0.0
        assert res.mapping.dtype == np.int64


class TestTrivialMappers:
    def test_all_on_device(self, small_evaluator):
        res = AllOnDeviceMapper(1).map(small_evaluator)
        assert set(res.mapping.tolist()) <= {0, 1}

    def test_all_on_invalid_device(self, small_evaluator):
        with pytest.raises(ValueError):
            AllOnDeviceMapper(9).map(small_evaluator)

    def test_all_on_fpga_falls_back_when_infeasible(self, platform):
        from repro.graphs import TaskGraph

        g = TaskGraph()
        for i in range(5):
            g.add_task(i, complexity=10.0, area=50.0)
        ev = make_evaluator(g, platform)  # 250 area > 100 capacity
        res = AllOnDeviceMapper(2).map(ev)
        assert np.all(res.mapping == 0)

    def test_random_mapper_feasible(self, platform, rng):
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform)
        res = RandomMapper().map(ev, rng=rng)
        assert ev.is_feasible(res.mapping)

    def test_best_random_improves_over_single_random(self, platform):
        g = random_sp_graph(20, np.random.default_rng(1))
        ev = make_evaluator(g, platform, n_random=5)
        single = RandomMapper().map(ev, rng=np.random.default_rng(2))
        best = BestRandomMapper(k=50).map(ev, rng=np.random.default_rng(2))
        assert best.makespan <= ev.construction_makespan(single.mapping) * (
            1 + 1e-9
        )

    def test_best_random_never_worse_than_cpu(self, platform, rng):
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform)
        res = BestRandomMapper(k=10).map(ev, rng=rng)
        assert res.makespan <= ev.cpu_construction_makespan * (1 + 1e-9)
