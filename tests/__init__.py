# placeholder
