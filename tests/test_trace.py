"""Tests for schedule traces and the ASCII Gantt renderer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    INFEASIBLE,
    CostModel,
    render_gantt,
    simulate_trace,
)
from repro.graphs import TaskGraph
from repro.graphs.generators import random_almost_sp_graph, random_sp_graph
from repro.platform import paper_platform


@pytest.fixture()
def model(rng):
    g = random_sp_graph(15, rng)
    return CostModel(g, paper_platform())


class TestTraceConsistency:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(3, 30),
        k=st.integers(0, 10),
        seed=st.integers(0, 2**31),
    )
    def test_trace_makespan_equals_simulate(self, n, k, seed):
        """The trace must reproduce the hot-path simulation exactly."""
        rng = np.random.default_rng(seed)
        g = random_almost_sp_graph(n, k, rng)
        model = CostModel(g, paper_platform())
        mapping = rng.integers(0, 3, size=n)
        if not model.is_feasible(mapping):
            mapping = np.zeros(n, dtype=int)
        trace = simulate_trace(model, mapping)
        assert trace.makespan == pytest.approx(
            model.simulate(mapping), rel=1e-12
        )

    def test_trace_records_every_task(self, model):
        mapping = np.zeros(model.n, dtype=int)
        trace = simulate_trace(model, mapping)
        assert len(trace.tasks) == model.n
        assert {t.index for t in trace.tasks} == set(range(model.n))

    def test_trace_respects_precedence(self, model):
        rng = np.random.default_rng(1)
        mapping = rng.integers(0, 3, size=model.n)
        if not model.is_feasible(mapping):
            mapping = np.zeros(model.n, dtype=int)
        trace = simulate_trace(model, mapping)
        by_index = {t.index: t for t in trace.tasks}
        for i in range(model.n):
            for p, _ in model._pred[i]:
                # a consumer can start before its producer *finishes* only by
                # streaming, never before the producer *starts*
                assert by_index[i].start >= by_index[p].start - 1e-12

    def test_infeasible_trace(self):
        g = TaskGraph()
        g.add_task(0, complexity=1.0, area=1e9)
        model = CostModel(g, paper_platform())
        trace = simulate_trace(model, [2])
        assert trace.makespan == INFEASIBLE
        assert trace.tasks == []

    def test_waited_accounts_contention(self):
        # two independent heavy tasks on the single-slot GPU: one must wait
        g = TaskGraph()
        g.add_task(0, complexity=10.0, parallelizability=1.0)
        g.add_task(1, complexity=10.0, parallelizability=1.0)
        model = CostModel(g, paper_platform())
        trace = simulate_trace(model, [1, 1])
        assert trace.total_wait() > 0.0

    def test_streamed_flag(self):
        g = TaskGraph()
        g.add_task(0, complexity=5.0, streamability=5.0, area=1.0)
        g.add_task(1, complexity=5.0, streamability=5.0, area=1.0)
        g.add_edge(0, 1, data_mb=100.0)
        model = CostModel(g, paper_platform())
        trace = simulate_trace(model, [2, 2])
        flags = {t.index: t.streamed for t in trace.tasks}
        assert flags[1] is True
        assert flags[0] is False

    def test_device_busy_totals(self, model):
        mapping = np.zeros(model.n, dtype=int)
        trace = simulate_trace(model, mapping)
        assert trace.device_busy[0] == pytest.approx(
            model.exec_table[:, 0].sum()
        )
        assert trace.device_busy[1] == 0.0

    def test_by_device_filter(self, model):
        mapping = np.zeros(model.n, dtype=int)
        mapping[0] = 1
        if not model.is_feasible(mapping):
            pytest.skip("unexpected infeasibility")
        trace = simulate_trace(model, mapping)
        assert len(trace.by_device(1)) == 1


class TestGantt:
    def test_renders_all_device_rows(self, model):
        mapping = np.zeros(model.n, dtype=int)
        trace = simulate_trace(model, mapping)
        text = render_gantt(trace, model, width=50)
        assert "epyc7351p.0" in text
        assert "ms" in text

    def test_streamed_tasks_use_stream_char(self):
        g = TaskGraph()
        g.add_task(0, complexity=8.0, streamability=6.0, area=1.0)
        g.add_task(1, complexity=8.0, streamability=6.0, area=1.0)
        g.add_edge(0, 1, data_mb=100.0)
        model = CostModel(g, paper_platform())
        trace = simulate_trace(model, [2, 2])
        text = render_gantt(trace, model, width=40)
        assert "≈" in text

    def test_empty_trace(self):
        g = TaskGraph()
        g.add_task(0, complexity=1.0, area=1e9)
        model = CostModel(g, paper_platform())
        trace = simulate_trace(model, [2])
        assert "empty or infeasible" in render_gantt(trace, model)
