"""Tests for the ablation and scaling experiment drivers."""

import numpy as np
import pytest

from repro.experiments import ablation, scaling
from repro.experiments.config import ScaleConfig
from repro.experiments.runner import SweepResult, SweepSeries

TINY = ScaleConfig(
    name="tiny",
    graphs_per_point=2,
    n_random_schedules=4,
    fig3_sizes=[6],
    fig3_zhouliu_max=0,
    zhouliu_time_limit_s=5.0,
    milp_time_limit_s=5.0,
    fig4_sizes=[8, 16, 24],
    fig5_sizes=[8, 14],
    nsga_generations=4,
    fig6_generations=[2],
    fig6_n_tasks=8,
    fig6_graphs=1,
    fig7_n_tasks=14,
    fig7_extra_edges=[0, 6],
    table1_sizes_key="smoke",
    table1_parameterizations=1,
    table1_generations=4,
)


class TestAblationCuts:
    def test_runs_all_strategies(self):
        result = ablation.run_cuts(scale=TINY, seed=1)
        names = {s.name for s in result.series()}
        assert names == {
            "SPFF-random", "SPFF-first", "SPFF-smallest", "SPFF-largest"
        }
        for s in result.series():
            assert all(0.0 <= v <= 1.0 for v in s.improvement)


class TestAblationGamma:
    def test_runs_all_gammas(self):
        result = ablation.run_gamma(scale=TINY, seed=2)
        names = {s.name for s in result.series()}
        assert names == {"Gamma1", "Gamma1.5", "Gamma2", "Gamma4", "Basic"}

    def test_gamma_variants_close_to_basic(self):
        """Paper Sec. IV-B: gamma > 1 brings no significant benefit."""
        result = ablation.run_gamma(scale=TINY, seed=3)
        series = {s.name: s for s in result.series()}
        basic = np.mean(series["Basic"].improvement)
        for name in ("Gamma1", "Gamma2"):
            assert np.mean(series[name].improvement) >= basic - 0.12


class TestAblationStreaming:
    def test_stream_aware_at_least_blind(self):
        result = ablation.run_streaming(scale=TINY, seed=4)
        series = {s.name: s for s in result.series()}
        aware = np.mean(series["StreamAware"].improvement)
        blind = np.mean(series["StreamBlind"].improvement)
        assert aware >= blind - 0.05


class TestScaling:
    def test_run_and_fit(self):
        result = scaling.run(scale=TINY, seed=5)
        exponents = scaling.fit_exponents(result)
        assert set(exponents) == {
            "SingleNode", "SeriesParallel", "SNFirstFit", "SPFirstFit"
        }
        for alpha in exponents.values():
            assert np.isfinite(alpha)

    def test_fit_exponent_on_synthetic_series(self):
        """The fit must recover a known exponent exactly."""
        s = SweepSeries("X")
        for n in (10, 20, 40, 80):
            s.xs.append(n)
            s.improvement.append(0.1)
            s.time_s.append(1e-6 * n**2)
        result = SweepResult("synthetic", "n")
        from repro.experiments.runner import PointResult
        from repro.experiments.metrics import aggregate

        for i, n in enumerate(s.xs):
            result.points.append(
                PointResult(
                    x=n,
                    improvements={"X": aggregate([s.improvement[i]])},
                    times={"X": aggregate([s.time_s[i]])},
                    evaluations={"X": 0.0},
                )
            )
        exponents = scaling.fit_exponents(result)
        assert exponents["X"] == pytest.approx(2.0, abs=1e-6)

    def test_fit_with_insufficient_points(self):
        result = SweepResult("tiny", "n")
        from repro.experiments.metrics import aggregate
        from repro.experiments.runner import PointResult

        result.points.append(
            PointResult(
                x=5.0,
                improvements={"X": aggregate([0.1])},
                times={"X": aggregate([1.0])},
                evaluations={"X": 0.0},
            )
        )
        exponents = scaling.fit_exponents(result)
        assert np.isnan(exponents["X"])
