"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.evaluation import MappingEvaluator
from repro.graphs import TaskGraph
from repro.platform import paper_platform


@pytest.fixture(scope="session")
def platform():
    return paper_platform()


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


@pytest.fixture()
def fig1_graph() -> TaskGraph:
    """The series-parallel example graph of paper Fig. 1."""
    return TaskGraph.from_edges(
        [(0, 1), (1, 3), (1, 2), (2, 3), (3, 5), (0, 4), (4, 5)]
    )


@pytest.fixture()
def fig2_graph() -> TaskGraph:
    """The non-series-parallel example graph of paper Fig. 2."""
    return TaskGraph.from_edges(
        [(0, 1), (0, 4), (1, 2), (2, 3), (1, 3), (3, 5), (1, 4), (4, 5)]
    )


@pytest.fixture()
def diamond_graph() -> TaskGraph:
    """The smallest non-trivial SP graph: a diamond."""
    return TaskGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture()
def chain_graph() -> TaskGraph:
    """A 5-task chain."""
    return TaskGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])


def make_evaluator(graph, platform, *, seed=0, n_random=10) -> MappingEvaluator:
    return MappingEvaluator(
        graph,
        platform,
        rng=np.random.default_rng(seed),
        n_random_schedules=n_random,
    )


@pytest.fixture()
def small_evaluator(fig1_graph, platform):
    rng = np.random.default_rng(5)
    from repro.graphs import augment

    augment(fig1_graph, rng)
    return make_evaluator(fig1_graph, platform)
