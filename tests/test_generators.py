"""Tests for the random graph generators (SP, almost-SP, layered)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import graph_stats
from repro.graphs.generators import (
    add_random_edges,
    random_almost_sp_graph,
    random_layered_graph,
    random_sp_edges,
    random_sp_graph,
)
from repro.sp import is_series_parallel


class TestRandomSP:
    def test_exact_node_count(self):
        rng = np.random.default_rng(0)
        for n in (2, 3, 10, 57):
            g = random_sp_graph(n, rng, augmented=False)
            assert g.n_tasks == n

    def test_single_source_and_sink(self, rng):
        g = random_sp_graph(30, rng, augmented=False)
        assert len(g.sources()) == 1
        assert len(g.sinks()) == 1

    def test_is_series_parallel(self, rng):
        for _ in range(10):
            g = random_sp_graph(25, rng, augmented=False)
            assert is_series_parallel(g)

    def test_rejects_tiny(self, rng):
        with pytest.raises(ValueError):
            random_sp_graph(1, rng)

    def test_deterministic_for_seed(self):
        a = random_sp_graph(40, np.random.default_rng(9))
        b = random_sp_graph(40, np.random.default_rng(9))
        assert a.edges() == b.edges()
        assert all(
            a.params(t).complexity == b.params(t).complexity for t in a.tasks()
        )

    def test_linear_density(self, rng):
        g = random_sp_graph(200, rng, augmented=False)
        # simple two-terminal SP graphs have < 2n edges
        assert graph_stats(g).density < 2.0

    def test_augmented_parameters_in_range(self, rng):
        g = random_sp_graph(100, rng, augmented=True)
        for t in g.tasks():
            p = g.params(t)
            assert p.complexity > 0
            assert 0.0 <= p.parallelizability <= 1.0
            assert p.streamability > 0
            assert p.area == pytest.approx(0.25 * p.complexity)

    def test_series_weight_bias(self, rng):
        # heavy series weight -> deep chain-like graphs
        deep = random_sp_graph(
            50, np.random.default_rng(3), series_weight=10, parallel_weight=1,
            augmented=False,
        )
        wide = random_sp_graph(
            50, np.random.default_rng(3), series_weight=1, parallel_weight=10,
            augmented=False,
        )
        assert deep.longest_path_length() > wide.longest_path_length()

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(2, 60), seed=st.integers(0, 2**31))
    def test_property_always_series_parallel(self, n, seed):
        g = random_sp_graph(n, np.random.default_rng(seed), augmented=False)
        assert g.n_tasks == n
        g.validate()
        assert is_series_parallel(g)

    def test_raw_edges_end_at_terminals(self, rng):
        edges = random_sp_edges(20, rng)
        nodes = {u for u, _ in edges} | {v for _, v in edges}
        assert 0 in nodes and 1 in nodes


class TestAlmostSP:
    def test_extra_edges_added(self):
        base = random_almost_sp_graph(
            40, 0, np.random.default_rng(4), augmented=False
        )
        extended = random_almost_sp_graph(
            40, 25, np.random.default_rng(4), augmented=False
        )
        extended.validate()
        assert extended.n_tasks == 40
        assert extended.n_edges == base.n_edges + 25

    def test_add_random_edges_increases_count(self, rng):
        g = random_sp_graph(30, rng, augmented=False)
        before = g.n_edges
        inserted = add_random_edges(g, 15, rng)
        assert inserted == 15
        assert g.n_edges == before + 15
        g.validate()  # still a DAG

    def test_zero_extra_edges_is_sp(self, rng):
        g = random_almost_sp_graph(30, 0, rng, augmented=False)
        assert is_series_parallel(g)

    def test_many_extra_edges_usually_not_sp(self):
        hits = 0
        for seed in range(5):
            g = random_almost_sp_graph(
                30, 30, np.random.default_rng(seed), augmented=False
            )
            hits += not is_series_parallel(g)
        assert hits >= 4  # most conflicting (paper Sec. IV-C)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(5, 40),
        k=st.integers(0, 40),
        seed=st.integers(0, 2**31),
    )
    def test_property_always_dag(self, n, k, seed):
        g = random_almost_sp_graph(n, k, np.random.default_rng(seed))
        g.validate()
        assert g.n_tasks == n


class TestLayered:
    def test_shape(self, rng):
        g = random_layered_graph(6, 5, rng)
        g.validate()
        assert 6 <= g.n_tasks <= 30

    def test_every_non_first_layer_task_has_pred(self, rng):
        g = random_layered_graph(5, 4, rng, augmented=False)
        levels = g.bfs_levels()
        for t in g.tasks():
            if t not in levels[0]:
                assert g.in_degree(t) >= 1

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            random_layered_graph(0, 3, rng)
        with pytest.raises(ValueError):
            random_layered_graph(3, 0, rng)
