"""Tests for the experiment CLI plumbing and reporting helpers."""

import os
import sys

import pytest

from repro.experiments._cli import run_cli
from repro.experiments.metrics import aggregate
from repro.experiments.reporting import results_dir
from repro.experiments.runner import PointResult, SweepResult


def _stub_result():
    result = SweepResult("stub title", "n")
    result.points.append(
        PointResult(
            x=5.0,
            improvements={"A": aggregate([0.1, 0.2])},
            times={"A": aggregate([0.01, 0.02])},
            evaluations={"A": 10.0},
        )
    )
    return result


class TestRunCli:
    def test_prints_table(self, capsys, monkeypatch):
        monkeypatch.setattr(
            sys, "argv", ["prog", "--scale", "smoke", "--quiet"]
        )
        calls = {}

        def fake_run(scale="smoke", seed=0, workers=None, progress=None):
            calls["scale"] = scale
            calls["seed"] = seed
            calls["workers"] = workers
            calls["progress"] = progress
            return _stub_result()

        run_cli("test driver", fake_run, default_seed=42)
        out = capsys.readouterr().out
        assert "stub title" in out
        assert calls == {
            "scale": "smoke", "seed": 42, "workers": None, "progress": None,
        }

    def test_progress_enabled_by_default(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["prog"])
        seen = {}

        def fake_run(scale="smoke", seed=0, workers=None, progress=None):
            seen["progress"] = progress
            if progress:
                progress("tick")
            return _stub_result()

        run_cli("test driver", fake_run, default_seed=1)
        assert seen["progress"] is not None
        assert "[tick]" in capsys.readouterr().out

    def test_csv_flag(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        monkeypatch.setattr(sys, "argv", ["prog", "--csv", "--quiet"])
        run_cli("t", lambda scale="smoke", **kw: _stub_result(),
                default_seed=0)
        out = capsys.readouterr().out
        assert "csv written" in out
        assert any(p.suffix == ".csv" for p in tmp_path.iterdir())


class TestResultsDir:
    def test_env_override(self, monkeypatch, tmp_path):
        target = tmp_path / "deep" / "dir"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(target))
        assert results_dir() == str(target)
        assert target.is_dir()  # created on demand

    def test_default_cwd(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        path = results_dir()
        assert path == os.path.join(str(tmp_path), "results")
        assert os.path.isdir(path)
