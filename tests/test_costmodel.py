"""Tests for the model-based makespan evaluation (the paper's cost function).

Includes hand-computed micro-scenarios exercising every mechanism: device
slot contention, inter-device transfers, FPGA streaming overlap, host I/O
for sources/sinks and area feasibility — plus hypothesis-checked bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import INFEASIBLE, CostModel
from repro.graphs import TaskGraph
from repro.graphs.generators import random_almost_sp_graph
from repro.platform import Platform, cpu, fpga, gpu, paper_platform


def simple_platform(*, cpu_slots=1):
    """1-lane CPU + GPU + FPGA with easy round numbers for hand computation."""
    devices = [
        cpu("c", lane_gops=1.0, lanes=1, slots=cpu_slots, setup_s=0.0),
        gpu("g", lane_gops=10.0, lanes=1, setup_s=0.0),
        fpga("f", stream_gops=1.0, area_capacity=10.0, setup_s=0.0),
    ]
    bw = [[np.inf, 1.0, 1.0], [1.0, np.inf, 1.0], [1.0, 1.0, np.inf]]
    lat = [[0.0] * 3 for _ in range(3)]
    return Platform(devices, bw, lat)


def two_task_chain(*, data_mb=1000.0, complexity=1.0, streamability=1.0):
    g = TaskGraph()
    g.add_task(0, complexity=complexity, streamability=streamability, area=1.0)
    g.add_task(1, complexity=complexity, streamability=streamability, area=1.0)
    g.add_edge(0, 1, data_mb=data_mb)
    return g


class TestHandComputed:
    """All numbers below assume OPS_PER_MB = 1e6, i.e. 1000 MB -> 1 Gop."""

    def test_single_task_on_cpu(self):
        g = TaskGraph()
        g.add_task(0, complexity=1.0)
        # no edges: input = 100 MB default -> 0.1 Gop at 1 Gop/s = 0.1 s
        model = CostModel(g, simple_platform())
        assert model.simulate([0]) == pytest.approx(0.1)

    def test_chain_all_cpu_no_transfers(self):
        g = two_task_chain(data_mb=1000.0)
        model = CostModel(g, simple_platform())
        # t0: 100 MB in -> 0.1 Gop -> 0.1 s ; t1: 1000 MB in -> 1 Gop -> 1 s
        # sink return: min(1000, 100) = 100 MB but same device -> free
        assert model.simulate([0, 0]) == pytest.approx(1.1)

    def test_chain_offload_consumer_to_gpu_pays_transfer(self):
        g = two_task_chain(data_mb=1000.0)
        model = CostModel(g, simple_platform())
        # t1 on GPU: 1 Gop at 10 Gop/s = 0.1 s; transfer 1000 MB at 1 GB/s
        # = 1 s; sink return 100 MB at 1 GB/s = 0.1 s
        expected = 0.1 + 1.0 + 0.1 + 0.1
        assert model.simulate([0, 1]) == pytest.approx(expected)

    def test_source_on_gpu_pays_initial_transfer(self):
        g = two_task_chain(data_mb=1000.0)
        model = CostModel(g, simple_platform())
        # t0 on GPU: initial 100 MB -> 0.1 s, exec 0.01 s;
        # transfer 1000 MB back to CPU = 1 s; t1 on CPU 1 s.
        expected = 0.1 + 0.01 + 1.0 + 1.0
        assert model.simulate([1, 0]) == pytest.approx(expected)

    def test_independent_tasks_serialize_on_one_slot_cpu(self):
        g = TaskGraph()
        g.add_task(0, complexity=1.0)
        g.add_task(1, complexity=1.0)
        model = CostModel(g, simple_platform(cpu_slots=1))
        # two 0.1 s tasks, one slot -> 0.2 s
        assert model.simulate([0, 0]) == pytest.approx(0.2)

    def test_independent_tasks_overlap_on_two_slot_cpu(self):
        g = TaskGraph()
        g.add_task(0, complexity=1.0)
        g.add_task(1, complexity=1.0)
        model = CostModel(g, simple_platform(cpu_slots=2))
        assert model.simulate([0, 0]) == pytest.approx(0.1)

    def test_fpga_tasks_do_not_serialize(self):
        g = TaskGraph()
        g.add_task(0, complexity=1.0, streamability=1.0, area=1.0)
        g.add_task(1, complexity=1.0, streamability=1.0, area=1.0)
        model = CostModel(g, simple_platform())
        # each: initial 0.1 s transfer + 0.1 Gop at 1 Gop/s + return 0.1 s
        # concurrent (spatial) -> same as a single one
        assert model.simulate([2, 2]) == pytest.approx(0.3)

    def test_fpga_streaming_chain_overlaps(self):
        g = two_task_chain(data_mb=1000.0, streamability=4.0)
        model = CostModel(g, simple_platform())
        # on FPGA: throughput = 1 * 4 = 4 Gop/s
        # t0: input 100 MB -> 0.1 s in; exec 0.1/4*... work 0.1 Gop -> 0.025 s
        # t1 streams: starts at start0 + fill0 (0.025/4 = 0.00625); exec 0.25 s
        # drain: >= finish0 ; return transfer min(1000,100)=100 MB -> 0.1 s
        start0 = 0.1
        exec0 = 0.1 / 4.0
        fill0 = exec0 / 4.0
        exec1 = 1.0 / 4.0
        finish1 = max(start0 + fill0 + exec1, start0 + exec0)
        expected = finish1 + 0.1
        assert model.simulate([2, 2]) == pytest.approx(expected)

    def test_streaming_beats_sequential_on_chain(self):
        g = TaskGraph()
        for i in range(5):
            g.add_task(i, complexity=5.0, streamability=8.0, area=1.0)
        for i in range(4):
            g.add_edge(i, i + 1, data_mb=100.0)
        plat = simple_platform()
        model = CostModel(g, plat)
        all_fpga = model.simulate([2] * 5)
        all_cpu = model.simulate([0] * 5)
        assert all_fpga < all_cpu


class TestFeasibility:
    def test_area_limit(self):
        g = TaskGraph()
        for i in range(5):
            g.add_task(i, complexity=1.0, area=3.0)
        model = CostModel(g, simple_platform())  # capacity 10
        assert model.is_feasible([2, 2, 2, 0, 0])
        assert not model.is_feasible([2, 2, 2, 2, 0])
        assert model.simulate([2, 2, 2, 2, 0]) == INFEASIBLE

    def test_area_usage(self):
        g = TaskGraph()
        g.add_task(0, area=2.0)
        g.add_task(1, area=3.0)
        model = CostModel(g, simple_platform())
        assert model.area_usage([2, 2]) == {2: 5.0}
        assert model.area_usage([0, 2]) == {2: 3.0}


class TestBounds:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(3, 30),
        k=st.integers(0, 15),
        seed=st.integers(0, 2**31),
    )
    def test_lower_and_upper_bounds(self, n, k, seed):
        rng = np.random.default_rng(seed)
        g = random_almost_sp_graph(n, k, rng)
        model = CostModel(g, paper_platform())
        mapping = rng.integers(0, 3, size=n)
        if not model.is_feasible(mapping):
            mapping = np.zeros(n, dtype=int)
        ms = model.simulate(mapping)
        lb = model.critical_path_bound(mapping)
        ub = model.serial_bound(mapping)
        assert lb <= ms * (1 + 1e-9)
        assert ms <= ub * (1 + 1e-9)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(3, 25), seed=st.integers(0, 2**31))
    def test_any_topological_order_gives_same_cpu_makespan_single_slot(
        self, n, seed
    ):
        """With one slot and one device, every order gives the serial sum."""
        rng = np.random.default_rng(seed)
        g = random_almost_sp_graph(n, 3, rng)
        plat = Platform(
            [cpu("c", lane_gops=1.0, lanes=1, slots=1, setup_s=0.0)],
            [[np.inf]],
            [[0.0]],
        )
        model = CostModel(g, plat)
        from repro.evaluation import random_topological_schedule

        mapping = [0] * n
        base = model.simulate(mapping)
        for _ in range(3):
            order = random_topological_schedule(g, rng)
            assert model.simulate(mapping, order) == pytest.approx(base)


class TestBookkeeping:
    def test_simulation_counter(self, small_evaluator):
        model = small_evaluator.model
        before = model.n_simulations
        model.simulate([0] * model.n)
        assert model.n_simulations == before + 1

    def test_infeasible_not_counted_as_simulation(self):
        g = TaskGraph()
        g.add_task(0, area=100.0)
        model = CostModel(g, simple_platform())
        before = model.n_simulations
        assert model.simulate([2]) == INFEASIBLE
        assert model.n_simulations == before
