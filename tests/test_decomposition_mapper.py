"""Tests for the decomposition-based mappers (the paper's contribution)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    make_workflow,
    augment_workflow,
    random_almost_sp_graph,
    random_sp_graph,
)
from repro.mappers import (
    DecompositionMapper,
    series_parallel,
    single_node,
    sn_first_fit,
    sp_first_fit,
)
from repro.platform import paper_platform
from tests.conftest import make_evaluator


class TestConstruction:
    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            DecompositionMapper("bogus")

    def test_invalid_heuristic(self):
        with pytest.raises(ValueError):
            DecompositionMapper("single_node", "bogus")

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            DecompositionMapper("single_node", "gamma", gamma=0.5)

    def test_names_match_paper(self):
        assert single_node().name == "SingleNode"
        assert series_parallel().name == "SeriesParallel"
        assert sn_first_fit().name == "SNFirstFit"
        assert sp_first_fit().name == "SPFirstFit"
        assert (
            DecompositionMapper("single_node", "gamma", gamma=2).name
            == "SingleNodeGamma2"
        )

    def test_first_fit_forces_gamma_one(self):
        m = DecompositionMapper("single_node", "first_fit", gamma=5.0)
        assert m.gamma == 1.0


class TestCandidates:
    def test_single_node_candidates(self, platform, rng):
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform)
        sets = single_node().candidate_index_sets(ev, rng)
        assert len(sets) == 15
        assert all(len(s) == 1 for s in sets)

    def test_sp_candidates_superset(self, platform, rng):
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform)
        sn_sets = {tuple(s) for s in single_node().candidate_index_sets(ev, rng)}
        sp_sets = {
            tuple(sorted(s))
            for s in series_parallel().candidate_index_sets(ev, rng)
        }
        assert {tuple(s) for s in sn_sets} <= sp_sets


class TestGuarantees:
    """Sec. IV-A: decomposition mappings are *by design* never worse than CPU."""

    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(4, 25),
        k=st.integers(0, 10),
        seed=st.integers(0, 2**31),
    )
    def test_never_worse_than_cpu_baseline(self, n, k, seed):
        g = random_almost_sp_graph(n, k, np.random.default_rng(seed))
        ev = make_evaluator(g, paper_platform(), seed=seed, n_random=5)
        for mapper in (sn_first_fit(), sp_first_fit()):
            res = mapper.map(ev, rng=np.random.default_rng(seed))
            assert res.makespan <= ev.cpu_construction_makespan * (1 + 1e-9)
            assert ev.is_feasible(res.mapping)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_all_variants_feasible_and_terminate(self, seed):
        g = random_sp_graph(15, np.random.default_rng(seed))
        ev = make_evaluator(g, paper_platform(), seed=seed, n_random=5)
        for mapper in (
            single_node(),
            series_parallel(),
            sn_first_fit(),
            sp_first_fit(),
            DecompositionMapper("series_parallel", "gamma", gamma=2.0),
        ):
            res = mapper.map(ev, rng=np.random.default_rng(seed))
            assert ev.is_feasible(res.mapping)
            assert res.stats["iterations"] <= ev.n_tasks

    def test_iteration_cap_respected(self, platform, rng):
        g = random_sp_graph(20, rng)
        ev = make_evaluator(g, platform)
        mapper = DecompositionMapper(
            "single_node", "basic", iteration_cap_factor=0.1
        )
        res = mapper.map(ev, rng=rng)
        assert res.stats["iterations"] <= max(1, int(np.ceil(0.1 * 20)))


class TestQuality:
    def test_sp_at_least_single_node_on_chain_heavy_graph(self, platform):
        """Epigenomics-style chains: SP moves should help (paper Sec. IV-D)."""
        rng = np.random.default_rng(8)
        g = make_workflow("epigenomics", 40, rng)
        augment_workflow(g, rng)
        ev = make_evaluator(g, platform, n_random=10)
        sn = sn_first_fit().map(ev, rng=np.random.default_rng(1))
        sp = sp_first_fit().map(ev, rng=np.random.default_rng(1))
        assert ev.relative_improvement(sp.mapping) >= (
            ev.relative_improvement(sn.mapping) - 0.05
        )

    def test_first_fit_close_to_basic(self, platform):
        """Paper Sec. IV-B: FirstFit quality is 'almost negligible'ly worse."""
        diffs = []
        for seed in range(4):
            g = random_sp_graph(25, np.random.default_rng(seed))
            ev = make_evaluator(g, platform, seed=seed, n_random=10)
            basic = series_parallel().map(ev, rng=np.random.default_rng(0))
            ff = sp_first_fit().map(ev, rng=np.random.default_rng(0))
            diffs.append(
                ev.relative_improvement(basic.mapping)
                - ev.relative_improvement(ff.mapping)
            )
        assert np.mean(diffs) < 0.08

    def test_first_fit_fewer_evaluations(self, platform, rng):
        g = random_sp_graph(40, rng)
        ev = make_evaluator(g, platform)
        basic = single_node().map(ev, rng=np.random.default_rng(0))
        ff = sn_first_fit().map(ev, rng=np.random.default_rng(0))
        assert ff.n_evaluations < basic.n_evaluations

    def test_finds_improvement_on_accelerable_graph(self, platform):
        rng = np.random.default_rng(3)
        g = random_sp_graph(30, rng)
        ev = make_evaluator(g, platform, n_random=10)
        res = sp_first_fit().map(ev, rng=rng)
        assert ev.relative_improvement(res.mapping) > 0.02

    def test_stats_populated(self, small_evaluator, rng):
        res = sp_first_fit().map(small_evaluator, rng=rng)
        assert {"iterations", "n_candidates", "n_moves"} <= set(res.stats)
        assert res.elapsed_s >= 0
        assert res.n_evaluations > 0
