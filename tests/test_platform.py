"""Tests for the device/platform model."""

import numpy as np
import pytest

from repro.platform import (
    Device,
    DeviceKind,
    Platform,
    amdahl_speedup,
    cpu,
    cpu_gpu_platform,
    cpu_only_platform,
    dual_fpga_platform,
    fpga,
    gpu,
    paper_platform,
)


class TestAmdahl:
    def test_perfect_parallel(self):
        assert amdahl_speedup(1.0, 16) == pytest.approx(16.0)

    def test_sequential(self):
        assert amdahl_speedup(0.0, 16) == pytest.approx(1.0)

    def test_half(self):
        assert amdahl_speedup(0.5, 4) == pytest.approx(1.0 / (0.5 + 0.125))

    def test_clamps_out_of_range(self):
        assert amdahl_speedup(1.5, 4) == amdahl_speedup(1.0, 4)
        assert amdahl_speedup(-1.0, 4) == 1.0


class TestDevice:
    def test_cpu_defaults(self):
        d = cpu()
        assert d.kind is DeviceKind.CPU
        assert d.slots == 4 and d.lanes == 4
        assert d.serializes and not d.streaming
        assert d.peak_gops == pytest.approx(d.lane_gops * d.lanes)

    def test_gpu_defaults(self):
        d = gpu()
        assert d.kind is DeviceKind.GPU
        assert d.slots == 1
        assert d.lanes > cpu().lanes
        assert d.lane_gops < cpu().lane_gops  # slow lanes, many of them

    def test_fpga_defaults(self):
        d = fpga()
        assert d.is_fpga
        assert not d.serializes and d.streaming
        assert d.area_capacity == 100.0
        assert d.peak_gops == d.stream_gops

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(lane_gops=0.0, stream_gops=0.0),
            dict(lane_gops=1.0, lanes=0),
            dict(lane_gops=1.0, setup_s=-1.0),
            dict(lane_gops=1.0, area_capacity=0.0),
            dict(lane_gops=1.0, slots=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Device(name="bad", kind=DeviceKind.CPU, **kwargs)


class TestPlatform:
    def test_paper_platform_layout(self):
        p = paper_platform()
        assert p.n_devices == 3
        assert p.host_index == 0
        kinds = [d.kind for d in p.devices]
        assert kinds == [DeviceKind.CPU, DeviceKind.GPU, DeviceKind.FPGA]
        assert p.fpga_indices() == [2]

    def test_transfer_time(self):
        p = paper_platform()
        assert p.transfer_time(0, 0, 100.0) == 0.0
        t = p.transfer_time(0, 1, 100.0)
        assert t == pytest.approx(1e-4 + 0.1 / 12.0)
        # GPU <-> FPGA goes through the host: slower than either PCIe hop
        assert p.transfer_time(1, 2, 100.0) > p.transfer_time(0, 1, 100.0)

    def test_index_of_and_device(self):
        p = paper_platform()
        assert p.index_of("vega56") == 1
        assert p.device("xcz7045").is_fpga
        with pytest.raises(KeyError):
            p.index_of("nope")

    def test_area_capacities(self):
        p = paper_platform()
        assert p.area_capacities() == {2: 100.0}

    def test_kind_mask_serializes_streaming(self):
        p = paper_platform()
        assert list(p.kind_mask(DeviceKind.FPGA)) == [False, False, True]
        assert list(p.serializes()) == [True, True, False]
        assert list(p.streaming()) == [False, False, True]

    def test_validation_device0_must_be_cpu(self):
        with pytest.raises(ValueError, match="host CPU"):
            Platform([gpu()], [[np.inf]], [[0.0]])

    def test_validation_matrix_shape(self):
        with pytest.raises(ValueError, match="must be"):
            Platform([cpu()], [[np.inf, 1.0]], [[0.0]])

    def test_validation_bad_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidths"):
            Platform(
                [cpu(), gpu()],
                [[np.inf, -1.0], [1.0, np.inf]],
                [[0.0, 0.0], [0.0, 0.0]],
            )

    def test_validation_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            Platform(
                [cpu("x"), gpu("x")],
                [[np.inf, 1.0], [1.0, np.inf]],
                [[0.0, 0.0], [0.0, 0.0]],
            )

    def test_presets_build(self):
        assert cpu_only_platform().n_devices == 1
        assert cpu_gpu_platform().n_devices == 2
        assert dual_fpga_platform().n_devices == 3
        assert len(dual_fpga_platform().fpga_indices()) == 2

    def test_matrices_read_only(self):
        p = paper_platform()
        with pytest.raises(ValueError):
            p.bandwidth_gbps[0, 1] = 5.0

    def test_repr(self):
        assert "cpu" in repr(paper_platform())
