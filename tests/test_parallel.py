"""The parallel backbone and its serial/parallel equivalence invariant.

``repro.parallel`` promises that ``--workers N`` changes wall-clock only:
every seed-derived quantity an experiment reports must be bit-identical
to a serial run.  These tests pin the pool primitives and the invariant
end to end for the robustness and table1 drivers (the satellite
acceptance: same seed ⇒ identical CSV rows at smoke scale), plus the
paired-noise-seed bugfix in the robustness sweep.
"""

import dataclasses
import io

import numpy as np
import pytest

from repro.experiments import robustness, table1
from repro.experiments.config import get_scale
from repro.experiments.runner import run_point
from repro.graphs.generators import random_sp_graph
from repro.mappers import HeftMapper, sp_first_fit
from repro.parallel import parallel_map, resolve_workers, spawn_seeds
from repro.platform import paper_platform
from repro.runtime import LognormalNoise, replicate


# module-level workers: the process pool pickles functions by reference
def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise RuntimeError("boom at 3")
    return x


def _draw(seed_seq):
    return float(np.random.default_rng(seed_seq).random())


class TestPoolPrimitives:
    def test_serial_is_plain_loop(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_preserves_item_order(self):
        items = list(range(12))
        assert parallel_map(_square, items, workers=3) == [x * x for x in items]

    def test_empty_items(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom at 3"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], workers=2)

    def test_serial_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom at 3"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], workers=1)

    def test_progress_called_per_item(self):
        messages = []
        parallel_map(_square, [1, 2], workers=1, progress=messages.append,
                     label="unit")
        assert messages == ["unit 1/2", "unit 2/2"]

    def test_seeded_items_identical_across_pool_sizes(self):
        seeds = spawn_seeds(123, 8)
        assert parallel_map(_draw, seeds, workers=1) == \
            parallel_map(_draw, seeds, workers=3)

    def test_resolve_workers(self):
        assert resolve_workers(None, 1) == 1
        assert resolve_workers(None, 3) == 3
        assert resolve_workers(2, 1) == 2
        assert resolve_workers(0, 1) >= 1    # 0 = one per CPU
        assert resolve_workers(-1, 1) >= 1

    def test_spawn_seeds_deterministic(self):
        a = spawn_seeds(7, 3)
        b = spawn_seeds(7, 3)
        assert [s.entropy for s in a] == [s.entropy for s in b]
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]


class TestReplicateSeedContract:
    """`replicate` must not mutate the root seed it is handed (the bug
    that made serial sweeps drift away from their parallel twins)."""

    def setup_method(self):
        self.platform = paper_platform()
        self.graph = random_sp_graph(12, np.random.default_rng(0))
        self.mapping = [0] * self.graph.n_tasks

    def test_same_root_object_replays_same_draws(self):
        root = np.random.SeedSequence(5)
        kw = dict(n=3, noise=LognormalNoise(0.3))
        a = [t.makespan for t in replicate(
            self.graph, self.platform, self.mapping, seed=root, **kw)]
        b = [t.makespan for t in replicate(
            self.graph, self.platform, self.mapping, seed=root, **kw)]
        assert a == b
        assert root.n_children_spawned == 0

    def test_shared_root_matches_fresh_copy(self):
        kw = dict(n=3, noise=LognormalNoise(0.3))
        shared = np.random.SeedSequence(5)
        replicate(self.graph, self.platform, self.mapping, seed=shared, **kw)
        again = [t.makespan for t in replicate(
            self.graph, self.platform, self.mapping, seed=shared, **kw)]
        fresh = [t.makespan for t in replicate(
            self.graph, self.platform, self.mapping,
            seed=np.random.SeedSequence(5), **kw)]
        assert again == fresh


@pytest.fixture(scope="module")
def tiny_scale():
    return dataclasses.replace(
        get_scale("smoke"),
        robustness_noise_levels=[0.2, 0.2, 0.4],
        robustness_replications=3,
        robustness_n_tasks=12,
        robustness_graphs=2,
        nsga_generations=4,
        n_random_schedules=3,
        table1_parameterizations=1,
        table1_generations=4,
    )


class TestSerialParallelEquivalence:
    def test_robustness_csv_bit_identical(self, tiny_scale):
        serial = robustness.run(scale=tiny_scale, seed=1, workers=1)
        pooled = robustness.run(scale=tiny_scale, seed=1, workers=2)
        a, b = io.StringIO(), io.StringIO()
        robustness.write_robustness_csv(serial, fileobj=a)
        robustness.write_robustness_csv(pooled, fileobj=b)
        assert a.getvalue() == b.getvalue()

    def test_robustness_noise_seeds_paired_across_sigmas(self, tiny_scale):
        """The satellite bugfix: per-replication sim seeds are derived once
        and reused at every sigma, so two sweep points at the *same* sigma
        are identical — seed variance cannot leak into the noise axis."""
        result = robustness.run(scale=tiny_scale, seed=1, workers=1)
        n_alg = len(result.algorithms())
        first_02 = result.points[:n_alg]
        second_02 = result.points[n_alg:2 * n_alg]
        assert first_02 == second_02

    def test_replan_csv_bit_identical(self, tiny_scale):
        cfg = dataclasses.replace(
            tiny_scale, robustness_noise_levels=[0.2],
            replan_policies=["fallback", "decomposition"],
        )
        serial = robustness.run_replan(scale=cfg, seed=2, workers=1)
        pooled = robustness.run_replan(scale=cfg, seed=2, workers=2)
        a, b = io.StringIO(), io.StringIO()
        robustness.write_replan_csv(serial, fileobj=a)
        robustness.write_replan_csv(pooled, fileobj=b)
        assert a.getvalue() == b.getvalue()

    def test_table1_rows_identical_modulo_wallclock(self, tiny_scale):
        """Improvement columns are seed-derived and must match exactly;
        total_time_s is wall-clock and exempt from the invariant."""
        serial = table1.run(
            scale=tiny_scale, seed=10, families=["montage"], workers=1
        )
        pooled = table1.run(
            scale=tiny_scale, seed=10, families=["montage"], workers=2
        )
        assert serial.algorithms == pooled.algorithms
        assert serial.improvement == pooled.improvement

    def test_run_point_identical(self):
        platform = paper_platform()
        rng = np.random.default_rng(0)
        graphs = [random_sp_graph(8, rng) for _ in range(3)]
        mappers = [HeftMapper(), sp_first_fit()]
        kw = dict(seed=3, n_random_schedules=3)
        serial = run_point(mappers, graphs, platform, workers=1, **kw)
        pooled = run_point(mappers, graphs, platform, workers=2, **kw)
        for name in ("HEFT", "SPFirstFit"):
            assert serial.improvements[name].mean == \
                pooled.improvements[name].mean
            assert serial.evaluations[name] == pooled.evaluations[name]


class TestExperimentCliWorkers:
    def test_experiment_robustness_workers_flag(self, capsys, monkeypatch):
        from repro.cli import main as cli_main

        captured = {}

        def stub(scale="smoke", workers=None, **kw):
            captured["workers"] = workers
            return robustness.RobustnessResult(title="stub")

        monkeypatch.setattr(robustness, "run", stub)
        assert cli_main(
            ["experiment", "robustness", "--workers", "2"]
        ) == 0
        assert captured["workers"] == 2
        assert "stub" in capsys.readouterr().out
