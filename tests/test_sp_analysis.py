"""Tests for forest/SP-ness analysis metrics."""

import numpy as np
import pytest

from repro.graphs.generators import random_almost_sp_graph, random_sp_graph
from repro.sp import (
    core_fraction,
    forest_stats,
    grow_decomposition_forest,
    sp_distance,
)


class TestForestStats:
    def test_sp_graph_single_tree(self, fig1_graph):
        forest = grow_decomposition_forest(fig1_graph, cut_strategy="first")
        stats = forest_stats(fig1_graph, forest)
        assert stats.n_trees == 1
        assert stats.n_cuts == 0
        assert stats.core_fraction == 1.0
        assert stats.n_edges_total == fig1_graph.n_edges
        assert stats.largest_tree_edges == fig1_graph.n_edges

    def test_fig2_split(self, fig2_graph):
        forest = grow_decomposition_forest(fig2_graph, cut_strategy="first")
        stats = forest_stats(fig2_graph, forest)
        assert stats.n_trees == 2
        assert stats.n_cuts == 1
        assert 0.0 < stats.core_fraction < 1.0
        assert stats.n_edges_total == fig2_graph.n_edges

    def test_mean_and_single_edge_counters(self, fig2_graph):
        forest = grow_decomposition_forest(fig2_graph, cut_strategy="smallest")
        stats = forest_stats(fig2_graph, forest)
        assert stats.single_edge_trees >= 1  # the cut 1-4 edge
        assert stats.mean_tree_edges == pytest.approx(
            stats.n_edges_total / stats.n_trees
        )


class TestSpDistance:
    def test_zero_for_sp(self, fig1_graph, rng):
        assert sp_distance(fig1_graph) == 0.0
        g = random_sp_graph(30, rng, augmented=False)
        assert sp_distance(g) == 0.0

    def test_positive_for_non_sp(self, fig2_graph):
        d = sp_distance(fig2_graph)
        assert 0.0 < d < 1.0

    def test_grows_with_conflicting_edges(self):
        dists = []
        for k in (0, 10, 40):
            vals = []
            for seed in range(3):
                g = random_almost_sp_graph(
                    30, k, np.random.default_rng(seed), augmented=False
                )
                vals.append(sp_distance(g, trials=2))
            dists.append(np.mean(vals))
        assert dists[0] == 0.0
        assert dists[2] > dists[1] >= dists[0]

    def test_trials_never_increase_distance(self, fig2_graph):
        one = sp_distance(fig2_graph, trials=1, cut_strategy="largest")
        many = sp_distance(fig2_graph, trials=5, cut_strategy="largest")
        assert many <= one + 1e-12

    def test_empty_graph(self):
        from repro.graphs import TaskGraph

        g = TaskGraph()
        g.add_task(0)
        assert sp_distance(g) == 0.0


class TestCoreFraction:
    def test_bounds(self, fig2_graph):
        f = core_fraction(fig2_graph, cut_strategy="smallest")
        assert 0.0 < f <= 1.0

    def test_smallest_cut_keeps_bigger_core(self, fig2_graph):
        """The 'smallest' heuristic must keep at least as much core as 'largest'."""
        small = core_fraction(fig2_graph, cut_strategy="smallest")
        large = core_fraction(fig2_graph, cut_strategy="largest")
        assert small >= large
