"""The runtime engine's anchoring invariant: zero noise == analytic model.

With deterministic runtimes, no scenario hooks, and the BFS priority order,
the discrete-event engine must reproduce ``CostModel.simulate()`` *exactly*
(bit-for-bit float equality, not approximately) on every graph family and
for every mapping — the simulator is a strict generalization of the
analytic recurrence.  Any drift here would silently invalidate every
robustness experiment built on top.
"""

import numpy as np
import pytest

from repro.evaluation import CostModel, MappingEvaluator, simulate_trace
from repro.evaluation.schedules import random_topological_schedule
from repro.graphs.generators import (
    augment_workflow,
    make_workflow,
    random_almost_sp_graph,
    random_layered_graph,
    random_sp_graph,
)
from repro.mappers import HeftMapper, PeftMapper, sp_first_fit
from repro.platform import paper_platform
from repro.runtime import RuntimeEngine, Job, simulate_mapping

GENERATORS = {
    "random-sp": lambda rng: random_sp_graph(40, rng),
    "almost-sp": lambda rng: random_almost_sp_graph(40, 12, rng),
    "layered": lambda rng: random_layered_graph(8, 6, rng),
    "montage": lambda rng: _workflow("montage", 60, rng),
    "epigenomics": lambda rng: _workflow("epigenomics", 50, rng),
    "seismology": lambda rng: _workflow("seismology", 50, rng),
}


def _workflow(family, n, rng):
    g = make_workflow(family, n, rng)
    augment_workflow(g, rng)
    return g


def _mappings(graph, platform, seed):
    """A diverse set of mappings: all-host, greedy heuristics, random."""
    ev = MappingEvaluator(graph, platform, n_random_schedules=5)
    rng = np.random.default_rng(seed)
    out = {
        "cpu": [0] * graph.n_tasks,
        "heft": HeftMapper().map(ev, rng=rng).mapping,
        "peft": PeftMapper().map(ev, rng=rng).mapping,
        "sp-first-fit": sp_first_fit().map(ev, rng=rng).mapping,
    }
    # a random feasible CPU/GPU mapping (avoids the area-capped FPGA)
    out["random"] = rng.integers(0, 2, graph.n_tasks)
    return out


@pytest.mark.parametrize("family", sorted(GENERATORS))
def test_zero_noise_engine_equals_cost_model(family, platform):
    # fixed per-family seed (str hashing is salted per process — never use it)
    graph = GENERATORS[family](
        np.random.default_rng(100 + sorted(GENERATORS).index(family))
    )
    model = CostModel(graph, platform)
    for name, mapping in _mappings(graph, platform, seed=7).items():
        analytic = model.simulate(list(mapping))
        trace = simulate_mapping(graph, platform, mapping)
        assert trace.makespan == analytic, (
            f"{family}/{name}: engine {trace.makespan!r} "
            f"!= model {analytic!r}"
        )


@pytest.mark.parametrize("family", ["random-sp", "montage"])
def test_zero_noise_equivalence_under_random_schedules(family, platform):
    """The invariant holds for any topological priority order, not just BFS."""
    graph = GENERATORS[family](np.random.default_rng(3))
    model = CostModel(graph, platform)
    ev = MappingEvaluator(graph, platform, n_random_schedules=5)
    mapping = HeftMapper().map(ev).mapping
    rng = np.random.default_rng(17)
    for _ in range(5):
        order = random_topological_schedule(graph, rng)
        analytic = model.simulate(list(mapping), order)
        trace = simulate_mapping(graph, platform, mapping, order=order)
        assert trace.makespan == analytic


def test_zero_noise_per_task_times_match_trace(platform):
    """Not just the makespan: every start/finish/slot matches the
    analytic trace twin, including streamed FPGA tasks."""
    graph = _workflow("montage", 60, np.random.default_rng(5))
    ev = MappingEvaluator(graph, platform, n_random_schedules=5)
    mapping = sp_first_fit().map(ev).mapping
    analytic = simulate_trace(ev.model, mapping)
    engine = simulate_mapping(graph, platform, mapping)
    eng_by_index = {t.index: t for t in engine.tasks}
    assert len(engine.tasks) == len(analytic.tasks)
    for ref in analytic.tasks:
        got = eng_by_index[ref.index]
        assert got.device == ref.device
        assert got.slot == ref.slot
        assert got.start == ref.start
        assert got.finish == ref.finish
        assert got.ready == ref.ready
        assert got.streamed == ref.streamed


def test_multi_job_wide_spacing_each_equals_analytic(platform):
    """Jobs spaced farther apart than the makespan never interfere."""
    graph = random_sp_graph(30, np.random.default_rng(11))
    ev = MappingEvaluator(graph, platform, n_random_schedules=5)
    mapping = HeftMapper().map(ev).mapping
    base = ev.model.simulate(list(mapping))
    engine = RuntimeEngine(platform)
    jobs = [
        Job(graph, mapping, arrival=k * base * 2, name=f"j{k}") for k in range(3)
    ]
    trace = engine.run(jobs)
    # times are shifted by the arrival, so equality is up to float
    # re-association (the arrival-0 job stays exact)
    assert trace.jobs[0].makespan == base
    for job in trace.jobs[1:]:
        assert job.makespan == pytest.approx(base, rel=1e-12)
    assert trace.makespan == pytest.approx(5 * base, rel=1e-12)
