"""Tests for candidate-subgraph extraction (paper Sec. III-B/C)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import random_almost_sp_graph, random_sp_graph
from repro.sp import (
    grow_decomposition_forest,
    candidates_from_forest,
    series_parallel_candidates,
    single_node_candidates,
)


class TestSingleNode:
    def test_one_candidate_per_task(self, fig1_graph):
        cands = single_node_candidates(fig1_graph)
        assert len(cands) == 6
        assert all(len(c) == 1 for c in cands)
        assert {next(iter(c)) for c in cands} == set(fig1_graph.tasks())


class TestSeriesParallel:
    def test_fig1_matches_paper_exactly(self, fig1_graph):
        """Paper Sec. III-C: S = {{0}..{5}, {1,2,3}, {0,1,2,3,4,5}}."""
        cands = series_parallel_candidates(fig1_graph)
        as_sets = {tuple(sorted(c)) for c in cands}
        expected = {
            (0,), (1,), (2,), (3,), (4,), (5,),
            (1, 2, 3),
            (0, 1, 2, 3, 4, 5),
        }
        assert as_sets == expected

    def test_superset_of_single_nodes(self, fig2_graph):
        cands = series_parallel_candidates(
            fig2_graph, rng=np.random.default_rng(0)
        )
        singles = {frozenset({t}) for t in fig2_graph.tasks()}
        assert singles <= set(cands)

    def test_no_virtual_nodes_leak(self, fig2_graph):
        cands = series_parallel_candidates(
            fig2_graph, rng=np.random.default_rng(0)
        )
        tasks = set(fig2_graph.tasks())
        for c in cands:
            assert set(c) <= tasks

    def test_deterministic_order(self, fig2_graph):
        a = series_parallel_candidates(fig2_graph, cut_strategy="first")
        b = series_parallel_candidates(fig2_graph, cut_strategy="first")
        assert a == b

    def test_candidates_from_prebuilt_forest(self, fig1_graph):
        forest = grow_decomposition_forest(fig1_graph, cut_strategy="first")
        cands = candidates_from_forest(fig1_graph, forest)
        assert frozenset({1, 2, 3}) in cands

    def test_ordered_by_size_first(self, fig1_graph):
        cands = series_parallel_candidates(fig1_graph)
        sizes = [len(c) for c in cands]
        assert sizes == sorted(sizes)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(3, 40),
        k=st.integers(0, 20),
        seed=st.integers(0, 2**31),
    )
    def test_property_linear_candidate_count(self, n, k, seed):
        """Sec. III-A: the candidate set must stay O(n) (here: <= 3n)."""
        g = random_almost_sp_graph(
            n, k, np.random.default_rng(seed), augmented=False
        )
        cands = series_parallel_candidates(g, rng=np.random.default_rng(seed))
        assert len(cands) <= 3 * n
        assert len(cands) >= n  # at least the singles

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(3, 60), seed=st.integers(0, 2**31))
    def test_property_candidates_cover_whole_graph_for_sp(self, n, seed):
        g = random_sp_graph(n, np.random.default_rng(seed), augmented=False)
        cands = series_parallel_candidates(g, rng=np.random.default_rng(seed))
        # the root parallel/series operation covers all tasks
        assert frozenset(g.tasks()) in cands or any(
            len(c) >= n - 2 for c in cands
        )
