"""Pickle smoke test: mappers and evaluators survive a round-trip mid-run.

The ``parallel_map`` contract (PR 5) requires every payload shipped to a
worker process to pickle; the cost model strips its ctypes handles in
``__getstate__`` (PR 3/4).  This file pins the *user-facing* surface of
that contract: every public :class:`~repro.mappers.Mapper` subclass and
:class:`~repro.evaluation.CachedEvaluator` can be pickled after a run
(carrying whatever state the run accumulated) and the clone behaves
bit-identically.
"""

import pickle

import numpy as np
import pytest

import repro.mappers as mappers_mod
from repro.evaluation import CachedEvaluator, MappingEvaluator
from repro.graphs import TaskGraph, augment
from repro.mappers import Mapper, MappingResult
from repro.platform import paper_platform

#: every public concrete Mapper subclass, from the package's own __all__
PUBLIC_MAPPERS = sorted(
    (
        name
        for name in mappers_mod.__all__
        if isinstance(getattr(mappers_mod, name), type)
        and issubclass(getattr(mappers_mod, name), Mapper)
        and getattr(mappers_mod, name) is not Mapper
    ),
)

#: MILP-backed mappers: still deterministic, but give the solver a box
MILP_KWARGS = {
    "WgdpDeviceMapper": {"time_limit_s": 10},
    "WgdpTimeMapper": {"time_limit_s": 10},
    "ZhouLiuMapper": {"time_limit_s": 10},
    "NsgaIIMapper": {"generations": 5},
    "ParetoNsgaIIMapper": {"generations": 5},
}


def tiny_evaluator(seed=0):
    g = TaskGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    augment(g, np.random.default_rng(3))
    return MappingEvaluator(
        g,
        paper_platform(),
        rng=np.random.default_rng(seed),
        n_random_schedules=8,
    )


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def test_public_mapper_list_is_nonempty():
    # guards the discovery above against a refactor emptying it silently
    assert len(PUBLIC_MAPPERS) >= 15
    assert "HeftMapper" in PUBLIC_MAPPERS
    assert "DecompositionMapper" in PUBLIC_MAPPERS


@pytest.mark.parametrize("name", PUBLIC_MAPPERS)
def test_mapper_roundtrips_mid_run(name):
    cls = getattr(mappers_mod, name)
    mapper = cls(**MILP_KWARGS.get(name, {}))
    evaluator = tiny_evaluator()
    result = mapper.map(evaluator, rng=np.random.default_rng(42))
    assert isinstance(result, MappingResult)

    # the mapper, with whatever state .map() left behind, must pickle
    clone = roundtrip(mapper)
    assert clone.name == mapper.name

    # the evaluator it just ran against must pickle too, and the clone
    # must score the result identically (bit-for-bit)
    eval_clone = roundtrip(evaluator)
    assert eval_clone.construction_makespan(result.mapping) == \
        evaluator.construction_makespan(result.mapping)

    # deterministic mappers: the clone re-runs to the same mapping
    if name not in MILP_KWARGS:
        rerun = clone.map(tiny_evaluator(), rng=np.random.default_rng(42))
        assert np.array_equal(rerun.mapping, result.mapping)
        assert rerun.makespan == result.makespan


@pytest.mark.parametrize("factory_name", [
    "series_parallel", "single_node", "sn_first_fit", "sp_first_fit",
])
def test_factory_mappers_roundtrip(factory_name):
    mapper = getattr(mappers_mod, factory_name)()
    evaluator = tiny_evaluator()
    result = mapper.map(evaluator, rng=np.random.default_rng(7))
    clone = roundtrip(mapper)
    rerun = clone.map(tiny_evaluator(), rng=np.random.default_rng(7))
    assert np.array_equal(rerun.mapping, result.mapping)


class TestCachedEvaluator:
    def test_roundtrip_preserves_memo_and_counters(self):
        cached = CachedEvaluator(tiny_evaluator())
        m = np.zeros(cached.n_tasks, dtype=np.int64)
        first = cached.construction_makespan(m)
        cached.construction_makespan(m)  # hit
        assert (cached.hits, cached.misses) == (1, 1)

        clone = roundtrip(cached)
        assert (clone.hits, clone.misses) == (1, 1)
        # memo survived: scoring the same row is a hit, same value
        assert clone.construction_makespan(m) == first
        assert clone.hits == 2

    def test_roundtrip_mid_mapper_run(self):
        cached = CachedEvaluator(tiny_evaluator())
        result = mappers_mod.HeftMapper().map(
            cached, rng=np.random.default_rng(0)
        )
        clone = roundtrip(cached)
        assert clone.construction_makespan(result.mapping) == \
            result.makespan

    def test_getattr_safe_during_unpickle(self):
        # PR 3 regression: __getattr__ must not recurse before __dict__
        # is restored
        clone = roundtrip(CachedEvaluator(tiny_evaluator()))
        assert clone.hit_rate == 0.0
        assert clone.n_tasks == 4


def test_mapping_result_roundtrips():
    evaluator = tiny_evaluator()
    result = mappers_mod.HeftMapper().map(
        evaluator, rng=np.random.default_rng(1)
    )
    clone = roundtrip(result)
    assert np.array_equal(clone.mapping, result.mapping)
    assert clone.makespan == result.makespan
    assert clone.stats == result.stats
