"""Failure-injection and robustness tests across module boundaries.

These verify that malformed inputs fail *loudly and early* (validation
errors) instead of corrupting downstream results — the failure mode that
matters most in a simulation library, where a silently wrong number looks
exactly like a real result.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import CostModel, MappingEvaluator
from repro.graphs import GraphError, TaskGraph
from repro.graphs.generators import random_sp_graph
from repro.io import graph_from_dict, graph_to_dict
from repro.mappers import NsgaIIMapper, sn_first_fit, sp_first_fit
from repro.platform import Platform, cpu, dual_fpga_platform, fpga, gpu, paper_platform
from tests.conftest import make_evaluator


class TestInvalidGraphs:
    def test_cycle_rejected_by_cost_model(self):
        g = TaskGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        with pytest.raises(GraphError):
            CostModel(g, paper_platform())

    def test_negative_data_rejected(self):
        g = TaskGraph()
        g.add_edge(0, 1, data_mb=-5.0)
        with pytest.raises(GraphError, match="negative data"):
            g.validate()

    def test_bad_params_rejected_by_evaluator(self, platform):
        g = TaskGraph()
        g.add_task(0, complexity=-1.0)
        with pytest.raises(GraphError):
            MappingEvaluator(g, platform)

    def test_json_with_cycle_rejected(self):
        doc = {
            "format": "repro-taskgraph",
            "version": 1,
            "tasks": [{"id": 0}, {"id": 1}],
            "edges": [
                {"src": 0, "dst": 1, "data_mb": 1.0},
                {"src": 1, "dst": 0, "data_mb": 1.0},
            ],
        }
        with pytest.raises(GraphError):
            graph_from_dict(doc)


class TestDegenerateGraphs:
    def test_single_task_pipeline(self, platform):
        g = TaskGraph()
        g.add_task(0, complexity=3.0, streamability=2.0)
        ev = make_evaluator(g, platform)
        for mapper in (sn_first_fit(), sp_first_fit()):
            res = mapper.map(ev)
            assert np.isfinite(res.makespan)

    def test_two_disconnected_components(self, platform):
        g = TaskGraph.from_edges([(0, 1), (2, 3)])
        from repro.graphs import augment

        augment(g, np.random.default_rng(0))
        ev = make_evaluator(g, platform)
        res = sp_first_fit().map(ev)
        assert ev.is_feasible(res.mapping)

    def test_star_graph(self, platform):
        g = TaskGraph()
        for i in range(1, 12):
            g.add_edge(0, i)
        from repro.graphs import augment

        augment(g, np.random.default_rng(1))
        ev = make_evaluator(g, platform)
        res = sp_first_fit().map(ev, rng=np.random.default_rng(2))
        assert res.makespan <= ev.cpu_construction_makespan * (1 + 1e-9)

    def test_zero_complexity_tasks_are_free(self, platform):
        g = TaskGraph()
        g.add_task(0, complexity=0.0)
        g.add_task(1, complexity=0.0)
        g.add_edge(0, 1, data_mb=0.0)
        model = CostModel(g, platform)
        assert model.simulate([0, 0]) == pytest.approx(0.0)


class TestMultiFpgaFeasibility:
    def test_decomposition_on_dual_fpga(self):
        platform = dual_fpga_platform()
        g = random_sp_graph(25, np.random.default_rng(3))
        ev = make_evaluator(g, platform)
        res = sp_first_fit().map(ev, rng=np.random.default_rng(4))
        assert ev.is_feasible(res.mapping)
        usage = ev.model.area_usage(res.mapping)
        caps = platform.area_capacities()
        for d, used in usage.items():
            assert used <= caps[d] + 1e-9

    def test_ga_repair_on_dual_fpga(self):
        platform = dual_fpga_platform()
        g = TaskGraph()
        for i in range(15):
            g.add_task(i, complexity=10.0, streamability=8.0, area=15.0)
        for i in range(14):
            g.add_edge(i, i + 1)
        ev = make_evaluator(g, platform)  # capacities 60/60; 225 total area
        res = NsgaIIMapper(generations=8).map(ev, rng=np.random.default_rng(5))
        assert ev.is_feasible(res.mapping)


class TestPropertyRoundtrips:
    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 40), seed=st.integers(0, 2**31))
    def test_json_roundtrip_preserves_everything(self, n, seed):
        g = random_sp_graph(n, np.random.default_rng(seed))
        back = graph_from_dict(graph_to_dict(g))
        assert back.tasks() == g.tasks()
        assert back.edges() == g.edges()
        for t in g.tasks():
            a, b = g.params(t), back.params(t)
            assert a.complexity == pytest.approx(b.complexity)
            assert a.parallelizability == pytest.approx(b.parallelizability)
            assert a.streamability == pytest.approx(b.streamability)
            assert a.area == pytest.approx(b.area)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_mapping_improvement_reproducible(self, seed):
        """Same seeds end-to-end => byte-identical mapping decisions."""
        def run():
            g = random_sp_graph(15, np.random.default_rng(seed))
            ev = make_evaluator(g, paper_platform(), seed=seed, n_random=5)
            res = sp_first_fit().map(ev, rng=np.random.default_rng(seed))
            return res.mapping.tolist(), ev.relative_improvement(res.mapping)

        assert run() == run()
