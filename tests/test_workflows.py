"""Tests for the scientific-workflow generators (Table I substrate)."""

import numpy as np
import pytest

from repro.graphs import graph_stats
from repro.graphs.generators import (
    WORKFLOW_FAMILIES,
    augment_workflow,
    benchmark_set,
    benchmark_sizes,
    make_workflow,
)
from repro.graphs.generators.workflows import (
    make_bwa,
    make_epigenomics,
    make_montage,
    make_seismology,
)
from repro.sp import grow_decomposition_forest


@pytest.mark.parametrize("family", sorted(WORKFLOW_FAMILIES))
def test_every_family_builds_valid_dags(family, rng):
    for size in (15, 60):
        g = make_workflow(family, size, rng)
        g.validate()
        assert g.n_tasks >= 5


@pytest.mark.parametrize("family", sorted(WORKFLOW_FAMILIES))
def test_size_scaling(family):
    small = make_workflow(family, 20, np.random.default_rng(0))
    large = make_workflow(family, 200, np.random.default_rng(0))
    assert large.n_tasks > small.n_tasks
    # sizes should be in the right ballpark (within a factor of ~2)
    assert large.n_tasks >= 100


def test_unknown_family_raises(rng):
    with pytest.raises(ValueError, match="unknown workflow family"):
        make_workflow("does-not-exist", 10, rng)


def test_montage_has_heavy_tail(rng):
    """Paper Sec. IV-D: a few end-of-graph montage tasks dominate the work."""
    g = make_montage(100, rng)
    order = g.topological_order()
    tail = order[-4:]
    tail_work = sum(g.params(t).complexity for t in tail)
    total = sum(g.params(t).complexity for t in g.tasks())
    assert tail_work / total > 0.25


def test_epigenomics_is_parallel_chains(rng):
    """Paper Sec. IV-D: epigenomics = long parallel chains (SP-friendly)."""
    g = make_epigenomics(60, rng)
    stats = graph_stats(g)
    assert stats.depth >= 5
    # chain interior nodes dominate: most tasks have in=out=1
    interior = sum(
        1 for t in g.tasks() if g.in_degree(t) == 1 and g.out_degree(t) == 1
    )
    assert interior / g.n_tasks > 0.5
    # and the decomposition forest needs no (or almost no) cuts
    forest = grow_decomposition_forest(g, rng=np.random.default_rng(0))
    assert forest.n_cuts <= 2


def test_bwa_is_data_bound(rng):
    """bwa must carry tiny compute per MB moved (no acceleration possible)."""
    g = make_bwa(40, rng)
    total_complexity = sum(g.params(t).complexity for t in g.tasks())
    total_data = sum(g.data_mb(u, v) for u, v in g.edges())
    assert total_complexity / g.n_tasks < 1.0          # tiny tasks
    assert total_data / g.n_edges > 100.0              # heavy edges


def test_seismology_tiny_fan(rng):
    g = make_seismology(50, rng)
    assert len(g.sinks()) == 1
    sink = g.sinks()[0]
    assert g.in_degree(sink) == g.n_tasks - 1
    assert max(g.params(t).complexity for t in g.tasks()) < 1.0


def test_augment_workflow_keeps_structure(rng):
    g = make_workflow("blast", 20, np.random.default_rng(1))
    complexities = {t: g.params(t).complexity for t in g.tasks()}
    data = {e: g.data_mb(*e) for e in g.edges()}
    augment_workflow(g, rng)
    for t in g.tasks():
        p = g.params(t)
        assert p.complexity == complexities[t]  # structural weights kept
        assert 0.0 <= p.parallelizability <= 1.0
        assert p.streamability > 0
        assert p.area == pytest.approx(0.25 * p.complexity)
    for e in g.edges():
        assert g.data_mb(*e) == data[e]  # data sizes kept


def test_benchmark_sizes_scales():
    for scale in ("smoke", "small", "paper"):
        sizes = benchmark_sizes(scale)
        assert set(sizes) == set(WORKFLOW_FAMILIES)
    assert max(benchmark_sizes("paper")["epigenomics"]) == 1695
    with pytest.raises(ValueError):
        benchmark_sizes("huge")


def test_benchmark_set_contents(rng):
    sets = benchmark_set(rng, "smoke", families=["blast", "montage"])
    assert sorted(sets) == ["blast", "montage"]
    for graphs in sets.values():
        assert len(graphs) == 2
        for g in graphs:
            g.validate()
