"""Smoke tests: the example scripts must run end to end.

``compare_mappers`` is exercised only through its fast path (the MILP roster
at full time limits belongs to the benchmark suite, not unit tests).
"""

import importlib
import sys

import pytest


def _load(name):
    sys.path.insert(0, "examples")
    try:
        return importlib.import_module(name)
    finally:
        sys.path.pop(0)


def test_quickstart_runs(capsys):
    mod = _load("quickstart")
    mod.main()
    out = capsys.readouterr().out
    assert "decomposition tree" in out
    assert "relative improvement" in out


def test_montage_workflow_runs(capsys):
    mod = _load("montage_workflow")
    mod.main(60)
    out = capsys.readouterr().out
    assert "HEFT" in out and "SPFirstFit" in out


def test_fpga_streaming_runs(capsys):
    mod = _load("fpga_streaming")
    mod.main()
    out = capsys.readouterr().out
    assert "SeriesParallel FirstFit" in out
    # the whole point of the example: SP finds the chain mapping, SN does not
    assert "streaming contributes" in out


def test_custom_platform_runs(capsys):
    mod = _load("custom_platform")
    mod.main()
    out = capsys.readouterr().out
    assert "fpga_a" in out and "fpga_b" in out


def test_fpga_streaming_pipeline_builder():
    mod = _load("fpga_streaming")
    g = mod.build_pipeline(n_lanes=2, chain_len=3)
    g.validate()
    assert g.n_tasks == 2 * 3 + 2
    assert len(g.sources()) == 1 and len(g.sinks()) == 1


def test_energy_tradeoff_runs(capsys):
    mod = _load("energy_tradeoff")
    mod.main()
    out = capsys.readouterr().out
    assert "Pareto NSGA-II front" in out
    assert "knee point" in out


def test_wfcommons_import_runs(capsys):
    mod = _load("wfcommons_import")
    mod.main(mod.sample_path())
    out = capsys.readouterr().out
    assert "imported" in out
    assert "SPFirstFit" in out


def test_runtime_robustness_runs(capsys):
    mod = _load("runtime_robustness")
    mod.main(60)
    out = capsys.readouterr().out
    assert "HEFT" in out and "SPFirstFit" in out
    assert "degradation" in out and "p95" in out
    assert "fails" in out and "execution(s) lost" in out


def test_shared_resources_runs(capsys):
    mod = _load("shared_resources")
    mod.main(40)
    out = capsys.readouterr().out
    assert "cross-job FPGA area ledger" in out
    assert "waited" in out and "fabric" in out
    assert "link_slots" in out and "transfers queued" in out
    assert "burned on rolled-back work" in out
