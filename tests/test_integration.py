"""Integration tests: full pipeline runs across module boundaries.

These exercise exactly the flows the paper's evaluation uses, end to end:
generate -> augment -> evaluate -> map -> compare, plus the qualitative
relationships the paper reports (at tiny scale, with generous tolerances).
"""

import numpy as np
import pytest

from repro.evaluation import MappingEvaluator
from repro.experiments import fig4, table1
from repro.experiments.config import ScaleConfig
from repro.graphs.generators import (
    augment_workflow,
    make_workflow,
    random_sp_graph,
)
from repro.mappers import (
    HeftMapper,
    NsgaIIMapper,
    PeftMapper,
    sn_first_fit,
    sp_first_fit,
)
from repro.platform import paper_platform
from tests.conftest import make_evaluator

TINY = ScaleConfig(
    name="tiny",
    graphs_per_point=2,
    n_random_schedules=5,
    fig3_sizes=[6],
    fig3_zhouliu_max=0,
    zhouliu_time_limit_s=5.0,
    milp_time_limit_s=5.0,
    fig4_sizes=[8, 16],
    fig5_sizes=[8],
    nsga_generations=5,
    fig6_generations=[2, 4],
    fig6_n_tasks=10,
    fig6_graphs=1,
    fig7_n_tasks=12,
    fig7_extra_edges=[0, 5],
    table1_sizes_key="smoke",
    table1_parameterizations=1,
    table1_generations=5,
)


class TestSweepDrivers:
    def test_fig4_driver_end_to_end(self):
        result = fig4.run(scale=TINY, seed=1)
        names = {s.name for s in result.series()}
        assert names == {
            "HEFT", "PEFT", "SingleNode", "SeriesParallel",
            "SNFirstFit", "SPFirstFit",
        }
        for s in result.series():
            assert len(s.xs) == 2
            assert all(0.0 <= v <= 1.0 for v in s.improvement)
            assert all(t >= 0.0 for t in s.time_s)

    def test_table1_driver_single_family(self):
        result = table1.run(scale=TINY, seed=2, families=["blast"])
        assert result.families() == ["blast"]
        row = result.improvement["blast"]
        assert set(row) == {"HEFT", "PEFT", "NSGAII", "SNFirstFit", "SPFirstFit"}
        text = table1.format_table(result)
        assert "blast" in text


class TestPaperRelationships:
    """The headline qualitative claims, checked on small fixed seeds."""

    def test_decomposition_beats_heft_on_average(self, platform):
        heft_imps, sp_imps = [], []
        for seed in range(6):
            g = random_sp_graph(40, np.random.default_rng(seed))
            ev = make_evaluator(g, platform, seed=seed, n_random=10)
            heft_imps.append(
                ev.relative_improvement(HeftMapper().map(ev).mapping)
            )
            sp_imps.append(
                ev.relative_improvement(
                    sp_first_fit().map(ev, rng=np.random.default_rng(seed)).mapping
                )
            )
        assert np.mean(sp_imps) >= np.mean(heft_imps) - 0.01

    def test_decomposition_close_to_ga_but_faster(self, platform):
        ga_t, sp_t, ga_i, sp_i = [], [], [], []
        for seed in range(3):
            g = random_sp_graph(30, np.random.default_rng(seed + 50))
            ev = make_evaluator(g, platform, seed=seed, n_random=10)
            ga = NsgaIIMapper(generations=30).map(
                ev, rng=np.random.default_rng(seed)
            )
            sp = sp_first_fit().map(ev, rng=np.random.default_rng(seed))
            ga_t.append(ga.elapsed_s)
            sp_t.append(sp.elapsed_s)
            ga_i.append(ev.relative_improvement(ga.mapping))
            sp_i.append(ev.relative_improvement(sp.mapping))
        assert np.mean(ga_t) > 2 * np.mean(sp_t)
        assert np.mean(sp_i) >= np.mean(ga_i) - 0.08

    def test_workflow_pipeline_end_to_end(self, platform):
        rng = np.random.default_rng(4)
        g = make_workflow("montage", 60, rng)
        augment_workflow(g, rng)
        ev = MappingEvaluator(
            g, platform, rng=np.random.default_rng(0), n_random_schedules=10
        )
        results = {}
        for mapper in (HeftMapper(), PeftMapper(), sn_first_fit(), sp_first_fit()):
            res = mapper.map(ev, rng=np.random.default_rng(1))
            results[mapper.name] = ev.relative_improvement(res.mapping)
        # decomposition must be competitive on montage's funnel shape
        assert results["SPFirstFit"] >= results["HEFT"] - 0.05
        assert all(0.0 <= v <= 1.0 for v in results.values())

    def test_seismology_resists_acceleration(self, platform):
        rng = np.random.default_rng(5)
        g = make_workflow("seismology", 40, rng)
        augment_workflow(g, rng)
        ev = make_evaluator(g, platform, n_random=10)
        for mapper in (HeftMapper(), PeftMapper(), sp_first_fit()):
            res = mapper.map(ev, rng=np.random.default_rng(2))
            assert ev.relative_improvement(res.mapping) < 0.05
