"""Unit tests for the SP decomposition-tree structures."""

import pytest

from repro.sp import SPLeaf, SPParallel, SPSeries, parallel, series


class TestLeaf:
    def test_basics(self):
        leaf = SPLeaf(0, 1)
        assert (leaf.source, leaf.sink) == (0, 1)
        assert leaf.outsize == 1
        assert list(leaf.leaf_edges()) == [(0, 1)]
        assert leaf.nodes() == {0, 1}
        assert leaf.n_edges == 1
        assert list(leaf.inner_nodes()) == []
        assert "[0 - 1]" in leaf.pretty()


class TestSeries:
    def test_chaining(self):
        t = series(SPLeaf(0, 1), SPLeaf(1, 2))
        assert isinstance(t, SPSeries)
        assert (t.source, t.sink) == (0, 2)
        assert t.outsize == 1
        assert list(t.leaf_edges()) == [(0, 1), (1, 2)]

    def test_flattening_keeps_series_maximal(self):
        t = series(series(SPLeaf(0, 1), SPLeaf(1, 2)), SPLeaf(2, 3))
        assert isinstance(t, SPSeries)
        assert len(t.children) == 3  # not nested

    def test_mismatched_terminals_raise(self):
        with pytest.raises(ValueError):
            series(SPLeaf(0, 1), SPLeaf(2, 3))
        with pytest.raises(ValueError):
            SPSeries([SPLeaf(0, 1), SPLeaf(2, 3)])

    def test_needs_two_children(self):
        with pytest.raises(ValueError):
            SPSeries([SPLeaf(0, 1)])

    def test_inner_nodes_preorder(self):
        t = series(SPLeaf(0, 1), SPLeaf(1, 2))
        inner = list(t.inner_nodes())
        assert inner == [t]

    def test_outsize_follows_last_child(self):
        par = parallel([SPLeaf(1, 2), SPLeaf(1, 2)])
        t = series(SPLeaf(0, 1), par)
        assert t.outsize == 2


class TestParallel:
    def test_basics(self):
        t = parallel([SPLeaf(0, 1), SPLeaf(0, 1)])
        assert isinstance(t, SPParallel)
        assert (t.source, t.sink) == (0, 1)
        assert t.outsize == 2
        assert t.n_edges == 2

    def test_single_tree_passthrough(self):
        leaf = SPLeaf(0, 1)
        assert parallel([leaf]) is leaf

    def test_flattening_keeps_parallel_maximal(self):
        inner = parallel([SPLeaf(0, 1), SPLeaf(0, 1)])
        t = parallel([inner, SPLeaf(0, 1)])
        assert len(t.children) == 3

    def test_mismatched_terminals_raise(self):
        with pytest.raises(ValueError):
            SPParallel([SPLeaf(0, 1), SPLeaf(0, 2)])

    def test_needs_two_children(self):
        with pytest.raises(ValueError):
            SPParallel([SPLeaf(0, 1)])


class TestComposite:
    def test_fig1_tree_by_hand(self):
        """Build the Fig. 1 decomposition manually and check node sets."""
        left = series(
            series(SPLeaf(0, 1), parallel(
                [SPLeaf(1, 3), series(SPLeaf(1, 2), SPLeaf(2, 3))]
            )),
            SPLeaf(3, 5),
        )
        right = series(SPLeaf(0, 4), SPLeaf(4, 5))
        root = parallel([left, right])
        assert root.nodes() == {0, 1, 2, 3, 4, 5}
        assert sorted(root.leaf_edges()) == sorted(
            [(0, 1), (1, 3), (1, 2), (2, 3), (3, 5), (0, 4), (4, 5)]
        )
        kinds = [type(op).__name__ for op in root.inner_nodes()]
        assert kinds.count("SPParallel") == 2
        assert kinds.count("SPSeries") == 3

    def test_pretty_renders_nested(self):
        t = parallel([SPLeaf(0, 1), series(SPLeaf(0, 2), SPLeaf(2, 1))])
        text = t.pretty()
        assert "P(0 - 1)" in text
        assert "S[0 - 1]" in text
        assert "[2 - 1]" in text

    def test_repr(self):
        assert "SPLeaf" in repr(SPLeaf(0, 1))
        assert "children" in repr(parallel([SPLeaf(0, 1), SPLeaf(0, 1)]))
        assert "->" in repr(series(SPLeaf(0, 1), SPLeaf(1, 2)))
