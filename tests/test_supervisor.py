"""The fault-tolerant execution layer: supervision, chaos, checkpoint/resume.

Three acceptance pins from PR 8:

- **chaos proof** — a sweep with injected worker SIGKILLs, hangs and
  transient exceptions produces a byte-identical results CSV to the
  fault-free run (seed-sharding contract: a retried item reuses its
  attached seed, so *when or where* it runs cannot matter);
- **resume proof** — an interrupted ``--checkpoint`` run resumed with
  ``--resume`` recomputes only outstanding items and emits a
  byte-identical CSV;
- **determinism of the chaos plan itself** — same seed ⇒ same injected
  faults, so a chaos test that passes once passes always.
"""

import dataclasses
import io
import os

import numpy as np
import pytest

from repro.experiments import robustness
from repro.experiments.config import get_scale
from repro.obs import metrics as obs_metrics
from repro.parallel import (
    ChaosError,
    FaultPlan,
    ItemFailedError,
    JournalError,
    RetryPolicy,
    SupervisedPool,
    SweepJournal,
    parallel_map,
    plan_from_env,
    plan_from_spec,
)

# module-level workers: the process pool pickles functions by reference
def _double(x):
    return 2 * x


def _always_fail(x):
    raise ValueError(f"cell {x} exploded")


def _append_marker(item):
    """Side-effecting worker counting real executions (resume tests)."""
    path, value = item
    with open(path, "a") as fh:
        fh.write(f"{value}\n")
    return value * 10


def _no_backoff(**kw):
    return RetryPolicy(backoff_base_s=0.0, **kw)


# ---------------------------------------------------------------------------
# FaultPlan: deterministic chaos decisions
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_same_seed_same_faults(self):
        a = FaultPlan(seed=11, crash=0.2, hang=0.1, error=0.3)
        b = FaultPlan(seed=11, crash=0.2, hang=0.1, error=0.3)
        decisions = [
            (label, i, att)
            for label in ("noise cell", "mapped graph")
            for i in range(40)
            for att in range(2)
        ]
        assert [a.fault_for(*d) for d in decisions] == \
            [b.fault_for(*d) for d in decisions]

    def test_different_seed_different_faults(self):
        a = FaultPlan(seed=1, crash=0.5)
        b = FaultPlan(seed=2, crash=0.5)
        decisions = [("t", i, 0) for i in range(60)]
        assert [a.fault_for(*d) for d in decisions] != \
            [b.fault_for(*d) for d in decisions]

    def test_rates_select_fault_kinds(self):
        crash_only = FaultPlan(seed=3, crash=1.0)
        assert crash_only.fault_for("t", 0, 0) == "crash"
        error_only = FaultPlan(seed=3, error=1.0)
        assert error_only.fault_for("t", 0, 0) == "error"
        hang_only = FaultPlan(seed=3, hang=1.0)
        assert hang_only.fault_for("t", 0, 0) == "hang"
        never = FaultPlan(seed=3)
        assert all(never.fault_for("t", i, 0) is None for i in range(20))

    def test_attempts_past_max_faults_run_clean(self):
        plan = FaultPlan(seed=3, crash=1.0, max_faults=2)
        assert plan.fault_for("t", 0, 0) == "crash"
        assert plan.fault_for("t", 0, 1) == "crash"
        assert plan.fault_for("t", 0, 2) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=1, crash=1.5)
        with pytest.raises(ValueError):
            FaultPlan(seed=1, crash=0.6, error=0.6)
        with pytest.raises(ValueError):
            FaultPlan(seed=1, timeout_s=0.0)

    def test_inject_error_raises_everywhere(self):
        plan = FaultPlan(seed=1, error=1.0)
        with pytest.raises(ChaosError):
            plan.inject("error", in_worker=False)

    def test_process_faults_are_noops_in_process(self):
        plan = FaultPlan(seed=1, crash=0.5, hang=0.5)
        plan.inject("crash", in_worker=False)   # must not kill the test
        plan.inject("hang", in_worker=False)    # must not sleep hang_s

    def test_spec_round_trip(self):
        plan = plan_from_spec(
            "seed=11, crash=0.15, hang=0.05, error=0.2, timeout=5, "
            "max_faults=2, hang_s=30"
        )
        assert plan == FaultPlan(seed=11, crash=0.15, hang=0.05, error=0.2,
                                 timeout_s=5.0, max_faults=2, hang_s=30.0)

    def test_spec_errors(self):
        with pytest.raises(ValueError):
            plan_from_spec("crash=0.1")          # seed is mandatory
        with pytest.raises(ValueError):
            plan_from_spec("seed=1,nope=2")
        with pytest.raises(ValueError):
            plan_from_spec("seed=1,crash")

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert plan_from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "seed=7,error=0.5")
        assert plan_from_env() == FaultPlan(seed=7, error=0.5)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_pool_rebuilds=-1)

    def test_backoff_is_bounded_exponential(self):
        p = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                        backoff_max_s=0.35)
        assert p.backoff_s(0) == pytest.approx(0.1)
        assert p.backoff_s(1) == pytest.approx(0.2)
        assert p.backoff_s(2) == pytest.approx(0.35)   # capped
        assert p.backoff_s(10) == pytest.approx(0.35)

    def test_for_chaos_outlasts_the_plan(self):
        plan = FaultPlan(seed=1, crash=0.5, max_faults=4, timeout_s=3.0)
        policy = RetryPolicy.for_chaos(plan)
        assert policy.max_attempts > plan.max_faults
        assert policy.timeout_s == plan.timeout_s


# ---------------------------------------------------------------------------
# supervised execution: retries, crash recovery, timeouts, degradation
# ---------------------------------------------------------------------------

class TestSupervisedExecution:
    def test_serial_transient_errors_are_retried(self):
        plan = FaultPlan(seed=5, error=1.0, max_faults=1)
        out = parallel_map(_double, [1, 2, 3], workers=1, chaos=plan,
                           policy=_no_backoff(max_attempts=3))
        assert out == [2, 4, 6]

    def test_exhausted_retries_name_the_cell(self):
        plan = FaultPlan(seed=5, error=1.0, max_faults=9)
        with pytest.raises(ItemFailedError) as exc_info:
            parallel_map(_double, [7], workers=1, chaos=plan,
                         policy=_no_backoff(max_attempts=2), label="cell")
        err = exc_info.value
        assert isinstance(err, RuntimeError)
        assert err.label == "cell" and err.index == 0 and err.attempts == 2
        assert isinstance(err.cause, ChaosError)
        assert "cell item 1/1 failed after 2 attempt(s)" in str(err)

    def test_unsupervised_failures_name_the_cell_too(self):
        with pytest.raises(ItemFailedError, match="unit item 1/1"):
            parallel_map(_always_fail, [9], workers=1, label="unit")
        with pytest.raises(ItemFailedError, match=r"exploded"):
            parallel_map(_always_fail, [9, 10], workers=2)

    def test_sigkilled_workers_recover_bit_identically(self):
        seeds = np.random.SeedSequence(42).spawn(6)
        clean = parallel_map(_draw, seeds, workers=1)
        plan = FaultPlan(seed=13, crash=1.0, max_faults=1, timeout_s=60)
        chaotic = parallel_map(
            _draw, seeds, workers=2, chaos=plan,
            policy=_no_backoff(max_attempts=3, timeout_s=60),
        )
        assert chaotic == clean

    def test_crash_recovery_counts_rebuilds(self):
        registry = obs_metrics.enable()
        try:
            plan = FaultPlan(seed=13, crash=1.0, max_faults=1, timeout_s=60)
            parallel_map(_double, list(range(4)), workers=2, chaos=plan,
                         policy=_no_backoff(max_attempts=3, timeout_s=60))
            snapshot = registry.snapshot()
        finally:
            obs_metrics.disable()
        assert snapshot["parallel.pool_rebuilds"] >= 1
        assert snapshot["parallel.attempts"]["n"] == 4

    def test_hung_worker_times_out_and_retries(self):
        plan = FaultPlan(seed=13, hang=1.0, max_faults=1,
                         hang_s=30.0, timeout_s=1.0)
        registry = obs_metrics.enable()
        try:
            out = parallel_map(_double, [5, 6], workers=2, chaos=plan,
                               policy=RetryPolicy.for_chaos(plan))
            snapshot = registry.snapshot()
        finally:
            obs_metrics.disable()
        assert out == [10, 12]
        assert snapshot["parallel.timeouts"] >= 1

    def test_repeated_crashes_degrade_to_serial(self):
        # every pooled attempt crashes its worker, forever: the pool must
        # give up on processes and still finish in-process
        plan = FaultPlan(seed=13, crash=1.0, max_faults=99, timeout_s=60)
        out = parallel_map(
            _double, [1, 2, 3], workers=2, chaos=plan,
            policy=_no_backoff(max_attempts=50, max_pool_rebuilds=1,
                               timeout_s=60),
        )
        assert out == [2, 4, 6]

    def test_supervised_pool_reused_across_batches(self):
        with SupervisedPool(2, policy=_no_backoff()) as pool:
            a = parallel_map(_double, [1, 2, 3], workers=2, executor=pool)
            b = parallel_map(_double, [4, 5], workers=2, executor=pool)
        assert (a, b) == ([2, 4, 6], [8, 10])


def _draw(seed_seq):
    return float(np.random.default_rng(seed_seq).random())


# ---------------------------------------------------------------------------
# journal: format, resume, scoping
# ---------------------------------------------------------------------------

class TestJournal:
    def test_resume_recomputes_only_outstanding(self, tmp_path):
        marker = str(tmp_path / "calls.txt")
        journal_path = str(tmp_path / "sweep.journal")
        items = [(marker, v) for v in range(5)]

        with SweepJournal(journal_path, fingerprint="t:1") as journal:
            full = parallel_map(_append_marker, items, workers=1,
                                journal=journal)
        assert full == [0, 10, 20, 30, 40]
        assert open(marker).read().splitlines() == ["0", "1", "2", "3", "4"]

        # simulate an interrupt: drop the last two journalled records
        lines = open(journal_path).read().splitlines()
        with open(journal_path, "w") as fh:
            fh.write("\n".join(lines[:-2]) + "\n")

        os.unlink(marker)
        with SweepJournal(journal_path, fingerprint="t:1",
                          resume=True) as journal:
            assert journal.n_loaded == 3
            resumed = parallel_map(_append_marker, items, workers=1,
                                   journal=journal)
            assert journal.n_recorded == 2
        assert resumed == full
        # only the two outstanding items actually ran
        assert open(marker).read().splitlines() == ["3", "4"]

    def test_progress_counts_journalled_items(self, tmp_path):
        journal_path = str(tmp_path / "sweep.journal")
        with SweepJournal(journal_path, fingerprint="t:1") as journal:
            parallel_map(_double, [1, 2, 3], workers=1, journal=journal,
                         label="unit")
        messages = []
        with SweepJournal(journal_path, fingerprint="t:1",
                          resume=True) as journal:
            parallel_map(_double, [1, 2, 3, 4], workers=1, journal=journal,
                         progress=messages.append, label="unit")
        assert messages == ["unit 4/4"]

    def test_partial_trailing_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "j.journal")
        with SweepJournal(path, fingerprint="t:1") as journal:
            journal.record("a", 1)
            journal.record("b", 2)
        with open(path, "a") as fh:
            fh.write('{"k": "c", "p": "AAAA')   # crash mid-append
        with SweepJournal(path, fingerprint="t:1", resume=True) as journal:
            assert journal.n_loaded == 2
            assert journal.n_corrupt == 1
            assert journal.get("a") == 1
            assert "c" not in journal

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = str(tmp_path / "j.journal")
        SweepJournal(path, fingerprint="robustness:smoke:77").close()
        with pytest.raises(JournalError, match="fingerprint"):
            SweepJournal(path, fingerprint="robustness:smoke:78", resume=True)

    def test_resume_without_prior_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "new.journal")
        with SweepJournal(path, fingerprint="t:1", resume=True) as journal:
            assert journal.n_loaded == 0
            journal.record("a", 1)

    def test_checkpoint_without_resume_truncates(self, tmp_path):
        path = str(tmp_path / "j.journal")
        with SweepJournal(path, fingerprint="t:1") as journal:
            journal.record("a", 1)
        with SweepJournal(path, fingerprint="t:1") as journal:
            assert "a" not in journal

    def test_scoped_keys_do_not_collide(self, tmp_path):
        path = str(tmp_path / "j.journal")
        with SweepJournal(path, fingerprint="t:1") as journal:
            journal.scoped("point0:").record("task:0", 1.0)
            journal.scoped("point1:").record("task:0", 2.0)
        with SweepJournal(path, fingerprint="t:1", resume=True) as journal:
            assert journal.scoped("point0:").get("task:0") == 1.0
            assert journal.scoped("point1:").get("task:0") == 2.0


# ---------------------------------------------------------------------------
# driver-level proofs (robustness sweep at tiny scale)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_scale():
    return dataclasses.replace(
        get_scale("smoke"),
        robustness_noise_levels=[0.2],
        robustness_replications=2,
        robustness_n_tasks=12,
        robustness_graphs=2,
        nsga_generations=4,
        n_random_schedules=3,
    )


def _robustness_csv(result):
    buf = io.StringIO()
    robustness.write_robustness_csv(result, fileobj=buf)
    return buf.getvalue()


class TestChaosSweepEquivalence:
    def test_faulted_sweep_csv_matches_clean_run(self, tiny_scale,
                                                 monkeypatch):
        """The chaos proof: worker SIGKILLs and transient exceptions
        injected mid-sweep change nothing about the CSV."""
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        clean = _robustness_csv(
            robustness.run(scale=tiny_scale, seed=1, workers=1)
        )
        monkeypatch.setenv(
            "REPRO_CHAOS", "seed=11,crash=0.25,error=0.2,timeout=60"
        )
        chaotic = _robustness_csv(
            robustness.run(scale=tiny_scale, seed=1, workers=2)
        )
        assert chaotic == clean


class TestResumeEquivalence:
    def test_interrupted_then_resumed_csv_is_byte_identical(
        self, tiny_scale, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        journal_path = str(tmp_path / "robustness.journal")

        reference = _robustness_csv(
            robustness.run(scale=tiny_scale, seed=1, workers=1)
        )
        checkpointed = _robustness_csv(robustness.run(
            scale=tiny_scale, seed=1, workers=1, checkpoint=journal_path,
        ))
        assert checkpointed == reference

        # interrupt: drop the last 4 journalled cells, then resume
        lines = open(journal_path).read().splitlines()
        assert len(lines) > 5
        with open(journal_path, "w") as fh:
            fh.write("\n".join(lines[:-4]) + "\n")
        resumed = _robustness_csv(robustness.run(
            scale=tiny_scale, seed=1, workers=1, checkpoint=journal_path,
            resume=True,
        ))
        assert resumed == reference
        # the resumed run appended exactly the dropped records back
        assert len(open(journal_path).read().splitlines()) == len(lines)

    def test_fully_journalled_resume_recomputes_nothing(
        self, tiny_scale, tmp_path, monkeypatch
    ):
        journal_path = str(tmp_path / "robustness.journal")
        first = _robustness_csv(robustness.run(
            scale=tiny_scale, seed=1, workers=1, checkpoint=journal_path,
        ))
        # poison every worker: a resume that recomputes anything dies
        monkeypatch.setattr(
            robustness, "_noise_cell_worker", _always_fail
        )
        monkeypatch.setattr(
            robustness, "_map_graph_worker", _always_fail
        )
        resumed = _robustness_csv(robustness.run(
            scale=tiny_scale, seed=1, workers=1, checkpoint=journal_path,
            resume=True,
        ))
        assert resumed == first

    def test_resume_requires_checkpoint(self, tiny_scale):
        with pytest.raises(ValueError, match="--resume requires"):
            robustness.run(scale=tiny_scale, seed=1, workers=1, resume=True)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCheckpointCli:
    def test_checkpoint_flags_reach_the_driver(self, capsys, monkeypatch):
        from repro.cli import main as cli_main

        captured = {}

        def stub(scale="smoke", workers=None, **kw):
            captured.update(kw)
            return robustness.RobustnessResult(title="stub")

        monkeypatch.setattr(robustness, "run", stub)
        assert cli_main(
            ["experiment", "robustness", "--checkpoint", "--resume"]
        ) == 0
        assert captured["checkpoint"] == "auto"
        assert captured["resume"] is True
        assert "stub" in capsys.readouterr().out

    def test_checkpoint_rejected_for_figures(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["experiment", "fig4", "--checkpoint"]) == 2
        assert "not supported" in capsys.readouterr().err

    def test_resume_requires_checkpoint_flag(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["experiment", "robustness", "--resume"]) == 2
        assert "requires --checkpoint" in capsys.readouterr().err

    def test_profile_reports_supervision_counters(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        graph = str(tmp_path / "g.json")
        assert cli_main(["generate", "--kind", "sp", "--n", "12",
                         "--seed", "1", "-o", graph]) == 0
        assert cli_main(["profile", graph]) == 0
        out = capsys.readouterr().out
        for counter in ("parallel.retries", "parallel.timeouts",
                        "parallel.pool_rebuilds"):
            assert counter in out
