"""Topology-aware platforms: the link-graph layer's exactness contracts.

PR 10 replaced the implicit all-pairs interconnect with an explicit
:class:`~repro.platform.links.LinkGraph` (per-device-pair links with
bandwidth/latency/slots plus deterministic shortest-hop routing) whose
routed *effective* matrices feed every existing evaluation path.  The
contracts pinned here:

- **Routing is table-build-time only.**  A star topology with unlimited
  slots is *bit-identical* to the flattened platform carrying the same
  effective matrices, on every path: the reference walk, the scalar
  kernel (Python and C), the batch kernel, the delta evaluator, and the
  runtime engine.  A mesh built from legacy matrices reproduces them
  bit for bit (the 1-hop-verbatim rule: no ``1/(1/x)`` float trips).
- **Per-link slot pools generalize the shared pool.**  Finite-width
  links queue transfers per link (whole-route claims); ``link_slots=0``
  means *unlimited* everywhere (Platform, Link, engine), and the
  engine's explicit ``link_slots=0`` force-disables even per-link
  pools.  :class:`~repro.runtime.events.LinkWait` names the blocking
  link (``-1`` for the legacy shared pool).
- **JSON back-compat.**  Legacy matrix platform files round-trip byte
  for byte; link-graph files round-trip exactly; malformed link specs
  exit 2 from the CLI.
- **Determinism.**  ``run_topologies`` is bit-identical serial vs
  ``--workers 2``, and its mesh/unlimited cells equal the shared-pool
  unlimited cells exactly (the sweep's built-in equivalence anchor).
"""

import json

import numpy as np
import pytest

from repro.evaluation import CostModel, DeltaEvaluator
from repro.evaluation._ckernel import load_ckernel
from repro.graphs.generators import random_sp_graph
from repro.io import (
    FormatError,
    load_platform,
    platform_from_dict,
    platform_to_dict,
    save_graph,
    save_platform,
)
from repro.obs.timeline import runtime_trace_to_chrome_events
from repro.platform import (
    Link,
    LinkGraph,
    Platform,
    TOPOLOGY_NAMES,
    make_topology,
    mesh,
    numa_pairs,
    paper_platform,
    ring,
    star,
    with_topology,
)
from repro.runtime import RuntimeEngine, periodic_stream
from repro.runtime.replan import _surviving_platform

HAVE_CKERNEL = load_ckernel() is not None

MODES = [False] + ([None] if HAVE_CKERNEL else [])
MODE_IDS = ["python"] + (["ckernel"] if HAVE_CKERNEL else [])


def bench_graph(n=16, seed=3):
    return random_sp_graph(n, np.random.default_rng(seed))


def spread_mapping(g, platform, seed=7):
    rng = np.random.default_rng(seed)
    return [int(d) for d in rng.integers(0, platform.n_devices, g.n_tasks)]


def contended_trace(platform, *, link_slots=None, n_jobs=4, seed=7):
    """Replay a short periodic stream — dense enough to queue transfers."""
    g = bench_graph()
    mapping = spread_mapping(g, platform, seed)
    analytic = CostModel(g, platform).simulate(mapping)
    jobs = periodic_stream(g, mapping, n_jobs, period=0.3 * analytic)
    return RuntimeEngine(platform, link_slots=link_slots).run(jobs)


# ---------------------------------------------------------------------------
# link graph model + routing
# ---------------------------------------------------------------------------

class TestLinkGraph:
    def test_mesh_reproduces_legacy_matrices_bit_for_bit(self):
        P = paper_platform()
        Pm = with_topology(P, "mesh")
        assert Pm.link_graph is not None
        assert np.array_equal(Pm.bandwidth_gbps, P.bandwidth_gbps)
        assert np.array_equal(Pm.latency_s, P.latency_s)

    def test_star_routes_through_the_hub(self):
        Ps = with_topology(paper_platform(), "star")
        assert [(l.a, l.b) for l in Ps.links] == [(0, 1), (0, 2)]
        assert Ps.route(0, 1) == (0,)
        assert Ps.route(1, 2) == (0, 1)   # two hops via the hub
        assert Ps.route(1, 1) == ()
        # multi-hop composition: latencies add, bandwidths harmonic
        lg = Ps.link_graph
        l01, l02 = lg.links
        assert Ps.latency_s[1][2] == l01.latency_s + l02.latency_s
        assert Ps.bandwidth_gbps[1][2] == pytest.approx(
            1.0 / (1.0 / l01.bandwidth_gbps + 1.0 / l02.bandwidth_gbps)
        )
        # 1-hop routes take the link's bandwidth VERBATIM (no 1/(1/x))
        assert Ps.bandwidth_gbps[0][1] == l01.bandwidth_gbps

    def test_all_presets_build_and_connect(self):
        P = paper_platform()
        for name in TOPOLOGY_NAMES:
            Pt = with_topology(P, name)
            m = Pt.n_devices
            for a in range(m):
                for b in range(m):
                    if a != b:
                        assert len(Pt.route(a, b)) >= 1
                        assert np.isfinite(Pt.latency_s[a][b])
        # "shared" / flat spellings are identity
        assert with_topology(P, "shared") is P

    def test_disconnected_graph_rejected(self):
        with pytest.raises(ValueError):
            LinkGraph(3, [Link(0, 1, 10.0)])

    def test_link_validation(self):
        with pytest.raises(ValueError):
            Link(0, 0, 10.0)          # self-link
        with pytest.raises(ValueError):
            Link(0, 1, -1.0)          # negative bandwidth
        assert Link(0, 1, 10.0, slots=0).slots is None   # 0 == unlimited

    def test_make_topology_names(self):
        P = paper_platform()
        for name, fn in [
            ("star", star), ("mesh", mesh), ("ring", ring),
            ("numa", numa_pairs),
        ]:
            assert make_topology(name, P) == fn(P)
        with pytest.raises(ValueError):
            make_topology("hypercube", P)


# ---------------------------------------------------------------------------
# exactness: star with unlimited slots == flattened twin, on EVERY path
# ---------------------------------------------------------------------------

class TestRoutedBitIdentity:
    @pytest.mark.parametrize("use_ckernel", MODES, ids=MODE_IDS)
    def test_scalar_batch_delta_reference(self, use_ckernel):
        g = bench_graph(18)
        Ps = with_topology(paper_platform(), "star")
        flat = Ps.with_link_graph(None)
        assert flat.link_graph is None
        assert np.array_equal(flat.bandwidth_gbps, Ps.bandwidth_gbps)

        ms = CostModel(g, Ps, use_ckernel=use_ckernel)
        mf = CostModel(g, flat, use_ckernel=use_ckernel)
        rng = np.random.default_rng(11)
        pop = rng.integers(0, Ps.n_devices, size=(12, ms.n))
        for mapping in pop:
            # scalar kernel == flattened == the nested-list reference walk
            got = ms.simulate(mapping)
            assert got == mf.simulate(mapping)
            assert got == ms._simulate_reference(mapping)
        # batch kernel
        np.testing.assert_array_equal(
            ms.simulate_many(pop), mf.simulate_many(pop)
        )
        # delta evaluator
        ds, df = DeltaEvaluator(ms), DeltaEvaluator(mf)
        base = np.zeros(ms.n, dtype=np.int64)
        assert ds.reset(base) == df.reset(base)
        for _ in range(40):
            t = int(rng.integers(ms.n))
            d = int(rng.integers(Ps.n_devices))
            cs, cf = ds.candidate([t]), df.candidate([t])
            assert ds.evaluate_move(cs, d) == df.evaluate_move(cf, d)

    def test_runtime_engine_bit_identical(self):
        Ps = with_topology(paper_platform(), "star")
        flat = Ps.with_link_graph(None)
        ts, tf = contended_trace(Ps), contended_trace(flat)
        assert ts.makespan == tf.makespan
        for js, jf in zip(ts.jobs, tf.jobs):
            for rs, rf in zip(js.tasks, jf.tasks):
                assert (rs.start, rs.finish) == (rf.start, rf.finish)

    def test_engine_matches_analytic_model_on_star(self):
        """Single job, no pools: engine == CostModel.simulate exactly."""
        g = bench_graph()
        Ps = with_topology(paper_platform(), "star")
        mapping = spread_mapping(g, Ps)
        analytic = CostModel(g, Ps).simulate(mapping)
        trace = RuntimeEngine(Ps).run(periodic_stream(g, mapping, 1, period=1.0))
        assert trace.jobs[0].makespan == analytic


# ---------------------------------------------------------------------------
# per-link slot pools + the link_slots=0 convention
# ---------------------------------------------------------------------------

class TestPerLinkPools:
    def test_zero_means_unlimited_everywhere(self):
        P = paper_platform()
        # Platform normalizes 0 -> None
        assert Platform(
            P.devices, P.bandwidth_gbps, P.latency_s, link_slots=0
        ).link_slots is None
        # engine link_slots=0 force-disables even per-link finite pools
        throttled = with_topology(P, "mesh", slots=1)
        forced = contended_trace(throttled, link_slots=0)
        free = contended_trace(with_topology(P, "mesh"))
        assert forced.makespan == free.makespan
        assert forced.n_link_waits == 0

    def test_finite_per_link_pools_diverge_from_shared_pool(self):
        P = paper_platform()
        shared = contended_trace(P, link_slots=1)
        per_link = contended_trace(with_topology(P, "mesh", slots=1))
        assert shared.n_link_waits > 0
        assert per_link.n_link_waits > 0
        # one pool serializing ALL transfers queues more than one per link
        assert per_link.makespan < shared.makespan

    def test_link_wait_names_the_blocking_link(self):
        Ps = with_topology(paper_platform(), "star", slots=1)
        trace = contended_trace(Ps)
        waits = [e for e in trace.events if e.kind == "link-wait"]
        assert waits
        assert all(0 <= w.link < Ps.n_links for w in waits)
        # legacy shared pool keeps the -1 sentinel
        legacy = contended_trace(paper_platform(), link_slots=1)
        assert all(
            e.link == -1 for e in legacy.events if e.kind == "link-wait"
        )


# ---------------------------------------------------------------------------
# JSON: legacy byte-for-byte, link graphs exact, malformed -> exit 2
# ---------------------------------------------------------------------------

class TestTopologyJson:
    def test_legacy_files_round_trip_byte_for_byte(self, tmp_path):
        p1 = str(tmp_path / "p1.json")
        p2 = str(tmp_path / "p2.json")
        save_platform(paper_platform(), p1)
        save_platform(load_platform(p1), p2)
        assert open(p1, "rb").read() == open(p2, "rb").read()
        # legacy docs keep the legacy schema: matrices, no "links" key
        doc = json.load(open(p1))
        assert "links" not in doc
        assert "bandwidth_gbps" in doc and "latency_s" in doc

    def test_link_graph_round_trip_exact(self, tmp_path):
        Ps = with_topology(paper_platform(), "numa", slots=2)
        doc = platform_to_dict(Ps)
        assert "links" in doc
        assert "bandwidth_gbps" not in doc   # matrices are derived
        back = platform_from_dict(doc)
        assert back.link_graph == Ps.link_graph
        assert np.array_equal(back.bandwidth_gbps, Ps.bandwidth_gbps)
        assert np.array_equal(back.latency_s, Ps.latency_s)
        # and stable through a file
        path = str(tmp_path / "topo.json")
        save_platform(Ps, path)
        assert load_platform(path).link_graph == Ps.link_graph

    def test_malformed_links_rejected(self):
        base = platform_to_dict(with_topology(paper_platform(), "star"))
        for breakage in (
            lambda d: d["links"].append({"a": 0}),                # no b/bw
            lambda d: d["links"].append(
                {"a": 0, "b": 99, "bandwidth_gbps": 1.0}),        # bad index
            lambda d: d["links"].__setitem__(0, "not-a-dict"),
            lambda d: d.__setitem__("links", d["links"][:1]),     # disconnects
            lambda d: d.__setitem__(
                "bandwidth_gbps", [[0.0] * 3] * 3),               # both forms
        ):
            doc = json.loads(json.dumps(base))
            breakage(doc)
            with pytest.raises(FormatError):
                platform_from_dict(doc)

    def test_cli_exits_2_on_malformed_links(self, tmp_path, rng):
        from repro.cli import main

        gpath = str(tmp_path / "g.json")
        save_graph(random_sp_graph(8, rng), gpath)
        doc = platform_to_dict(with_topology(paper_platform(), "star"))
        del doc["links"][0]["bandwidth_gbps"]
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(doc))
        assert main(["map", gpath, "--platform", str(bad)]) == 2


# ---------------------------------------------------------------------------
# topology sweep determinism + equivalence anchor
# ---------------------------------------------------------------------------

class TestTopologySweep:
    def test_serial_equals_workers2_and_mesh_anchors_to_shared(self, tmp_path):
        from repro.experiments.contention import (
            run_topologies,
            write_topology_csv,
        )

        serial = run_topologies(
            "smoke", topologies=["shared", "mesh"], workers=1
        )
        pooled = run_topologies(
            "smoke", topologies=["shared", "mesh"], workers=2
        )
        assert serial.points == pooled.points
        c1 = tmp_path / "serial.csv"
        c2 = tmp_path / "pooled.csv"
        write_topology_csv(serial, str(c1))
        write_topology_csv(pooled, str(c2))
        assert c1.read_bytes() == c2.read_bytes()

        # equivalence anchor: mesh with unlimited slots == shared pool
        # with unlimited slots, cell by cell (routed costs are the legacy
        # matrices bit for bit, and no pools exist on either side)
        by_key = {}
        for pt in serial.points:
            by_key[(pt.topology, pt.algorithm, pt.link_slots,
                    pt.period_frac)] = pt
        anchored = 0
        for (topo, alg, slots, frac), pt in by_key.items():
            if topo != "mesh" or slots != 0:
                continue
            ref = by_key[("shared", alg, slots, frac)]
            assert pt.latency_mean_s == ref.latency_mean_s
            assert pt.makespan_s == ref.makespan_s
            assert pt.link_wait_s == ref.link_wait_s == 0.0
            anchored += 1
        assert anchored > 0

    def test_unknown_topology_rejected(self):
        from repro.experiments.contention import run_topologies

        with pytest.raises(ValueError):
            run_topologies("smoke", topologies=["hypercube"])


# ---------------------------------------------------------------------------
# timeline: per-link lanes only when a link actually queued
# ---------------------------------------------------------------------------

class TestTimelineLinkLanes:
    def test_link_waits_get_their_own_lane(self):
        Ps = with_topology(paper_platform(), "star", slots=1)
        trace = contended_trace(Ps)
        events = runtime_trace_to_chrome_events(trace, Ps)
        n = Ps.n_devices
        lanes = {
            e["tid"]: e["args"]["name"]
            for e in events if e["name"] == "thread_name"
        }
        link_lanes = {t: s for t, s in lanes.items() if t > n}
        assert link_lanes
        assert all(s.startswith("link ") for s in link_lanes.values())
        for e in events:
            if e["name"] == "link-wait":
                assert e["tid"] == 1 + n + e["args"]["link"]

    def test_healthy_runs_add_no_lanes(self):
        Ps = with_topology(paper_platform(), "star")
        trace = contended_trace(Ps)
        events = runtime_trace_to_chrome_events(trace, Ps)
        n = Ps.n_devices
        assert {e["tid"] for e in events} <= set(range(1 + n))


# ---------------------------------------------------------------------------
# replan: surviving platforms keep (or soundly flatten) the link graph
# ---------------------------------------------------------------------------

class TestReplanSurvivingTopology:
    def test_induced_subgraph_when_still_connected(self):
        Ps = with_topology(paper_platform(), "star", slots=2)
        sub = _surviving_platform(Ps, [0, 2])   # hub survives
        assert sub.link_graph is not None
        assert [(l.a, l.b) for l in sub.links] == [(0, 1)]
        assert sub.links[0].slots == 2
        assert sub.bandwidth_gbps[0][1] == Ps.bandwidth_gbps[0][2]

    def test_disconnection_flattens_to_routed_effective_costs(self):
        # a 4-device ring whose survivors {0, 2} share no direct link:
        # the induced subgraph is disconnected, so the restriction falls
        # back to slicing the routed effective matrices
        from repro.platform import cpu, gpu

        P4 = Platform(
            [cpu("h", lane_gops=1.0, lanes=2),
             gpu("g0", lane_gops=4.0), gpu("g1", lane_gops=4.0),
             gpu("g2", lane_gops=4.0)],
            np.where(np.eye(4, dtype=bool), np.inf, 5.0),
            np.where(np.eye(4, dtype=bool), 0.0, 1e-4),
        )
        Pr = with_topology(P4, "ring")
        assert len(Pr.route(0, 2)) == 2   # opposite corners: two hops
        sub = _surviving_platform(Pr, [0, 2])
        assert sub.link_graph is None
        # the 2-hop routed cost survives as a direct effective edge
        assert sub.bandwidth_gbps[0][1] == Pr.bandwidth_gbps[0][2]
        assert sub.latency_s[0][1] == Pr.latency_s[0][2]
