"""Tests for the task execution-time model."""

import numpy as np
import pytest

from repro.graphs import TaskGraph, TaskParams
from repro.platform import (
    OPS_PER_MB,
    cpu,
    exec_time_table,
    execution_time,
    fpga,
    gpu,
    paper_platform,
    work_gops,
)


class TestWork:
    def test_work_scales_linearly(self):
        assert work_gops(2.0, 100.0) == pytest.approx(2 * work_gops(1.0, 100.0))
        assert work_gops(1.0, 200.0) == pytest.approx(2 * work_gops(1.0, 100.0))

    def test_units(self):
        assert work_gops(1.0, 1.0) == pytest.approx(OPS_PER_MB / 1e9)


class TestExecutionTime:
    def test_zero_work_is_free(self):
        p = TaskParams(complexity=0.0)
        assert execution_time(p, 100.0, cpu()) == 0.0

    def test_setup_included(self):
        p = TaskParams(complexity=1.0)
        d = cpu(setup_s=0.5)
        assert execution_time(p, 100.0, d) > 0.5

    def test_more_complexity_is_slower(self):
        d = cpu()
        t1 = execution_time(TaskParams(complexity=1.0), 100.0, d)
        t2 = execution_time(TaskParams(complexity=5.0), 100.0, d)
        assert t2 > t1

    def test_parallelizability_helps_on_cpu_gpu(self):
        for d in (cpu(), gpu()):
            seq = execution_time(TaskParams(1.0, 0.0), 100.0, d)
            par = execution_time(TaskParams(1.0, 1.0), 100.0, d)
            assert par < seq

    def test_parallelizability_irrelevant_on_fpga(self):
        d = fpga()
        a = execution_time(TaskParams(1.0, 0.0, 5.0), 100.0, d)
        b = execution_time(TaskParams(1.0, 1.0, 5.0), 100.0, d)
        assert a == pytest.approx(b)

    def test_streamability_helps_on_fpga(self):
        d = fpga()
        slow = execution_time(TaskParams(1.0, 0.0, 1.0), 100.0, d)
        fast = execution_time(TaskParams(1.0, 0.0, 10.0), 100.0, d)
        assert fast < slow

    def test_sequential_task_prefers_cpu_over_gpu(self):
        """A GPU lane is slower than a CPU core (platform heterogeneity)."""
        p = TaskParams(complexity=5.0, parallelizability=0.0)
        assert execution_time(p, 100.0, cpu()) < execution_time(p, 100.0, gpu())

    def test_parallel_task_prefers_gpu(self):
        p = TaskParams(complexity=5.0, parallelizability=1.0)
        assert execution_time(p, 100.0, gpu()) < execution_time(p, 100.0, cpu())


class TestTable:
    def test_shape_and_order(self, rng):
        g = TaskGraph.from_edges([(0, 1), (1, 2)])
        from repro.graphs import augment

        augment(g, rng)
        platform = paper_platform()
        table = exec_time_table(g, platform)
        assert table.shape == (3, 3)
        for i, t in enumerate(g.tasks()):
            expected = execution_time(
                g.params(t), g.input_mb(t), platform.devices[0]
            )
            assert table[i, 0] == pytest.approx(expected)

    def test_all_times_positive(self, rng):
        from repro.graphs.generators import random_sp_graph

        g = random_sp_graph(20, rng)
        table = exec_time_table(g, paper_platform())
        assert np.all(table > 0)
