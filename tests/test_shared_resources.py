"""Shared-resource runtime: cross-job FPGA area, link slots, energy.

The acceptance contract of the shared-resource model:

- **exactness** — zero-noise, unlimited-link-slot, single-job runs stay
  bit-identical to ``CostModel.simulate()`` (the ledger and the slot
  queue only ever *add* waiting under genuine contention);
- **no silent co-residency** — concurrent jobs whose combined FPGA usage
  exceeds the platform budget wait (or are re-routed by a replan
  policy); at no instant does running fabric usage exceed the capacity;
- **energy** — traces account compute/transfer/idle energy at the
  :mod:`repro.evaluation.energy` rates, including work rolled back by
  failures;
- plus the satellite bugfixes: one shared area tolerance
  (:data:`repro.evaluation.costmodel.AREA_TOL`) across static mapping
  and runtime replanning, slowdown-triggered replanning, and the
  NaN-free ``batch_size_mean`` stat.
"""

import dataclasses
import io
import json
import math

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.evaluation import AREA_TOL, CostModel, MappingEvaluator
from repro.evaluation.energy import EnergyModel
from repro.evaluation.trace import simulate_trace
from repro.graphs.generators import (
    augment_workflow,
    make_workflow,
    random_sp_graph,
)
from repro.io import graph_to_dict, mapping_to_dict, platform_from_dict, platform_to_dict
from repro.mappers import HeftMapper, sp_first_fit
from repro.platform import paper_platform
from repro.runtime import (
    AreaWait,
    DeviceFailure,
    DeviceSlowdown,
    Job,
    LinkWait,
    RuntimeEngine,
    simulate_mapping,
    throughput_report,
)

FPGA = 2  # index of the area-capped device on the paper platform


@pytest.fixture(scope="module")
def platform():
    return paper_platform()


def _fpga_burst_graph(n_tasks, n_fpga, area, seed):
    """An SP graph whose first ``n_fpga`` tasks carry real FPGA area."""
    g = random_sp_graph(n_tasks, np.random.default_rng(seed))
    for t in g.tasks():
        g.params(t).area = 0.0
    for t in g.tasks()[:n_fpga]:
        g.params(t).area = area
    return g


def _peak_fpga_usage(trace, model):
    """Max concurrent fabric usage over all running FPGA tasks."""
    events = []
    for t in trace.tasks:
        if t.device == FPGA:
            a = float(model._area[t.index])  # noqa: SLF001
            if a > 0.0:
                events.append((t.start, 1, a))
                events.append((t.finish, 0, a))
    events.sort(key=lambda e: (e[0], e[1]))
    cur = peak = 0.0
    for _, phase, a in events:
        cur = cur + a if phase else cur - a
        peak = max(peak, cur)
    return peak


# ---------------------------------------------------------------------------
# cross-job area ledger
# ---------------------------------------------------------------------------
class TestCrossJobArea:
    def test_concurrent_oversubscription_waits_never_coresides(self, platform):
        """Two feasible jobs whose sum exceeds the budget must serialize
        their fabric claims — the PR-1/2 engine silently co-resided."""
        cap = platform.area_capacities()[FPGA]
        g = _fpga_burst_graph(30, 4, cap / 5, seed=0)  # 0.8 cap per job
        model = CostModel(g, platform)
        mapping = [FPGA if i < 4 else 0 for i in range(g.n_tasks)]
        assert model.is_feasible(mapping)
        trace = RuntimeEngine(platform).run([
            Job(g, mapping, arrival=0.0, name="a"),
            Job(g, mapping, arrival=0.0, name="b"),
        ])
        assert trace.area_wait_time > 0
        assert trace.n_area_waits >= 1
        waits = [e for e in trace.events if isinstance(e, AreaWait)]
        assert len(waits) == trace.n_area_waits
        assert all(w.waited > 0 and w.device == FPGA for w in waits)
        assert _peak_fpga_usage(trace, model) <= cap + AREA_TOL
        assert all(job.completion < float("inf") for job in trace.jobs)

    def test_three_way_burst_stays_within_budget(self, platform):
        cap = platform.area_capacities()[FPGA]
        g = _fpga_burst_graph(24, 3, cap / 4, seed=3)
        model = CostModel(g, platform)
        mapping = [FPGA if i < 3 else i % 2 for i in range(g.n_tasks)]
        jobs = [Job(g, mapping, arrival=0.0, name=f"j{k}") for k in range(3)]
        trace = RuntimeEngine(platform).run(jobs)
        assert _peak_fpga_usage(trace, model) <= cap + AREA_TOL
        assert len(trace.tasks) == 3 * g.n_tasks

    def test_distinct_graphs_share_one_ledger(self, platform):
        """The ledger is per platform, not per job/graph."""
        cap = platform.area_capacities()[FPGA]
        g1 = _fpga_burst_graph(20, 2, cap * 0.45, seed=5)
        g2 = _fpga_burst_graph(26, 2, cap * 0.45, seed=6)
        m1 = [FPGA if i < 2 else 0 for i in range(g1.n_tasks)]
        m2 = [FPGA if i < 2 else 0 for i in range(g2.n_tasks)]
        trace = RuntimeEngine(platform).run([
            Job(g1, m1, arrival=0.0, name="g1"),
            Job(g2, m2, arrival=0.0, name="g2"),
        ])
        # combined peak across both graphs must respect the one budget
        events = []
        for jr, model in ((trace.jobs[0], CostModel(g1, platform)),
                          (trace.jobs[1], CostModel(g2, platform))):
            for t in jr.tasks:
                if t.device == FPGA and model._area[t.index] > 0:  # noqa: SLF001
                    events.append((t.start, 1, float(model._area[t.index])))  # noqa: SLF001
                    events.append((t.finish, 0, float(model._area[t.index])))  # noqa: SLF001
        events.sort(key=lambda e: (e[0], e[1]))
        cur = peak = 0.0
        for _, phase, a in events:
            cur = cur + a if phase else cur - a
            peak = max(peak, cur)
        assert peak <= cap + AREA_TOL

    def test_replan_policy_routes_pressured_arrival(self, platform):
        """With a policy, an arrival under fabric pressure is re-mapped
        against the residual capacity instead of queueing blindly."""
        cap = platform.area_capacities()[FPGA]
        g = _fpga_burst_graph(30, 4, cap / 5, seed=0)
        model = CostModel(g, platform)
        mapping = [FPGA if i < 4 else 0 for i in range(g.n_tasks)]
        jobs = [
            Job(g, mapping, arrival=0.0, name="a"),
            Job(g, mapping, arrival=0.0, name="b"),
        ]
        trace = RuntimeEngine(platform, replan_policy="heft").run(jobs)
        assert sum(j.n_remapped for j in trace.jobs) > 0
        assert _peak_fpga_usage(trace, model) <= cap + AREA_TOL

    def test_single_job_never_waits(self, platform):
        """A statically-feasible single job cannot contend with itself."""
        cap = platform.area_capacities()[FPGA]
        g = _fpga_burst_graph(30, 5, cap / 5, seed=1)  # exactly full fabric
        mapping = [FPGA if i < 5 else 0 for i in range(g.n_tasks)]
        trace = simulate_mapping(g, platform, mapping)
        assert trace.area_wait_time == 0.0
        assert trace.n_area_waits == 0


# ---------------------------------------------------------------------------
# exactness: zero noise + unlimited slots + single job == the cost model
# ---------------------------------------------------------------------------
class TestExactness:
    @pytest.mark.parametrize("family", ["sp", "montage"])
    def test_bit_identity_with_area_and_links_idle(self, family, platform):
        if family == "sp":
            g = random_sp_graph(40, np.random.default_rng(7))
        else:
            g = make_workflow("montage", 60, np.random.default_rng(7))
            augment_workflow(g, np.random.default_rng(8))
        ev = MappingEvaluator(g, platform, n_random_schedules=5)
        mapping = list(sp_first_fit().map(ev).mapping)
        analytic = ev.model.simulate(mapping)
        # unlimited slots (the default): the exact analytic recurrence
        trace = simulate_mapping(g, platform, mapping)
        assert trace.makespan == analytic
        # a slot pool wider than the number of transfers can never queue:
        # the claim arithmetic degenerates to the analytic formula
        wide = simulate_mapping(g, platform, mapping, link_slots=4096)
        assert wide.makespan == analytic
        assert wide.link_wait_time == 0.0
        # per-task times match the analytic trace twin exactly
        ref = simulate_trace(ev.model, mapping)
        got = {t.index: t for t in trace.tasks}
        for r in ref.tasks:
            assert got[r.index].start == r.start
            assert got[r.index].finish == r.finish

    def test_engine_energy_matches_energy_model(self, platform):
        g = make_workflow("epigenomics", 50, np.random.default_rng(4))
        augment_workflow(g, np.random.default_rng(5))
        ev = MappingEvaluator(g, platform, n_random_schedules=5)
        mapping = list(HeftMapper().map(ev).mapping)
        analytic = ev.model.simulate(mapping)
        trace = simulate_mapping(g, platform, mapping)
        expected = EnergyModel(ev.model).energy(mapping, makespan=analytic)
        assert trace.energy_j == pytest.approx(expected, rel=1e-12)
        assert trace.wasted_energy_j == 0.0
        # the idle floor covers the serving horizon, not absolute time:
        # a delayed arrival is not charged pre-arrival platform idle
        late = RuntimeEngine(platform).run(
            Job(g, mapping, arrival=1.0, name="late")
        )
        assert late.energy_j == pytest.approx(expected, rel=1e-12)

    def test_platform_link_slots_round_trips_json(self, platform):
        doc = platform_to_dict(platform)
        assert doc["link_slots"] is None
        p2 = platform_from_dict(doc)
        assert p2.link_slots is None
        tight = type(platform)(
            platform.devices, platform.bandwidth_gbps, platform.latency_s,
            link_slots=2,
        )
        back = platform_from_dict(platform_to_dict(tight))
        assert back.link_slots == 2
        # 0 is the engine/CLI spelling of "unlimited": normalized to None
        zero = type(platform)(
            platform.devices, platform.bandwidth_gbps,
            platform.latency_s, link_slots=0,
        )
        assert zero.link_slots is None
        with pytest.raises(ValueError, match="link_slots"):
            type(platform)(
                platform.devices, platform.bandwidth_gbps,
                platform.latency_s, link_slots=-1,
            )


# ---------------------------------------------------------------------------
# link-slot contention
# ---------------------------------------------------------------------------
class TestLinkSlots:
    @pytest.fixture(scope="class")
    def stream(self, platform):
        g = random_sp_graph(30, np.random.default_rng(2))
        ev = MappingEvaluator(g, platform, n_random_schedules=5)
        mapping = list(HeftMapper().map(ev).mapping)
        base = ev.model.simulate(mapping)
        jobs = [
            Job(g, mapping, arrival=k * base / 4, name=f"j{k}")
            for k in range(4)
        ]
        return g, mapping, jobs

    def test_fewer_slots_monotonically_slower(self, platform, stream):
        _, _, jobs = stream
        spans = {}
        for slots in (0, 2, 1):
            trace = RuntimeEngine(platform, link_slots=slots).run(jobs)
            spans[slots] = trace.makespan
            if slots == 0:
                assert trace.link_wait_time == 0.0
            else:
                assert trace.link_wait_time > 0.0
                assert any(
                    isinstance(e, LinkWait) for e in trace.events
                )
        assert spans[0] <= spans[2] <= spans[1]
        assert spans[1] > spans[0]

    def test_engine_overrides_platform_slots(self, platform, stream):
        _, _, jobs = stream
        tight = type(platform)(
            platform.devices, platform.bandwidth_gbps, platform.latency_s,
            link_slots=1,
        )
        inherited = RuntimeEngine(tight).run(jobs)
        assert inherited.link_wait_time > 0.0
        # 0 forces the unlimited model even on a slot-limited platform
        unlimited = RuntimeEngine(tight, link_slots=0).run(jobs)
        assert unlimited.link_wait_time == 0.0
        assert unlimited.makespan < inherited.makespan

    def test_link_waits_survive_rollback_replan(self, platform, stream):
        """Scenario rollback rebuilds slot state without losing claims of
        committed work — the run still completes, waits stay recorded."""
        g, mapping, jobs = stream
        model = CostModel(g, platform)
        t_fail = 0.3 * model.simulate(list(mapping))
        trace = RuntimeEngine(
            platform, link_slots=1,
            scenarios=[DeviceFailure(t_fail, device=1)],
        ).run(jobs)
        assert all(j.completion < float("inf") for j in trace.jobs)
        assert trace.link_wait_time > 0.0
        report = throughput_report(trace)
        assert report.link_wait_s == trace.link_wait_time
        assert report.energy_j == pytest.approx(trace.energy_j)


# ---------------------------------------------------------------------------
# energy under failures
# ---------------------------------------------------------------------------
class TestEnergy:
    def test_failure_burns_wasted_energy(self, platform):
        g = random_sp_graph(20, np.random.default_rng(6))
        mapping = [1] * g.n_tasks  # everything on the GPU
        model = CostModel(g, platform)
        t_fail = 0.3 * model.simulate(list(mapping))
        clean = simulate_mapping(g, platform, mapping)
        failed = simulate_mapping(
            g, platform, mapping,
            scenarios=[DeviceFailure(t_fail, device=1)],
        )
        assert failed.n_killed >= 1
        assert failed.wasted_energy_j > 0.0
        assert clean.wasted_energy_j == 0.0
        # rolled-back work is charged on top of the useful executions the
        # final trace records (no FPGA tasks here, so duration == exec)
        watts = [d.watts_active for d in platform.devices]
        useful = sum(
            (t.finish - t.start) * watts[t.device] for t in failed.tasks
        )
        assert failed.compute_energy_j > useful
        assert failed.energy_j == pytest.approx(
            failed.compute_energy_j + failed.transfer_energy_j
            + failed.idle_energy_j
        )

    def test_slowdown_increases_compute_energy(self, platform):
        g = random_sp_graph(25, np.random.default_rng(9))
        mapping = [0] * g.n_tasks
        clean = simulate_mapping(g, platform, mapping)
        slowed = simulate_mapping(
            g, platform, mapping,
            scenarios=[DeviceSlowdown(0.0, device=0, factor=2.0)],
        )
        assert slowed.compute_energy_j > clean.compute_energy_j


# ---------------------------------------------------------------------------
# slowdown-triggered replanning (satellite)
# ---------------------------------------------------------------------------
class TestSlowdownReplan:
    @pytest.fixture(scope="class")
    def gpu_heavy(self, platform):
        g = random_sp_graph(30, np.random.default_rng(2))
        mapping = [1] * g.n_tasks
        analytic = CostModel(g, platform).simulate(list(mapping))
        return g, mapping, analytic

    def test_policy_rescues_big_slowdown(self, platform, gpu_heavy):
        g, mapping, analytic = gpu_heavy
        scn = [DeviceSlowdown(0.2 * analytic, device=1, factor=10.0)]
        plain = simulate_mapping(g, platform, mapping, scenarios=scn)
        replanned = simulate_mapping(
            g, platform, mapping, scenarios=scn, replan_policy="heft"
        )
        assert sum(j.n_remapped for j in replanned.jobs) > 0
        assert replanned.makespan < plain.makespan

    def test_below_threshold_no_replan(self, platform, gpu_heavy):
        g, mapping, analytic = gpu_heavy
        trace = simulate_mapping(
            g, platform, mapping,
            scenarios=[DeviceSlowdown(0.2 * analytic, device=1, factor=1.5)],
            replan_policy="heft",
        )
        assert sum(j.n_remapped for j in trace.jobs) == 0

    def test_cumulative_slowdowns_cross_threshold(self, platform, gpu_heavy):
        """Two x1.5 slowdowns compound to 2.25 >= the 2.0 threshold."""
        g, mapping, analytic = gpu_heavy
        scn = [
            DeviceSlowdown(0.1 * analytic, device=1, factor=1.5),
            DeviceSlowdown(0.2 * analytic, device=1, factor=1.5),
        ]
        trace = simulate_mapping(
            g, platform, mapping, scenarios=scn, replan_policy="heft"
        )
        assert sum(j.n_remapped for j in trace.jobs) > 0

    def test_threshold_validation(self, platform):
        with pytest.raises(ValueError, match="slowdown_replan_threshold"):
            RuntimeEngine(platform, slowdown_replan_threshold=1.0)

    def test_arrival_after_slowdown_routes_through_policy(
        self, platform, gpu_heavy
    ):
        """A job arriving onto an already-degraded device is re-mapped,
        just like in-flight jobs were when the slowdown struck."""
        g, mapping, analytic = gpu_heavy
        scn = [DeviceSlowdown(1e-4, device=1, factor=10.0)]
        late = 5 * analytic
        jobs = [Job(g, mapping, arrival=late, name="late")]
        plain = RuntimeEngine(platform, scenarios=scn).run(jobs)
        routed = RuntimeEngine(
            platform, scenarios=scn, replan_policy="heft"
        ).run(jobs)
        assert sum(j.n_remapped for j in plain.jobs) == 0
        assert sum(j.n_remapped for j in routed.jobs) > 0
        assert routed.jobs[0].makespan < plain.jobs[0].makespan


# ---------------------------------------------------------------------------
# satellite bugfixes: shared tolerance, batch_size_mean
# ---------------------------------------------------------------------------
class TestFeasibilitySweep:
    def test_remap_accepts_exactly_full_fpga(self, platform):
        """Replan and static mapping agree at the area boundary: a remap
        that fills the FPGA to exactly its capacity is feasible, just as
        ``CostModel.is_feasible`` says."""
        cap = platform.area_capacities()[FPGA]
        g = random_sp_graph(12, np.random.default_rng(4))
        for t in g.tasks():
            g.params(t).area = 0.0
        heavy = g.tasks()[:2]
        for t in heavy:
            g.params(t).area = cap / 2  # together: exactly the budget
        model = CostModel(g, platform)
        assert model.is_feasible([FPGA, FPGA] + [0] * (g.n_tasks - 2))
        trace = simulate_mapping(
            g, platform, [0] * g.n_tasks,
            scenarios=[
                DeviceFailure(0.0, device=0),
                DeviceFailure(0.0, device=1),
            ],
        )
        final = [0] * g.n_tasks
        for t in trace.tasks:
            final[t.index] = t.device
        assert all(d == FPGA for d in final)
        assert model.is_feasible(final)

    def test_shared_tolerance_is_single_sourced(self):
        from repro.evaluation.costmodel import AREA_TOL as src
        import repro.runtime.engine as engine_mod
        import repro.mappers.heft as heft_mod

        assert engine_mod.AREA_TOL is src
        assert heft_mod.AREA_TOL is src

    def test_batch_size_mean_zero_batches_is_finite(self, platform):
        """A mapper that never batches reports 0.0, not NaN/ZeroDivision."""
        g = random_sp_graph(15, np.random.default_rng(0))
        ev = MappingEvaluator(g, platform, n_random_schedules=5)
        res = HeftMapper().map(ev)
        assert res.stats["n_batched_evaluations"] == 0.0
        assert res.stats["batch_size_mean"] == 0.0
        assert math.isfinite(res.stats["batch_size_mean"])


# ---------------------------------------------------------------------------
# contention sweep driver
# ---------------------------------------------------------------------------
class TestContentionDriver:
    def test_smoke_run_and_csv(self, tmp_path):
        from repro.experiments import contention
        from repro.experiments.config import SCALES

        cfg = dataclasses.replace(
            SCALES["smoke"],
            contention_n_tasks=20,
            contention_graphs=1,
            contention_jobs=3,
            contention_link_slots=[0, 1],
            contention_period_fracs=[0.5],
            n_random_schedules=5,
        )
        result = contention.run(scale=cfg, workers=1)
        algorithms = result.algorithms()
        assert len(algorithms) == 2
        assert len(result.points) == 2 * 2 * 1  # slots x algos x periods
        for p in result.points:
            assert p.jobs_per_second > 0
            assert math.isfinite(p.energy_per_job_j)
            assert p.area_wait_s >= 0.0 and p.link_wait_s >= 0.0
        # slot-limited cells are never faster than unlimited ones
        for a in algorithms:
            assert (
                result.cell(a, 1, 0.5).jobs_per_second
                <= result.cell(a, 0, 0.5).jobs_per_second + 1e-12
            )
        buf = io.StringIO()
        contention.write_contention_csv(result, fileobj=buf)
        lines = buf.getvalue().strip().splitlines()
        assert lines[0].startswith("algorithm,link_slots,period_frac")
        assert len(lines) == 1 + len(result.points)
        path = contention.write_contention_csv(
            result, str(tmp_path / "c.csv")
        )
        assert (tmp_path / "c.csv").exists() and path.endswith("c.csv")


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------
class TestCli:
    @pytest.fixture()
    def files(self, tmp_path, platform):
        g = random_sp_graph(25, np.random.default_rng(3))
        ev = MappingEvaluator(g, platform, n_random_schedules=5)
        mapping = list(HeftMapper().map(ev).mapping)
        gpath = tmp_path / "graph.json"
        mpath = tmp_path / "mapping.json"
        gpath.write_text(json.dumps(graph_to_dict(g)))
        mpath.write_text(json.dumps(mapping_to_dict(g, platform, mapping)))
        return str(gpath), str(mpath)

    def test_simulate_prints_energy(self, files, capsys):
        gpath, mpath = files
        rc = cli_main(["simulate", gpath, mpath])
        assert rc == 0
        out = capsys.readouterr().out
        assert "energy" in out and "J" in out

    def test_simulate_link_slots_stream(self, files, capsys):
        gpath, mpath = files
        rc = cli_main([
            "simulate", gpath, mpath, "--arrivals", "4", "--period", "0.05",
            "--link-slots", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "link slots        : 1" in out
        assert "link waits" in out
        assert "J/job" in out

    def test_simulate_negative_link_slots_rejected(self, files, capsys):
        gpath, mpath = files
        rc = cli_main(["simulate", gpath, mpath, "--link-slots", "-1"])
        assert rc == 2

    def test_replan_policy_with_slowdown_accepted(self, files, capsys):
        gpath, mpath = files
        rc = cli_main([
            "simulate", gpath, mpath,
            "--slowdown", "vega56@0.01:8.0", "--replan-policy", "heft",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replan policy     : heft" in out

    def test_replan_policy_still_needs_a_scenario(self, files, capsys):
        gpath, mpath = files
        rc = cli_main([
            "simulate", gpath, mpath, "--replan-policy", "heft",
        ])
        assert rc == 2

    def test_replan_policy_with_arrival_stream_accepted(self, files, capsys):
        """Arrivals under area pressure route through the policy, so a
        multi-job stream is a valid --replan-policy target on its own."""
        gpath, mpath = files
        rc = cli_main([
            "simulate", gpath, mpath, "--arrivals", "3", "--period", "0.05",
            "--replan-policy", "heft",
        ])
        assert rc == 0
        assert "jobs" in capsys.readouterr().out

    def test_slowdown_replan_threshold_flag(self, files, capsys):
        gpath, mpath = files
        rc = cli_main([
            "simulate", gpath, mpath,
            "--slowdown", "0@0.0:1.5", "--replan-policy", "heft",
            "--slowdown-replan-threshold", "1.2",
        ])
        assert rc == 0
        assert "slowdown replan" in capsys.readouterr().out
        rc = cli_main([
            "simulate", gpath, mpath,
            "--slowdown", "0@0.0:1.5", "--replan-policy", "heft",
            "--slowdown-replan-threshold", "1.0",
        ])
        assert rc == 2
