"""Exactness contract of the fast evaluation core.

The flat-array kernel (Python and compiled C), the vectorized batch
kernel and the incremental delta evaluator are *optimizations, never
approximations*: every path must reproduce the original nested-list
walk (``CostModel._simulate_reference``) **bit for bit** — makespan and
per-task start/finish — across graph families, random mappings, random
schedule orders, streaming chains, FPGA area-infeasible mappings and
``contention=False`` bounds.  The greedy mappers' trajectories (and
hence every ``improvement`` number in the committed result CSVs) follow
from these equalities.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    INFEASIBLE,
    CachedEvaluator,
    CostModel,
    DeltaEvaluator,
    MappingEvaluator,
    random_topological_schedule,
)
from repro.evaluation._ckernel import load_ckernel
from repro.evaluation.delta import _BATCH_MIN
from repro.evaluation.kernel import simulate_flat
from repro.graphs import TaskGraph
from repro.graphs.generators import (
    augment_workflow,
    make_workflow,
    random_almost_sp_graph,
    random_layered_graph,
    random_sp_graph,
)
from repro.mappers.decomposition import DecompositionMapper
from repro.platform import Platform, cpu, fpga, gpu, paper_platform
from repro.sp.subgraphs import schedule_span
from tests.conftest import make_evaluator

HAVE_CKERNEL = load_ckernel() is not None

#: kernel modes exercised by the equivalence tests
MODES = [False] + ([None] if HAVE_CKERNEL else [])
MODE_IDS = ["python"] + (["ckernel"] if HAVE_CKERNEL else [])


def tight_platform():
    """Small-area platform so random mappings hit FPGA infeasibility."""
    devices = [
        cpu("c", lane_gops=1.0, lanes=4, slots=2, setup_s=0.0),
        gpu("g", lane_gops=8.0, lanes=1, setup_s=0.001),
        fpga("f", stream_gops=2.0, area_capacity=6.0, setup_s=0.0),
    ]
    bw = [[np.inf, 2.0, 1.0], [2.0, np.inf, 1.0], [1.0, 1.0, np.inf]]
    lat = [[0.0, 1e-4, 2e-4], [1e-4, 0.0, 1e-4], [2e-4, 1e-4, 0.0]]
    return Platform(devices, bw, lat)


def streaming_chain(n=8):
    """A chain with high streamability — exercises fill/drain co-mapping."""
    g = TaskGraph()
    for i in range(n):
        g.add_task(i, complexity=4.0, streamability=6.0, area=1.0)
    for i in range(n - 1):
        g.add_edge(i, i + 1, data_mb=200.0)
    return g


def graph_family(kind: str, n: int, rng) -> TaskGraph:
    if kind == "sp":
        return random_sp_graph(n, rng)
    if kind == "almost_sp":
        return random_almost_sp_graph(n, max(1, n // 4), rng)
    if kind == "layered":
        return random_layered_graph(max(2, n // 4), 4, rng)
    if kind == "workflow":
        g = make_workflow("montage", n, rng)
        augment_workflow(g, rng)
        return g
    if kind == "chain":
        return streaming_chain(min(n, 12))
    raise ValueError(kind)


FAMILIES = ["sp", "almost_sp", "layered", "workflow", "chain"]


# ---------------------------------------------------------------------------
# kernel == legacy reference, bit-identical
# ---------------------------------------------------------------------------
class TestKernelBitIdentical:
    @pytest.mark.parametrize("use_ckernel", MODES, ids=MODE_IDS)
    @pytest.mark.parametrize("family", FAMILIES)
    def test_families_random_mappings_and_orders(self, family, use_ckernel):
        rng = np.random.default_rng(FAMILIES.index(family))
        for plat in (paper_platform(), tight_platform()):
            g = graph_family(family, 18, rng)
            model = CostModel(g, plat, use_ckernel=use_ckernel)
            n = model.n
            for _ in range(25):
                mapping = rng.integers(0, plat.n_devices, size=n)
                # makespan must match the reference EXACTLY (==, not approx),
                # including INFEASIBLE area violations
                assert _same(
                    model.simulate(mapping), model._simulate_reference(mapping)
                )
                order = random_topological_schedule(g, rng)
                assert _same(
                    model.simulate(mapping, order, check_feasibility=False),
                    model._simulate_reference(
                        mapping, order, check_feasibility=False
                    ),
                )
                # contention=False bound path
                assert _same(
                    model.simulate(
                        mapping, check_feasibility=False, contention=False
                    ),
                    model._simulate_reference(
                        mapping, check_feasibility=False, contention=False
                    ),
                )

    @pytest.mark.skipif(not HAVE_CKERNEL, reason="no C compiler available")
    def test_c_and_python_kernels_agree(self):
        rng = np.random.default_rng(77)
        plat = tight_platform()
        g = random_almost_sp_graph(30, 8, rng)
        mc = CostModel(g, plat, use_ckernel=True)
        mp_ = CostModel(g, plat, use_ckernel=False)
        for _ in range(40):
            mapping = rng.integers(0, plat.n_devices, size=30)
            assert _same(mc.simulate(mapping), mp_.simulate(mapping))

    def test_requesting_unavailable_ckernel_raises(self, monkeypatch):
        import repro.evaluation.costmodel as cm

        monkeypatch.setattr(cm, "load_ckernel", lambda: None)
        g = random_sp_graph(5, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            CostModel(g, paper_platform(), use_ckernel=True)
        # None (auto) quietly falls back to the Python kernel
        model = CostModel(g, paper_platform(), use_ckernel=None)
        assert model._ck is None


# ---------------------------------------------------------------------------
# delta evaluation == scratch evaluation, bit-identical
# ---------------------------------------------------------------------------
class TestDeltaEquivalence:
    @pytest.mark.parametrize("use_ckernel", MODES, ids=MODE_IDS)
    @pytest.mark.parametrize("family", FAMILIES)
    def test_random_move_sequences(self, family, use_ckernel):
        rng = np.random.default_rng(100 + FAMILIES.index(family))
        plat = tight_platform()  # small FPGA: infeasible moves do occur
        g = graph_family(family, 16, rng)
        model = CostModel(g, plat, use_ckernel=use_ckernel)
        n = model.n
        delta = DeltaEvaluator(model)
        assert _same(
            delta.reset(np.zeros(n, dtype=np.int64)),
            model._simulate_reference([0] * n),
        )
        # guaranteed FPGA area violation: total area exceeds capacity 6
        everything = delta.candidate(np.arange(n))
        assert delta.evaluate_move(everything, 2) == INFEASIBLE
        assert model._simulate_reference([2] * n) == INFEASIBLE
        for _ in range(120):
            size = int(rng.integers(1, max(2, n // 3)))
            sub = rng.choice(n, size=size, replace=False)
            d = int(rng.integers(0, plat.n_devices))
            cand = delta.candidate(sub)
            ms = delta.evaluate_move(cand, d)
            trial = delta.mapping
            trial[sub] = d
            ref = model._simulate_reference(trial)
            assert _same(ms, ref)
            if ms != INFEASIBLE and rng.random() < 0.35:
                # commit: the rebuilt base (makespan AND per-task
                # start/finish) must equal a scratch simulation
                assert _same(delta.apply_move(cand.members, d), ref)
                start = [0.0] * n
                finish = [0.0] * n
                simulate_flat(
                    model.flat, trial.tolist(), delta.order,
                    out_start=start, out_finish=finish,
                )
                np.testing.assert_array_equal(delta._start_np, start)
                np.testing.assert_array_equal(delta._finish_np, finish)

    @pytest.mark.parametrize("use_ckernel", MODES, ids=MODE_IDS)
    def test_bound_abort_is_conservative(self, use_ckernel):
        """Aborted evaluations only ever hide values >= the bound."""
        rng = np.random.default_rng(5)
        g = random_sp_graph(20, rng)
        model = CostModel(g, paper_platform(), use_ckernel=use_ckernel)
        delta = DeltaEvaluator(model)
        base = delta.reset(np.zeros(20, dtype=np.int64))
        for _ in range(60):
            t = int(rng.integers(20))
            d = int(rng.integers(3))
            cand = delta.candidate([t])
            exact = delta.evaluate_move(cand, d)
            bound = base * float(rng.uniform(0.5, 1.1))
            bounded = delta.evaluate_move(cand, d, bound=bound)
            if exact < bound:
                assert bounded == exact
            else:
                assert bounded == np.inf or bounded == exact

    def test_batch_path_matches_scratch(self):
        """Force the vectorized numpy batch (> _BATCH_MIN lanes) and pin it."""
        rng = np.random.default_rng(9)
        plat = tight_platform()
        g = random_sp_graph(24, rng)
        model = CostModel(g, plat, use_ckernel=False)
        delta = DeltaEvaluator(model)
        delta.reset(np.zeros(24, dtype=np.int64))
        items = []
        for _ in range(_BATCH_MIN + 40):
            size = int(rng.integers(1, 6))
            sub = rng.choice(24, size=size, replace=False)
            items.append((delta.candidate(sub), int(rng.integers(3))))
        res = delta.evaluate_moves(items)
        for (cand, d), ms in zip(items, res):
            trial = delta.mapping
            trial[cand.members] = d
            assert _same(ms, model._simulate_reference(trial))

    def test_delta_needs_feasible_base(self):
        g = TaskGraph()
        g.add_task(0, area=100.0)
        plat = tight_platform()
        model = CostModel(g, plat)
        with pytest.raises(ValueError):
            DeltaEvaluator(model).reset([2])

    def test_schedule_span(self):
        pos = [3, 0, 2, 1]
        assert schedule_span([0], pos) == (3, 3)
        assert schedule_span([1, 2], pos) == (0, 2)
        assert schedule_span([0, 1, 2, 3], pos) == (0, 3)


# ---------------------------------------------------------------------------
# mapper trajectories: delta path == legacy full-evaluation path
# ---------------------------------------------------------------------------
class _LegacyForced(DecompositionMapper):
    """Overriding ``_objective`` (even trivially) disables the delta path."""

    def _objective(self, evaluator, mapping):
        return DecompositionMapper._objective(self, evaluator, mapping)


class TestMapperTrajectories:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_first_fit_identical_to_legacy(self, seed):
        self._check("series_parallel", "first_fit", seed)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_basic_identical_to_legacy(self, seed):
        self._check("single_node", "basic", seed)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_gamma_identical_to_legacy(self, seed):
        self._check("series_parallel", "gamma", seed, gamma=2.0)

    @staticmethod
    def _check(strategy, heuristic, seed, **kw):
        g = random_almost_sp_graph(22, 5, np.random.default_rng(seed))
        ev1 = make_evaluator(g, paper_platform(), seed=seed, n_random=3)
        ev2 = make_evaluator(g, paper_platform(), seed=seed, n_random=3)
        fast = DecompositionMapper(strategy, heuristic, **kw).map(
            ev1, rng=np.random.default_rng(seed)
        )
        legacy = _LegacyForced(strategy, heuristic, **kw).map(
            ev2, rng=np.random.default_rng(seed)
        )
        np.testing.assert_array_equal(fast.mapping, legacy.mapping)
        assert fast.makespan == legacy.makespan
        assert fast.stats["iterations"] == legacy.stats["iterations"]


# ---------------------------------------------------------------------------
# bookkeeping: simulation / delta-evaluation counters
# ---------------------------------------------------------------------------
class TestCounters:
    def test_mapper_stats_expose_both_counters(self, platform):
        g = random_sp_graph(20, np.random.default_rng(3))
        ev = make_evaluator(g, platform, n_random=3)
        from repro.mappers import sp_first_fit

        res = sp_first_fit().map(ev, rng=np.random.default_rng(0))
        assert res.stats["n_delta_evaluations"] > 0
        # fractional accounting: equivalent evaluations weight each delta
        # evaluation by its suffix share, so full <= equivalent <= total
        assert res.stats["n_equivalent_evaluations"] <= res.n_evaluations
        assert res.n_evaluations == (
            ev.n_full_simulations + ev.n_delta_evaluations
        )

    def test_infeasible_delta_moves_not_counted(self):
        g = TaskGraph()
        g.add_task(0, area=100.0)
        g.add_task(1, area=1.0)
        g.add_edge(0, 1, data_mb=1.0)
        model = CostModel(g, tight_platform())
        delta = DeltaEvaluator(model)
        delta.reset([0, 0])
        before = model.n_delta_evaluations
        cand = delta.candidate([0])
        assert delta.evaluate_move(cand, 2) == INFEASIBLE  # area 100 > 6
        assert model.n_delta_evaluations == before

    def test_evaluator_equivalent_evaluations(self, platform):
        g = random_sp_graph(10, np.random.default_rng(1))
        ev = make_evaluator(g, platform, n_random=2)
        ev.construction_makespan(ev.cpu_mapping())
        assert ev.n_equivalent_evaluations == ev.n_full_simulations == 1
        assert ev.n_delta_evaluations == 0


# ---------------------------------------------------------------------------
# CachedEvaluator delegation hardening (repro.parallel round trip)
# ---------------------------------------------------------------------------
class TestCachedEvaluatorPickling:
    def test_pickle_round_trip(self, platform):
        g = random_sp_graph(12, np.random.default_rng(2))
        cached = CachedEvaluator(make_evaluator(g, platform, n_random=2))
        m = np.zeros(12, dtype=np.int64)
        value = cached.construction_makespan(m)
        clone = pickle.loads(pickle.dumps(cached))
        assert clone.construction_makespan(m) == value
        assert clone.model.simulate(m) == value

    def test_getattr_does_not_recurse_without_inner(self):
        # simulate pickle's probing of a half-constructed instance: any
        # delegated lookup before _inner exists must fail cleanly (the
        # old unguarded __getattr__ recursed via self._inner forever)
        shell = CachedEvaluator.__new__(CachedEvaluator)
        with pytest.raises(AttributeError):
            shell.reported_makespan  # delegated; no _inner yet
        with pytest.raises(AttributeError):
            shell._inner
        with pytest.raises(AttributeError):
            shell.__wrapped_dunder__  # dunders must never delegate

    def test_missing_attribute_raises_attribute_error(self, platform):
        g = random_sp_graph(6, np.random.default_rng(4))
        cached = CachedEvaluator(make_evaluator(g, platform, n_random=2))
        with pytest.raises(AttributeError):
            cached.definitely_not_an_attribute
        assert not hasattr(cached, "nope")


def _same(a: float, b: float) -> bool:
    """Bit-identical comparison that treats INFEASIBLE/inf as equal."""
    if np.isinf(a) or np.isinf(b):
        return np.isinf(a) and np.isinf(b) and (a > 0) == (b > 0)
    return a == b
