"""Tests for serialization: JSON graphs/platforms/mappings, WfCommons, DOT."""

import json

import numpy as np
import pytest

from repro.graphs import TaskGraph, augment
from repro.graphs.generators import random_sp_graph
from repro.io import (
    FormatError,
    forest_to_dot,
    graph_from_dict,
    graph_to_dict,
    graph_to_dot,
    load_graph,
    load_platform,
    mapping_from_dict,
    mapping_to_dict,
    platform_from_dict,
    platform_to_dict,
    save_graph,
    save_platform,
    wfcommons_from_dict,
)
from repro.platform import dual_fpga_platform, paper_platform
from repro.sp import grow_decomposition_forest


class TestGraphJson:
    def test_roundtrip(self, rng):
        g = random_sp_graph(20, rng)
        back = graph_from_dict(graph_to_dict(g))
        assert back.tasks() == g.tasks()
        assert back.edges() == g.edges()
        for t in g.tasks():
            assert back.params(t).complexity == pytest.approx(
                g.params(t).complexity
            )
        for u, v in g.edges():
            assert back.data_mb(u, v) == pytest.approx(g.data_mb(u, v))

    def test_file_roundtrip(self, tmp_path, rng):
        g = random_sp_graph(10, rng)
        path = str(tmp_path / "g.json")
        save_graph(g, path)
        back = load_graph(path)
        assert back.edges() == g.edges()

    def test_wrong_format_rejected(self):
        with pytest.raises(FormatError):
            graph_from_dict({"format": "something-else", "version": 1})

    def test_future_version_rejected(self):
        with pytest.raises(FormatError):
            graph_from_dict({"format": "repro-taskgraph", "version": 99})

    def test_non_dict_rejected(self):
        with pytest.raises(FormatError):
            graph_from_dict([1, 2, 3])


class TestPlatformJson:
    @pytest.mark.parametrize("factory", [paper_platform, dual_fpga_platform])
    def test_roundtrip(self, factory):
        p = factory()
        back = platform_from_dict(platform_to_dict(p))
        assert back.n_devices == p.n_devices
        for a, b in zip(back.devices, p.devices):
            assert a == b
        assert np.allclose(back.latency_s, p.latency_s)
        finite = np.isfinite(p.bandwidth_gbps)
        assert np.allclose(
            back.bandwidth_gbps[finite], p.bandwidth_gbps[finite]
        )

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "p.json")
        save_platform(paper_platform(), path)
        back = load_platform(path)
        assert back.device("vega56").lanes == 64


class TestMappingJson:
    def test_roundtrip(self, rng):
        g = random_sp_graph(12, rng)
        p = paper_platform()
        mapping = rng.integers(0, 3, size=12)
        doc = mapping_to_dict(g, p, mapping, makespan=1.5, algorithm="X")
        back = mapping_from_dict(doc, g, p)
        assert np.array_equal(back, mapping)
        assert doc["algorithm"] == "X"

    def test_length_mismatch(self, rng):
        g = random_sp_graph(5, rng)
        with pytest.raises(FormatError):
            mapping_to_dict(g, paper_platform(), [0, 1])

    def test_missing_task(self, rng):
        g = random_sp_graph(5, rng)
        p = paper_platform()
        doc = mapping_to_dict(g, p, [0] * 5)
        del doc["assignment"][str(g.tasks()[0])]
        with pytest.raises(FormatError, match="misses task"):
            mapping_from_dict(doc, g, p)


class TestWfCommons:
    @pytest.fixture()
    def sample_doc(self):
        return {
            "name": "sample",
            "workflow": {
                "tasks": [
                    {
                        "name": "split",
                        "runtime": 2.0,
                        "children": ["work_1", "work_2"],
                        "files": [
                            {"link": "output", "name": "part1",
                             "sizeInBytes": 50_000_000},
                            {"link": "output", "name": "part2",
                             "sizeInBytes": 70_000_000},
                        ],
                    },
                    {
                        "name": "work_1",
                        "runtime": 10.0,
                        "children": ["merge"],
                        "files": [
                            {"link": "input", "name": "part1",
                             "sizeInBytes": 50_000_000},
                            {"link": "output", "name": "out1",
                             "sizeInBytes": 5_000_000},
                        ],
                    },
                    {
                        "name": "work_2",
                        "runtime": 12.0,
                        "children": ["merge"],
                        "files": [
                            {"link": "input", "name": "part2",
                             "sizeInBytes": 70_000_000},
                            {"link": "output", "name": "out2",
                             "sizeInBytes": 6_000_000},
                        ],
                    },
                    {
                        "name": "merge",
                        "runtime": 1.0,
                        "parents": ["work_1", "work_2"],
                        "files": [
                            {"link": "input", "name": "out1",
                             "sizeInBytes": 5_000_000},
                            {"link": "input", "name": "out2",
                             "sizeInBytes": 6_000_000},
                        ],
                    },
                ]
            },
        }

    def test_parse_structure(self, sample_doc):
        g = wfcommons_from_dict(sample_doc)
        assert g.n_tasks == 4
        assert g.n_edges == 4
        assert len(g.sources()) == 1 and len(g.sinks()) == 1

    def test_runtimes_become_complexity(self, sample_doc):
        g = wfcommons_from_dict(sample_doc)
        # work_2 has runtime 12.0
        complexities = sorted(g.params(t).complexity for t in g.tasks())
        assert complexities == pytest.approx([1.0, 2.0, 10.0, 12.0])

    def test_file_sizes_become_edge_data(self, sample_doc):
        g = wfcommons_from_dict(sample_doc)
        # split -> work_1 carries part1 = 50 MB
        assert g.data_mb(0, 1) == pytest.approx(50.0)
        assert g.data_mb(0, 2) == pytest.approx(70.0)
        assert g.data_mb(1, 3) == pytest.approx(5.0)

    def test_default_data_for_unmatched_files(self, sample_doc):
        for task in sample_doc["workflow"]["tasks"]:
            task.pop("files", None)
        g = wfcommons_from_dict(sample_doc, default_data_mb=42.0)
        assert g.data_mb(0, 1) == pytest.approx(42.0)

    def test_legacy_jobs_key(self, sample_doc):
        sample_doc["workflow"]["jobs"] = sample_doc["workflow"].pop("tasks")
        g = wfcommons_from_dict(sample_doc)
        assert g.n_tasks == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            wfcommons_from_dict({"workflow": {"tasks": []}})

    def test_rejects_duplicate_names(self, sample_doc):
        sample_doc["workflow"]["tasks"][1]["name"] = "split"
        with pytest.raises(ValueError, match="duplicate"):
            wfcommons_from_dict(sample_doc)

    def test_file_loading(self, tmp_path, sample_doc):
        from repro.io import load_wfcommons

        path = tmp_path / "wf.json"
        path.write_text(json.dumps(sample_doc))
        g = load_wfcommons(str(path))
        assert g.n_tasks == 4


class TestDot:
    def test_plain_graph(self, fig1_graph):
        text = graph_to_dot(fig1_graph)
        assert text.startswith("digraph")
        assert "t0 -> t1" in text
        assert text.rstrip().endswith("}")

    def test_with_mapping_colors(self, fig1_graph, rng):
        augment(fig1_graph, rng)
        p = paper_platform()
        mapping = [0, 1, 2, 0, 1, 2]
        text = graph_to_dot(fig1_graph, mapping=mapping, platform=p)
        assert "fillcolor" in text
        assert "vega56" in text

    def test_forest_clusters(self, fig2_graph):
        forest = grow_decomposition_forest(fig2_graph, cut_strategy="first")
        text = forest_to_dot(fig2_graph, forest)
        assert "cluster_0" in text
        assert "cluster_1" in text
        assert "core" in text
