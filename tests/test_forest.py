"""Tests for Algorithm 1 — the SP decomposition forest for general DAGs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import TaskGraph
from repro.graphs.generators import (
    random_almost_sp_graph,
    random_layered_graph,
    random_sp_graph,
)
from repro.sp import (
    CUT_STRATEGIES,
    VIRTUAL_SINK,
    VIRTUAL_SOURCE,
    NotSeriesParallelError,
    decomposition_tree_from_edges,
    grow_decomposition_forest,
)


def assert_forest_invariants(g: TaskGraph, forest) -> None:
    """The core correctness properties of Algorithm 1's output."""
    # 1. every original edge appears in exactly one tree
    covered = forest.real_edges()
    assert sorted(covered) == sorted(g.edges()), "edge partition violated"
    # 2. every tree is a genuine two-terminal SP subgraph: re-recognize its
    #    leaf edges between its terminals (sorting key handles the virtual
    #    sentinel nodes, which are not orderable against ints)
    for tree in forest.trees:
        edges = list(tree.leaf_edges())
        try:
            rebuilt = decomposition_tree_from_edges(
                edges, tree.source, tree.sink
            )
        except NotSeriesParallelError as exc:  # pragma: no cover
            raise AssertionError(f"forest tree is not SP: {exc}") from exc
        assert sorted(rebuilt.leaf_edges(), key=repr) == sorted(edges, key=repr)
    # 3. all real task nodes appear in the forest
    assert forest.task_nodes() == set(g.tasks())


class TestSPInputs:
    def test_sp_graph_yields_single_tree_no_cuts(self, fig1_graph):
        forest = grow_decomposition_forest(fig1_graph, cut_strategy="first")
        assert forest.n_cuts == 0
        assert forest.n_completion_edges == 0
        assert len(forest.trees) == 1
        assert forest.core.source is VIRTUAL_SOURCE
        assert forest.core.sink is VIRTUAL_SINK
        assert_forest_invariants(fig1_graph, forest)

    def test_chain(self, chain_graph):
        forest = grow_decomposition_forest(chain_graph, cut_strategy="first")
        assert forest.n_cuts == 0
        assert_forest_invariants(chain_graph, forest)

    def test_diamond(self, diamond_graph):
        forest = grow_decomposition_forest(diamond_graph, cut_strategy="first")
        assert forest.n_cuts == 0
        assert_forest_invariants(diamond_graph, forest)


class TestFig2:
    def test_exactly_one_cut(self, fig2_graph):
        forest = grow_decomposition_forest(fig2_graph, cut_strategy="first")
        assert forest.n_cuts == 1
        assert forest.n_completion_edges == 0
        assert len(forest.trees) == 2
        assert_forest_invariants(fig2_graph, forest)

    def test_cut_tree_matches_paper(self, fig2_graph):
        """With the 'first' strategy the [1,5] subtree is cut (paper Fig. 2)."""
        forest = grow_decomposition_forest(fig2_graph, cut_strategy="first")
        cut = forest.trees[1]
        assert (cut.source, cut.sink) == (1, 5)
        assert sorted(cut.leaf_edges()) == sorted(
            [(1, 2), (2, 3), (1, 3), (3, 5)]
        )

    def test_smallest_strategy_cuts_single_edge(self, fig2_graph):
        """Cutting 1-4 keeps the Fig. 1 tree whole — the 'better' cut."""
        forest = grow_decomposition_forest(fig2_graph, cut_strategy="smallest")
        cut = forest.trees[1]
        assert cut.n_edges == 1
        assert_forest_invariants(fig2_graph, forest)

    @pytest.mark.parametrize("strategy", CUT_STRATEGIES)
    def test_all_strategies_valid(self, fig2_graph, strategy):
        forest = grow_decomposition_forest(
            fig2_graph, rng=np.random.default_rng(0), cut_strategy=strategy
        )
        assert_forest_invariants(fig2_graph, forest)


class TestNormalization:
    def test_multi_source_sink_graph(self):
        g = TaskGraph.from_edges([(0, 2), (1, 2), (2, 3), (2, 4)])
        forest = grow_decomposition_forest(g, cut_strategy="first")
        assert_forest_invariants(g, forest)

    def test_single_node_graph(self):
        g = TaskGraph()
        g.add_task(0)
        forest = grow_decomposition_forest(g)
        assert forest.task_nodes() == {0}

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            grow_decomposition_forest(TaskGraph())

    def test_unknown_strategy_raises(self, fig1_graph):
        with pytest.raises(ValueError, match="cut strategy"):
            grow_decomposition_forest(fig1_graph, cut_strategy="bogus")


class TestDeterminism:
    def test_fixed_rng_reproducible(self, fig2_graph):
        a = grow_decomposition_forest(
            fig2_graph, rng=np.random.default_rng(3), cut_strategy="random"
        )
        b = grow_decomposition_forest(
            fig2_graph, rng=np.random.default_rng(3), cut_strategy="random"
        )
        assert [sorted(t.leaf_edges(), key=repr) for t in a.trees] == [
            sorted(t.leaf_edges(), key=repr) for t in b.trees
        ]

    def test_no_rng_defaults_to_first(self, fig2_graph):
        a = grow_decomposition_forest(fig2_graph, cut_strategy="random")
        b = grow_decomposition_forest(fig2_graph, cut_strategy="first")
        assert [sorted(t.leaf_edges(), key=repr) for t in a.trees] == [
            sorted(t.leaf_edges(), key=repr) for t in b.trees
        ]


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(2, 60), seed=st.integers(0, 2**31))
    def test_sp_graphs_never_cut(self, n, seed):
        g = random_sp_graph(n, np.random.default_rng(seed), augmented=False)
        forest = grow_decomposition_forest(
            g, rng=np.random.default_rng(seed + 1)
        )
        assert forest.n_cuts == 0
        assert forest.n_completion_edges == 0
        assert_forest_invariants(g, forest)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(5, 40),
        k=st.integers(1, 30),
        seed=st.integers(0, 2**31),
        strategy=st.sampled_from(CUT_STRATEGIES),
    )
    def test_almost_sp_partition(self, n, k, seed, strategy):
        g = random_almost_sp_graph(
            n, k, np.random.default_rng(seed), augmented=False
        )
        forest = grow_decomposition_forest(
            g, rng=np.random.default_rng(seed + 1), cut_strategy=strategy
        )
        assert_forest_invariants(g, forest)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_layered_partition(self, seed):
        rng = np.random.default_rng(seed)
        g = random_layered_graph(5, 5, rng, augmented=False)
        forest = grow_decomposition_forest(
            g, rng=np.random.default_rng(seed + 1)
        )
        assert_forest_invariants(g, forest)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_linear_cut_count(self, seed):
        """Cuts are bounded by the number of edges."""
        g = random_almost_sp_graph(
            30, 40, np.random.default_rng(seed), augmented=False
        )
        forest = grow_decomposition_forest(
            g, rng=np.random.default_rng(seed)
        )
        assert forest.n_cuts <= g.n_edges
