"""Deeper per-family shape tests for the workflow generators.

Each family's Table I behaviour is driven by its topology; these tests pin
the topological signatures the paper's commentary relies on (beyond the
basic checks in test_workflows.py).
"""

import numpy as np
import pytest

from repro.graphs.generators import make_workflow
from repro.graphs.generators.workflows import (
    make_1000genome,
    make_blast,
    make_cycles,
    make_montage,
    make_soykb,
    make_srasearch,
)
from repro.sp import sp_distance


class TestBlast:
    def test_split_map_merge(self, rng):
        g = make_blast(30, rng)
        sources = g.sources()
        assert len(sources) == 1
        split = sources[0]
        # the split fans out to all worker tasks
        workers = g.successors(split)
        assert len(workers) >= 25
        # all workers converge on one concat task
        concats = {s for w in workers for s in g.successors(w)}
        assert len(concats) == 1

    def test_is_series_parallel_shape(self, rng):
        """Split-map-merge is SP: no cuts expected."""
        g = make_blast(25, rng)
        assert sp_distance(g) == 0.0


class TestSrasearch:
    def test_two_stage_fan(self, rng):
        g = make_srasearch(30, rng)
        # dump -> align pairs: every source has exactly one successor
        for s in g.sources():
            assert g.out_degree(s) == 1
        assert len(g.sinks()) == 1


class TestCycles:
    def test_independent_chains_with_global_summaries(self, rng):
        g = make_cycles(40, rng)
        sinks = g.sinks()
        assert len(sinks) == 2  # plots + summary
        # chain structure: sim -> fert -> out
        for s in g.sources():
            (fert,) = g.successors(s)
            (out,) = g.successors(fert)
            assert set(g.successors(out)) == set(sinks)


class Test1000Genome:
    def test_population_consumers(self, rng):
        g = make_1000genome(60, rng)
        # merge tasks exist with large in-degree (the individuals fan)
        max_indeg = max(g.in_degree(t) for t in g.tasks())
        assert max_indeg >= 3
        # sinks are the per-population overlap/frequency consumers
        sinks = g.sinks()
        assert len(sinks) >= 4
        for t in sinks:
            assert g.in_degree(t) == 2  # merge + sifting


class TestSoykb:
    def test_per_sample_chains_into_funnel(self, rng):
        g = make_soykb(40, rng)
        # exactly one final chain select -> filter -> merge
        sinks = g.sinks()
        assert len(sinks) == 1
        depth = g.longest_path_length()
        assert depth >= 7  # align chain (4) + haplo + gvcf + funnel (3)


class TestMontageScaling:
    @pytest.mark.parametrize("size", [40, 120, 400])
    def test_tail_dominance_is_size_independent(self, size):
        g = make_montage(size, np.random.default_rng(1))
        order = g.topological_order()
        tail = order[-4:]
        tail_work = sum(g.params(t).complexity for t in tail)
        total = sum(g.params(t).complexity for t in g.tasks())
        assert tail_work / total > 0.2


class TestDeterminism:
    @pytest.mark.parametrize(
        "family",
        ["1000genome", "blast", "bwa", "cycles", "epigenomics",
         "montage", "seismology", "soykb", "srasearch"],
    )
    def test_same_seed_same_graph(self, family):
        a = make_workflow(family, 35, np.random.default_rng(11))
        b = make_workflow(family, 35, np.random.default_rng(11))
        assert a.edges() == b.edges()
        assert all(
            a.params(t).complexity == b.params(t).complexity
            for t in a.tasks()
        )
        assert all(a.data_mb(u, v) == b.data_mb(u, v) for u, v in a.edges())
