"""Tests for the HEFT and PEFT baselines."""

import numpy as np
import pytest

from repro.graphs import TaskGraph, augment
from repro.graphs.generators import random_sp_graph
from repro.mappers import HeftMapper, PeftMapper
from repro.mappers.heft import mean_comm, mean_exec, upward_ranks
from repro.mappers.peft import optimistic_cost_table
from repro.platform import cpu_only_platform, paper_platform
from tests.conftest import make_evaluator


class TestHeftInternals:
    def test_mean_exec_shape(self, small_evaluator):
        w = mean_exec(small_evaluator)
        assert w.shape == (6,)
        assert np.all(w > 0)

    def test_mean_comm_excludes_same_device(self, small_evaluator):
        c = mean_comm(small_evaluator)
        assert len(c) == small_evaluator.graph.n_edges
        assert all(v > 0 for v in c.values())

    def test_upward_ranks_decrease_along_edges(self, small_evaluator):
        rank = upward_ranks(small_evaluator)
        g = small_evaluator.graph
        idx = small_evaluator.model.index
        for u, v in g.edges():
            assert rank[idx[u]] > rank[idx[v]]


class TestHeftMapping:
    def test_valid_mapping(self, platform, rng):
        g = random_sp_graph(25, rng)
        ev = make_evaluator(g, platform)
        res = HeftMapper().map(ev, rng=rng)
        assert res.mapping.shape == (25,)
        assert ev.is_feasible(res.mapping)

    def test_single_device_platform_maps_everything_to_it(self, rng):
        g = random_sp_graph(10, rng)
        ev = make_evaluator(g, cpu_only_platform())
        res = HeftMapper().map(ev, rng=rng)
        assert np.all(res.mapping == 0)

    def test_respects_fpga_area(self, platform):
        # every task is hugely FPGA-attractive but the area fits only a few
        g = TaskGraph()
        for i in range(10):
            g.add_task(
                i,
                complexity=20.0,
                parallelizability=0.0,
                streamability=20.0,
                area=30.0,  # capacity 100 -> at most 3 fit
            )
        for i in range(9):
            g.add_edge(i, i + 1, data_mb=1.0)
        ev = make_evaluator(g, platform)
        res = HeftMapper().map(ev)
        on_fpga = int(np.sum(res.mapping == 2))
        assert on_fpga <= 3
        assert ev.is_feasible(res.mapping)

    def test_prefers_gpu_for_parallel_hot_task(self, platform):
        """One huge perfectly-parallel task with tiny I/O must go to the GPU."""
        g = TaskGraph()
        g.add_task(0, complexity=0.1)
        g.add_task(1, complexity=500.0, parallelizability=1.0, streamability=1.0)
        g.add_task(2, complexity=0.1)
        g.add_edge(0, 1, data_mb=100.0)
        g.add_edge(1, 2, data_mb=100.0)
        ev = make_evaluator(g, platform)
        res = HeftMapper().map(ev)
        assert res.mapping[1] == 1  # the GPU


class TestPeft:
    def test_oct_zero_for_sinks(self, small_evaluator):
        oct_table = optimistic_cost_table(small_evaluator)
        g = small_evaluator.graph
        idx = small_evaluator.model.index
        for t in g.sinks():
            assert np.all(oct_table[idx[t]] == 0.0)
        assert np.all(oct_table >= 0.0)

    def test_oct_nondecreasing_towards_source(self, small_evaluator):
        """rank_oct must grow along reversed edges (more graph left to run)."""
        oct_table = optimistic_cost_table(small_evaluator)
        rank = oct_table.mean(axis=1)
        g = small_evaluator.graph
        idx = small_evaluator.model.index
        for u, v in g.edges():
            assert rank[idx[u]] > rank[idx[v]] - 1e-12

    def test_valid_mapping(self, platform, rng):
        g = random_sp_graph(30, rng)
        ev = make_evaluator(g, platform)
        res = PeftMapper().map(ev, rng=rng)
        assert ev.is_feasible(res.mapping)
        assert res.stats["schedule_length"] > 0

    def test_respects_fpga_area(self, platform):
        g = TaskGraph()
        for i in range(10):
            g.add_task(
                i, complexity=20.0, parallelizability=0.0,
                streamability=20.0, area=30.0,
            )
        for i in range(9):
            g.add_edge(i, i + 1, data_mb=1.0)
        ev = make_evaluator(g, platform)
        res = PeftMapper().map(ev)
        assert int(np.sum(res.mapping == 2)) <= 3

    def test_deterministic(self, platform, rng):
        g = random_sp_graph(20, rng)
        ev = make_evaluator(g, platform)
        a = PeftMapper().map(ev).mapping
        b = PeftMapper().map(ev).mapping
        assert np.array_equal(a, b)


class TestComparative:
    def test_both_beat_nothing_rarely_but_run_fast(self, platform):
        """On average over seeds, HEFT/PEFT find some improvement."""
        imps_h, imps_p = [], []
        for seed in range(5):
            g = random_sp_graph(30, np.random.default_rng(seed))
            ev = make_evaluator(g, platform, seed=seed, n_random=10)
            imps_h.append(
                ev.relative_improvement(HeftMapper().map(ev).mapping)
            )
            imps_p.append(
                ev.relative_improvement(PeftMapper().map(ev).mapping)
            )
        assert np.mean(imps_h) > 0.0
        assert np.mean(imps_p) > 0.0
