"""Unit tests for the insertion-based device timelines shared by the list
schedulers (HEFT/PEFT/CPOP/lookahead/min-min)."""

import numpy as np
import pytest

from repro.graphs import TaskGraph
from repro.mappers.heft import DeviceTimelines
from repro.platform import paper_platform
from tests.conftest import make_evaluator


@pytest.fixture()
def timelines(platform):
    g = TaskGraph()
    for i in range(4):
        g.add_task(i, complexity=1.0, area=10.0)
    ev = make_evaluator(g, platform)
    return DeviceTimelines(ev)


class TestEarliestGap:
    def test_empty_timeline(self, timelines):
        start, slot = timelines.earliest_start(1, ready=5.0, duration=2.0)
        assert start == 5.0

    def test_appends_after_busy(self, timelines):
        timelines.commit(0, 1, 0, 0.0, 4.0)
        start, slot = timelines.earliest_start(1, ready=0.0, duration=2.0)
        assert start == 4.0

    def test_inserts_into_gap(self, timelines):
        # busy [0,2] and [6,8]: a 2-long task fits at 2
        timelines.commit(0, 1, 0, 0.0, 2.0)
        timelines.commit(1, 1, 0, 6.0, 8.0)
        start, _ = timelines.earliest_start(1, ready=0.0, duration=2.0)
        assert start == 2.0

    def test_gap_too_small_skipped(self, timelines):
        timelines.commit(0, 1, 0, 0.0, 2.0)
        timelines.commit(1, 1, 0, 3.0, 8.0)
        start, _ = timelines.earliest_start(1, ready=0.0, duration=2.0)
        assert start == 8.0

    def test_ready_inside_gap(self, timelines):
        timelines.commit(0, 1, 0, 0.0, 2.0)
        timelines.commit(1, 1, 0, 10.0, 12.0)
        start, _ = timelines.earliest_start(1, ready=5.0, duration=2.0)
        assert start == 5.0

    def test_multiple_slots_pick_earliest(self, timelines):
        # CPU (device 0) has 4 slots: committing to slot 0 leaves others free
        timelines.commit(0, 0, 0, 0.0, 9.0)
        start, slot = timelines.earliest_start(0, ready=0.0, duration=1.0)
        assert start == 0.0
        assert slot != 0

    def test_non_serializing_device_ignores_load(self, timelines):
        # FPGA (device 2): always starts at ready
        timelines.commit(0, 2, -1, 0.0, 100.0)
        start, slot = timelines.earliest_start(2, ready=3.0, duration=5.0)
        assert start == 3.0
        assert slot == -1


class TestArea:
    def test_area_tracking(self, timelines):
        assert timelines.area_allows(0, 2)
        for i in range(4):  # 4 x 10 area against capacity 100
            timelines.commit(i, 2, -1, 0.0, 1.0)
        assert timelines.area_allows(0, 2)  # 60 left

    def test_area_exhaustion(self, platform):
        g = TaskGraph()
        for i in range(3):
            g.add_task(i, complexity=1.0, area=45.0)
        ev = make_evaluator(g, platform)
        tl = DeviceTimelines(ev)
        tl.commit(0, 2, -1, 0.0, 1.0)
        tl.commit(1, 2, -1, 0.0, 1.0)
        assert not tl.area_allows(2, 2)  # 90 used, 45 does not fit

    def test_non_area_device_always_allows(self, timelines):
        assert timelines.area_allows(0, 0)
        assert timelines.area_allows(0, 1)


class TestClone:
    def test_clone_is_independent(self, timelines):
        clone = timelines.clone()
        clone.commit(0, 1, 0, 0.0, 5.0)
        start, _ = timelines.earliest_start(1, ready=0.0, duration=1.0)
        assert start == 0.0  # original untouched
        start_c, _ = clone.earliest_start(1, ready=0.0, duration=1.0)
        assert start_c == 5.0

    def test_clone_shares_tables(self, timelines):
        clone = timelines.clone()
        assert clone.exec_table is timelines.exec_table

    def test_clone_area_independent(self, timelines):
        clone = timelines.clone()
        clone.commit(0, 2, -1, 0.0, 1.0)
        # original area budget unchanged
        assert timelines._area_left[2] == 100.0
        assert clone._area_left[2] == 90.0
