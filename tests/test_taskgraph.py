"""Unit tests for the TaskGraph substrate."""

import networkx as nx
import pytest

from repro.graphs import DEFAULT_DATA_MB, GraphError, TaskGraph


class TestConstruction:
    def test_add_task_and_params(self):
        g = TaskGraph()
        g.add_task(7, complexity=3.0, parallelizability=0.5, streamability=2.0, area=4.0)
        p = g.params(7)
        assert (p.complexity, p.parallelizability, p.streamability, p.area) == (
            3.0,
            0.5,
            2.0,
            4.0,
        )

    def test_re_add_task_updates_params(self):
        g = TaskGraph()
        g.add_task(1, complexity=1.0)
        g.add_task(1, complexity=9.0)
        assert g.params(1).complexity == 9.0
        assert g.n_tasks == 1

    def test_add_edge_creates_endpoints(self):
        g = TaskGraph()
        g.add_edge(0, 1)
        assert g.has_task(0) and g.has_task(1)
        assert g.data_mb(0, 1) == DEFAULT_DATA_MB

    def test_add_edge_rejects_self_loop(self):
        g = TaskGraph()
        with pytest.raises(GraphError):
            g.add_edge(3, 3)

    def test_duplicate_edge_overwrites_data(self):
        g = TaskGraph()
        g.add_edge(0, 1, data_mb=10)
        g.add_edge(0, 1, data_mb=20)
        assert g.n_edges == 1
        assert g.data_mb(0, 1) == 20

    def test_remove_edge_and_task(self):
        g = TaskGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        g.remove_edge(0, 2)
        assert not g.has_edge(0, 2)
        g.remove_task(1)
        assert g.n_tasks == 2 and g.n_edges == 0

    def test_remove_missing_raises(self):
        g = TaskGraph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            g.remove_edge(1, 0)
        with pytest.raises(GraphError):
            g.remove_task(99)

    def test_set_data_mb(self):
        g = TaskGraph.from_edges([(0, 1)])
        g.set_data_mb(0, 1, 5.0)
        assert g.data_mb(0, 1) == 5.0
        with pytest.raises(GraphError):
            g.set_data_mb(1, 0, 5.0)


class TestInspection:
    def test_degrees_and_neighbors(self, fig1_graph):
        assert fig1_graph.out_degree(0) == 2
        assert fig1_graph.in_degree(3) == 2
        assert set(fig1_graph.successors(1)) == {3, 2}
        assert set(fig1_graph.predecessors(5)) == {3, 4}

    def test_sources_and_sinks(self, fig1_graph):
        assert fig1_graph.sources() == [0]
        assert fig1_graph.sinks() == [5]

    def test_input_mb_source_default(self, fig1_graph):
        assert fig1_graph.input_mb(0) == DEFAULT_DATA_MB
        assert fig1_graph.input_mb(3) == 2 * DEFAULT_DATA_MB

    def test_container_protocol(self, fig1_graph):
        assert 0 in fig1_graph
        assert 99 not in fig1_graph
        assert len(fig1_graph) == 6
        assert list(iter(fig1_graph)) == fig1_graph.tasks()

    def test_repr(self, fig1_graph):
        assert "n_tasks=6" in repr(fig1_graph)


class TestOrders:
    def test_topological_order_valid(self, fig2_graph):
        order = fig2_graph.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for u, v in fig2_graph.edges():
            assert pos[u] < pos[v]

    def test_topological_order_detects_cycle(self):
        g = TaskGraph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 0)
        with pytest.raises(GraphError):
            g.topological_order()
        assert not g.is_dag()

    def test_bfs_levels_longest_path_semantics(self, fig1_graph):
        levels = fig1_graph.bfs_levels()
        level_of = {t: i for i, lvl in enumerate(levels) for t in lvl}
        # node 4's only pred is 0, but 5 must sit after 3 (longest path)
        assert level_of[0] == 0
        assert level_of[5] == max(level_of.values())
        assert level_of[3] > level_of[2]

    def test_bfs_order_is_topological(self, fig2_graph):
        order = fig2_graph.bfs_order()
        pos = {t: i for i, t in enumerate(order)}
        for u, v in fig2_graph.edges():
            assert pos[u] < pos[v]

    def test_longest_path_length(self, fig1_graph, chain_graph):
        assert chain_graph.longest_path_length() == 4
        assert fig1_graph.longest_path_length() == 4  # 0-1-2-3-5

    def test_descendants(self, fig1_graph):
        assert fig1_graph.descendants(1) == {2, 3, 5}
        assert fig1_graph.descendants(5) == set()


class TestTransformation:
    def test_copy_independent(self, fig1_graph):
        c = fig1_graph.copy()
        c.add_edge(0, 5)
        assert not fig1_graph.has_edge(0, 5)
        assert c.n_edges == fig1_graph.n_edges + 1

    def test_subgraph(self, fig1_graph):
        sub = fig1_graph.subgraph([1, 2, 3])
        assert sorted(sub.tasks()) == [1, 2, 3]
        assert set(sub.edges()) == {(1, 3), (1, 2), (2, 3)}

    def test_normalized_no_change_for_single_terminals(self, fig1_graph):
        g, src, snk = fig1_graph.normalized()
        assert (src, snk) == (0, 5)
        assert g.n_tasks == fig1_graph.n_tasks

    def test_normalized_adds_virtual_nodes(self):
        g = TaskGraph.from_edges([(0, 2), (1, 2), (2, 3), (2, 4)])
        norm, src, snk = g.normalized()
        assert norm.sources() == [src]
        assert norm.sinks() == [snk]
        assert norm.n_tasks == 7  # 5 original + virtual source + virtual sink
        assert norm.params(src).complexity == 0.0
        assert norm.data_mb(src, 0) == 0.0

    def test_transitive_reduction(self):
        g = TaskGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        red = g.transitive_reduction()
        assert not red.has_edge(0, 2)
        assert red.has_edge(0, 1) and red.has_edge(1, 2)
        assert red.n_tasks == 3

    def test_relabeled_topological_ids(self):
        g = TaskGraph.from_edges([(10, 5), (5, 7), (10, 7)])
        r, remap = g.relabeled()
        assert sorted(r.tasks()) == [0, 1, 2]
        assert remap[10] == 0
        pos = {t: i for i, t in enumerate(r.topological_order())}
        for u, v in r.edges():
            assert pos[u] < pos[v]


class TestValidation:
    def test_validate_ok(self, fig1_graph):
        fig1_graph.validate()

    def test_validate_empty(self):
        with pytest.raises(GraphError):
            TaskGraph().validate()

    def test_validate_bad_parallelizability(self):
        g = TaskGraph()
        g.add_task(0, parallelizability=1.5)
        with pytest.raises(GraphError):
            g.validate()

    def test_validate_bad_streamability(self):
        g = TaskGraph()
        g.add_task(0, streamability=0.0)
        with pytest.raises(GraphError):
            g.validate()


class TestInterop:
    def test_networkx_roundtrip(self, fig1_graph):
        fig1_graph.add_task(0, complexity=2.5, parallelizability=0.3)
        nxg = fig1_graph.to_networkx()
        assert isinstance(nxg, nx.DiGraph)
        back = TaskGraph.from_networkx(nxg)
        assert sorted(back.tasks()) == sorted(fig1_graph.tasks())
        assert set(back.edges()) == set(fig1_graph.edges())
        assert back.params(0).complexity == 2.5

    def test_from_edges_uniform_data(self):
        g = TaskGraph.from_edges([(0, 1), (1, 2)], data_mb=7.0)
        assert g.data_mb(0, 1) == 7.0
        assert g.data_mb(1, 2) == 7.0
