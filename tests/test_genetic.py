"""Tests for the single-objective NSGA-II mapper."""

import numpy as np
import pytest

from repro.graphs import TaskGraph
from repro.graphs.generators import random_sp_graph
from repro.mappers import NsgaIIMapper
from repro.platform import paper_platform
from tests.conftest import make_evaluator


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NsgaIIMapper(generations=0)
        with pytest.raises(ValueError):
            NsgaIIMapper(population_size=1)


class TestGuarantees:
    def test_never_worse_than_cpu_with_seeding(self, platform, rng):
        """The seeded all-CPU individual plus elitism bound the result."""
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform, n_random=5)
        res = NsgaIIMapper(generations=5).map(ev, rng=rng)
        assert res.makespan <= ev.cpu_construction_makespan * (1 + 1e-9)

    def test_repair_keeps_area_feasible(self, platform, rng):
        g = TaskGraph()
        for i in range(12):
            g.add_task(i, complexity=5.0, streamability=10.0, area=20.0)
        for i in range(11):
            g.add_edge(i, i + 1)
        ev = make_evaluator(g, platform)  # capacity 100 -> max 5 on FPGA
        res = NsgaIIMapper(generations=10).map(ev, rng=rng)
        assert ev.is_feasible(res.mapping)

    def test_deterministic_for_seed(self, platform):
        g = random_sp_graph(12, np.random.default_rng(0))
        ev = make_evaluator(g, platform, n_random=5)
        m = NsgaIIMapper(generations=8)
        a = m.map(ev, rng=np.random.default_rng(42)).mapping
        b = m.map(ev, rng=np.random.default_rng(42)).mapping
        assert np.array_equal(a, b)


class TestBehaviour:
    def test_more_generations_never_hurt(self, platform):
        """Elitism makes best-so-far monotone in the generation budget."""
        g = random_sp_graph(15, np.random.default_rng(1))
        ev = make_evaluator(g, platform, n_random=5)
        short = NsgaIIMapper(generations=3).map(
            ev, rng=np.random.default_rng(7)
        )
        long = NsgaIIMapper(generations=30).map(
            ev, rng=np.random.default_rng(7)
        )
        assert long.makespan <= short.makespan * (1 + 1e-9)

    def test_finds_improvement(self, platform):
        g = random_sp_graph(20, np.random.default_rng(2))
        ev = make_evaluator(g, platform, n_random=10)
        res = NsgaIIMapper(generations=40).map(ev, rng=np.random.default_rng(3))
        assert ev.relative_improvement(res.mapping) > 0.02

    def test_stats(self, platform, rng):
        g = random_sp_graph(10, rng)
        ev = make_evaluator(g, platform, n_random=5)
        res = NsgaIIMapper(generations=4).map(ev, rng=rng)
        assert res.stats["generations"] == 4.0
        assert res.stats["best_makespan"] == pytest.approx(res.makespan)

    def test_mutation_rate_override(self, platform, rng):
        g = random_sp_graph(10, rng)
        ev = make_evaluator(g, platform, n_random=5)
        res = NsgaIIMapper(generations=3, mutation_rate=0.5).map(ev, rng=rng)
        assert ev.is_feasible(res.mapping)
