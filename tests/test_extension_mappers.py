"""Tests for the extension mappers: Lookahead HEFT and simulated annealing."""

import numpy as np
import pytest

from repro.graphs import TaskGraph
from repro.graphs.generators import random_sp_graph
from repro.mappers import (
    HeftMapper,
    LookaheadHeftMapper,
    SimulatedAnnealingMapper,
)
from repro.platform import paper_platform
from tests.conftest import make_evaluator


class TestLookaheadHeft:
    def test_valid_mapping(self, platform, rng):
        g = random_sp_graph(20, rng)
        ev = make_evaluator(g, platform)
        res = LookaheadHeftMapper().map(ev, rng=rng)
        assert ev.is_feasible(res.mapping)
        assert res.stats["schedule_length"] > 0

    def test_deterministic(self, platform, rng):
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform)
        a = LookaheadHeftMapper().map(ev).mapping
        b = LookaheadHeftMapper().map(ev).mapping
        assert np.array_equal(a, b)

    def test_respects_area(self, platform):
        g = TaskGraph()
        for i in range(8):
            g.add_task(i, complexity=20.0, parallelizability=0.0,
                       streamability=20.0, area=40.0)
        for i in range(7):
            g.add_edge(i, i + 1, data_mb=1.0)
        ev = make_evaluator(g, platform)  # capacity 100 -> at most 2 fit
        res = LookaheadHeftMapper().map(ev)
        assert int(np.sum(res.mapping == 2)) <= 2

    def test_not_systematically_worse_than_heft(self, platform):
        la, plain = [], []
        for seed in range(5):
            g = random_sp_graph(25, np.random.default_rng(seed + 20))
            ev = make_evaluator(g, platform, seed=seed, n_random=10)
            la.append(
                ev.relative_improvement(LookaheadHeftMapper().map(ev).mapping)
            )
            plain.append(
                ev.relative_improvement(HeftMapper().map(ev).mapping)
            )
        assert np.mean(la) >= np.mean(plain) - 0.05


class TestAnnealing:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingMapper(iterations=0)
        with pytest.raises(ValueError):
            SimulatedAnnealingMapper(cooling=1.5)

    def test_never_worse_than_cpu(self, platform, rng):
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform, n_random=5)
        res = SimulatedAnnealingMapper(iterations=300).map(ev, rng=rng)
        assert res.makespan <= ev.cpu_construction_makespan * (1 + 1e-9)
        assert ev.is_feasible(res.mapping)

    def test_deterministic_for_seed(self, platform):
        g = random_sp_graph(12, np.random.default_rng(0))
        ev = make_evaluator(g, platform, n_random=5)
        m = SimulatedAnnealingMapper(iterations=200)
        a = m.map(ev, rng=np.random.default_rng(5)).mapping
        b = m.map(ev, rng=np.random.default_rng(5)).mapping
        assert np.array_equal(a, b)

    def test_finds_improvement(self, platform):
        g = random_sp_graph(20, np.random.default_rng(9))
        ev = make_evaluator(g, platform, n_random=10)
        res = SimulatedAnnealingMapper(iterations=1500).map(
            ev, rng=np.random.default_rng(1)
        )
        assert ev.relative_improvement(res.mapping) > 0.02

    def test_subgraph_moves_toggle(self, platform, rng):
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform, n_random=5)
        with_sub = SimulatedAnnealingMapper(
            iterations=200, use_subgraph_moves=True
        ).map(ev, rng=np.random.default_rng(2))
        without = SimulatedAnnealingMapper(
            iterations=200, use_subgraph_moves=False
        ).map(ev, rng=np.random.default_rng(2))
        assert ev.is_feasible(with_sub.mapping)
        assert ev.is_feasible(without.mapping)

    def test_stats(self, platform, rng):
        g = random_sp_graph(10, rng)
        ev = make_evaluator(g, platform, n_random=5)
        res = SimulatedAnnealingMapper(iterations=100).map(ev, rng=rng)
        assert res.stats["iterations"] == 100.0
        assert 0 <= res.stats["accepted"] <= 100
