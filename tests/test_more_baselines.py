"""Tests for the CPOP, Min-min/Max-min and tabu-search baselines."""

import numpy as np
import pytest

from repro.graphs import TaskGraph
from repro.graphs.generators import random_sp_graph
from repro.mappers import (
    CpopMapper,
    MaxMinMapper,
    MinMinMapper,
    TabuSearchMapper,
)
from repro.mappers.cpop import downward_ranks
from repro.mappers.heft import upward_ranks
from repro.platform import cpu_only_platform, paper_platform
from tests.conftest import make_evaluator


class TestCpop:
    def test_valid_mapping(self, platform, rng):
        g = random_sp_graph(25, rng)
        ev = make_evaluator(g, platform)
        res = CpopMapper().map(ev, rng=rng)
        assert ev.is_feasible(res.mapping)
        assert res.stats["cp_tasks"] >= 2  # at least entry and exit

    def test_downward_ranks_zero_at_sources(self, small_evaluator):
        rank_d = downward_ranks(small_evaluator)
        g = small_evaluator.graph
        idx = small_evaluator.model.index
        for t in g.sources():
            assert rank_d[idx[t]] == 0.0

    def test_rank_sum_constant_on_critical_path(self, small_evaluator):
        """rank_u + rank_d is maximal and equal along the critical path."""
        ru = upward_ranks(small_evaluator)
        rd = downward_ranks(small_evaluator)
        total = ru + rd
        cp = total.max()
        # at least two tasks (entry, exit of the path) achieve the max
        assert np.sum(np.isclose(total, cp, rtol=1e-9)) >= 2

    def test_critical_path_tasks_share_processor(self, platform):
        g = TaskGraph.from_edges([(0, 1), (1, 2), (2, 3)])  # a pure chain
        from repro.graphs import augment

        augment(g, np.random.default_rng(0))
        ev = make_evaluator(g, platform)
        res = CpopMapper().map(ev)
        # a chain is entirely critical: all tasks on the CP processor
        assert len(set(res.mapping.tolist())) == 1
        assert res.stats["cp_tasks"] == 4

    def test_single_device(self, rng):
        g = random_sp_graph(10, rng)
        ev = make_evaluator(g, cpu_only_platform())
        res = CpopMapper().map(ev)
        assert np.all(res.mapping == 0)


class TestMinMaxMin:
    @pytest.mark.parametrize("factory", [MinMinMapper, MaxMinMapper])
    def test_valid_mapping(self, platform, rng, factory):
        g = random_sp_graph(25, rng)
        ev = make_evaluator(g, platform)
        res = factory().map(ev, rng=rng)
        assert ev.is_feasible(res.mapping)
        assert res.stats["waves"] == 25  # one commit per wave

    @pytest.mark.parametrize("factory", [MinMinMapper, MaxMinMapper])
    def test_deterministic(self, platform, rng, factory):
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform)
        a = factory().map(ev).mapping
        b = factory().map(ev).mapping
        assert np.array_equal(a, b)

    def test_policies_differ_on_wide_graphs(self, platform):
        """Min-min and max-min pick opposite orders: results usually differ."""
        differs = 0
        for seed in range(5):
            g = random_sp_graph(30, np.random.default_rng(seed + 40))
            ev = make_evaluator(g, platform, seed=seed)
            a = MinMinMapper().map(ev).mapping
            b = MaxMinMapper().map(ev).mapping
            differs += not np.array_equal(a, b)
        assert differs >= 1

    def test_respects_area(self, platform):
        g = TaskGraph()
        for i in range(8):
            g.add_task(i, complexity=20.0, parallelizability=0.0,
                       streamability=20.0, area=40.0)
        ev = make_evaluator(g, platform)  # capacity 100 -> at most 2 fit
        for factory in (MinMinMapper, MaxMinMapper):
            res = factory().map(ev)
            assert int(np.sum(res.mapping == 2)) <= 2


class TestTabu:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            TabuSearchMapper(iterations=0)
        with pytest.raises(ValueError):
            TabuSearchMapper(neighborhood=0)

    def test_never_worse_than_cpu(self, platform, rng):
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform, n_random=5)
        res = TabuSearchMapper(iterations=50).map(ev, rng=rng)
        assert res.makespan <= ev.cpu_construction_makespan * (1 + 1e-9)
        assert ev.is_feasible(res.mapping)

    def test_deterministic_for_seed(self, platform):
        g = random_sp_graph(12, np.random.default_rng(0))
        ev = make_evaluator(g, platform, n_random=5)
        mapper = TabuSearchMapper(iterations=60)
        a = mapper.map(ev, rng=np.random.default_rng(3)).mapping
        b = mapper.map(ev, rng=np.random.default_rng(3)).mapping
        assert np.array_equal(a, b)

    def test_finds_improvement(self, platform):
        g = random_sp_graph(20, np.random.default_rng(9))
        ev = make_evaluator(g, platform, n_random=5)
        res = TabuSearchMapper(iterations=200).map(
            ev, rng=np.random.default_rng(1)
        )
        assert ev.relative_improvement(res.mapping) > 0.02

    def test_zero_tenure_allowed(self, platform, rng):
        g = random_sp_graph(10, rng)
        ev = make_evaluator(g, platform, n_random=3)
        res = TabuSearchMapper(iterations=30, tenure=0).map(ev, rng=rng)
        assert ev.is_feasible(res.mapping)

    def test_single_node_moves_only(self, platform, rng):
        g = random_sp_graph(12, rng)
        ev = make_evaluator(g, platform, n_random=3)
        res = TabuSearchMapper(
            iterations=50, use_subgraph_moves=False
        ).map(ev, rng=rng)
        assert ev.is_feasible(res.mapping)
