"""Online re-mapping policies and the dead-fallback bugfix.

Covers the replan policy layer (:mod:`repro.runtime.replan`): mapper-based
re-mapping on the surviving platform, area-aware splicing, determinism,
the ``n_fallback_dead`` accounting when a failure's designated fallback is
itself dead, the replan policy sweep driver, and the hardened
``repro simulate`` CLI (clear non-zero exits instead of tracebacks).
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.evaluation import CostModel, MappingEvaluator
from repro.graphs.generators import (
    augment_workflow,
    make_workflow,
    random_sp_graph,
)
from repro.io import graph_to_dict, mapping_to_dict
from repro.mappers import HeftMapper
from repro.platform import paper_platform
from repro.runtime import (
    REPLAN_POLICY_NAMES,
    DeviceFailure,
    FallbackDead,
    LognormalNoise,
    MapperReplanPolicy,
    TaskRemapped,
    make_replan_policy,
    replicate,
    simulate_mapping,
)


@pytest.fixture(scope="module")
def montage():
    """The montage robustness example: HEFT mapping, GPU fails early."""
    platform = paper_platform()
    graph = make_workflow("montage", 60, np.random.default_rng(3))
    augment_workflow(graph, np.random.default_rng(4))
    ev = MappingEvaluator(graph, platform, n_random_schedules=10)
    mapping = list(HeftMapper().map(ev).mapping)
    analytic = ev.model.simulate(mapping)
    return platform, graph, mapping, analytic


class TestPolicyResolution:
    def test_names_registry(self):
        assert "fallback" in REPLAN_POLICY_NAMES
        assert {"decomposition", "heft", "minmin"} <= set(REPLAN_POLICY_NAMES)

    def test_fallback_resolves_to_none(self):
        assert make_replan_policy(None) is None
        assert make_replan_policy("fallback") is None

    def test_policy_instances_pass_through(self):
        policy = make_replan_policy("heft")
        assert isinstance(policy, MapperReplanPolicy)
        assert make_replan_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown replan policy"):
            make_replan_policy("magic")


class TestMapperReplan:
    def test_decomposition_beats_fixed_fallback_on_montage(self, montage):
        """The tentpole acceptance: re-running the decomposition mapper on
        the surviving platform degrades less than dumping the stranded GPU
        queue onto the fixed fallback."""
        platform, graph, mapping, analytic = montage
        scenarios = [DeviceFailure(0.1 * analytic, device=1)]
        fixed = simulate_mapping(
            graph, platform, mapping, scenarios=scenarios
        )
        replanned = simulate_mapping(
            graph, platform, mapping, scenarios=scenarios,
            replan_policy="decomposition",
        )
        assert replanned.makespan < fixed.makespan
        assert (replanned.makespan / analytic) < (fixed.makespan / analytic)

    def test_policy_moves_more_than_stranded_tasks(self, montage):
        """Splicing may rebalance *any* not-yet-started task, not only
        those stranded on the failed device."""
        platform, graph, mapping, analytic = montage
        scenarios = [DeviceFailure(0.1 * analytic, device=1)]
        fixed = simulate_mapping(graph, platform, mapping, scenarios=scenarios)
        replanned = simulate_mapping(
            graph, platform, mapping, scenarios=scenarios,
            replan_policy="decomposition",
        )
        n_fixed = sum(j.n_remapped for j in fixed.jobs)
        n_replanned = sum(j.n_remapped for j in replanned.jobs)
        assert n_replanned > n_fixed

    def test_nothing_runs_on_failed_device_after_failure(self, montage):
        platform, graph, mapping, analytic = montage
        t_fail = 0.1 * analytic
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceFailure(t_fail, device=1)],
            replan_policy="heft",
        )
        for t in trace.tasks:
            if t.device == 1:
                assert t.start <= t_fail
        assert len(trace.tasks) == graph.n_tasks

    def test_replan_trace_is_seed_deterministic(self, montage):
        platform, graph, mapping, analytic = montage
        kw = dict(
            noise=LognormalNoise(0.2),
            scenarios=[DeviceFailure(0.1 * analytic, device=1)],
            replan_policy="decomposition",
        )
        a = simulate_mapping(graph, platform, mapping, rng=11, **kw)
        b = simulate_mapping(graph, platform, mapping, rng=11, **kw)
        assert a.makespan == b.makespan
        assert [e.kind for e in a.events] == [e.kind for e in b.events]

    @pytest.mark.parametrize("policy", ["decomposition", "heft", "minmin"])
    def test_all_policies_complete_the_job(self, policy, montage):
        platform, graph, mapping, analytic = montage
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceFailure(0.25 * analytic, device=1)],
            replan_policy=policy,
        )
        assert trace.jobs[0].completion < float("inf")
        assert len(trace.tasks) == graph.n_tasks

    def test_splice_respects_area_budget(self):
        """A proposal that would overflow the FPGA degrades per task to
        the next surviving feasible device instead of aborting."""
        platform = paper_platform()
        graph = random_sp_graph(30, np.random.default_rng(9))
        capacity = platform.area_capacities()[2]
        for t in graph.tasks():
            graph.params(t).area = capacity / 3  # FPGA fits at most 3
        mapping = [1] * graph.n_tasks
        model = CostModel(graph, platform)
        t_fail = 0.3 * model.simulate(mapping)
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceFailure(t_fail, device=1)],
            replan_policy="decomposition",
        )
        final = [0] * graph.n_tasks
        for t in trace.tasks:
            final[t.index] = t.device
        assert model.is_feasible(final)
        assert sum(1 for d in final if d == 2) <= 3

    def test_single_survivor_falls_back(self):
        """With only the host left there is nothing to optimize; the
        legacy rescue path takes over and the job still completes."""
        platform = paper_platform()
        graph = random_sp_graph(15, np.random.default_rng(2))
        mapping = [1] * graph.n_tasks
        model = CostModel(graph, platform)
        base = model.simulate(mapping)
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[
                DeviceFailure(0.0, device=2),
                DeviceFailure(0.2 * base, device=1),
            ],
            replan_policy="decomposition",
        )
        assert len(trace.tasks) == graph.n_tasks
        assert all(t.device == 0 or t.start <= 0.2 * base
                   for t in trace.tasks)

    def test_replicate_passes_policy_through(self, montage):
        platform, graph, mapping, analytic = montage
        kw = dict(
            n=3, noise=LognormalNoise(0.2),
            scenarios=[DeviceFailure(0.1 * analytic, device=1)], seed=4,
        )
        fixed = replicate(graph, platform, mapping, **kw)
        replanned = replicate(
            graph, platform, mapping, replan_policy="decomposition", **kw
        )
        assert [t.makespan for t in fixed] != [t.makespan for t in replanned]


class TestDeadFallback:
    def _run(self, replan_policy=None):
        platform = paper_platform()
        graph = random_sp_graph(25, np.random.default_rng(6))
        mapping = [1] * graph.n_tasks
        model = CostModel(graph, platform)
        base = model.simulate(mapping)
        # the designated fallback (FPGA) dies before the GPU failure
        # that names it
        return model, simulate_mapping(
            graph, platform, mapping,
            scenarios=[
                DeviceFailure(0.1 * base, device=2),
                DeviceFailure(0.3 * base, device=1, fallback=2),
            ],
            replan_policy=replan_policy,
        )

    def test_counter_and_event_recorded(self):
        model, trace = self._run()
        assert trace.n_fallback_dead == 1
        dead = [e for e in trace.events if isinstance(e, FallbackDead)]
        assert len(dead) == 1
        assert dead[0].fallback == 2 and dead[0].failed == 1

    def test_stranded_work_rescued_area_aware(self):
        """Tasks still land on a surviving feasible device (the host),
        never on the dead fallback."""
        model, trace = self._run()
        remaps = [e for e in trace.events if isinstance(e, TaskRemapped)
                  if e.from_device == 1]
        assert remaps and all(e.to_device == 0 for e in remaps)
        final = [0] * model.n
        for t in trace.tasks:
            final[t.index] = t.device
        assert model.is_feasible(final)

    def test_alive_fallback_does_not_count(self):
        platform = paper_platform()
        graph = random_sp_graph(15, np.random.default_rng(8))
        mapping = [1] * graph.n_tasks
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceFailure(0.0, device=1, fallback=2)],
        )
        assert trace.n_fallback_dead == 0
        assert not any(isinstance(e, FallbackDead) for e in trace.events)


class TestReplanDriver:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.config import get_scale
        from repro.experiments.robustness import run_replan

        tiny = dataclasses.replace(
            get_scale("smoke"),
            robustness_replications=3,
            robustness_n_tasks=15,
            robustness_graphs=1,
            nsga_generations=4,
            n_random_schedules=3,
            replan_policies=["fallback", "decomposition"],
        )
        return run_replan(scale=tiny, seed=5)

    def test_sweep_shape(self, result):
        assert result.policies() == ["fallback", "decomposition"]
        assert set(result.algorithms()) == {
            "HEFT", "PEFT", "NSGAII", "SNFirstFit", "SPFirstFit"
        }
        for p in result.points:
            assert p.analytic_s > 0 and p.mean_s > 0
            assert p.degradation >= -1.0
            assert p.mean_remapped >= 0.0

    def test_format_and_csv(self, result, tmp_path):
        import csv as csv_mod

        from repro.experiments.robustness import (
            format_replan_table,
            write_replan_csv,
        )

        text = format_replan_table(result)
        assert "mean degradation" in text
        assert "fallback" in text and "decomposition" in text
        path = write_replan_csv(result, str(tmp_path / "replan.csv"))
        rows = list(csv_mod.reader(open(path)))
        assert rows[0][:2] == ["policy", "algorithm"]
        assert len(rows) == 1 + len(result.points)


class TestSimulateCliHardening:
    @pytest.fixture()
    def files(self, tmp_path, montage):
        platform, graph, mapping, _ = montage
        gpath = tmp_path / "graph.json"
        mpath = tmp_path / "mapping.json"
        gpath.write_text(json.dumps(graph_to_dict(graph)))
        mpath.write_text(json.dumps(mapping_to_dict(graph, platform, mapping)))
        return str(gpath), str(mpath)

    def test_replan_policy_cli_end_to_end(self, files, capsys):
        gpath, mpath = files
        rc = cli_main([
            "simulate", gpath, mpath,
            "--fail", "vega56@0.02", "--replan-policy", "decomposition",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replan policy     : decomposition" in out
        assert "tasks remapped" in out

    def test_replan_policy_without_fail_rejected(self, files, capsys):
        gpath, mpath = files
        rc = cli_main(["simulate", gpath, mpath,
                       "--replan-policy", "decomposition"])
        assert rc == 2
        assert "no effect without" in capsys.readouterr().err

    @pytest.mark.parametrize("spec,fragment", [
        ("vega56", "expected DEV@T"),
        ("vega56@abc", "is not a number"),
        ("9@0.5", "out of range"),
        ("nosuchdev@0.5", "unknown device"),
        ("vega56@-1", "non-negative"),
    ])
    def test_malformed_fail_specs_exit_cleanly(self, files, capsys,
                                               spec, fragment):
        gpath, mpath = files
        rc = cli_main(["simulate", gpath, mpath, "--fail", spec])
        assert rc == 2
        assert fragment in capsys.readouterr().err

    @pytest.mark.parametrize("spec,fragment", [
        ("0@0.1", "expected DEV@T:FACTOR"),
        ("0@0.1:zero", "is not a number"),
        ("0@0.1:0", "positive"),
    ])
    def test_malformed_slowdown_specs_exit_cleanly(self, files, capsys,
                                                   spec, fragment):
        gpath, mpath = files
        rc = cli_main(["simulate", gpath, mpath, "--slowdown", spec])
        assert rc == 2
        assert fragment in capsys.readouterr().err

    def test_missing_graph_file_exits_cleanly(self, capsys):
        rc = cli_main(["simulate", "/nonexistent/g.json",
                       "--algorithm", "heft"])
        assert rc == 2
        assert "cannot load inputs" in capsys.readouterr().err

    def test_malformed_graph_json_exits_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "something-else"}')
        rc = cli_main(["simulate", str(bad), "--algorithm", "heft"])
        assert rc == 2
        assert "cannot load inputs" in capsys.readouterr().err

    def test_malformed_mapping_json_exits_cleanly(self, files, tmp_path,
                                                  capsys):
        gpath, _ = files
        bad = tmp_path / "mapping.json"
        bad.write_text("not json at all")
        rc = cli_main(["simulate", gpath, str(bad)])
        assert rc == 2
        assert "cannot load mapping" in capsys.readouterr().err
