"""Tests for the experiment harness (runner, metrics, reporting, config)."""

import csv
import io
import os

import numpy as np
import pytest

from repro.experiments.config import SCALES, bench_scale, get_scale
from repro.experiments.metrics import aggregate, positive_improvement
from repro.experiments.reporting import format_sweep_table, write_csv
from repro.experiments.runner import run_point, run_sweep
from repro.graphs.generators import random_sp_graph
from repro.mappers import HeftMapper, sp_first_fit
from repro.platform import paper_platform


class TestMetrics:
    def test_positive_improvement(self):
        assert positive_improvement(10.0, 8.0) == pytest.approx(0.2)
        assert positive_improvement(10.0, 12.0) == 0.0
        assert positive_improvement(10.0, float("inf")) == 0.0

    def test_aggregate(self):
        stats = aggregate([0.0, 0.1, 0.2, 0.3])
        assert stats.mean == pytest.approx(0.15)
        assert stats.count == 4
        assert stats.hit_rate == pytest.approx(0.75)
        assert stats.minimum == 0.0 and stats.maximum == 0.3
        assert "±" in str(stats)

    def test_aggregate_empty(self):
        stats = aggregate([])
        assert stats.count == 0 and stats.mean == 0.0


class TestConfig:
    def test_scales_exist(self):
        assert set(SCALES) == {"smoke", "small", "paper"}
        assert get_scale("paper").graphs_per_point == 30
        assert get_scale("paper").fig4_sizes[-1] == 200
        assert get_scale(get_scale("smoke")) is get_scale("smoke")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert bench_scale().name == "small"
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert bench_scale().name == "smoke"


class TestRunner:
    def test_run_point(self, platform):
        rng = np.random.default_rng(0)
        graphs = [random_sp_graph(10, rng) for _ in range(2)]
        point = run_point(
            [HeftMapper(), sp_first_fit()],
            graphs,
            platform,
            seed=1,
            n_random_schedules=5,
            x=10.0,
        )
        assert set(point.improvements) == {"HEFT", "SPFirstFit"}
        assert point.improvements["SPFirstFit"].count == 2
        assert point.times["HEFT"].mean >= 0.0

    def test_run_point_reproducible(self, platform):
        rng = np.random.default_rng(0)
        graphs = [random_sp_graph(10, rng)]
        a = run_point([sp_first_fit()], graphs, platform, seed=3,
                      n_random_schedules=5)
        b = run_point([sp_first_fit()], graphs, platform, seed=3,
                      n_random_schedules=5)
        assert (
            a.improvements["SPFirstFit"].mean
            == b.improvements["SPFirstFit"].mean
        )

    def test_run_sweep_series(self, platform):
        result = run_sweep(
            "test sweep",
            "n",
            [6, 9],
            lambda x, rng: [random_sp_graph(int(x), rng)],
            lambda x: [sp_first_fit()],
            platform,
            seed=0,
            n_random_schedules=3,
        )
        series = result.series()
        assert len(series) == 1
        assert series[0].xs == [6.0, 9.0]
        assert len(series[0].improvement) == 2

    def test_run_sweep_progress_callback(self, platform):
        messages = []
        run_sweep(
            "cb",
            "n",
            [5],
            lambda x, rng: [random_sp_graph(int(x), rng)],
            lambda x: [sp_first_fit()],
            platform,
            seed=0,
            n_random_schedules=2,
            progress=messages.append,
        )
        assert len(messages) == 1


class TestReporting:
    @pytest.fixture()
    def sweep(self, platform):
        return run_sweep(
            "report test",
            "n",
            [5, 8],
            lambda x, rng: [random_sp_graph(int(x), rng)],
            lambda x: [HeftMapper(), sp_first_fit()],
            platform,
            seed=0,
            n_random_schedules=2,
        )

    def test_format_table(self, sweep):
        text = format_sweep_table(sweep)
        assert "report test" in text
        assert "HEFT" in text and "SPFirstFit" in text
        assert "relative improvement" in text
        assert "execution time (ms)" in text

    def test_csv_stream(self, sweep):
        buf = io.StringIO()
        write_csv(sweep, fileobj=buf)
        rows = list(csv.reader(io.StringIO(buf.getvalue())))
        assert rows[0] == ["n", "algorithm", "improvement", "time_s", "hit_rate"]
        assert len(rows) == 1 + 2 * 2  # 2 points x 2 algorithms

    def test_csv_file(self, sweep, tmp_path):
        path = tmp_path / "out.csv"
        returned = write_csv(sweep, str(path))
        assert returned == str(path)
        assert path.exists()
        assert path.read_text().startswith("n,algorithm")


class TestRobustnessDriver:
    @pytest.fixture(scope="class")
    def result(self):
        import dataclasses

        from repro.experiments.config import get_scale
        from repro.experiments.robustness import run

        tiny = dataclasses.replace(
            get_scale("smoke"),
            robustness_noise_levels=[0.2],
            robustness_replications=4,
            robustness_n_tasks=15,
            robustness_graphs=1,
            nsga_generations=5,
            n_random_schedules=5,
        )
        return run(scale=tiny, seed=1)

    def test_sweep_shape(self, result):
        assert result.sigmas() == [0.2]
        assert set(result.algorithms()) == {
            "HEFT", "PEFT", "NSGAII", "SNFirstFit", "SPFirstFit"
        }
        for p in result.points:
            assert p.analytic_s > 0 and p.mean_s > 0
            assert p.degradation >= -1.0
            assert p.p95_degradation >= p.degradation - 1e-9

    def test_format_and_csv(self, result, tmp_path):
        import csv as csv_mod

        from repro.experiments.robustness import (
            format_robustness_table,
            write_robustness_csv,
        )

        text = format_robustness_table(result)
        assert "mean degradation" in text and "p95 degradation" in text
        assert "HEFT" in text
        path = write_robustness_csv(result, str(tmp_path / "rob.csv"))
        rows = list(csv_mod.reader(open(path)))
        assert rows[0][:2] == ["noise_sigma", "algorithm"]
        assert len(rows) == 1 + len(result.points)
