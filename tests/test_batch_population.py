"""Exactness contract of the population batch path (metaheuristic fitness).

PR 3 pinned the scalar kernel and the delta evaluator against the
nested-list reference; this suite extends the same contract to the
population entry and the metaheuristic mappers built on it:

- every lane of ``CostModel.simulate_many`` /
  ``MappingEvaluator.construction_makespans`` must be **bit-identical**
  to a scalar evaluation of that row — across graph families, random
  populations, FPGA area-infeasible genomes, duplicate rows (the dedup
  path) and ``contention=False``;
- the four metaheuristic mappers (NSGA-II, Pareto NSGA-II, tabu,
  annealing) must produce **bit-identical seeded trajectories** on the
  batched/delta paths and on the legacy scalar paths
  (``batch_eval=False`` / ``delta_eval=False``, which are the pre-batch
  implementations verbatim): same rng draws, same accepted moves, same
  per-generation history, same final mapping;
- the vectorized non-dominated sorting must agree with the classic
  pairwise implementation decision-for-decision *and* order-for-order
  (front ordering feeds crowding tie-breaks), including NaN objectives;
- evaluators must survive a mid-run pickle round trip (the
  ``repro.parallel`` worker contract) with the batch path intact.
"""

import pickle

import numpy as np
import pytest

from repro.evaluation import (
    INFEASIBLE,
    CachedEvaluator,
    CostModel,
    MappingEvaluator,
    random_topological_schedule,
)
from repro.evaluation._ckernel import load_ckernel
from repro.evaluation.costmodel import _POP_BATCH_MIN
from repro.graphs.generators import random_sp_graph
from repro.mappers import (
    NsgaIIMapper,
    ParetoNsgaIIMapper,
    SimulatedAnnealingMapper,
    TabuSearchMapper,
)
from repro.mappers.multiobjective import (
    crowding_distance,
    dominates,
    domination_matrix,
    nondominated_sort,
)
from repro.platform import paper_platform
from tests.conftest import make_evaluator
from tests.test_kernel_delta import FAMILIES, _same, graph_family, tight_platform

HAVE_CKERNEL = load_ckernel() is not None

MODES = [False] + ([None] if HAVE_CKERNEL else [])
MODE_IDS = ["python"] + (["ckernel"] if HAVE_CKERNEL else [])


# ---------------------------------------------------------------------------
# (a) batched == scalar, bit-identical, lane by lane
# ---------------------------------------------------------------------------
class TestBatchBitIdentity:
    @pytest.mark.parametrize("use_ckernel", MODES, ids=MODE_IDS)
    @pytest.mark.parametrize("family", FAMILIES)
    def test_families_random_populations(self, family, use_ckernel):
        rng = np.random.default_rng(FAMILIES.index(family))
        for plat in (paper_platform(), tight_platform()):
            g = graph_family(family, 18, rng)
            model = CostModel(g, plat, use_ckernel=use_ckernel)
            n = model.n
            # tight_platform makes some rows FPGA-area-infeasible: the
            # batch entry must return INFEASIBLE for exactly those rows
            pop = rng.integers(0, plat.n_devices, size=(40, n), dtype=np.int64)
            batched = model.simulate_many(pop)
            for r in range(len(pop)):
                assert _same(batched[r], model.simulate(pop[r]))

    @pytest.mark.parametrize("use_ckernel", MODES, ids=MODE_IDS)
    def test_contention_false_and_custom_order(self, use_ckernel):
        rng = np.random.default_rng(7)
        g = graph_family("almost_sp", 20, rng)
        plat = tight_platform()
        model = CostModel(g, plat, use_ckernel=use_ckernel)
        pop = rng.integers(0, plat.n_devices, size=(30, model.n), dtype=np.int64)
        nc = model.simulate_many(pop, check_feasibility=False, contention=False)
        order = random_topological_schedule(g, rng)
        oc = model.simulate_many(pop, order, check_feasibility=False)
        for r in range(len(pop)):
            assert _same(
                nc[r],
                model.simulate(
                    pop[r], check_feasibility=False, contention=False
                ),
            )
            assert _same(
                oc[r], model.simulate(pop[r], order, check_feasibility=False)
            )

    def test_small_population_scalar_fallback(self):
        """Below _POP_BATCH_MIN lanes the Python path goes scalar — same bits."""
        rng = np.random.default_rng(11)
        g = random_sp_graph(16, rng)
        model = CostModel(g, paper_platform(), use_ckernel=False)
        pop = rng.integers(0, 3, size=(_POP_BATCH_MIN - 1, model.n), dtype=np.int64)
        batched = model.simulate_many(pop)
        for r in range(len(pop)):
            assert _same(batched[r], model.simulate(pop[r]))

    def test_all_rows_infeasible_short_circuits(self):
        g = random_sp_graph(12, np.random.default_rng(3))
        plat = tight_platform()
        model = CostModel(g, plat)
        pop = np.full((8, model.n), 2, dtype=np.int64)  # all on tiny FPGA
        before = model.n_batch_calls
        res = model.simulate_many(pop)
        assert np.all(np.isinf(res))
        assert model.n_batch_calls == before  # no lanes simulated

    def test_shape_validation(self):
        g = random_sp_graph(10, np.random.default_rng(0))
        model = CostModel(g, paper_platform())
        with pytest.raises(ValueError):
            model.simulate_many(np.zeros(model.n, dtype=np.int64))
        with pytest.raises(ValueError):
            model.simulate_many(np.zeros((4, model.n + 1), dtype=np.int64))
        assert model.simulate_many(np.zeros((0, model.n), dtype=np.int64)).size == 0

    def test_evaluator_dedup_shares_exact_values(self, platform):
        """Duplicate genomes are simulated once and share one value."""
        rng = np.random.default_rng(21)
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform, n_random=2)
        distinct = rng.integers(0, 3, size=(6, ev.n_tasks), dtype=np.int64)
        idx = rng.integers(0, 6, size=40)
        pop = distinct[idx]
        before = ev.n_batched_evaluations
        ms = ev.construction_makespans(pop)
        # only the distinct rows hit the kernel ...
        assert ev.n_batched_evaluations - before == len(np.unique(idx))
        # ... and every row equals its scalar evaluation bit for bit
        for r in range(len(pop)):
            assert _same(ms[r], ev.construction_makespan(pop[r]))
        # duplicates share literally the same value
        for a in range(len(pop)):
            for b in range(a + 1, len(pop)):
                if idx[a] == idx[b]:
                    assert _same(ms[a], ms[b])

    def test_cached_evaluator_batches_through_memo(self, platform):
        g = random_sp_graph(12, np.random.default_rng(5))
        cached = CachedEvaluator(make_evaluator(g, platform, n_random=2))
        rng = np.random.default_rng(6)
        pop = rng.integers(0, 3, size=(10, 12), dtype=np.int64)
        first = cached.construction_makespans(pop)
        assert cached.misses == 10 and cached.hits == 0
        again = cached.construction_makespans(pop)
        np.testing.assert_array_equal(first, again)
        assert cached.hits == 10
        # scalar and batched paths answer from the same memo
        assert cached.construction_makespan(pop[0]) == first[0]
        assert cached.hits == 11


# ---------------------------------------------------------------------------
# (b) seeded mapper trajectories: batched/delta path == legacy scalar path
# ---------------------------------------------------------------------------
class TestMetaheuristicTrajectories:
    """`batch_eval=False` / `delta_eval=False` run the pre-batch loops
    verbatim; both paths must draw the same rng stream and produce the
    same history and final mapping, bit for bit."""

    def _pair(self, seed, n=18):
        g = random_sp_graph(n, np.random.default_rng(seed))
        plat = paper_platform()
        return (
            make_evaluator(g, plat, seed=seed, n_random=2),
            make_evaluator(g, plat, seed=seed, n_random=2),
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_nsgaii(self, seed):
        ev_fast, ev_ref = self._pair(seed)
        fast = NsgaIIMapper(generations=12, population_size=20)
        ref = NsgaIIMapper(generations=12, population_size=20, batch_eval=False)
        rf = fast.map(ev_fast, rng=np.random.default_rng(seed))
        rr = ref.map(ev_ref, rng=np.random.default_rng(seed))
        np.testing.assert_array_equal(rf.mapping, rr.mapping)
        assert rf.makespan == rr.makespan
        assert fast.history_ == ref.history_
        assert rf.stats["n_batched_evaluations"] > 0
        assert rr.stats["n_batched_evaluations"] == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pareto_nsgaii(self, seed):
        ev_fast, ev_ref = self._pair(seed)
        fast = ParetoNsgaIIMapper(generations=8, population_size=16)
        ref = ParetoNsgaIIMapper(
            generations=8, population_size=16, batch_eval=False
        )
        rf = fast.map(ev_fast, rng=np.random.default_rng(seed))
        rr = ref.map(ev_ref, rng=np.random.default_rng(seed))
        np.testing.assert_array_equal(rf.mapping, rr.mapping)
        assert rf.makespan == rr.makespan
        assert fast.history_ == ref.history_
        assert len(fast.last_front_) == len(ref.last_front_)
        for (ma, msa, ea), (mb, msb, eb) in zip(
            fast.last_front_, ref.last_front_
        ):
            np.testing.assert_array_equal(ma, mb)
            assert msa == msb and ea == eb

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tabu(self, seed):
        ev_fast, ev_ref = self._pair(seed)
        fast = TabuSearchMapper(iterations=40, neighborhood=12)
        ref = TabuSearchMapper(iterations=40, neighborhood=12, delta_eval=False)
        rf = fast.map(ev_fast, rng=np.random.default_rng(seed))
        rr = ref.map(ev_ref, rng=np.random.default_rng(seed))
        np.testing.assert_array_equal(rf.mapping, rr.mapping)
        assert rf.makespan == rr.makespan
        assert fast.history_ == ref.history_
        assert rf.stats["improving_steps"] == rr.stats["improving_steps"]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_annealing(self, seed):
        ev_fast, ev_ref = self._pair(seed)
        fast = SimulatedAnnealingMapper(iterations=400)
        ref = SimulatedAnnealingMapper(iterations=400, delta_eval=False)
        rf = fast.map(ev_fast, rng=np.random.default_rng(seed))
        rr = ref.map(ev_ref, rng=np.random.default_rng(seed))
        np.testing.assert_array_equal(rf.mapping, rr.mapping)
        assert rf.makespan == rr.makespan
        assert fast.history_ == ref.history_
        assert rf.stats["accepted"] == rr.stats["accepted"]

    def test_tabu_on_area_tight_platform(self):
        """Infeasible moves must be skipped identically on both paths."""
        g = random_sp_graph(14, np.random.default_rng(9))
        ev_fast = make_evaluator(g, tight_platform(), n_random=2)
        ev_ref = make_evaluator(g, tight_platform(), n_random=2)
        rf = TabuSearchMapper(iterations=30, neighborhood=10).map(
            ev_fast, rng=np.random.default_rng(9)
        )
        rr = TabuSearchMapper(
            iterations=30, neighborhood=10, delta_eval=False
        ).map(ev_ref, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(rf.mapping, rr.mapping)
        assert rf.makespan == rr.makespan


# ---------------------------------------------------------------------------
# metaheuristic counters: prove the fast paths are actually taken
# ---------------------------------------------------------------------------
class TestMetaheuristicCounters:
    def test_ga_reports_batched_counters(self, platform):
        g = random_sp_graph(16, np.random.default_rng(2))
        ev = make_evaluator(g, platform, n_random=2)
        res = NsgaIIMapper(generations=10, population_size=20).map(
            ev, rng=np.random.default_rng(0)
        )
        stats = res.stats
        assert stats["n_batched_evaluations"] > 0
        # one batch call per generation block; dedup may shrink lanes,
        # so the mean realized width is > 1 but <= the population size
        assert 1.0 < stats["batch_size_mean"] <= 20.0
        # the GA itself runs no scalar simulations beyond Mapper.map's
        # final construction_makespan of the returned mapping
        assert stats["n_simulations"] == 0.0
        assert res.n_evaluations == (
            ev.n_full_simulations
            + ev.n_delta_evaluations
            + ev.n_batched_evaluations
        )

    def test_tabu_and_annealing_report_delta_counters(self, platform):
        g = random_sp_graph(16, np.random.default_rng(4))
        for mapper in (
            TabuSearchMapper(iterations=20, neighborhood=8),
            SimulatedAnnealingMapper(iterations=200),
        ):
            ev = make_evaluator(g, platform, n_random=2)
            res = mapper.map(ev, rng=np.random.default_rng(1))
            assert res.stats["n_delta_evaluations"] > 0
            assert res.stats["n_batched_evaluations"] == 0.0
            assert res.stats["batch_size_mean"] == 0.0

    def test_scalar_paths_report_simulations(self, platform):
        g = random_sp_graph(12, np.random.default_rng(6))
        ev = make_evaluator(g, platform, n_random=2)
        res = NsgaIIMapper(
            generations=4, population_size=10, batch_eval=False
        ).map(ev, rng=np.random.default_rng(0))
        assert res.stats["n_simulations"] > 0
        assert res.stats["n_batched_evaluations"] == 0.0


# ---------------------------------------------------------------------------
# vectorized non-dominated sorting == classic pairwise, incl. NaN guard
# ---------------------------------------------------------------------------
def _dominates_reference(a, b) -> bool:
    """The pre-vectorization implementation (no NaN guard)."""
    at_least_as_good = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def _nondominated_sort_reference(objectives):
    """Deb's sort with the classic pairwise loop — order-exact spec."""
    n = len(objectives)
    dominated_by = [[] for _ in range(n)]
    domination_count = np.zeros(n, dtype=int)
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(objectives[i], objectives[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(objectives[j], objectives[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts = []
    current = [i for i in range(n) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        nxt = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        current = nxt
    return fronts


class TestNondominatedSortVectorized:
    def test_matrix_agrees_with_pairwise(self):
        rng = np.random.default_rng(0)
        objs = rng.random((30, 2))
        objs[rng.random(30) < 0.2] = objs[0]  # exact duplicates
        dom = domination_matrix(objs)
        for i in range(30):
            for j in range(30):
                assert dom[i, j] == dominates(objs[i], objs[j])

    def test_front_order_matches_reference(self):
        """Front membership AND internal order — crowding tie-breaks
        depend on it, so seeded Pareto trajectories do too."""
        rng = np.random.default_rng(1)
        for trial in range(10):
            objs = rng.random((25, 2))
            if trial % 2:
                objs[rng.integers(25)] = [np.inf, np.inf]
            assert nondominated_sort(objs) == _nondominated_sort_reference(objs)

    def test_nan_guard(self):
        """NaN objectives count as +inf: never dominate, can be dominated."""
        nan_pt = [np.nan, 1.0]
        good = [1.0, 1.0]
        assert not dominates(nan_pt, good)
        assert dominates(good, nan_pt)
        # all-NaN never dominates and ties break nowhere
        assert not dominates([np.nan, np.nan], [np.nan, np.nan])
        objs = np.array([[np.nan, 0.5], [0.5, 0.5], [np.nan, np.nan]])
        dom = domination_matrix(objs)
        for i in range(3):
            for j in range(3):
                assert dom[i, j] == dominates(objs[i], objs[j])
        # a NaN point must not pollute front zero
        fronts = nondominated_sort(objs)
        assert fronts[0] == [1]

    def test_nan_free_matches_unguarded_reference(self):
        """On NaN-free objectives the guard is a no-op."""
        rng = np.random.default_rng(2)
        objs = rng.random((20, 3))
        for i in range(20):
            for j in range(20):
                assert dominates(objs[i], objs[j]) == _dominates_reference(
                    objs[i], objs[j]
                )

    def test_crowding_distance_matches_reference(self):
        rng = np.random.default_rng(3)
        objs = rng.random((15, 2))
        n, m = objs.shape
        ref = np.zeros(n)
        for k in range(m):
            order = np.argsort(objs[:, k], kind="stable")
            lo, hi = objs[order[0], k], objs[order[-1], k]
            ref[order[0]] = ref[order[-1]] = np.inf
            span = hi - lo
            if span <= 0:
                continue
            for pos in range(1, n - 1):
                ref[order[pos]] += (
                    objs[order[pos + 1], k] - objs[order[pos - 1], k]
                ) / span
        np.testing.assert_array_equal(crowding_distance(objs), ref)
        np.testing.assert_array_equal(
            crowding_distance(objs[:2]), [np.inf, np.inf]
        )


# ---------------------------------------------------------------------------
# energy fast path == reference loop, bit-identical
# ---------------------------------------------------------------------------
class TestEnergyFastPath:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_families_random_mappings(self, family):
        from repro.evaluation import EnergyModel

        rng = np.random.default_rng(50 + FAMILIES.index(family))
        for plat in (paper_platform(), tight_platform()):
            g = graph_family(family, 17, rng)
            model = CostModel(g, plat)
            energy = EnergyModel(model)
            for _ in range(30):
                mapping = rng.integers(0, plat.n_devices, size=model.n)
                fast = energy.energy(mapping)
                ref = energy._energy_reference(mapping)
                assert _same(fast, ref)
                if np.isfinite(fast):
                    # the precomputed-makespan entry (the Pareto hot path)
                    ms = model.simulate(mapping, check_feasibility=False)
                    assert _same(
                        energy.energy(
                            mapping, makespan=ms, check_feasibility=False
                        ),
                        energy._energy_reference(
                            mapping, makespan=ms, check_feasibility=False
                        ),
                    )


# ---------------------------------------------------------------------------
# (c) pickle round trip mid-run (repro.parallel worker contract)
# ---------------------------------------------------------------------------
class TestEvaluatorPickleMidRun:
    def test_evaluator_round_trip_keeps_batch_path(self, platform):
        g = random_sp_graph(14, np.random.default_rng(8))
        ev = make_evaluator(g, platform, n_random=2)
        rng = np.random.default_rng(8)
        pop = rng.integers(0, 3, size=(24, ev.n_tasks), dtype=np.int64)
        before = ev.construction_makespans(pop)
        clone = pickle.loads(pickle.dumps(ev))
        after = clone.construction_makespans(pop)
        np.testing.assert_array_equal(before, after)
        # scalar entry agrees too (kernel re-initialized on unpickle)
        assert clone.construction_makespan(pop[0]) == before[0]

    def test_cached_evaluator_round_trip_mid_run(self, platform):
        g = random_sp_graph(12, np.random.default_rng(10))
        cached = CachedEvaluator(make_evaluator(g, platform, n_random=2))
        rng = np.random.default_rng(10)
        pop = rng.integers(0, 3, size=(8, 12), dtype=np.int64)
        vals = cached.construction_makespans(pop)
        clone = pickle.loads(pickle.dumps(cached))
        np.testing.assert_array_equal(clone.construction_makespans(pop), vals)

    def test_mapper_runs_identically_after_round_trip(self, platform):
        g = random_sp_graph(12, np.random.default_rng(12))
        ev = make_evaluator(g, platform, n_random=2)
        ev.construction_makespans(
            np.zeros((2, ev.n_tasks), dtype=np.int64)
        )  # mid-run state
        clone = pickle.loads(pickle.dumps(ev))
        ga = NsgaIIMapper(generations=5, population_size=10)
        r1 = ga.map(ev, rng=np.random.default_rng(0))
        r2 = ga.map(clone, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(r1.mapping, r2.mapping)
        assert r1.makespan == r2.makespan


# ---------------------------------------------------------------------------
# INFEASIBLE placement: batch results keep inf exactly where scalar has it
# ---------------------------------------------------------------------------
def test_mixed_feasibility_population():
    rng = np.random.default_rng(13)
    g = random_sp_graph(16, rng)
    plat = tight_platform()
    ev = MappingEvaluator(g, plat, rng=np.random.default_rng(0), n_random_schedules=2)
    pop = rng.integers(0, 3, size=(60, ev.n_tasks), dtype=np.int64)
    pop[5] = 2  # guaranteed FPGA-area violation
    ms = ev.construction_makespans(pop)
    assert ms[5] == INFEASIBLE
    for r in range(len(pop)):
        assert _same(ms[r], ev.construction_makespan(pop[r]))
