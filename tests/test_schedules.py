"""Tests for schedule generation (BFS + random topological suites)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    ScheduleSuite,
    bfs_schedule,
    random_topological_schedule,
)
from repro.graphs.generators import random_almost_sp_graph


def assert_topological(g, order_indices):
    tasks = g.tasks()
    pos = {tasks[i]: k for k, i in enumerate(order_indices)}
    assert len(pos) == g.n_tasks
    for u, v in g.edges():
        assert pos[u] < pos[v]


class TestBfs:
    def test_topological(self, fig2_graph):
        assert_topological(fig2_graph, bfs_schedule(fig2_graph))

    def test_level_order(self, fig1_graph):
        order = bfs_schedule(fig1_graph)
        tasks = fig1_graph.tasks()
        level = {t: i for i, lvl in enumerate(fig1_graph.bfs_levels()) for t in lvl}
        seen_levels = [level[tasks[i]] for i in order]
        assert seen_levels == sorted(seen_levels)


class TestRandom:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(2, 40),
        k=st.integers(0, 20),
        seed=st.integers(0, 2**31),
    )
    def test_always_topological(self, n, k, seed):
        rng = np.random.default_rng(seed)
        g = random_almost_sp_graph(n, k, rng, augmented=False)
        order = random_topological_schedule(g, rng)
        assert_topological(g, order)

    def test_deterministic_for_seed(self, fig2_graph):
        a = random_topological_schedule(fig2_graph, np.random.default_rng(1))
        b = random_topological_schedule(fig2_graph, np.random.default_rng(1))
        assert a == b

    def test_varies_across_draws(self, rng):
        g = random_almost_sp_graph(30, 0, rng, augmented=False)
        orders = {
            tuple(random_topological_schedule(g, rng)) for _ in range(10)
        }
        assert len(orders) > 1


class TestSuite:
    def test_paper_suite_size(self, fig1_graph):
        suite = ScheduleSuite.paper(fig1_graph, np.random.default_rng(0))
        assert len(suite) == 101
        for order in suite.orders:
            assert_topological(fig1_graph, order)

    def test_custom_random_count(self, fig1_graph):
        suite = ScheduleSuite.paper(
            fig1_graph, np.random.default_rng(0), n_random=5
        )
        assert len(suite) == 6

    def test_bfs_only(self, fig1_graph):
        suite = ScheduleSuite.bfs_only(fig1_graph)
        assert len(suite) == 1
        assert suite.orders[0] == bfs_schedule(fig1_graph)
