"""Tests for the MILP infrastructure and the three MILP mappers."""

import numpy as np
import pytest

from repro.graphs import TaskGraph, augment
from repro.graphs.generators import random_sp_graph
from repro.mappers import WgdpDeviceMapper, WgdpTimeMapper, ZhouLiuMapper
from repro.mappers.milp import MilpBuilder, MilpProblemData
from repro.platform import paper_platform
from tests.conftest import make_evaluator


class TestMilpBuilder:
    def test_simple_lp(self):
        # max x + y st x + y <= 3, 0 <= x,y <= 2  -> milp minimizes, so negate
        b = MilpBuilder()
        x = b.add_continuous(0, 2)
        y = b.add_continuous(0, 2)
        b.add_constraint({x: 1.0, y: 1.0}, ub=3.0)
        b.set_objective({x: -1.0, y: -1.0})
        sol = b.solve()
        assert sol.status == 0
        assert sol.x[x] + sol.x[y] == pytest.approx(3.0)

    def test_knapsack(self):
        # items (value, weight): (6,4), (5,3), (4,2); capacity 5 -> take 5+4
        b = MilpBuilder()
        xs = b.add_binaries(3)
        values = [6, 5, 4]
        weights = [4, 3, 2]
        b.add_constraint({x: w for x, w in zip(xs, weights)}, ub=5.0)
        b.set_objective({x: -v for x, v in zip(xs, values)})
        sol = b.solve()
        assert sol.status == 0
        assert -sol.objective == pytest.approx(9.0)
        assert [round(sol.x[x]) for x in xs] == [0, 1, 1]

    def test_duplicate_coefficients_merged(self):
        b = MilpBuilder()
        x = b.add_continuous(0, 10)
        b.add_constraint({x: 1.0}, lb=4.0)  # x >= 4
        b.set_objective({x: 1.0})
        sol = b.solve()
        assert sol.x[x] == pytest.approx(4.0)

    def test_infeasible_reports_no_x(self):
        b = MilpBuilder()
        x = b.add_binary()
        b.add_constraint({x: 1.0}, lb=2.0)  # impossible for a binary
        b.set_objective({x: 1.0})
        sol = b.solve()
        assert sol.status != 0
        assert sol.x is None or not np.isfinite(sol.objective)


class TestProblemData:
    def test_slot_expansion(self, platform, rng):
        g = random_sp_graph(8, rng)
        ev = make_evaluator(g, platform)
        data = MilpProblemData(ev)
        # 4 CPU slots + 1 GPU slot + 1 FPGA = 6 expanded devices
        assert data.m_expanded == 6
        assert data.device_map == [0, 0, 0, 0, 1, 2]
        assert data.exec_table.shape == (8, 6)

    def test_collapse_mapping(self, platform, rng):
        g = random_sp_graph(5, rng)
        ev = make_evaluator(g, platform)
        data = MilpProblemData(ev)
        collapsed = data.collapse_mapping([0, 3, 4, 5, 1])
        assert collapsed.tolist() == [0, 0, 1, 2, 0]

    def test_same_real_device_transfers_free(self, platform, rng):
        g = random_sp_graph(6, rng)
        ev = make_evaluator(g, platform)
        data = MilpProblemData(ev)
        for trans in data.edge_trans.values():
            # CPU slot 0 <-> CPU slot 3 must be free
            assert trans[0, 3] == 0.0
            assert trans[0, 4] > 0.0  # CPU -> GPU costs

    def test_unordered_pairs_chain_empty(self, platform, chain_graph, rng):
        augment(chain_graph, rng)
        ev = make_evaluator(chain_graph, platform)
        data = MilpProblemData(ev)
        assert data.unordered_pairs() == []

    def test_unordered_pairs_antichain_full(self, platform):
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, complexity=1.0)
        ev = make_evaluator(g, platform)
        data = MilpProblemData(ev)
        assert len(data.unordered_pairs()) == 6

    def test_horizon_positive_and_finite(self, platform, rng):
        g = random_sp_graph(10, rng)
        ev = make_evaluator(g, platform)
        data = MilpProblemData(ev)
        assert np.isfinite(data.horizon)
        assert data.horizon > 0


class TestWgdpDevice:
    def test_balances_loads(self, platform):
        # 8 identical sequential tasks, no dependencies: min-max load spreads
        g = TaskGraph()
        for i in range(8):
            g.add_task(i, complexity=5.0, parallelizability=0.0,
                       streamability=5.0, area=1.0)
        ev = make_evaluator(g, platform)
        res = WgdpDeviceMapper(time_limit_s=20).map(ev)
        used_devices = set(res.mapping.tolist())
        assert len(used_devices) >= 2  # it must spread the load
        assert ev.is_feasible(res.mapping)

    def test_respects_area(self, platform):
        g = TaskGraph()
        for i in range(6):
            g.add_task(i, complexity=50.0, streamability=50.0, area=60.0)
        ev = make_evaluator(g, platform)  # capacity 100 -> at most 1 fits
        res = WgdpDeviceMapper(time_limit_s=20).map(ev)
        assert int(np.sum(res.mapping == 2)) <= 1


class TestWgdpTime:
    def test_small_instance_quality(self, platform):
        g = random_sp_graph(8, np.random.default_rng(5))
        ev = make_evaluator(g, platform, n_random=5)
        res = WgdpTimeMapper(time_limit_s=30).map(
            ev, rng=np.random.default_rng(0)
        )
        assert ev.is_feasible(res.mapping)
        # the time-based MILP should find a real improvement on small graphs
        assert ev.relative_improvement(res.mapping) > 0.0

    def test_streaming_flag_off_still_works(self, platform):
        g = random_sp_graph(6, np.random.default_rng(6))
        ev = make_evaluator(g, platform, n_random=5)
        res = WgdpTimeMapper(time_limit_s=20, streaming_aware=False).map(ev)
        assert ev.is_feasible(res.mapping)

    def test_timeout_falls_back_gracefully(self, platform):
        g = random_sp_graph(20, np.random.default_rng(7))
        ev = make_evaluator(g, platform, n_random=5)
        res = WgdpTimeMapper(time_limit_s=0.05).map(ev)
        # must return *something* feasible (often the CPU fallback)
        assert ev.is_feasible(res.mapping)


class TestZhouLiu:
    def test_tiny_instance(self, platform):
        g = random_sp_graph(5, np.random.default_rng(9))
        ev = make_evaluator(g, platform, n_random=5)
        res = ZhouLiuMapper(time_limit_s=60).map(ev)
        assert ev.is_feasible(res.mapping)
        assert res.stats["n_variables"] > 0

    def test_slot_cap_shrinks_problem(self, platform):
        g = random_sp_graph(6, np.random.default_rng(10))
        ev = make_evaluator(g, platform, n_random=5)
        full = ZhouLiuMapper(time_limit_s=30)
        capped = ZhouLiuMapper(time_limit_s=30, max_slots=2)
        r_full = full.map(ev)
        r_capped = capped.map(ev)
        assert r_capped.stats["n_variables"] < r_full.stats["n_variables"]
        assert ev.is_feasible(r_capped.mapping)

    def test_timeout_falls_back_gracefully(self, platform):
        g = random_sp_graph(12, np.random.default_rng(11))
        ev = make_evaluator(g, platform, n_random=5)
        res = ZhouLiuMapper(time_limit_s=0.05).map(ev)
        assert ev.is_feasible(res.mapping)
