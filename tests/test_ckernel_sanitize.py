"""Sanitizer wiring for the C kernel (``REPRO_CKERNEL_SANITIZE``).

Pins four things:

- flag parsing (asan/ubsan spellings, loud ``ValueError`` on typos);
- the sanitize flags are part of the ``.so`` cache key, so plain and
  sanitized builds coexist and a flip never serves a stale binary;
- the C source ↔ Python mirror consistency check is green;
- a sanitizer-instrumented kernel produces **bit-identical** makespans
  (checked in a subprocess, because loading an ASan ``.so`` into the
  long-lived pytest process would wire its interceptors permanently).

Sanitized compiles need a working cc with libasan/libubsan; the
subprocess test skips gracefully where that is missing (the
``kernel-sanitize`` CI job runs the full equivalence suite under the
variable on a toolchain that has them).
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.evaluation import _ckernel

# ---------------------------------------------------------------------------
# flag parsing
# ---------------------------------------------------------------------------


class TestSanitizeFlags:
    def test_default_empty(self, monkeypatch):
        monkeypatch.delenv("REPRO_CKERNEL_SANITIZE", raising=False)
        assert _ckernel.sanitize_flags() == []

    @pytest.mark.parametrize("spec,groups", [
        ("asan", "address"),
        ("address", "address"),
        ("ubsan", "undefined"),
        ("undefined", "undefined"),
        ("asan,ubsan", "address,undefined"),
        (" ASan , UBSan ", "address,undefined"),
        ("asan,address", "address"),  # dedup across spellings
    ])
    def test_spellings(self, monkeypatch, spec, groups):
        monkeypatch.setenv("REPRO_CKERNEL_SANITIZE", spec)
        assert _ckernel.sanitize_flags() == [
            f"-fsanitize={groups}", "-fno-omit-frame-pointer",
        ]

    def test_unknown_token_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CKERNEL_SANITIZE", "asan,tsan")
        with pytest.raises(ValueError, match="tsan"):
            _ckernel.sanitize_flags()

    def test_empty_tokens_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_CKERNEL_SANITIZE", " , ,")
        assert _ckernel.sanitize_flags() == []


# ---------------------------------------------------------------------------
# cache-key separation
# ---------------------------------------------------------------------------


class TestCacheKey:
    def test_sanitize_flags_change_the_key(self):
        plain = _ckernel._source_hash(_ckernel._CFLAGS)
        san = _ckernel._source_hash(
            _ckernel._CFLAGS
            + ["-fsanitize=address,undefined", "-fno-omit-frame-pointer"]
        )
        assert plain != san

    def test_builds_coexist_in_cache(self):
        # compiling both variants yields two distinct .so files
        plain_so = _ckernel._compile(_ckernel._CFLAGS)
        if plain_so is None:
            pytest.skip("no C compiler available")
        ub_so = _ckernel._compile(_ckernel._CFLAGS + ["-fsanitize=undefined"])
        if ub_so is None:
            pytest.skip("toolchain lacks UBSan support")
        assert plain_so != ub_so
        assert os.path.exists(plain_so) and os.path.exists(ub_so)


# ---------------------------------------------------------------------------
# C source <-> Python mirror consistency (the KER001 backing check)
# ---------------------------------------------------------------------------


class TestSourceConsistency:
    def test_green_on_this_tree(self):
        assert _ckernel.source_consistency_problems() == []

    def test_detects_an_offset_drift(self, monkeypatch):
        from repro.evaluation import kernel

        monkeypatch.setattr(kernel, "DEDUP_FNV_OFFSET", 12345)
        problems = _ckernel.source_consistency_problems()
        assert any("offset" in msg for _, msg in problems)

    def test_detects_a_table_factor_drift(self, monkeypatch):
        from repro.evaluation import kernel

        monkeypatch.setattr(kernel, "DEDUP_TABLE_FACTOR", 4)
        problems = _ckernel.source_consistency_problems()
        assert any("table-sizing" in msg for _, msg in problems)


# ---------------------------------------------------------------------------
# bit-identical results under sanitizers (subprocess)
# ---------------------------------------------------------------------------

_CHILD = textwrap.dedent("""
    import json, sys
    import numpy as np
    from repro.evaluation import MappingEvaluator, _ckernel
    from repro.graphs import TaskGraph, augment
    from repro.platform import paper_platform

    g = TaskGraph.from_edges(
        [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 4)]
    )
    augment(g, np.random.default_rng(11))
    ev = MappingEvaluator(
        g, paper_platform(), rng=np.random.default_rng(0),
        n_random_schedules=16,
    )
    rng = np.random.default_rng(99)
    pop = rng.integers(
        0, ev.platform.n_devices, size=(32, ev.n_tasks), dtype=np.int64
    )
    spans = ev.construction_makespans(pop)
    print(json.dumps({
        "kernel": _ckernel.kernel_status()["kernel"],
        "sanitize": _ckernel.kernel_status()["sanitize"],
        "spans": spans.tolist(),
    }))
""")


def _run_child(extra_env):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_CKERNEL_SANITIZE", None)
    env.pop("REPRO_PURE_PYTHON", None)
    env.update(extra_env)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        capture_output=True, text=True, env=env, timeout=300,
    )
    if proc.returncode != 0:
        return None, proc.stderr
    return json.loads(proc.stdout.splitlines()[-1]), proc.stderr


def test_sanitized_kernel_is_bit_identical():
    plain, err = _run_child({})
    assert plain is not None, err
    if plain["kernel"] != "c":
        pytest.skip("no C compiler available")

    san, err = _run_child({"REPRO_CKERNEL_SANITIZE": "asan,ubsan"})
    if san is None or san["kernel"] != "c":
        pytest.skip(f"sanitized build unavailable: {err}")
    assert san["sanitize"] == "asan,ubsan"
    # IEEE semantics are untouched by the instrumentation: exact match
    assert san["spans"] == plain["spans"]


def test_bad_sanitize_spec_fails_loudly():
    out, err = _run_child({"REPRO_CKERNEL_SANITIZE": "fast"})
    assert out is None
    assert "unknown sanitizer" in err
