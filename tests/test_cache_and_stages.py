"""Tests for the cached evaluator and the stage-structured generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import CachedEvaluator
from repro.graphs.generators import (
    random_forkjoin_graph,
    random_pipeline_graph,
)
from repro.graphs.generators import random_sp_graph
from repro.mappers import NsgaIIMapper, sp_first_fit
from repro.platform import paper_platform
from repro.sp import is_series_parallel, sp_distance
from tests.conftest import make_evaluator


class TestCachedEvaluator:
    def test_values_match_inner(self, platform, rng):
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform, n_random=3)
        cached = CachedEvaluator(ev)
        for _ in range(5):
            m = rng.integers(0, 3, size=15)
            assert cached.construction_makespan(m) == pytest.approx(
                ev.construction_makespan(m)
            )

    def test_hits_on_repeats(self, platform, rng):
        g = random_sp_graph(10, rng)
        ev = make_evaluator(g, platform, n_random=3)
        cached = CachedEvaluator(ev)
        m = np.zeros(10, dtype=np.int64)
        cached.construction_makespan(m)
        cached.construction_makespan(m)
        cached.construction_makespan(m.copy())  # same bytes, new array
        assert cached.misses == 1
        assert cached.hits == 2
        assert cached.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction(self, platform, rng):
        g = random_sp_graph(8, rng)
        ev = make_evaluator(g, platform, n_random=3)
        cached = CachedEvaluator(ev, max_entries=2)
        a = np.zeros(8, dtype=np.int64)
        b = np.ones(8, dtype=np.int64)
        c = np.full(8, 2, dtype=np.int64)
        for m in (a, b, c):  # evicts a
            cached.construction_makespan(m)
        cached.construction_makespan(a)
        assert cached.misses == 4  # a was recomputed

    def test_clear(self, platform, rng):
        g = random_sp_graph(8, rng)
        cached = CachedEvaluator(make_evaluator(g, platform, n_random=3))
        cached.construction_makespan(np.zeros(8, dtype=np.int64))
        cached.clear()
        assert cached.hits == 0 and cached.misses == 0

    def test_validation(self, platform, rng):
        g = random_sp_graph(8, rng)
        with pytest.raises(ValueError):
            CachedEvaluator(make_evaluator(g, platform), max_entries=0)

    def test_mappers_work_through_cache(self, platform):
        """The cache is a drop-in for GA and decomposition mappers."""
        g = random_sp_graph(12, np.random.default_rng(1))
        ev = make_evaluator(g, platform, n_random=3)
        cached = CachedEvaluator(ev)
        res_sp = sp_first_fit().map(cached, rng=np.random.default_rng(2))
        assert ev.is_feasible(res_sp.mapping)
        res_ga = NsgaIIMapper(generations=6).map(
            cached, rng=np.random.default_rng(3)
        )
        assert ev.is_feasible(res_ga.mapping)
        # elitist GA re-evaluates nothing through the cache path, but
        # crossover recreates genomes: expect at least some hits
        assert cached.hits > 0


class TestForkJoin:
    def test_structure(self, rng):
        g = random_forkjoin_graph(4, 5, rng, augmented=False)
        g.validate()
        assert len(g.sources()) == 1
        assert len(g.sinks()) == 1

    def test_fork_join_is_series_parallel(self, rng):
        for seed in range(5):
            g = random_forkjoin_graph(
                3, 4, np.random.default_rng(seed), augmented=False
            )
            assert is_series_parallel(g)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_forkjoin_graph(0, 3, rng)


class TestPipeline:
    def test_structure(self, rng):
        g = random_pipeline_graph(3, 5, rng, augmented=False)
        g.validate()
        assert g.n_tasks == 3 * 5 + 2

    def test_no_cross_links_is_sp(self, rng):
        g = random_pipeline_graph(4, 4, rng, cross_prob=0.0, augmented=False)
        assert is_series_parallel(g)
        assert sp_distance(g) == 0.0

    def test_cross_links_break_sp(self):
        g = random_pipeline_graph(
            4, 6, np.random.default_rng(3), cross_prob=1.0, augmented=False
        )
        assert not is_series_parallel(g)
        assert sp_distance(g) > 0.0

    @settings(max_examples=15, deadline=None)
    @given(
        width=st.integers(1, 5),
        depth=st.integers(1, 6),
        prob=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31),
    )
    def test_property_always_valid_dag(self, width, depth, prob, seed):
        g = random_pipeline_graph(
            width, depth, np.random.default_rng(seed), cross_prob=prob
        )
        g.validate()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            random_pipeline_graph(0, 3, rng)
        with pytest.raises(ValueError):
            random_pipeline_graph(2, 2, rng, cross_prob=1.5)
