"""Tests for the MappingEvaluator facade."""

import numpy as np
import pytest

from repro.evaluation import INFEASIBLE, MappingEvaluator
from repro.graphs import TaskGraph, augment
from repro.graphs.generators import random_sp_graph
from repro.platform import paper_platform
from tests.conftest import make_evaluator


class TestBasics:
    def test_shapes(self, small_evaluator):
        assert small_evaluator.n_tasks == 6
        assert small_evaluator.n_devices == 3
        assert small_evaluator.cpu_mapping().tolist() == [0] * 6

    def test_cpu_makespans_cached(self, small_evaluator):
        a = small_evaluator.cpu_construction_makespan
        b = small_evaluator.cpu_construction_makespan
        assert a == b > 0
        r = small_evaluator.cpu_reported_makespan
        assert r <= a * (1 + 1e-12)  # min over suite includes BFS

    def test_reported_never_above_construction(self, platform, rng):
        g = random_sp_graph(25, rng)
        ev = make_evaluator(g, platform, n_random=20)
        for _ in range(5):
            m = rng.integers(0, 3, size=ev.n_tasks)
            if not ev.is_feasible(m):
                continue
            assert ev.reported_makespan(m) <= ev.construction_makespan(m) * (
                1 + 1e-12
            )

    def test_evaluation_counter(self, small_evaluator):
        before = small_evaluator.n_evaluations
        small_evaluator.construction_makespan(small_evaluator.cpu_mapping())
        assert small_evaluator.n_evaluations == before + 1


class TestImprovement:
    def test_cpu_mapping_zero_improvement(self, small_evaluator):
        assert small_evaluator.relative_improvement(
            small_evaluator.cpu_mapping()
        ) == 0.0

    def test_improvement_in_unit_range(self, platform, rng):
        g = random_sp_graph(20, rng)
        ev = make_evaluator(g, platform)
        for _ in range(10):
            m = rng.integers(0, 3, size=ev.n_tasks)
            assert 0.0 <= ev.relative_improvement(m) < 1.0

    def test_deterioration_truncated_to_zero(self, platform):
        # a graph of purely sequential tasks: any GPU offload hurts
        g = TaskGraph()
        g.add_task(0, complexity=5.0, parallelizability=0.0)
        g.add_task(1, complexity=5.0, parallelizability=0.0)
        g.add_edge(0, 1, data_mb=500.0)
        ev = make_evaluator(g, platform)
        worse = np.array([0, 1])
        assert ev.reported_makespan(worse) > ev.cpu_reported_makespan
        assert ev.relative_improvement(worse) == 0.0

    def test_infeasible_mapping_zero_improvement(self, platform):
        g = TaskGraph()
        g.add_task(0, complexity=1.0, area=1e9)
        g.add_task(1, complexity=1.0)
        g.add_edge(0, 1)
        ev = make_evaluator(g, platform)
        m = np.array([2, 0])
        assert ev.reported_makespan(m) == INFEASIBLE
        assert ev.relative_improvement(m) == 0.0


class TestSuiteSharing:
    def test_same_suite_for_all_mappings(self, platform, rng):
        g = random_sp_graph(15, rng)
        ev = MappingEvaluator(
            g, platform, rng=np.random.default_rng(0), n_random_schedules=7
        )
        assert len(ev.suite) == 8
        # reported makespan is deterministic given the fixed suite
        m = rng.integers(0, 3, size=ev.n_tasks)
        if ev.is_feasible(m):
            assert ev.reported_makespan(m) == ev.reported_makespan(m)
