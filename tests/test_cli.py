"""Tests for the command-line interface (in-process, via cli.main)."""

import json

import numpy as np
import pytest

from repro.cli import MAPPER_FACTORIES, main
from repro.graphs.generators import random_sp_graph
from repro.io import save_graph


@pytest.fixture()
def graph_file(tmp_path, rng):
    g = random_sp_graph(12, rng)
    path = str(tmp_path / "graph.json")
    save_graph(g, path)
    return path


class TestGenerate:
    def test_sp_to_file(self, tmp_path, capsys):
        out = str(tmp_path / "g.json")
        assert main(["generate", "--kind", "sp", "--n", "15",
                     "--seed", "1", "-o", out]) == 0
        doc = json.loads(open(out).read())
        assert len(doc["tasks"]) == 15

    def test_almost_sp_stdout(self, capsys):
        assert main(["generate", "--kind", "almost-sp", "--n", "10",
                     "--extra-edges", "5", "--seed", "2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-taskgraph"

    def test_workflow_kind(self, tmp_path):
        out = str(tmp_path / "wf.json")
        assert main(["generate", "--kind", "blast", "--n", "20",
                     "-o", out]) == 0

    def test_unknown_kind(self, capsys):
        assert main(["generate", "--kind", "nope"]) == 2


class TestDecompose:
    def test_basic(self, graph_file, capsys):
        assert main(["decompose", graph_file]) == 0
        out = capsys.readouterr().out
        assert "forest:" in out
        assert "sp-distance 0.000" in out  # generated SP graph

    def test_trees_and_dot(self, graph_file, tmp_path, capsys):
        dot = str(tmp_path / "f.dot")
        assert main(["decompose", graph_file, "--trees", "--dot", dot]) == 0
        assert "tree 0 (core)" in capsys.readouterr().out
        assert open(dot).read().startswith("digraph")


class TestMapEvaluateCompare:
    def test_map_writes_mapping(self, graph_file, tmp_path, capsys):
        out = str(tmp_path / "m.json")
        assert main(["map", graph_file, "--algorithm", "sp-first-fit",
                     "--schedules", "5", "-o", out]) == 0
        doc = json.loads(open(out).read())
        assert doc["format"] == "repro-mapping"
        assert doc["algorithm"] == "SPFirstFit"

    def test_map_with_dot(self, graph_file, tmp_path):
        dot = str(tmp_path / "m.dot")
        assert main(["map", graph_file, "--algorithm", "heft",
                     "--schedules", "5", "--dot", dot]) == 0
        assert "fillcolor" in open(dot).read()

    def test_evaluate_roundtrip(self, graph_file, tmp_path, capsys):
        out = str(tmp_path / "m.json")
        main(["map", graph_file, "--algorithm", "sn-first-fit",
              "--schedules", "5", "-o", out])
        capsys.readouterr()
        assert main(["evaluate", graph_file, out, "--schedules", "5",
                     "--gantt"]) == 0
        text = capsys.readouterr().out
        assert "improvement" in text
        assert "ms" in text

    def test_compare(self, graph_file, capsys):
        assert main(["compare", graph_file, "--schedules", "5",
                     "--algorithms", "heft", "sp-first-fit"]) == 0
        out = capsys.readouterr().out
        assert "HEFT" in out and "SPFirstFit" in out


class TestRegistry:
    def test_all_factories_construct(self):
        for name, factory in MAPPER_FACTORIES.items():
            mapper = factory()
            assert hasattr(mapper, "map"), name

    def test_experiment_command_smoke(self, capsys, monkeypatch):
        # patch the driver to avoid a real sweep
        import repro.experiments.fig4 as fig4
        from repro.experiments.runner import SweepResult

        monkeypatch.setattr(
            fig4, "run",
            lambda scale="smoke", **kw: SweepResult("stub", "n", []),
        )
        assert main(["experiment", "fig4", "--scale", "smoke"]) == 0
        assert "stub" in capsys.readouterr().out
