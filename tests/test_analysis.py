"""Tests for the ``repro lint`` static-analysis framework.

Every rule gets a firing fixture and a passing fixture (driven through
:func:`repro.analysis.lint_sources`, the in-memory entry point), plus
coverage for inline suppressions, baselines, rule selection, the JSON
schema, the CLI exit statuses — and the meta-test that the repo's own
tree lints clean.
"""

import json
import subprocess
import sys

import pytest

from repro.analysis import (
    LintError,
    RuleSelectionError,
    all_rules,
    lint_sources,
    load_baseline,
    resolve_codes,
    rule_codes,
    run_lint,
    write_baseline,
)
from repro.analysis.core import ModuleContext
from repro.analysis.runner import JSON_SCHEMA_VERSION

# paths only matter for rule scoping: PKG is inside the repro package,
# OUT is a tests-style path outside it
PKG = "src/repro/mappers/fake.py"
OBS = "src/repro/obs/fake.py"
CLI = "src/repro/cli.py"
OUT = "tests/fake_test.py"


def findings_for(source, path=PKG, select=None):
    rules = all_rules(resolve_codes(select), None)
    report = lint_sources([(path, source)], rules)
    assert not report.errors
    return report.findings


def codes_for(source, path=PKG, select=None):
    return [f.code for f in findings_for(source, path, select)]


# ---------------------------------------------------------------------------
# rule registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_all_shipped_rules_registered(self):
        assert rule_codes() == [
            "CLI001", "DET001", "DET002", "EXC001",
            "KER001", "KER002", "OBS001", "PAR001", "PAR002", "TOL001",
        ]

    def test_unknown_code_rejected(self):
        with pytest.raises(RuleSelectionError):
            resolve_codes("DET001,NOPE99")

    def test_select_and_ignore(self):
        only = all_rules(resolve_codes("DET001,TOL001"), None)
        assert [r.code for r in only] == ["DET001", "TOL001"]
        rest = all_rules(None, resolve_codes("DET001"))
        assert "DET001" not in [r.code for r in rest]

    def test_every_rule_documents_its_contract(self):
        for rule in all_rules():
            assert rule.title, rule.code
            assert rule.contract, rule.code


# ---------------------------------------------------------------------------
# DET001 unseeded randomness
# ---------------------------------------------------------------------------

class TestDet001:
    def test_global_random_module(self):
        src = "import random\nx = random.random()\n"
        assert codes_for(src) == ["DET001"]

    def test_numpy_legacy_global(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert codes_for(src) == ["DET001"]

    def test_unseeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes_for(src) == ["DET001"]

    def test_seeded_default_rng_ok(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "ss = np.random.SeedSequence(1)\n"
        )
        assert codes_for(src) == []

    def test_from_import_resolved(self):
        src = "from numpy.random import default_rng\nr = default_rng()\n"
        assert codes_for(src) == ["DET001"]

    def test_outside_package_not_scoped(self):
        src = "import random\nx = random.random()\n"
        assert codes_for(src, path=OUT) == []


# ---------------------------------------------------------------------------
# DET002 wall clock
# ---------------------------------------------------------------------------

class TestDet002:
    def test_perf_counter_in_algorithm(self):
        src = "import time\nt = time.perf_counter()\n"
        assert "DET002" in codes_for(src)

    def test_datetime_now(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert "DET002" in codes_for(src)

    def test_obs_layer_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        assert codes_for(src, path=OBS) == []

    def test_cli_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        assert codes_for(src, path=CLI) == []

    def test_time_conversion_ok(self):
        src = "import time\ns = time.strftime('%H', time.gmtime(0.0))\n"
        assert codes_for(src) == []


# ---------------------------------------------------------------------------
# OBS001 write-only observability
# ---------------------------------------------------------------------------

class TestObs001:
    def test_snapshot_read_flagged(self):
        src = (
            "from repro.obs import metrics\n"
            "data = metrics.registry().snapshot()\n"
        )
        assert "OBS001" in codes_for(src)

    def test_spans_read_flagged(self):
        src = "def f(tracer):\n    return tracer.spans\n"
        assert "OBS001" in codes_for(src)

    def test_recording_ok(self):
        src = (
            "from repro.obs import metrics\n"
            "metrics.counter('runs').inc()\n"
        )
        assert codes_for(src) == []

    def test_obs_layer_may_read(self):
        src = "def f(tracer):\n    return tracer.spans\n"
        assert codes_for(src, path=OBS) == []


# ---------------------------------------------------------------------------
# CLI001 bare print
# ---------------------------------------------------------------------------

class TestCli001:
    def test_bare_print_flagged(self):
        assert codes_for("print('hi')\n") == ["CLI001"]

    def test_cli_module_exempt(self):
        assert codes_for("print('hi')\n", path=CLI) == []

    def test_reporter_ok(self):
        src = (
            "from repro.obs import get_reporter\n"
            "get_reporter().out('hi')\n"
        )
        assert codes_for(src) == []

    def test_shadowed_print_ok(self):
        src = "def f(print):\n    print('hi')\n"
        # a rebound local named print is technically fine; the rule
        # only looks at the global builtin name, accept the finding
        # either way as long as it does not crash
        findings_for(src)


# ---------------------------------------------------------------------------
# TOL001 tolerance literals
# ---------------------------------------------------------------------------

class TestTol001:
    def test_area_tol_literal_flagged(self):
        assert codes_for("TOL = 1e-9\n") == ["TOL001"]

    def test_area_band_literal_flagged(self):
        assert codes_for("BAND = 1e-6\n") == ["TOL001"]

    def test_costmodel_is_the_source(self):
        src = "AREA_TOL = 1e-9\n"
        path = "src/repro/evaluation/costmodel.py"
        assert codes_for(src, path=path) == []

    def test_other_literals_ok(self):
        assert codes_for("x = 1e-8\ny = 0.5\nn = 10\n") == []

    def test_integer_not_coerced(self):
        # int 0 must not compare equal to a guarded float via ==
        assert codes_for("n = 0\n") == []


# ---------------------------------------------------------------------------
# PAR001 picklable parallel_map callables
# ---------------------------------------------------------------------------

class TestPar001:
    def test_lambda_flagged(self):
        src = (
            "from repro.parallel import parallel_map\n"
            "r = parallel_map(lambda x: x, [1], workers=2)\n"
        )
        assert codes_for(src) == ["PAR001"]

    def test_nested_def_flagged(self):
        src = (
            "from repro.parallel import parallel_map\n"
            "def run():\n"
            "    def job(x):\n"
            "        return x\n"
            "    return parallel_map(job, [1], workers=2)\n"
        )
        assert codes_for(src) == ["PAR001"]

    def test_module_level_callable_ok(self):
        src = (
            "from repro.parallel import parallel_map\n"
            "def job(x):\n"
            "    return x\n"
            "r = parallel_map(job, [1], workers=2)\n"
        )
        assert codes_for(src) == []

    def test_applies_outside_package_too(self):
        src = (
            "from repro.parallel import parallel_map\n"
            "r = parallel_map(lambda x: x, [1])\n"
        )
        assert codes_for(src, path=OUT) == ["PAR001"]


# ---------------------------------------------------------------------------
# PAR002 bounded retries / no ad-hoc sleeps
# ---------------------------------------------------------------------------

class TestPar002:
    def test_time_sleep_in_algorithm_module(self):
        src = "import time\ntime.sleep(0.5)\n"
        assert codes_for(src, select="PAR002") == ["PAR002"]

    def test_sleep_alias_resolved(self):
        src = "from time import sleep\nsleep(1)\n"
        assert codes_for(src, select="PAR002") == ["PAR002"]

    def test_unbounded_retry_loop_flagged(self):
        src = (
            "while True:\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:\n"
            "        continue\n"
        )
        assert codes_for(src, select="PAR002") == ["PAR002"]

    def test_loop_with_break_ok(self):
        src = (
            "while True:\n"
            "    try:\n"
            "        work()\n"
            "        break\n"
            "    except ValueError:\n"
            "        continue\n"
        )
        assert codes_for(src, select="PAR002") == []

    def test_bounded_for_retry_ok(self):
        src = (
            "for attempt in range(3):\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:\n"
            "        continue\n"
        )
        assert codes_for(src, select="PAR002") == []

    def test_obs_and_cli_exempt(self):
        src = "import time\ntime.sleep(0.5)\n"
        assert codes_for(src, path=OBS, select="PAR002") == []
        assert codes_for(src, path=CLI, select="PAR002") == []

    def test_outside_package_ok(self):
        src = "import time\ntime.sleep(0.5)\n"
        assert codes_for(src, path=OUT, select="PAR002") == []

    def test_pragma_suppresses(self):
        src = "import time\ntime.sleep(0.5)  # repro-lint: disable=PAR002\n"
        assert codes_for(src, select="PAR002") == []


# ---------------------------------------------------------------------------
# EXC001 silent except
# ---------------------------------------------------------------------------

class TestExc001:
    def test_bare_except_flagged(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        assert codes_for(src) == ["EXC001"]

    def test_silent_typed_except_flagged(self):
        src = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert codes_for(src) == ["EXC001"]

    def test_handled_except_ok(self):
        src = "try:\n    f()\nexcept ValueError:\n    x = 1\n"
        assert codes_for(src) == []

    def test_reraise_ok(self):
        src = "try:\n    f()\nexcept ValueError:\n    raise\n"
        assert codes_for(src) == []


# ---------------------------------------------------------------------------
# KER001 C kernel constant mirrors
# ---------------------------------------------------------------------------

class TestKer001:
    def test_repo_kernel_is_consistent(self):
        from repro.evaluation._ckernel import source_consistency_problems

        assert source_consistency_problems() == []

    def test_rule_fires_when_check_reports(self, monkeypatch):
        from repro.analysis import rules as rules_mod
        from repro.evaluation import _ckernel

        monkeypatch.setattr(
            _ckernel, "source_consistency_problems",
            lambda: [(42, "FNV prime drifted")],
        )
        active = all_rules(resolve_codes("KER001"), None)
        path = "src/repro/evaluation/_ckernel.py"
        report = lint_sources([(path, "x = 1\n")], active)
        assert [f.code for f in report.findings] == ["KER001"]
        assert report.findings[0].line == 42
        assert "FNV prime drifted" in report.findings[0].message

    def test_rule_silent_for_other_modules(self):
        active = all_rules(resolve_codes("KER001"), None)
        report = lint_sources([(PKG, "x = 1\n")], active)
        assert report.findings == []

    def test_python_mirrors_pin_the_kernel_constants(self):
        from repro.evaluation.kernel import (
            DEDUP_FNV_OFFSET,
            DEDUP_FNV_PRIME,
            DEDUP_TABLE_FACTOR,
        )

        # the values the C kernel has hashed with since PR 4 — changing
        # either silently invalidates nothing at runtime (dedup only
        # needs internal consistency) but MUST update both sides
        assert DEDUP_FNV_OFFSET == 1469598103934665603
        assert DEDUP_FNV_PRIME == 1099511628211
        assert DEDUP_TABLE_FACTOR == 2


# ---------------------------------------------------------------------------
# KER002 C kernel stays topology-agnostic
# ---------------------------------------------------------------------------

class TestKer002:
    def test_repo_kernel_is_topology_agnostic(self):
        active = all_rules(resolve_codes("KER002"), None)
        path = "src/repro/evaluation/_ckernel.py"
        source = open(path).read()
        report = lint_sources([(path, source)], active)
        assert report.findings == []

    def test_rule_fires_on_routing_identifiers(self, monkeypatch):
        from repro.evaluation import _ckernel

        monkeypatch.setattr(
            _ckernel, "_C_SOURCE",
            "static double x;\nint hop_count = 0;\nint route_to[4];\n",
        )
        active = all_rules(resolve_codes("KER002"), None)
        path = "src/repro/evaluation/_ckernel.py"
        report = lint_sources([(path, "x = 1\n")], active)
        assert [f.code for f in report.findings] == ["KER002", "KER002"]
        assert report.findings[0].line == 2
        assert "'hop_count'" in report.findings[0].message or \
            "hop" in report.findings[0].message

    def test_rule_silent_for_other_modules(self):
        active = all_rules(resolve_codes("KER002"), None)
        report = lint_sources([(PKG, "x = 1\n")], active)
        assert report.findings == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

class TestSuppressions:
    def test_inline_disable(self):
        src = "print('x')  # repro-lint: disable=CLI001\n"
        report = lint_sources([(PKG, src)], all_rules())
        assert report.findings == []
        assert report.n_suppressed == 1

    def test_disable_only_named_code(self):
        src = "print('x')  # repro-lint: disable=TOL001\n"
        assert codes_for(src) == ["CLI001"]

    def test_multi_code_disable(self):
        src = (
            "import time\n"
            "t = print(time.time())"
            "  # repro-lint: disable=CLI001,DET002\n"
        )
        report = lint_sources([(PKG, src)], all_rules())
        assert report.findings == []
        assert report.n_suppressed == 2

    def test_suppression_is_line_scoped(self):
        src = (
            "print('a')  # repro-lint: disable=CLI001\n"
            "print('b')\n"
        )
        report = lint_sources([(PKG, src)], all_rules())
        assert [f.line for f in report.findings] == [2]


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

class TestBaseline:
    def test_roundtrip_subtracts_known_findings(self, tmp_path):
        # dir named "repro" so the package-scoped rules fire
        src_dir = tmp_path / "repro"
        src_dir.mkdir()
        f = src_dir / "mod.py"
        f.write_text("print('old debt')\n")
        base = tmp_path / "baseline.json"

        before = run_lint([str(src_dir)])
        assert [x.code for x in before.findings] == ["CLI001"]
        write_baseline(str(base), before.findings)

        after = run_lint([str(src_dir)], baseline=str(base))
        assert after.findings == []
        assert after.n_baselined == 1
        assert after.clean

    def test_new_debt_still_reported(self, tmp_path):
        src_dir = tmp_path / "repro"
        src_dir.mkdir()
        f = src_dir / "mod.py"
        f.write_text("print('old debt')\n")
        base = tmp_path / "baseline.json"
        write_baseline(str(base), run_lint([str(src_dir)]).findings)

        f.write_text("print('old debt')\nprint('new debt')\n")
        report = run_lint([str(src_dir)], baseline=str(base))
        assert [x.line for x in report.findings] == [2]

    def test_malformed_baseline_is_a_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(LintError):
            load_baseline(str(bad))


# ---------------------------------------------------------------------------
# runner / report plumbing
# ---------------------------------------------------------------------------

class TestRunner:
    def test_missing_path_raises(self):
        with pytest.raises(LintError):
            run_lint(["does/not/exist"])

    def test_syntax_error_reported_not_raised(self):
        report = lint_sources([(PKG, "def broken(:\n")], all_rules())
        assert report.errors and not report.clean

    def test_findings_sorted_and_deterministic(self):
        src = "print('b')\nprint('a')\n"
        r1 = lint_sources([(PKG, src), (OUT, "x = 1\n")], all_rules())
        r2 = lint_sources([(PKG, src), (OUT, "x = 1\n")], all_rules())
        assert [f.sort_key for f in r1.findings] == sorted(
            f.sort_key for f in r1.findings
        )
        assert [f.to_dict() for f in r1.findings] == [
            f.to_dict() for f in r2.findings
        ]

    def test_json_schema_stable(self):
        report = lint_sources([(PKG, "print('x')\n")], all_rules())
        doc = report.to_json()
        assert doc["version"] == JSON_SCHEMA_VERSION == 1
        assert sorted(doc) == [
            "counts", "findings", "n_files", "n_suppressed",
            "rules", "version",
        ]
        (entry,) = doc["findings"]
        assert sorted(entry) == ["code", "col", "line", "message", "path"]
        assert doc["counts"] == {"CLI001": 1}

    def test_pkg_relative_path_detection(self):
        assert ModuleContext(PKG, "").pkg_rel == "mappers/fake.py"
        assert ModuleContext(OUT, "").pkg_rel is None
        installed = "/x/site-packages/repro/evaluation/kernel.py"
        assert ModuleContext(installed, "").pkg_rel == "evaluation/kernel.py"


# ---------------------------------------------------------------------------
# CLI integration + the meta-test
# ---------------------------------------------------------------------------

def run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True, text=True,
    )


class TestCli:
    def test_repo_tree_lints_clean(self):
        # THE meta-test: the repo enforces its own invariants
        proc = run_cli("src", "tests", "benchmarks")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_findings_exit_1(self, tmp_path):
        # path outside the package: only unscoped rules apply, so use
        # a parallel_map violation, which fires everywhere
        bad = tmp_path / "bad.py"
        bad.write_text(
            "from repro.parallel import parallel_map\n"
            "parallel_map(lambda x: x, [1])\n"
        )
        proc = run_cli(str(bad))
        assert proc.returncode == 1
        assert "PAR001" in proc.stdout

    def test_unknown_rule_exit_2(self):
        proc = run_cli("--select", "NOPE99", "src")
        assert proc.returncode == 2

    def test_missing_path_exit_2(self):
        proc = run_cli("no/such/dir")
        assert proc.returncode == 2

    def test_json_reflects_ignore(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "from repro.parallel import parallel_map\n"
            "parallel_map(lambda x: x, [1])\n"
        )
        with_rule = json.loads(run_cli("--json", str(bad)).stdout)
        assert "PAR001" in with_rule["rules"]
        assert with_rule["counts"] == {"PAR001": 1}

        without = run_cli("--ignore", "PAR001", "--json", str(bad))
        assert without.returncode == 0
        doc = json.loads(without.stdout)
        assert "PAR001" not in doc["rules"]
        assert doc["findings"] == [] and doc["counts"] == {}

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for code in rule_codes():
            assert code in proc.stdout
