"""Tests for the energy model and the multi-objective mappers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import EnergyModel, INFEASIBLE, energy_joules
from repro.graphs import TaskGraph
from repro.graphs.generators import random_sp_graph
from repro.mappers import (
    EnergyAwareDecompositionMapper,
    ParetoNsgaIIMapper,
    sp_first_fit,
)
from repro.mappers.multiobjective import (
    crowding_distance,
    dominates,
    nondominated_sort,
)
from repro.platform import paper_platform
from tests.conftest import make_evaluator


class TestEnergyModel:
    def test_positive_for_any_feasible_mapping(self, platform, rng):
        g = random_sp_graph(15, rng)
        ev = make_evaluator(g, platform, n_random=5)
        em = EnergyModel(ev.model)
        for _ in range(5):
            m = rng.integers(0, 3, size=15)
            if ev.is_feasible(m):
                assert em.energy(m) > 0

    def test_infeasible(self, platform):
        g = TaskGraph()
        g.add_task(0, complexity=1.0, area=1e9)
        ev = make_evaluator(g, platform)
        em = EnergyModel(ev.model)
        assert em.energy([2]) == INFEASIBLE

    def test_fpga_saves_compute_energy(self, platform):
        """A long-running sequential task burns less on the 18 W FPGA."""
        g = TaskGraph()
        g.add_task(0, complexity=50.0, parallelizability=0.0,
                   streamability=10.0, area=5.0)
        ev = make_evaluator(g, platform)
        em = EnergyModel(ev.model)
        assert em.energy([2]) < em.energy([0])

    def test_transfer_energy_isolated(self):
        """On a zero-power platform, energy == transferred MB * J/MB exactly."""
        from repro.evaluation.energy import JOULES_PER_MB
        from repro.platform import Platform, cpu, gpu

        devices = [
            cpu("c", watts_active=0.0, watts_idle=0.0),
            gpu("g", watts_active=0.0, watts_idle=0.0),
        ]
        plat = Platform(
            devices,
            [[np.inf, 10.0], [10.0, np.inf]],
            [[0.0, 0.0], [0.0, 0.0]],
        )
        g = TaskGraph()
        g.add_task(0, complexity=1.0)
        g.add_task(1, complexity=1.0)
        g.add_edge(0, 1, data_mb=500.0)
        ev = make_evaluator(g, plat)
        em = EnergyModel(ev.model)
        # co-located on host: no transfers at all
        assert em.energy([0, 0]) == pytest.approx(0.0)
        # split: the 500 MB edge crosses PCIe
        assert em.energy([0, 1]) == pytest.approx(
            (500.0 + 100.0) * JOULES_PER_MB  # edge + sink return (capped 100)
        )
        # source offloaded: initial 100 MB in + 500 MB edge back
        assert em.energy([1, 0]) == pytest.approx(600.0 * JOULES_PER_MB)

    def test_makespan_reuse_matches_fresh(self, platform, rng):
        g = random_sp_graph(12, rng)
        ev = make_evaluator(g, platform, n_random=5)
        em = EnergyModel(ev.model)
        m = np.zeros(12, dtype=int)
        ms = ev.construction_makespan(m)
        assert em.energy(m, makespan=ms) == pytest.approx(em.energy(m))

    def test_one_shot_helper(self, platform, rng):
        g = random_sp_graph(10, rng)
        ev = make_evaluator(g, platform, n_random=5)
        m = np.zeros(10, dtype=int)
        assert energy_joules(ev.model, m) == pytest.approx(
            EnergyModel(ev.model).energy(m)
        )


class TestParetoPrimitives:
    def test_dominates(self):
        assert dominates([1, 1], [2, 2])
        assert dominates([1, 2], [2, 2])
        assert not dominates([2, 2], [2, 2])
        assert not dominates([1, 3], [2, 2])

    def test_nondominated_sort_fronts(self):
        objs = np.array([[1, 4], [2, 3], [3, 3], [4, 1], [4, 4]])
        fronts = nondominated_sort(objs)
        assert set(fronts[0]) == {0, 1, 3}
        assert set(fronts[1]) == {2}
        assert set(fronts[2]) == {4}

    def test_sort_partitions_everything(self):
        rng = np.random.default_rng(0)
        objs = rng.random((30, 2))
        fronts = nondominated_sort(objs)
        flat = [i for f in fronts for i in f]
        assert sorted(flat) == list(range(30))

    def test_front_zero_is_nondominated(self):
        rng = np.random.default_rng(1)
        objs = rng.random((25, 2))
        front0 = nondominated_sort(objs)[0]
        for i in front0:
            assert not any(
                dominates(objs[j], objs[i]) for j in range(25) if j != i
            )

    def test_crowding_extremes_infinite(self):
        objs = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        dist = crowding_distance(objs)
        assert np.isinf(dist[0]) and np.isinf(dist[3])
        assert np.isfinite(dist[1]) and np.isfinite(dist[2])

    def test_crowding_tiny_front(self):
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0]]))))


class TestParetoMapper:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            ParetoNsgaIIMapper(generations=0)

    def test_front_is_nondominated_and_sorted(self, platform):
        g = random_sp_graph(15, np.random.default_rng(2))
        ev = make_evaluator(g, platform, n_random=5)
        mapper = ParetoNsgaIIMapper(generations=15, population_size=24)
        res = mapper.map(ev, rng=np.random.default_rng(3))
        front = mapper.last_front_
        assert len(front) >= 1
        ms = [p[1] for p in front]
        en = [p[2] for p in front]
        assert ms == sorted(ms)
        # sorted by makespan => energies must be non-increasing on a front
        assert all(a >= b - 1e-9 for a, b in zip(en, en[1:]))
        assert res.stats["front_size"] >= 1

    def test_front_mappings_feasible(self, platform):
        g = random_sp_graph(12, np.random.default_rng(4))
        ev = make_evaluator(g, platform, n_random=5)
        mapper = ParetoNsgaIIMapper(generations=10, population_size=16)
        mapper.map(ev, rng=np.random.default_rng(5))
        for mapping, _, _ in mapper.last_front_:
            assert ev.is_feasible(mapping)

    def test_deterministic(self, platform):
        g = random_sp_graph(10, np.random.default_rng(6))
        ev = make_evaluator(g, platform, n_random=5)
        m = ParetoNsgaIIMapper(generations=8, population_size=16)
        a = m.map(ev, rng=np.random.default_rng(7)).mapping
        b = m.map(ev, rng=np.random.default_rng(7)).mapping
        assert np.array_equal(a, b)


class TestEnergyAwareDecomposition:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EnergyAwareDecompositionMapper(alpha=1.5)

    def test_alpha_one_equals_plain_mapper(self, platform):
        g = random_sp_graph(18, np.random.default_rng(8))
        ev = make_evaluator(g, platform, n_random=5)
        plain = sp_first_fit().map(ev, rng=np.random.default_rng(9))
        aware = EnergyAwareDecompositionMapper(alpha=1.0).map(
            ev, rng=np.random.default_rng(9)
        )
        assert np.array_equal(plain.mapping, aware.mapping)

    def test_low_alpha_trades_makespan_for_energy(self, platform):
        g = random_sp_graph(25, np.random.default_rng(10))
        ev = make_evaluator(g, platform, n_random=5)
        em = EnergyModel(ev.model)
        fast = EnergyAwareDecompositionMapper(alpha=1.0).map(
            ev, rng=np.random.default_rng(11)
        )
        frugal = EnergyAwareDecompositionMapper(alpha=0.0).map(
            ev, rng=np.random.default_rng(11)
        )
        e_fast = em.energy(fast.mapping)
        e_frugal = em.energy(frugal.mapping)
        assert e_frugal <= e_fast + 1e-9
        assert frugal.makespan >= fast.makespan - 1e-9

    @settings(max_examples=6, deadline=None)
    @given(
        alpha=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31),
    )
    def test_feasible_for_any_alpha(self, alpha, seed):
        g = random_sp_graph(12, np.random.default_rng(seed))
        ev = make_evaluator(g, paper_platform(), seed=seed, n_random=3)
        res = EnergyAwareDecompositionMapper(alpha=alpha).map(
            ev, rng=np.random.default_rng(seed)
        )
        assert ev.is_feasible(res.mapping)
