"""The observability backbone's hard contracts.

Four pins, matching the guarantees documented in ``repro/obs/__init__``:

1. **Round trip** — a Chrome trace-event export reconstructs to the
   same span records (names, categories, lanes, args, durations,
   relative starts), driven by a deterministic fake clock.
2. **Deterministic merge** — ``parallel_map`` with ``workers=1`` and
   ``workers=N`` produces the *same* merged span structure and the
   *same* metrics snapshot.
3. **No-op path** — with observability off, ``span()`` returns a shared
   singleton (no allocation) and nothing is recorded anywhere.
4. **Bit-identical results** — enabling tracing + metrics changes no
   numeric output of any mapper or the runtime engine.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.evaluation import MappingEvaluator
from repro.graphs.generators import random_sp_graph
from repro.io import graph_to_dict, mapping_to_dict
from repro.mappers import HeftMapper, SimulatedAnnealingMapper, sp_first_fit
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import _NOOP, Tracer
from repro.parallel import parallel_map
from repro.platform import paper_platform
from repro.runtime import simulate_mapping


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability disabled."""
    obs.shutdown()
    yield
    obs.shutdown()


class FakeClock:
    """Monotonic integer clock advancing a fixed step per read."""

    def __init__(self, step_ns: int = 1000) -> None:
        self.t = 0
        self.step = step_ns

    def __call__(self) -> int:
        self.t += self.step
        return self.t


# ---------------------------------------------------------------------------
# 1. Chrome export round trip
# ---------------------------------------------------------------------------
class TestChromeRoundTrip:
    def _sample_tracer(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", "phase", {"n": 3}):
            with tracer.span("inner", "phase"):
                pass
            tracer.instant("marker", "event", {"kind": "tick"})
        lane = tracer.alloc_lane("worker 0")
        tracer.lane = lane
        with tracer.span("worker.item", "work"):
            pass
        tracer.lane = 0
        return tracer

    def test_spans_survive_round_trip(self):
        tracer = self._sample_tracer()
        doc = obs.to_chrome(tracer)
        got = obs.spans_from_chrome(doc)
        t_min = min(s[2] for s in tracer.spans)
        want = [
            (name, cat, t0 - t_min, dur, lane, args)
            for name, cat, t0, dur, lane, args in tracer.spans
        ]
        # to_chrome emits spans in record order; relative layout is exact
        assert got == want

    def test_document_shape(self):
        tracer = self._sample_tracer()
        doc = obs.to_chrome(tracer, process_name="test-proc")
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        phases = {ev["ph"] for ev in events}
        assert phases == {"M", "X", "i"}
        names = {
            ev["args"]["name"] for ev in events if ev["ph"] == "M"
        }
        assert {"test-proc", "main", "worker 0"} <= names
        instants = [ev for ev in events if ev["ph"] == "i"]
        assert instants[0]["name"] == "marker"
        assert instants[0]["s"] == "t"

    def test_write_chrome_is_valid_json(self, tmp_path):
        tracer = self._sample_tracer()
        path = str(tmp_path / "trace.json")
        obs.write_chrome(tracer, path)
        doc = json.loads(open(path).read())
        assert obs.spans_from_chrome(doc) == obs.spans_from_chrome(
            obs.to_chrome(tracer)
        )

    def test_phase_totals(self):
        tracer = Tracer(clock=FakeClock(10))
        for _ in range(3):
            with tracer.span("a"):
                pass
        with tracer.span("b"):
            pass
        totals = tracer.phase_totals()
        assert list(totals) == ["a", "b"]
        assert totals["a"] == (3, 30)
        assert totals["b"] == (1, 10)


# ---------------------------------------------------------------------------
# 2. metrics registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram_snapshot(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        h = reg.histogram("h")
        h.observe_int(0)
        h.observe_int(5)
        h.observe(12.5)
        snap = reg.snapshot()
        assert snap["c"] == 5
        assert snap["g"] == {"gauge": 2.5}
        assert snap["h"]["n"] == 3
        assert snap["h"]["total"] == 17.5
        # 0 -> bucket 0, 5 -> bucket 3, 12 -> bucket 4
        assert snap["h"]["buckets"] == [1, 0, 0, 1, 1]

    def test_merge_reconstructs_kinds(self):
        a = obs_metrics.MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(1.0)
        a.histogram("h").observe(3)
        b = obs_metrics.MetricsRegistry()
        b.counter("c").inc(3)
        b.gauge("g").set(7.0)
        b.histogram("h").observe(4)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["c"] == 5
        assert snap["g"] == {"gauge": 7.0}  # merge keeps the max
        assert snap["h"]["n"] == 2
        assert snap["h"]["min"] == 3 and snap["h"]["max"] == 4
        # merging into an empty registry creates the right instrument kinds
        c = obs_metrics.MetricsRegistry()
        c.merge(snap)
        assert type(c.gauge("g")) is obs_metrics.Gauge
        assert type(c.counter("c")) is obs_metrics.Counter

    def test_kind_collision_raises(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")


# ---------------------------------------------------------------------------
# 3. no-op path when disabled
# ---------------------------------------------------------------------------
class TestNoopPath:
    def test_span_returns_shared_singleton(self):
        assert not obs.enabled()
        s1 = obs.span("anything", "cat", {"k": 1})
        s2 = obs.span("else")
        assert s1 is _NOOP and s2 is _NOOP
        with s1:
            pass  # enters and exits without effect

    def test_instant_is_noop(self):
        obs.instant("nothing")  # must not raise, records nowhere
        assert obs.get_tracer() is None
        assert obs.get_registry() is None

    def test_observe_shutdown_round_trip(self):
        tracer, registry = obs.observe()
        assert obs.enabled()
        with obs.span("x"):
            pass
        got_tracer, got_registry = obs.shutdown()
        assert got_tracer is tracer and got_registry is registry
        assert len(tracer.spans) == 1
        assert not obs.enabled()

    def test_observing_context_manager(self):
        with obs.observing() as (tracer, registry):
            with obs.span("y"):
                pass
            obs.get_registry().counter("n").inc()
        assert not obs.enabled()
        assert tracer.spans[0][0] == "y"
        assert registry.snapshot()["n"] == 1


# ---------------------------------------------------------------------------
# 4. deterministic multi-worker merge
# ---------------------------------------------------------------------------
def _obs_pool_worker(item):
    """Module-level (picklable) worker that records a span + metrics."""
    with obs_trace.span("work.item", "test"):
        registry = obs_metrics.get_registry()
        if registry is not None:
            registry.counter("work.items").inc()
            registry.histogram("work.size").observe_int(item)
    return item * 2


def _run_observed_pool(workers: int):
    obs.observe()
    try:
        results = parallel_map(
            _obs_pool_worker, [3, 5, 9], workers=workers, label="work"
        )
    finally:
        tracer, registry = obs.shutdown()
    structure = [(name, cat, lane) for name, cat, _t0, _dur, lane, _a
                 in tracer.spans]
    return results, structure, dict(tracer.lane_labels), registry.snapshot()


class TestWorkerMerge:
    def test_serial_and_pooled_traces_agree(self):
        serial = _run_observed_pool(workers=1)
        pooled = _run_observed_pool(workers=2)
        assert serial == pooled
        results, structure, labels, snap = serial
        assert results == [6, 10, 18]
        # one lane per item, in submission order
        assert structure == [
            ("work.item", "test", 1),
            ("work.item", "test", 2),
            ("work.item", "test", 3),
        ]
        assert labels == {0: "main", 1: "work 0", 2: "work 1", 3: "work 2"}
        assert snap["work.items"] == 3
        assert snap["work.size"]["n"] == 3
        assert snap["work.size"]["total"] == 17

    def test_unobserved_pool_results_match(self):
        plain = parallel_map(_obs_pool_worker, [3, 5, 9], workers=2)
        assert plain == [6, 10, 18]


# ---------------------------------------------------------------------------
# 5. bit-identical numeric outputs with observability on
# ---------------------------------------------------------------------------
def _map_once(mapper_factory, observed: bool):
    g = random_sp_graph(30, np.random.default_rng(7))
    ev = MappingEvaluator(
        g, paper_platform(), rng=np.random.default_rng(5),
        n_random_schedules=10,
    )
    if observed:
        obs.observe()
    try:
        result = mapper_factory().map(ev, rng=np.random.default_rng(42))
    finally:
        if observed:
            obs.shutdown()
    return list(result.mapping), result.makespan, result.n_evaluations


class TestBitIdentical:
    @pytest.mark.parametrize("factory", [
        sp_first_fit,
        lambda: SimulatedAnnealingMapper(iterations=300),
        HeftMapper,
    ], ids=["sp_first_fit", "annealing", "heft"])
    def test_mapper_trajectory_unchanged(self, factory):
        off = _map_once(factory, observed=False)
        on = _map_once(factory, observed=True)
        assert off == on

    def test_engine_trace_unchanged(self):
        g = random_sp_graph(20, np.random.default_rng(3))
        platform = paper_platform()
        mapping = [0] * g.n_tasks
        off = simulate_mapping(g, platform, mapping, rng=11)
        obs.observe()
        try:
            on = simulate_mapping(g, platform, mapping, rng=11)
        finally:
            tracer, registry = obs.shutdown()
        assert off.makespan == on.makespan
        assert [
            (t.task, t.device, t.start, t.finish) for t in off.tasks
        ] == [(t.task, t.device, t.start, t.finish) for t in on.tasks]
        # the observed run actually recorded the engine span + metrics
        assert any(s[0] == "engine.run" for s in tracer.spans)
        assert registry.snapshot()["runtime.runs"] == 1


# ---------------------------------------------------------------------------
# 6. simulated-time engine timeline
# ---------------------------------------------------------------------------
class TestTimeline:
    def test_runtime_trace_to_chrome_events(self):
        g = random_sp_graph(15, np.random.default_rng(4))
        platform = paper_platform()
        trace = simulate_mapping(g, platform, [0] * g.n_tasks, rng=2)
        events = obs.runtime_trace_to_chrome_events(trace, platform)
        assert all(ev["pid"] == 1 for ev in events)
        task_events = [ev for ev in events
                       if ev["ph"] == "X" and ":t" in ev.get("name", "")]
        assert len(task_events) == g.n_tasks
        # device lanes carry the platform's device names
        thread_names = {
            ev["args"]["name"] for ev in events
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert "jobs" in thread_names
        assert any(d.name in thread_names for d in platform.devices)


# ---------------------------------------------------------------------------
# 7. CLI: env / profile / --trace / volume flags
# ---------------------------------------------------------------------------
class TestCli:
    @pytest.fixture()
    def graph_file(self, tmp_path):
        g = random_sp_graph(15, np.random.default_rng(1))
        path = tmp_path / "graph.json"
        path.write_text(json.dumps(graph_to_dict(g)))
        return str(path)

    def test_env(self, capsys):
        assert cli_main(["env"]) == 0
        out = capsys.readouterr().out
        assert "python" in out and "kernel" in out

    def test_env_json(self, capsys):
        assert cli_main(["env", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kernel"] in ("c", "python")
        assert "numpy" in doc

    def test_profile_mapper_only(self, graph_file, tmp_path, capsys):
        trace_path = str(tmp_path / "profile.json")
        rc = cli_main([
            "profile", graph_file, "--algorithm", "sp-first-fit",
            "--schedules", "10", "--trace", trace_path,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase" in out and "mapper.run" in out
        assert "metrics" in out
        doc = json.loads(open(trace_path).read())
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert {"mapper.run", "mapper.decompose"} <= names

    def test_profile_with_engine_stream(self, graph_file, tmp_path, capsys):
        trace_path = str(tmp_path / "profile.json")
        rc = cli_main([
            "profile", graph_file, "--schedules", "10",
            "--arrivals", "3", "--period", "0.05", "--trace", trace_path,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine.run" in out and "stream" in out
        doc = json.loads(open(trace_path).read())
        pids = {ev["pid"] for ev in doc["traceEvents"]}
        assert pids == {0, 1}  # wall clock + simulated timeline

    def test_simulate_trace_flag(self, graph_file, tmp_path, capsys):
        g_doc = json.loads(open(graph_file).read())
        from repro.io import load_graph

        g = load_graph(graph_file)
        platform = paper_platform()
        mpath = tmp_path / "mapping.json"
        mpath.write_text(json.dumps(
            mapping_to_dict(g, platform, [0] * g.n_tasks)
        ))
        trace_path = str(tmp_path / "run.json")
        rc = cli_main([
            "simulate", graph_file, str(mpath), "--trace", trace_path,
        ])
        assert rc == 0
        assert "perfetto" in capsys.readouterr().out
        doc = json.loads(open(trace_path).read())
        pids = {ev["pid"] for ev in doc["traceEvents"]}
        assert pids == {0, 1}
        assert g_doc["tasks"]  # graph file untouched by tracing

    def test_quiet_suppresses_report(self, graph_file, capsys):
        rc = cli_main(["--quiet", "profile", graph_file,
                       "--schedules", "10"])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        # restore default volume for subsequent tests in this process
        cli_main(["env"])
        assert capsys.readouterr().out != ""

    def test_verbose_shows_progress(self, capsys):
        rc = cli_main(["--verbose", "experiment", "fig4",
                       "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "done" in out  # progress ticks surface at --verbose
        cli_main(["env"])
        capsys.readouterr()
