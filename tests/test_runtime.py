"""Runtime engine behaviour: noise, seeds, scenarios, streams, CLI.

The zero-noise equivalence invariant lives in
``tests/test_runtime_equivalence.py``; this module covers everything the
engine adds *beyond* the analytic model — the reproducibility contract
(same seed, same trace), the perturbation distributions, device
slowdown/failure replanning, arrival-stream serving, and the ``repro
simulate`` CLI verb end to end.
"""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.evaluation import CostModel, MappingEvaluator, render_gantt
from repro.graphs.generators import random_sp_graph
from repro.io import graph_to_dict, mapping_to_dict
from repro.mappers import HeftMapper
from repro.platform import paper_platform
from repro.runtime import (
    DeviceFailed,
    DeviceFailure,
    DeviceSlowdown,
    GammaNoise,
    Job,
    JobArrived,
    JobCompleted,
    LognormalNoise,
    NoNoise,
    RuntimeEngine,
    TaskFinished,
    TaskKilled,
    TaskReady,
    TaskRemapped,
    TaskStarted,
    periodic_stream,
    poisson_stream,
    replicate,
    robustness_report,
    simulate_mapping,
    throughput_report,
)


@pytest.fixture(scope="module")
def setup():
    platform = paper_platform()
    graph = random_sp_graph(35, np.random.default_rng(2))
    ev = MappingEvaluator(graph, platform, n_random_schedules=5)
    mapping = HeftMapper().map(ev).mapping
    return platform, graph, mapping, ev.model


def _trace_signature(trace):
    return [
        (t.task, t.device, t.slot, t.start, t.finish) for t in trace.tasks
    ]


# ---------------------------------------------------------------------------
# seed determinism (the reproducibility contract)
# ---------------------------------------------------------------------------
class TestSeedDeterminism:
    def test_same_seed_identical_trace(self, setup):
        platform, graph, mapping, _ = setup
        noise = LognormalNoise(0.3, transfer_sigma=0.1)
        a = simulate_mapping(graph, platform, mapping, noise=noise, rng=42)
        b = simulate_mapping(graph, platform, mapping, noise=noise, rng=42)
        assert a.makespan == b.makespan
        assert _trace_signature(a) == _trace_signature(b)
        assert [e.kind for e in a.events] == [e.kind for e in b.events]

    def test_different_seeds_distinct_traces(self, setup):
        platform, graph, mapping, _ = setup
        noise = LognormalNoise(0.3)
        a = simulate_mapping(graph, platform, mapping, noise=noise, rng=1)
        b = simulate_mapping(graph, platform, mapping, noise=noise, rng=2)
        assert a.makespan != b.makespan

    def test_zero_noise_ignores_seed(self, setup):
        platform, graph, mapping, _ = setup
        a = simulate_mapping(graph, platform, mapping, rng=1)
        b = simulate_mapping(graph, platform, mapping, rng=999)
        assert _trace_signature(a) == _trace_signature(b)

    def test_replicate_reproducible(self, setup):
        platform, graph, mapping, _ = setup
        kw = dict(n=5, noise=GammaNoise(0.25), seed=9)
        ms_a = [t.makespan for t in replicate(graph, platform, mapping, **kw)]
        ms_b = [t.makespan for t in replicate(graph, platform, mapping, **kw)]
        assert ms_a == ms_b
        assert len(set(ms_a)) == 5  # replications differ from each other


# ---------------------------------------------------------------------------
# perturbation models
# ---------------------------------------------------------------------------
class TestNoiseModels:
    @pytest.mark.parametrize(
        "noise",
        [LognormalNoise(0.4), GammaNoise(0.4)],
        ids=["lognormal", "gamma"],
    )
    def test_factors_mean_one(self, noise):
        rng = np.random.default_rng(0)
        samples = np.array([noise.exec_factor(rng) for _ in range(20000)])
        assert samples.min() > 0
        assert samples.mean() == pytest.approx(1.0, abs=0.02)

    def test_zero_levels_are_exact(self):
        rng = np.random.default_rng(0)
        assert LognormalNoise(0.0).exec_factor(rng) == 1.0
        assert GammaNoise(0.3).transfer_factor(rng) == 1.0  # transfer_cv=0
        assert NoNoise().deterministic
        assert LognormalNoise(0.0).deterministic
        assert GammaNoise(0.0).deterministic
        assert not LognormalNoise(0.0, transfer_sigma=0.1).deterministic

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            LognormalNoise(-0.1)
        with pytest.raises(ValueError):
            GammaNoise(0.1, transfer_cv=-1.0)

    def test_noisy_runs_bracket_analytic(self, setup):
        platform, graph, mapping, model = setup
        analytic = model.simulate(list(mapping))
        report = robustness_report(
            replicate(graph, platform, mapping, n=30,
                      noise=LognormalNoise(0.2), seed=4),
            analytic,
        )
        assert report.best < analytic < report.worst
        assert report.p50 <= report.p95 <= report.worst
        assert report.degradation > -0.5  # sane scale


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------
class TestScenarios:
    def test_slowdown_on_used_device_hurts(self, setup):
        platform, graph, mapping, model = setup
        base = model.simulate(list(mapping))
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceSlowdown(0.0, device=1, factor=4.0)],
        )
        assert 1 in set(np.asarray(mapping))
        assert trace.makespan > base

    def test_slowdown_before_start_equals_scaled_platform(self, setup):
        """A slowdown at t=0 must equal analytically scaling the device."""
        platform, graph, mapping, model = setup
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceSlowdown(0.0, device=0, factor=2.0)],
        )
        cpu_tasks = [t for t in trace.tasks if t.device == 0]
        for t in cpu_tasks:
            i = t.index
            nominal = model._exec[i][0]  # noqa: SLF001
            if t.finish > t.start:  # not drain-extended
                assert t.finish - t.start == pytest.approx(2.0 * nominal)

    def test_failure_at_zero_equals_analytic_remap(self, setup):
        platform, graph, mapping, model = setup
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceFailure(0.0, device=1)],
        )
        remapped = [0 if d == 1 else int(d) for d in mapping]
        assert trace.makespan == model.simulate(remapped)

    def test_mid_run_failure_completes_off_device(self, setup):
        platform, graph, mapping, model = setup
        t_fail = 0.5 * model.simulate(list(mapping))
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceFailure(t_fail, device=1)],
        )
        assert len(trace.tasks) == graph.n_tasks
        assert any(isinstance(e, DeviceFailed) for e in trace.events)
        # nothing may run on the failed device after the failure instant
        for t in trace.tasks:
            if t.device == 1:
                assert t.start <= t_fail
        # decisions made before the failure are never rewritten
        finished_before = [
            e for e in trace.events
            if isinstance(e, TaskFinished) and e.time <= t_fail
        ]
        assert finished_before, "expected some work to finish pre-failure"

    def test_killed_tasks_reexecute(self):
        """A long task running on the failing device is killed + restarted."""
        platform = paper_platform()
        graph = random_sp_graph(20, np.random.default_rng(6))
        mapping = [1] * graph.n_tasks  # everything on the GPU
        model = CostModel(graph, platform)
        t_fail = 0.3 * model.simulate(list(mapping))
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceFailure(t_fail, device=1)],
        )
        assert trace.n_killed >= 1
        assert any(isinstance(e, TaskKilled) for e in trace.events)
        assert any(isinstance(e, TaskRemapped) for e in trace.events)
        assert all(t.device == 0 or t.finish <= t_fail for t in trace.tasks)
        assert trace.jobs[0].completion < float("inf")

    def test_failure_remap_respects_area_budget(self):
        """Work stranded by failures never lands on a full FPGA."""
        platform = paper_platform()
        graph = random_sp_graph(40, np.random.default_rng(9))
        capacity = platform.area_capacities()[2]
        for t in graph.tasks():
            graph.params(t).area = capacity / 3  # FPGA fits at most 3 tasks
        mapping = [0] * graph.n_tasks
        model = CostModel(graph, platform)
        t_fail = 0.4 * model.simulate(list(mapping))
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceFailure(t_fail, device=0)],
        )
        final = [0] * graph.n_tasks
        for t in trace.tasks:
            final[t.index] = t.device
        assert model.is_feasible(final)
        assert sum(1 for d in final if d == 2) <= 3

    def test_failure_remap_infeasible_raises(self):
        """If no surviving device can host the work, fail loudly."""
        platform = paper_platform()
        graph = random_sp_graph(12, np.random.default_rng(4))
        capacity = platform.area_capacities()[2]
        for t in graph.tasks():
            graph.params(t).area = capacity  # each task fills the FPGA
        mapping = [0] * graph.n_tasks
        with pytest.raises(RuntimeError, match="area budget"):
            simulate_mapping(
                graph, platform, mapping,
                scenarios=[
                    DeviceFailure(0.0, device=0),
                    DeviceFailure(0.0, device=1),
                ],
            )

    def test_failure_after_completion_is_noop(self, setup):
        """Devices failing after all work is done don't abort the trace."""
        platform, graph, mapping, model = setup
        base = model.simulate(list(mapping))
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceFailure(base * 10, device=d)
                       for d in range(platform.n_devices)],
        )
        assert trace.makespan == base
        assert trace.n_killed == 0

    def test_remapped_tasks_reannounce_ready_on_new_device(self):
        """The last TaskReady of a remapped task names its actual device."""
        platform = paper_platform()
        graph = random_sp_graph(20, np.random.default_rng(6))
        mapping = [1] * graph.n_tasks
        model = CostModel(graph, platform)
        t_fail = 0.3 * model.simulate(list(mapping))
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceFailure(t_fail, device=1)],
        )
        last_ready = {}
        for e in trace.events:
            if isinstance(e, TaskReady):
                last_ready[e.task] = e.device
        for t in trace.tasks:
            assert last_ready[t.task] == t.device

    def test_job_arrived_precedes_its_other_events(self):
        """No per-job event (incl. arrival-time remaps) before JobArrived."""
        platform = paper_platform()
        graph = random_sp_graph(15, np.random.default_rng(8))
        model = CostModel(graph, platform)
        base = model.simulate([1] * graph.n_tasks)
        jobs = [
            Job(graph, [1] * graph.n_tasks, arrival=0.0, name="first"),
            Job(graph, [1] * graph.n_tasks, arrival=3 * base, name="late"),
        ]
        engine = RuntimeEngine(
            platform, scenarios=[DeviceFailure(2 * base, device=1)]
        )
        trace = engine.run(jobs)
        arrived = set()
        for e in trace.events:
            job = getattr(e, "job", None)
            if job is None:
                continue
            if isinstance(e, JobArrived):
                arrived.add(e.job)
            else:
                assert e.job in arrived, f"{e} before JobArrived({e.job})"
        assert arrived == {"first", "late"}
        assert any(isinstance(e, TaskRemapped) and e.job == "late"
                   for e in trace.events)

    def test_fallback_device_honored(self):
        platform = paper_platform()
        graph = random_sp_graph(15, np.random.default_rng(8))
        mapping = [1] * graph.n_tasks
        trace = simulate_mapping(
            graph, platform, mapping,
            scenarios=[DeviceFailure(0.0, device=1, fallback=2)],
        )
        remaps = [e for e in trace.events if isinstance(e, TaskRemapped)]
        assert remaps and all(e.to_device == 2 for e in remaps)

    def test_scenario_validation(self):
        platform = paper_platform()
        with pytest.raises(ValueError):
            RuntimeEngine(platform, scenarios=[DeviceFailure(0.0, device=9)])
        with pytest.raises(ValueError):
            DeviceFailure(0.0, device=1, fallback=1)
        with pytest.raises(ValueError):
            DeviceSlowdown(0.0, device=0, factor=0.0)
        with pytest.raises(ValueError):
            DeviceSlowdown(-1.0, device=0, factor=2.0)


# ---------------------------------------------------------------------------
# arrival streams / throughput serving
# ---------------------------------------------------------------------------
class TestArrivalStreams:
    def test_contended_stream_fifo_latency_grows(self, setup):
        platform, graph, mapping, model = setup
        base = model.simulate(list(mapping))
        jobs = periodic_stream(graph, mapping, 4, period=base / 4)
        trace = RuntimeEngine(platform).run(jobs)
        latencies = [j.makespan for j in trace.jobs]
        assert latencies[0] == base
        assert latencies[-1] > latencies[0]  # queueing under contention
        report = throughput_report(trace)
        assert report.n_jobs == 4
        assert 0 < report.jobs_per_second < float("inf")
        assert report.latency_worst == max(latencies)
        done = [e for e in trace.events if isinstance(e, JobCompleted)]
        assert len(done) == 4

    def test_poisson_stream_generation(self, setup):
        platform, graph, mapping, _ = setup
        rng = np.random.default_rng(0)
        jobs = poisson_stream(graph, mapping, 6, rate=5.0, rng=rng)
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0
        trace = RuntimeEngine(platform).run(jobs)
        assert all(j.completion >= j.arrival for j in trace.jobs)

    def test_stream_helpers_validate(self, setup):
        _, graph, mapping, _ = setup
        with pytest.raises(ValueError):
            periodic_stream(graph, mapping, 0, period=1.0)
        with pytest.raises(ValueError):
            poisson_stream(graph, mapping, 3, rate=0.0,
                           rng=np.random.default_rng(0))


# ---------------------------------------------------------------------------
# traces, state machine, and validation
# ---------------------------------------------------------------------------
class TestTraceAndValidation:
    def test_event_state_machine_order(self, setup):
        platform, graph, mapping, _ = setup
        trace = simulate_mapping(graph, platform, mapping,
                                 noise=LognormalNoise(0.2), rng=5)
        seen = {}
        for e in trace.events:
            if isinstance(e, (TaskReady, TaskStarted, TaskFinished)):
                seen.setdefault(e.task, []).append(type(e).__name__)
        assert len(seen) == graph.n_tasks
        for task, kinds in seen.items():
            assert kinds == ["TaskReady", "TaskStarted", "TaskFinished"]

    def test_event_log_time_ordered(self, setup):
        platform, graph, mapping, _ = setup
        trace = simulate_mapping(graph, platform, mapping,
                                 noise=GammaNoise(0.3), rng=3)
        times = [e.time for e in trace.events]
        assert times == sorted(times)

    def test_trace_renders_gantt(self, setup):
        platform, graph, mapping, model = setup
        trace = simulate_mapping(graph, platform, mapping)
        art = render_gantt(trace, model)
        assert "|" in art and len(art.splitlines()) > 3

    def test_device_busy_accounting(self, setup):
        platform, graph, mapping, _ = setup
        trace = simulate_mapping(graph, platform, mapping)
        assert len(trace.device_busy) == platform.n_devices
        assert sum(trace.device_busy) > 0
        assert all(b <= trace.makespan * d.slots + 1e-9 or not d.serializes
                   for b, d in zip(trace.device_busy, platform.devices))

    def test_infeasible_mapping_rejected(self):
        platform = paper_platform()
        graph = random_sp_graph(30, np.random.default_rng(1))
        for t in graph.tasks():
            graph.params(t).area = 50.0  # far beyond FPGA capacity
        mapping = [2] * graph.n_tasks
        with pytest.raises(ValueError, match="area"):
            simulate_mapping(graph, platform, mapping)

    def test_non_topological_order_rejected(self, setup):
        """A permutation that violates precedence deadlocks -> loud error."""
        platform, graph, mapping, model = setup
        order = list(model.bfs_order)[::-1]
        with pytest.raises(ValueError, match="topological"):
            simulate_mapping(graph, platform, mapping, order=order)

    def test_bad_mapping_length_rejected(self, setup):
        platform, graph, _, _ = setup
        with pytest.raises(ValueError, match="length"):
            simulate_mapping(graph, platform, [0, 1])

    def test_empty_job_list_rejected(self):
        with pytest.raises(ValueError):
            RuntimeEngine(paper_platform()).run([])


# ---------------------------------------------------------------------------
# CLI: repro simulate
# ---------------------------------------------------------------------------
class TestSimulateCli:
    @pytest.fixture()
    def files(self, tmp_path, setup):
        platform, graph, mapping, model = setup
        gpath = tmp_path / "graph.json"
        mpath = tmp_path / "mapping.json"
        gpath.write_text(json.dumps(graph_to_dict(graph)))
        mpath.write_text(json.dumps(
            mapping_to_dict(graph, platform, mapping)
        ))
        return str(gpath), str(mpath)

    def test_simulate_robustness_report(self, files, capsys):
        gpath, mpath = files
        rc = cli_main([
            "simulate", gpath, mpath,
            "--noise", "lognormal", "--sigma", "0.2",
            "--replications", "8", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "analytic makespan" in out
        assert "p95" in out
        assert "degradation" in out

    def test_simulate_zero_noise_matches_model(self, files, capsys, setup):
        _, _, mapping, model = setup
        gpath, mpath = files
        rc = cli_main(["simulate", gpath, mpath])
        assert rc == 0
        out = capsys.readouterr().out
        expected = f"{model.simulate(list(mapping)) * 1e3:.2f} ms"
        assert expected in out

    def test_simulate_with_mapper_and_scenarios(self, files, capsys):
        gpath, _ = files
        rc = cli_main([
            "simulate", gpath, "--algorithm", "heft",
            "--fail", "vega56@0.2", "--slowdown", "0@0.1:2.0",
            "--replications", "3", "--noise", "gamma", "--sigma", "0.3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "failure" in out and "slowdown" in out

    def test_simulate_arrival_stream(self, files, capsys):
        gpath, mpath = files
        rc = cli_main([
            "simulate", gpath, mpath, "--arrivals", "4", "--period", "0.2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "jobs/s" in out and "latency" in out

    def test_simulate_gantt(self, files, capsys):
        gpath, mpath = files
        rc = cli_main(["simulate", gpath, mpath, "--gantt"])
        assert rc == 0
        assert "ms" in capsys.readouterr().out
