"""Tests for two-terminal SP recognition and decomposition-tree building."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import TaskGraph
from repro.graphs.generators import random_layered_graph, random_sp_graph
from repro.sp import (
    NotSeriesParallelError,
    SPParallel,
    decomposition_tree,
    decomposition_tree_from_edges,
    is_series_parallel,
)


class TestPositive:
    def test_single_edge(self):
        g = TaskGraph.from_edges([(0, 1)])
        tree = decomposition_tree(g)
        assert list(tree.leaf_edges()) == [(0, 1)]

    def test_chain(self, chain_graph):
        tree = decomposition_tree(chain_graph)
        assert tree.n_edges == 4
        assert (tree.source, tree.sink) == (0, 4)

    def test_diamond(self, diamond_graph):
        tree = decomposition_tree(diamond_graph)
        assert isinstance(tree, SPParallel)
        assert tree.nodes() == {0, 1, 2, 3}

    def test_fig1(self, fig1_graph):
        tree = decomposition_tree(fig1_graph)
        assert isinstance(tree, SPParallel)
        assert (tree.source, tree.sink) == (0, 5)
        assert sorted(tree.leaf_edges()) == sorted(fig1_graph.edges())

    def test_multi_edges_from_edge_list(self):
        tree = decomposition_tree_from_edges([(0, 1), (0, 1), (0, 1)], 0, 1)
        assert isinstance(tree, SPParallel)
        assert tree.n_edges == 3

    def test_tree_reconstructs_edge_multiset(self, fig1_graph):
        tree = decomposition_tree(fig1_graph)
        assert sorted(tree.leaf_edges()) == sorted(fig1_graph.edges())


class TestNegative:
    def test_fig2_not_sp(self, fig2_graph):
        assert not is_series_parallel(fig2_graph)
        with pytest.raises(NotSeriesParallelError):
            decomposition_tree(fig2_graph)

    def test_crossing_diamond_not_sp(self):
        # the "N" / crossed ladder: classic non-SP pattern
        g = TaskGraph.from_edges(
            [(0, 1), (0, 2), (1, 3), (2, 3), (1, 4), (3, 4)]
        )
        assert not is_series_parallel(g)

    def test_multiple_sources_rejected(self):
        g = TaskGraph.from_edges([(0, 2), (1, 2)])
        with pytest.raises(NotSeriesParallelError, match="unique source"):
            decomposition_tree(g)

    def test_single_node_rejected(self):
        g = TaskGraph()
        g.add_task(0)
        with pytest.raises(NotSeriesParallelError):
            decomposition_tree(g)

    def test_empty_edge_list(self):
        with pytest.raises(NotSeriesParallelError):
            decomposition_tree_from_edges([], 0, 1)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 80), seed=st.integers(0, 2**31))
    def test_random_sp_graphs_recognized_with_exact_edges(self, n, seed):
        g = random_sp_graph(n, np.random.default_rng(seed), augmented=False)
        tree = decomposition_tree(g)
        assert sorted(tree.leaf_edges()) == sorted(g.edges())
        assert (tree.source, tree.sink) == (g.sources()[0], g.sinks()[0])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_recognizer_never_crashes_on_layered(self, seed):
        rng = np.random.default_rng(seed)
        g = random_layered_graph(4, 4, rng, augmented=False)
        norm, src, snk = g.normalized()
        # may or may not be SP; must return a clean verdict either way
        try:
            tree = decomposition_tree_from_edges(norm.edges(), src, snk)
            assert sorted(tree.leaf_edges()) == sorted(norm.edges())
        except NotSeriesParallelError:
            pass
