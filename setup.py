"""Packaging for the repro library (``pip install -e .``).

Installs the ``repro`` console script on top of the package; ``python -m
repro`` keeps working either way (src-layout via ``package_dir``).
"""

import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    init = os.path.join(os.path.dirname(__file__), "src", "repro", "__init__.py")
    with open(init) as fh:
        return re.search(r'^__version__ = "([^"]+)"', fh.read(), re.M).group(1)


setup(
    name="repro-sp-mapping",
    version=_version(),
    description=(
        "Static task mapping for heterogeneous systems based on "
        "series-parallel decompositions — reproduction of Wilhelm & "
        "Pionteck (IPPS 2025), with mappers, experiment drivers, and a "
        "discrete-event runtime engine for robustness studies"
    ),
    author="paper-repo-growth",
    url="https://arxiv.org/abs/2502.19745",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    # scipy is not optional: repro.mappers imports the MILP baselines
    # (scipy.optimize.milp) unconditionally
    install_requires=["numpy>=1.22", "scipy>=1.9"],
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
    ],
)
