"""Run the full reproduction suite at a report scale and save all outputs.

This is the script behind EXPERIMENTS.md: it regenerates every figure and
table at a scale large enough to show the paper's trends (denser than the
benchmark smoke scale, lighter than the full paper scale so it completes on
a laptop core), writing text tables and CSVs into ./results/.

Run:  python scripts/run_experiments.py [--scale smoke|small|paper]
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time

from repro.experiments import fig3, fig4, fig5, fig6, fig7, table1
from repro.experiments.config import get_scale
from repro.experiments.reporting import format_sweep_table, results_dir, write_csv
from repro.experiments.table1 import format_table
from repro.experiments.table1 import write_csv as write_table1_csv


def report_scale(base: str = "small"):
    """The EXPERIMENTS.md scale: 'small' with single-core-friendly MILPs."""
    cfg = get_scale(base)
    if base != "small":
        return cfg
    return dataclasses.replace(
        cfg,
        name="report",
        graphs_per_point=8,
        fig3_sizes=[5, 10, 15, 20, 25, 30],
        fig3_zhouliu_max=10,
        zhouliu_time_limit_s=45.0,
        milp_time_limit_s=20.0,
    )


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="small")
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="subset of {fig3,fig4,fig5,fig6,fig7,table1}",
    )
    args = parser.parse_args()
    cfg = report_scale(args.scale)
    out = results_dir()

    jobs = {
        "fig4": lambda: fig4.run(scale=cfg),
        "fig5": lambda: fig5.run(scale=cfg),
        "fig6": lambda: fig6.run(scale=cfg),
        "fig7": lambda: fig7.run(scale=cfg),
        "fig3": lambda: fig3.run(scale=cfg),
    }
    selected = args.only or [*jobs, "table1"]

    for name, job in jobs.items():
        if name not in selected:
            continue
        t0 = time.time()
        print(f"=== running {name} (scale={cfg.name}) ===", flush=True)
        result = job()
        text = format_sweep_table(result)
        print(text, flush=True)
        with open(os.path.join(out, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")
        write_csv(result, os.path.join(out, f"{name}.csv"))
        print(f"=== {name} done in {time.time() - t0:.0f}s ===\n", flush=True)

    if "table1" in selected:
        t0 = time.time()
        print("=== running table1 ===", flush=True)
        result = table1.run(scale=cfg)
        text = format_table(result)
        print(text, flush=True)
        with open(os.path.join(out, "table1.txt"), "w") as fh:
            fh.write(text + "\n")
        write_table1_csv(result, os.path.join(out, "table1.csv"))
        print(f"=== table1 done in {time.time() - t0:.0f}s ===", flush=True)


if __name__ == "__main__":
    sys.exit(main())
