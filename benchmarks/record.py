"""Record evaluation-core micro-bench medians into ``BENCH_eval.json``.

The committed ``BENCH_eval.json`` carries two sections:

- ``baseline`` — medians recorded on the *pre-kernel* (pure nested-list)
  implementation, kept frozen as the reference the speedup claims in
  ``benchmarks/test_micro.py`` are measured against;
- ``current`` — medians of the implementation as committed, refreshed
  whenever the evaluation core changes (``python benchmarks/record.py``).

``--check KEY`` re-measures one entry on this machine and fails (exit 1)
if it is more than ``--max-ratio`` times slower than the committed
``current`` median — the CI perf-smoke gate uses this with
``sp_first_fit_n200``.  A generous ratio (default 2x) absorbs machine
variance while still catching an accidental return to quadratic-per-move
scratch evaluation, which costs ~5x or more.

Usage::

    PYTHONPATH=src python benchmarks/record.py                  # refresh "current"
    PYTHONPATH=src python benchmarks/record.py --section baseline
    PYTHONPATH=src python benchmarks/record.py --check sp_first_fit_n200
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_eval.json"

#: (key, graph size, repeats) for every mapper measured at both sizes.
MAPPER_SPECS = [
    ("single_node", 50, 5),
    ("series_parallel", 50, 5),
    ("sn_first_fit", 50, 5),
    ("sp_first_fit", 50, 5),
    ("single_node", 200, 3),
    ("series_parallel", 200, 3),
    ("sn_first_fit", 200, 3),
    ("sp_first_fit", 200, 3),
]


def _evaluator(n_tasks: int):
    from repro.evaluation import MappingEvaluator
    from repro.graphs.generators import random_sp_graph
    from repro.platform import paper_platform

    g = random_sp_graph(n_tasks, np.random.default_rng(1234))
    return MappingEvaluator(
        g,
        paper_platform(),
        rng=np.random.default_rng(5),
        n_random_schedules=20,
    )


def _median_time(fn, repeats: int) -> float:
    fn()  # warm-up (table construction, caches)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _mapper_factory(key: str):
    import repro.mappers as mappers

    return getattr(mappers, key)


def measure(key: str) -> float:
    """Median wall-clock seconds for one named micro-bench."""
    if key == "cost_model_eval_n50":
        ev = _evaluator(50)
        mapping = np.zeros(ev.n_tasks, dtype=np.int64)
        return _median_time(lambda: ev.construction_makespan(mapping), 200)
    if key == "suite_eval_n50":
        ev = _evaluator(50)
        mapping = np.zeros(ev.n_tasks, dtype=np.int64)
        return _median_time(lambda: ev.reported_makespan(mapping), 20)
    for name, size, repeats in MAPPER_SPECS:
        if key == f"{name}_n{size}":
            ev = _evaluator(size)
            factory = _mapper_factory(name)

            def run():
                factory().map(ev, rng=np.random.default_rng(np.random.SeedSequence(42)))

            return _median_time(run, repeats)
    raise KeyError(f"unknown bench key {key!r}")


def all_keys():
    yield "cost_model_eval_n50"
    yield "suite_eval_n50"
    for name, size, _ in MAPPER_SPECS:
        yield f"{name}_n{size}"


def load() -> dict:
    if BENCH_FILE.exists():
        return json.loads(BENCH_FILE.read_text())
    return {"schema": 1, "units": "seconds_median", "baseline": {}, "current": {}}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--section",
        default="current",
        choices=["current", "baseline"],
        help="which section of BENCH_eval.json to (re)record",
    )
    parser.add_argument(
        "--check",
        metavar="KEY",
        help="re-measure KEY and fail if slower than committed 'current'",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="allowed measured/committed slowdown ratio for --check",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="allow overwriting an existing 'baseline' section",
    )
    args = parser.parse_args(argv)

    if args.check:
        data = load()
        committed = data.get("current", {}).get("measures", {}).get(args.check)
        if committed is None:
            print(f"no committed 'current' median for {args.check!r}", file=sys.stderr)
            return 2
        measured = measure(args.check)
        ratio = measured / committed
        print(
            f"{args.check}: measured {measured * 1e3:.2f} ms vs committed "
            f"{committed * 1e3:.2f} ms (ratio {ratio:.2f}, limit {args.max_ratio:g})"
        )
        if ratio > args.max_ratio:
            print("PERF REGRESSION: exceeded the allowed ratio", file=sys.stderr)
            return 1
        return 0

    data = load()
    if (
        args.section == "baseline"
        and data.get("baseline", {}).get("measures")
        and not args.force
    ):
        print(
            "refusing to overwrite the frozen pre-kernel 'baseline' section:"
            " it was recorded on the original nested-list implementation and"
            " cannot be regenerated (pass --force if you really mean it)",
            file=sys.stderr,
        )
        return 2
    measures = {}
    for key in all_keys():
        measures[key] = measure(key)
        print(f"{key:>24s}: {measures[key] * 1e3:9.3f} ms")
    data[args.section] = {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "measures": measures,
    }
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote section {args.section!r} to {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
