"""Record evaluation-core micro-bench medians into committed baselines.

Three suites, selected with ``--suite``:

- ``eval`` (default, ``BENCH_eval.json``) — the PR-3 evaluation-core
  benches: cost-model/suite evaluation and the greedy decomposition
  mappers at n=50/200.  Its ``baseline`` section was recorded on the
  *pre-kernel* (pure nested-list) implementation and cannot be
  regenerated — it stays frozen.
- ``meta`` (``BENCH_meta.json``) — the PR-4 metaheuristic benches:
  NSGA-II / Pareto NSGA-II / tabu / annealing on the 50-task bench
  graph, plus the reduced-budget ``nsgaii_smoke`` the CI perf gate
  uses.  Recording ``--section baseline`` measures the **legacy scalar
  paths** (``batch_eval=False`` / ``delta_eval=False`` — the pre-batch
  implementations kept verbatim in the mappers), so the baseline is
  reproducible; it is still ``--force``-guarded so the committed
  pre-PR numbers are not silently overwritten by a faster/slower
  machine.
- ``topo`` (``BENCH_topo.json``) — the PR-10 topology benches, pinning
  the link-graph layer's zero-inner-loop-cost contract: table build on
  a uniform vs a star (routed) platform captures where routing *is*
  paid (BFS routes + effective matrices at construction), the
  ``eval_*`` pair shows the routed evaluator's inner loop costs the
  same as the uniform one (~1.0 ratio — routing is table-build-time
  only), and the ``engine_*`` trio measures runtime-engine replay with
  no pools, per-link pools, and the analytic model.

Each suite's file carries two sections:

- ``baseline`` — frozen pre-PR medians, the reference all speedup
  claims are measured against;
- ``current`` — medians of the implementation as committed, refreshed
  whenever the evaluation core changes.

``--check KEY`` re-measures one entry on this machine and fails
(exit 1) if it is more than ``--max-ratio`` times slower than the
committed ``current`` median — the CI perf-smoke gate uses this with
``sp_first_fit_n200`` (eval) and ``nsgaii_smoke`` (meta).  Generous
ratios absorb machine variance while still catching an accidental
return to scalar per-genome evaluation, which costs ~5x or more.

``--overhead KEY`` measures KEY twice — observability off and on
(tracer + metrics registry installed via :func:`repro.obs.observe`) —
interleaved round by round, and fails (exit 1) if the best enabled
time exceeds the best disabled time by more than ``--max-overhead``
(default 2%).  This is the CI gate behind the ``repro.obs`` hard
contract: instrumentation off the hot path, <2% when enabled.

Recorded sections are stamped with an ``env`` block
(:func:`repro.obs.env.collect_env`: host, machine, python, numpy/BLAS,
C-kernel path) so medians from different machines are comparable at a
glance.  Committed medians are *not* regenerated when the stamp is
added — the stamp rides along with the next genuine re-record.

Usage::

    PYTHONPATH=src python benchmarks/record.py                    # refresh eval "current"
    PYTHONPATH=src python benchmarks/record.py --suite meta       # refresh meta "current"
    PYTHONPATH=src python benchmarks/record.py --suite meta --section baseline --force
    PYTHONPATH=src python benchmarks/record.py --suite meta --check nsgaii_smoke
    PYTHONPATH=src python benchmarks/record.py --overhead sp_first_fit_n200
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

import numpy as np

_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = _ROOT / "BENCH_eval.json"
BENCH_META_FILE = _ROOT / "BENCH_meta.json"
BENCH_TOPO_FILE = _ROOT / "BENCH_topo.json"

#: (key, graph size, repeats) for every mapper measured at both sizes.
MAPPER_SPECS = [
    ("single_node", 50, 5),
    ("series_parallel", 50, 5),
    ("sn_first_fit", 50, 5),
    ("sp_first_fit", 50, 5),
    ("single_node", 200, 3),
    ("series_parallel", 200, 3),
    ("sn_first_fit", 200, 3),
    ("sp_first_fit", 200, 3),
]

#: meta suite: key -> (graph size, repeats); the mapper (and its budget)
#: for each key lives in ``_meta_mapper``.  ``scalar=True`` (baseline
#: recording) selects the legacy scalar evaluation paths, which are the
#: pre-batch implementations verbatim.
META_SPECS = {
    # paper budgets (Sec. IV-A: 500 generations x 100 individuals)
    "nsgaii_n50": (50, 5),
    "pareto_n50": (50, 3),
    "tabu_n50": (50, 5),
    "annealing_n50": (50, 5),
    # reduced budget for the CI perf gate: 30 generations x 50 individuals
    "nsgaii_smoke": (50, 5),
}

#: topo suite: key -> repeats.  Every key shares one seeded 50-task
#: bench graph on the 4-device paper platform; ``uniform`` keys run the
#: flat all-pairs interconnect, ``star``/``mesh`` the routed link-graph
#: presets.  ``table_build_*`` times platform reshaping (BFS routing +
#: effective matrices) *plus* cost-table construction — the only place
#: routing is allowed to cost anything; the ``eval_*`` pair times one
#: analytic simulate on prebuilt tables and must stay ~1.0x across
#: platforms (the zero-inner-loop-cost contract, mirrored by lint rule
#: KER002); ``engine_*`` replays a short job stream without pools, with
#: a routed star, and with per-link slots=1 queueing.
TOPO_SPECS = {
    "table_build_uniform_n50": 20,
    "table_build_star_n50": 20,
    "table_build_mesh_n50": 20,
    "eval_uniform_n50": 200,
    "eval_star_n50": 200,
    "engine_uniform_n50": 10,
    "engine_star_n50": 10,
    "engine_star_slots1_n50": 10,
}


def _evaluator(n_tasks: int):
    from repro.evaluation import MappingEvaluator
    from repro.graphs.generators import random_sp_graph
    from repro.platform import paper_platform

    g = random_sp_graph(n_tasks, np.random.default_rng(1234))
    return MappingEvaluator(
        g,
        paper_platform(),
        rng=np.random.default_rng(5),
        n_random_schedules=20,
    )


def _median_time(fn, repeats: int) -> float:
    fn()  # warm-up (table construction, caches)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _mapper_factory(key: str):
    import repro.mappers as mappers

    return getattr(mappers, key)


def _meta_mapper(key: str, scalar: bool):
    from repro.mappers import (
        NsgaIIMapper,
        ParetoNsgaIIMapper,
        SimulatedAnnealingMapper,
        TabuSearchMapper,
    )

    if key == "nsgaii_n50":
        return NsgaIIMapper(batch_eval=not scalar)
    if key == "nsgaii_smoke":
        return NsgaIIMapper(
            generations=30, population_size=50, batch_eval=not scalar
        )
    if key == "pareto_n50":
        return ParetoNsgaIIMapper(batch_eval=not scalar)
    if key == "tabu_n50":
        return TabuSearchMapper(delta_eval=not scalar)
    if key == "annealing_n50":
        return SimulatedAnnealingMapper(delta_eval=not scalar)
    raise KeyError(f"unknown meta bench key {key!r}")


def measure(key: str) -> float:
    """Median wall-clock seconds for one named eval-suite micro-bench."""
    if key == "cost_model_eval_n50":
        ev = _evaluator(50)
        mapping = np.zeros(ev.n_tasks, dtype=np.int64)
        return _median_time(lambda: ev.construction_makespan(mapping), 200)
    if key == "suite_eval_n50":
        ev = _evaluator(50)
        mapping = np.zeros(ev.n_tasks, dtype=np.int64)
        return _median_time(lambda: ev.reported_makespan(mapping), 20)
    for name, size, repeats in MAPPER_SPECS:
        if key == f"{name}_n{size}":
            ev = _evaluator(size)
            factory = _mapper_factory(name)

            def run():
                factory().map(ev, rng=np.random.default_rng(np.random.SeedSequence(42)))

            return _median_time(run, repeats)
    raise KeyError(f"unknown bench key {key!r}")


def measure_meta(key: str, *, scalar: bool = False) -> float:
    """Median wall-clock seconds for one metaheuristic mapper bench."""
    size, repeats = META_SPECS[key]
    ev = _evaluator(size)

    def run():
        _meta_mapper(key, scalar).map(
            ev, rng=np.random.default_rng(np.random.SeedSequence(42))
        )

    return _median_time(run, repeats)


def measure_topo(key: str) -> float:
    """Median wall-clock seconds for one topology-layer bench."""
    from repro.evaluation import CostModel
    from repro.graphs.generators import random_sp_graph
    from repro.platform import paper_platform, with_topology
    from repro.runtime import RuntimeEngine, periodic_stream

    repeats = TOPO_SPECS[key]
    g = random_sp_graph(50, np.random.default_rng(1234))
    base = paper_platform()

    def platform_for(name: str, *, slots=None):
        if name == "uniform":
            return base
        return with_topology(base, name, slots=slots)

    if key.startswith("table_build_"):
        topo = key[len("table_build_"):].rsplit("_", 1)[0]
        return _median_time(lambda: CostModel(g, platform_for(topo)), repeats)
    if key.startswith("eval_"):
        topo = key[len("eval_"):].rsplit("_", 1)[0]
        model = CostModel(g, platform_for(topo))
        rng = np.random.default_rng(7)
        mapping = [int(d) for d in rng.integers(0, base.n_devices, g.n_tasks)]
        return _median_time(lambda: model.simulate(mapping), repeats)
    if key.startswith("engine_"):
        if key == "engine_uniform_n50":
            platform = base
        elif key == "engine_star_n50":
            platform = platform_for("star")
        else:  # engine_star_slots1_n50
            platform = platform_for("star", slots=1)
        rng = np.random.default_rng(7)
        mapping = [int(d) for d in rng.integers(0, base.n_devices, g.n_tasks)]
        analytic = CostModel(g, platform).simulate(mapping)
        jobs = periodic_stream(g, mapping, 4, period=0.5 * analytic)
        return _median_time(lambda: RuntimeEngine(platform).run(jobs), repeats)
    raise KeyError(f"unknown topo bench key {key!r}")


def _env_stamp() -> dict:
    """Machine/toolchain metadata recorded next to the medians.

    A subset of :func:`repro.obs.env.collect_env` — the keys that decide
    whether two recorded medians are comparable (host, CPU count, numpy
    and its BLAS backend, and whether the C kernel or the pure-python
    fallback was measured).
    """
    from repro.obs.env import collect_env

    env = collect_env()
    keep = (
        "hostname", "machine", "os", "cpu_count",
        "python", "implementation", "numpy", "blas",
        "kernel", "repro",
    )
    return {k: env[k] for k in keep if k in env}


def check_overhead(key: str, *, measure_fn, max_overhead: float,
                   rounds: int = 3) -> int:
    """Gate the instrumentation overhead of one bench key.

    Measures ``key`` with observability disabled and enabled, alternating
    per round so machine drift (thermal, noisy neighbours) hits both
    sides equally, then compares the *minimum* medians — the most
    noise-robust statistic for a lower-bounded quantity.  Exits non-zero
    when enabled/disabled exceeds ``1 + max_overhead``.
    """
    from repro import obs

    meas = lambda: measure_fn(key)
    off_times, on_times = [], []
    for _ in range(rounds):
        off_times.append(meas())
        obs.observe()
        try:
            on_times.append(meas())
        finally:
            obs.shutdown()
    best_off, best_on = min(off_times), min(on_times)
    ratio = best_on / best_off
    print(
        f"{key}: off {best_off * 1e3:.2f} ms, on {best_on * 1e3:.2f} ms "
        f"(overhead {100 * (ratio - 1):+.2f}%, limit {100 * max_overhead:g}%)"
    )
    if ratio > 1.0 + max_overhead:
        print("OBSERVABILITY OVERHEAD: exceeded the allowed limit",
              file=sys.stderr)
        return 1
    return 0


SUITES = {"eval": BENCH_FILE, "meta": BENCH_META_FILE, "topo": BENCH_TOPO_FILE}

#: suite name -> the measure function taking one bench key.
_MEASURERS = {"eval": measure, "meta": measure_meta, "topo": measure_topo}


def all_keys(suite: str):
    if suite == "meta":
        yield from META_SPECS
        return
    if suite == "topo":
        yield from TOPO_SPECS
        return
    yield "cost_model_eval_n50"
    yield "suite_eval_n50"
    for name, size, _ in MAPPER_SPECS:
        yield f"{name}_n{size}"


def load(path: Path) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {"schema": 1, "units": "seconds_median", "baseline": {}, "current": {}}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        default="eval",
        choices=sorted(SUITES),
        help="bench suite: 'eval' (BENCH_eval.json), 'meta'"
        " (BENCH_meta.json) or 'topo' (BENCH_topo.json)",
    )
    parser.add_argument(
        "--section",
        default="current",
        choices=["current", "baseline"],
        help="which section of the bench file to (re)record",
    )
    parser.add_argument(
        "--check",
        metavar="KEY",
        help="re-measure KEY and fail if slower than committed 'current'",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="allowed measured/committed slowdown ratio for --check",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="allow overwriting an existing 'baseline' section",
    )
    parser.add_argument(
        "--overhead",
        metavar="KEY",
        help="measure KEY with observability off vs on and fail if the"
        " enabled run is more than --max-overhead slower",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.02,
        help="allowed fractional slowdown with observability enabled"
        " (default 0.02 = 2%%)",
    )
    args = parser.parse_args(argv)

    bench_file = SUITES[args.suite]
    meta = args.suite == "meta"
    measure_fn = _MEASURERS[args.suite]

    if args.overhead:
        return check_overhead(
            args.overhead, measure_fn=measure_fn,
            max_overhead=args.max_overhead,
        )

    if args.check:
        data = load(bench_file)
        committed = data.get("current", {}).get("measures", {}).get(args.check)
        if committed is None:
            print(f"no committed 'current' median for {args.check!r}", file=sys.stderr)
            return 2
        measured = measure_fn(args.check)
        ratio = measured / committed
        print(
            f"{args.check}: measured {measured * 1e3:.2f} ms vs committed "
            f"{committed * 1e3:.2f} ms (ratio {ratio:.2f}, limit {args.max_ratio:g})"
        )
        if ratio > args.max_ratio:
            print("PERF REGRESSION: exceeded the allowed ratio", file=sys.stderr)
            return 1
        return 0

    data = load(bench_file)
    if (
        args.section == "baseline"
        and data.get("baseline", {}).get("measures")
        and not args.force
    ):
        if meta:
            reason = (
                "it records the committed pre-PR scalar-path medians"
                " (re-measurable, but frozen as the speedup reference)"
            )
        elif args.suite == "topo":
            reason = (
                "it records the medians from the machine the topology"
                " layer landed on (the uniform_* keys double as the"
                " in-file reference)"
            )
        else:
            reason = (
                "it was recorded on the original nested-list implementation"
                " and cannot be regenerated"
            )
        print(
            f"refusing to overwrite the frozen 'baseline' section: {reason}"
            " (pass --force if you really mean it)",
            file=sys.stderr,
        )
        return 2
    scalar = meta and args.section == "baseline"
    measures = {}
    for key in all_keys(args.suite):
        measures[key] = (
            measure_meta(key, scalar=True) if scalar else measure_fn(key)
        )
        print(f"{key:>24s}: {measures[key] * 1e3:9.3f} ms")
    data[args.section] = {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "env": _env_stamp(),
        "measures": measures,
    }
    if meta and args.section == "baseline":
        data["baseline"]["note"] = (
            "legacy scalar paths: batch_eval=False / delta_eval=False"
            " (the pre-batch implementations, kept verbatim)"
        )
    _atomic_write_text(
        bench_file, json.dumps(data, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote section {args.section!r} to {bench_file}")
    return 0


def _atomic_write_text(path: Path, text: str) -> None:
    """Write via a same-directory temp file + rename, so an interrupted
    run can never leave a truncated BENCH_*.json behind."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


if __name__ == "__main__":
    sys.exit(main())
