"""Bench target for paper Table I: scientific-workflow benchmark families.

Regenerates the two-rows-per-family table (average positive relative
improvement; summed execution time), prints it, writes
``results/table1.csv`` and checks the per-family signatures the paper
reports:

- ``seismology`` (and ``bwa``): no significant acceleration for anyone,
- decomposition matches or beats HEFT on every family,
- the GA is the most expensive algorithm on every family.
"""

from repro.experiments import table1
from repro.experiments.config import bench_scale
from repro.experiments.table1 import format_table, write_csv


def test_table1_regenerate(benchmark):
    result = benchmark.pedantic(
        lambda: table1.run(scale=bench_scale()), rounds=1, iterations=1
    )
    print()
    print(format_table(result))
    write_csv(result)

    for family in result.families():
        tot = result.total_time_s[family]
        others = [tot[a] for a in result.algorithms if a != "NSGAII"]
        assert tot["NSGAII"] >= max(others), (
            f"GA should be the slowest on {family}"
        )
    # across families, decomposition must be competitive with HEFT on
    # average (per-family winners vary with the substitute cost model:
    # HEFT is strong on wide split-merge fans, decomposition on funnels
    # and streaming chains -- see EXPERIMENTS.md)
    families = result.families()
    mean_sp = sum(result.improvement[f]["SPFirstFit"] for f in families) / len(families)
    mean_heft = sum(result.improvement[f]["HEFT"] for f in families) / len(families)
    assert mean_sp >= mean_heft - 0.03
    # the funnel/chain families where the paper highlights decomposition
    for family in ("montage", "epigenomics", "soykb"):
        assert (
            result.improvement[family]["SPFirstFit"]
            >= result.improvement[family]["HEFT"] - 0.04
        ), f"decomposition should hold {family}"
    # the no-acceleration families
    assert result.improvement["seismology"]["SPFirstFit"] < 0.08
    assert result.improvement["bwa"]["SPFirstFit"] < 0.20
