"""Bench target for paper Fig. 6: NSGA-II generation-budget tradeoff.

Regenerates both panels (improvement and execution time vs generations on a
fixed graph set), prints the table, writes ``results/fig6*.csv`` and checks
the paper's qualitative shape: GA time grows ~linearly with the generation
budget while the decomposition reference lines are flat.
"""

from repro.experiments import fig6
from repro.experiments.config import bench_scale
from repro.experiments.reporting import format_sweep_table, write_csv


def test_fig6_regenerate(benchmark):
    result = benchmark.pedantic(
        lambda: fig6.run(scale=bench_scale()), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(result))
    write_csv(result)

    series = {s.name: s for s in result.series()}
    ga = series["NSGAII"]
    # GA execution time grows with the generation budget
    assert ga.time_s[-1] > ga.time_s[0], "more generations must cost more time"
    # GA quality is non-decreasing-ish over the budget (allow smoke noise)
    assert ga.improvement[-1] >= ga.improvement[0] - 0.05
    # decomposition reference lines are budget-independent (same graphs);
    # small wiggle remains because each sweep point draws a fresh random
    # schedule suite for the reported-makespan minimum
    sp = series["SPFirstFit"]
    assert max(sp.improvement) - min(sp.improvement) < 0.05
