"""Benchmarks of the parallel experiment backbone.

Logs the wall-clock of the robustness sweep at ``--workers 1`` vs
``--workers 2`` (the speedup is visible on multi-core hosts; on a
single-core runner the pooled run only pays fork overhead) and asserts
the backbone's core promise along the way: the two runs produce
byte-identical CSVs.  A second bench times the replan-policy sweep, the
most expensive new runtime path (every failure re-runs a mapper).
"""

import dataclasses
import io
import time

import pytest

from repro.experiments import robustness
from repro.experiments.config import bench_scale


def _bench_cfg():
    cfg = bench_scale()
    # keep the equivalence bench affordable at every scale
    return dataclasses.replace(
        cfg,
        robustness_noise_levels=cfg.robustness_noise_levels[:2],
        robustness_replications=min(cfg.robustness_replications, 8),
    )


def test_bench_robustness_serial_vs_pool(benchmark):
    """Wall-clock of workers=1 vs workers=2 on one sweep, plus the
    bit-identical-CSV invariant (the acceptance criterion's evidence)."""
    cfg = _bench_cfg()

    t0 = time.perf_counter()
    serial = robustness.run(scale=cfg, seed=7, workers=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = robustness.run(scale=cfg, seed=7, workers=2)
    t_pool = time.perf_counter() - t0

    a, b = io.StringIO(), io.StringIO()
    robustness.write_robustness_csv(serial, fileobj=a)
    robustness.write_robustness_csv(pooled, fileobj=b)
    assert a.getvalue() == b.getvalue()

    print()
    print(f"robustness sweep ({cfg.name}): "
          f"workers=1 {t_serial:.2f}s | workers=2 {t_pool:.2f}s "
          f"(speedup x{t_serial / t_pool:.2f})")

    # benchmark the pooled path so regressions in pool overhead show up
    benchmark.pedantic(
        lambda: robustness.run(scale=cfg, seed=7, workers=2),
        rounds=1, iterations=1,
    )


def test_bench_replan_policy_sweep(benchmark):
    """Regenerates results/replan_policy_sweep.csv at the bench scale.

    The replan sweep replays every mapping through mid-run failures;
    mapper-based policies re-map on the surviving platform at failure
    time, so this also bounds the per-failure replanning cost."""
    result = benchmark.pedantic(
        lambda: robustness.run_replan(scale=bench_scale()),
        rounds=1, iterations=1,
    )
    print()
    print(robustness.format_replan_table(result))
    robustness.write_replan_csv(result)
    # the failure must actually strand work, and every policy must
    # exercise the rescue path — otherwise the comparison is inert
    for policy in result.policies():
        assert any(
            p.mean_remapped > 0
            for p in result.points if p.policy == policy
        )
