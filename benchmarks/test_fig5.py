"""Bench target for paper Fig. 5: FirstFit decomposition vs NSGA-II.

Regenerates both panels, prints the table, writes ``results/fig5*.csv`` and
checks the paper's qualitative shape: the GA is competitive in quality but
many times slower than the decomposition heuristics.
"""

from repro.experiments import fig5
from repro.experiments.config import bench_scale
from repro.experiments.reporting import format_sweep_table, write_csv


def test_fig5_regenerate(benchmark):
    result = benchmark.pedantic(
        lambda: fig5.run(scale=bench_scale()), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(result))
    write_csv(result)

    series = {s.name: s for s in result.series()}
    largest = -1
    # NSGA-II is far slower than the decomposition mappers at the largest size
    assert (
        series["NSGAII"].time_s[largest] > 3 * series["SPFirstFit"].time_s[largest]
    ), "the GA should be several times slower"
    # and not dramatically better in quality
    assert (
        series["SPFirstFit"].improvement[largest]
        >= series["NSGAII"].improvement[largest] - 0.08
    ), "SPFirstFit should stay within a few points of the GA"
