"""Bench target for paper Fig. 4: decomposition vs HEFT/PEFT over graph size.

Regenerates both panels, prints the table, writes ``results/fig4*.csv`` and
checks the paper's qualitative shape:

- at the largest size the decomposition mappers beat both list schedulers,
- the FirstFit heuristic is substantially cheaper than the basic variant
  while giving up almost no improvement.
"""

from repro.experiments import fig4
from repro.experiments.config import bench_scale
from repro.experiments.reporting import format_sweep_table, write_csv


def test_fig4_regenerate(benchmark):
    result = benchmark.pedantic(
        lambda: fig4.run(scale=bench_scale()), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(result))
    write_csv(result)

    series = {s.name: s for s in result.series()}
    largest = -1
    for name in ("SNFirstFit", "SPFirstFit"):
        assert (
            series[name].improvement[largest]
            >= series["HEFT"].improvement[largest] - 0.03
        ), f"{name} should match or beat HEFT on large graphs"
    # FirstFit cost advantage (paper: up to 75-80 % time reduction)
    assert (
        series["SNFirstFit"].time_s[largest]
        <= 0.8 * series["SingleNode"].time_s[largest]
    ), "FirstFit should cut the basic variant's execution time"
    # FirstFit quality parity (paper: "almost negligible" difference)
    assert (
        series["SPFirstFit"].improvement[largest]
        >= series["SeriesParallel"].improvement[largest] - 0.08
    )
