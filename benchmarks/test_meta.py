"""Metaheuristic population-batch benchmarks.

Wall-clock comparisons of the batched/delta metaheuristic paths against
their legacy scalar loops (``batch_eval=False`` / ``delta_eval=False``
— the pre-batch implementations kept verbatim).  Both sides run
back-to-back on the same machine, so the asserted ratios are
machine-relative and stable, unlike the absolute medians committed in
``BENCH_meta.json`` (which ``record.py --suite meta`` maintains and the
CI ``perf-smoke`` job gates).

The trajectory equality of the two sides is pinned separately in
``tests/test_batch_population.py`` — here we only check the fast side
is actually fast, and that the counters prove the batch path ran.
"""

import os
import time

import numpy as np
import pytest

from repro.evaluation import MappingEvaluator
from repro.evaluation._ckernel import load_ckernel
from repro.graphs.generators import random_sp_graph
from repro.mappers import NsgaIIMapper, TabuSearchMapper
from repro.platform import paper_platform


def _best_of(fn, reps=5):
    fn()  # warm-up
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


@pytest.fixture(scope="module")
def bench_graph():
    return random_sp_graph(50, np.random.default_rng(1234))


def _evaluator(g):
    return MappingEvaluator(
        g,
        paper_platform(),
        rng=np.random.default_rng(5),
        n_random_schedules=20,
    )


@pytest.mark.skipif(
    load_ckernel() is None,
    reason="speedup ratios assume the compiled kernel "
    "(pure-Python fallback is exercised for correctness, not speed)",
)
@pytest.mark.skipif(
    bool(os.environ.get("CI")),
    reason="wall-clock ratios are noisy on shared runners; CI gates go "
    "through record.py --check instead",
)
class TestBatchedVsScalarWallClock:
    def test_nsgaii_batch_beats_scalar(self, bench_graph):
        """GA fitness through the population batch: >= 3x end to end.

        (The committed BENCH_meta.json medians show ~5.6x at the full
        paper budget, where converged-population dedup kicks in; the
        reduced budget here keeps the test fast, costing some ratio.)
        """
        ev_f, ev_s = _evaluator(bench_graph), _evaluator(bench_graph)
        fast = _best_of(
            lambda: NsgaIIMapper(generations=100).map(
                ev_f, rng=np.random.default_rng(np.random.SeedSequence(42))
            )
        )
        scalar = _best_of(
            lambda: NsgaIIMapper(generations=100, batch_eval=False).map(
                ev_s, rng=np.random.default_rng(np.random.SeedSequence(42))
            ),
            reps=3,
        )
        print(f"nsgaii g=100: batch {fast * 1e3:.1f} ms "
              f"vs scalar {scalar * 1e3:.1f} ms -> {scalar / fast:.1f}x")
        assert scalar / fast >= 3.0

    def test_tabu_delta_beats_scalar(self, bench_graph):
        ev_f, ev_s = _evaluator(bench_graph), _evaluator(bench_graph)
        fast = _best_of(
            lambda: TabuSearchMapper(iterations=200).map(
                ev_f, rng=np.random.default_rng(np.random.SeedSequence(42))
            )
        )
        scalar = _best_of(
            lambda: TabuSearchMapper(iterations=200, delta_eval=False).map(
                ev_s, rng=np.random.default_rng(np.random.SeedSequence(42))
            ),
            reps=3,
        )
        print(f"tabu it=200: delta {fast * 1e3:.1f} ms "
              f"vs scalar {scalar * 1e3:.1f} ms -> {scalar / fast:.1f}x")
        assert scalar / fast >= 2.0


def test_counters_prove_batch_path(bench_graph):
    """The GA's stats must show the batch path actually ran."""
    ev = _evaluator(bench_graph)
    res = NsgaIIMapper(generations=10, population_size=30).map(
        ev, rng=np.random.default_rng(0)
    )
    assert res.stats["n_batched_evaluations"] > 0
    assert res.stats["batch_size_mean"] > 1.0
    assert res.stats["n_simulations"] == 0.0
