"""Bench target for paper Fig. 7: almost-series-parallel graphs.

Regenerates both panels (improvement and time vs number of conflicting extra
edges), prints the table, writes ``results/fig7*.csv`` and checks the
paper's qualitative shape: the series-parallel decomposition converges
towards the single-node decomposition as the trees shatter, and both stay
competitive with the GA.
"""

from repro.experiments import fig7
from repro.experiments.config import bench_scale
from repro.experiments.reporting import format_sweep_table, write_csv


def test_fig7_regenerate(benchmark):
    result = benchmark.pedantic(
        lambda: fig7.run(scale=bench_scale()), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(result))
    write_csv(result)

    series = {s.name: s for s in result.series()}
    sn = series["SNFirstFit"]
    sp = series["SPFirstFit"]
    # With many conflicting edges SP degenerates towards SN: the quality gap
    # at the largest edge count must be small.
    assert abs(sp.improvement[-1] - sn.improvement[-1]) < 0.1
    # Decomposition keeps a clear edge over plain HEFT throughout.
    mean_sp = sum(sp.improvement) / len(sp.improvement)
    mean_heft = sum(series["HEFT"].improvement) / len(series["HEFT"].improvement)
    assert mean_sp >= mean_heft - 0.02
