# placeholder
