"""Micro-benchmarks of the runtime engine's hot paths.

The engine is the substrate every robustness experiment replays mappings
through, so its per-run cost bounds how many replications a sweep can
afford.  Benchmarked: one zero-noise run (the analytic-equivalence path),
one noisy run (adds per-task factor sampling), a full replication batch,
a contended arrival stream, and a mid-run device-failure replan (the
worst case: rollback + full recommit cascade).
"""

import numpy as np
import pytest

from repro.mappers import HeftMapper
from repro.runtime import (
    DeviceFailure,
    LognormalNoise,
    RuntimeEngine,
    periodic_stream,
    replicate,
    simulate_mapping,
)


@pytest.fixture(scope="module")
def mapped(sp_graph_50):
    g, ev = sp_graph_50
    mapping = list(HeftMapper().map(ev).mapping)
    return g, ev, mapping


def test_bench_engine_zero_noise(benchmark, platform, mapped):
    g, _, mapping = mapped
    benchmark(lambda: simulate_mapping(g, platform, mapping))


def test_bench_engine_lognormal_noise(benchmark, platform, mapped):
    g, _, mapping = mapped
    noise = LognormalNoise(0.3, transfer_sigma=0.1)
    benchmark(lambda: simulate_mapping(g, platform, mapping, noise=noise, rng=3))


def test_bench_replicate_batch(benchmark, platform, mapped):
    g, _, mapping = mapped
    benchmark.pedantic(
        lambda: replicate(
            g, platform, mapping, n=20, noise=LognormalNoise(0.2), seed=5
        ),
        rounds=3,
        iterations=1,
    )


def test_bench_arrival_stream(benchmark, platform, mapped):
    g, ev, mapping = mapped
    period = ev.model.simulate(mapping) / 4  # heavy queue contention
    jobs = periodic_stream(g, mapping, 8, period=period)
    engine = RuntimeEngine(platform)
    benchmark(lambda: engine.run(jobs))


def test_bench_failure_replan(benchmark, platform, mapped):
    g, ev, mapping = mapped
    t_fail = 0.5 * ev.model.simulate(mapping)
    benchmark(lambda: simulate_mapping(
        g, platform, mapping, scenarios=[DeviceFailure(t_fail, device=1)]
    ))


def test_robustness_noise_sweep(benchmark):
    """Regenerates results/robustness_noise_sweep.csv at the bench scale."""
    from repro.experiments import robustness
    from repro.experiments.config import bench_scale
    from repro.experiments.robustness import (
        format_robustness_table,
        write_robustness_csv,
    )

    result = benchmark.pedantic(
        lambda: robustness.run(scale=bench_scale()), rounds=1, iterations=1
    )
    print()
    print(format_robustness_table(result))
    write_robustness_csv(result)

    sigmas = result.sigmas()
    for algorithm in result.algorithms():
        lo = result.cell(sigmas[0], algorithm)
        hi = result.cell(sigmas[-1], algorithm)
        # the p95 tail must widen as runtime variability grows
        assert hi.p95_degradation > lo.p95_degradation
        assert hi.p95_degradation > 0.0
