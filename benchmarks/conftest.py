"""Benchmark-suite configuration.

``pytest benchmarks/ --benchmark-only`` regenerates every figure/table of
the paper at the scale selected by ``REPRO_BENCH_SCALE`` (smoke | small |
paper, default smoke).  Each figure bench prints the paper-style table
(visible with ``-s`` or in the captured output) and writes a CSV into
``./results/``.
"""

import numpy as np
import pytest

from repro.evaluation import MappingEvaluator
from repro.graphs.generators import random_sp_graph
from repro.platform import paper_platform


@pytest.fixture(scope="session")
def platform():
    return paper_platform()


@pytest.fixture(scope="session")
def sp_graph_50(platform):
    """A fixed 50-task random SP graph + evaluator, for micro-benchmarks."""
    g = random_sp_graph(50, np.random.default_rng(1234))
    ev = MappingEvaluator(g, platform, rng=np.random.default_rng(5), n_random_schedules=20)
    return g, ev
