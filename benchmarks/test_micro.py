"""Micro-benchmarks of the library's hot paths.

These use pytest-benchmark's statistics properly (many rounds): the cost of
one full model-based evaluation (the paper's key primitive), Algorithm 1
forest construction, candidate-set extraction, and one full mapper run per
algorithm family on a fixed 50-task graph.

``test_mapper_speedup_vs_recorded_baseline`` additionally gates the
kernel/delta evaluation core: the first-fit mappers must stay >= 5x
faster than the pre-kernel medians frozen in ``BENCH_eval.json``
(section ``baseline``, recorded on the original nested-list
implementation; see ``benchmarks/record.py``).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.evaluation import MappingEvaluator
from repro.evaluation._ckernel import load_ckernel
from repro.graphs.generators import random_almost_sp_graph, random_sp_graph
from repro.mappers import (
    HeftMapper,
    NsgaIIMapper,
    PeftMapper,
    sn_first_fit,
    sp_first_fit,
)
from repro.sp import grow_decomposition_forest, series_parallel_candidates


def test_bench_cost_model_evaluation(benchmark, sp_graph_50):
    _, ev = sp_graph_50
    mapping = np.zeros(ev.n_tasks, dtype=np.int64)
    benchmark(ev.construction_makespan, mapping)


def test_bench_reported_makespan_suite(benchmark, sp_graph_50):
    _, ev = sp_graph_50
    mapping = np.zeros(ev.n_tasks, dtype=np.int64)
    benchmark(ev.reported_makespan, mapping)


def test_bench_algorithm1_forest_sp(benchmark, platform):
    g = random_sp_graph(200, np.random.default_rng(7))
    rng = np.random.default_rng(0)
    benchmark(lambda: grow_decomposition_forest(g, rng=rng))


def test_bench_algorithm1_forest_almost_sp(benchmark, platform):
    g = random_almost_sp_graph(200, 100, np.random.default_rng(8))
    rng = np.random.default_rng(0)
    benchmark(lambda: grow_decomposition_forest(g, rng=rng))


def test_bench_candidate_extraction(benchmark, platform):
    g = random_sp_graph(200, np.random.default_rng(9))
    rng = np.random.default_rng(0)
    benchmark(lambda: series_parallel_candidates(g, rng=rng))


@pytest.mark.parametrize(
    "factory",
    [HeftMapper, PeftMapper, sn_first_fit, sp_first_fit],
    ids=["heft", "peft", "sn_first_fit", "sp_first_fit"],
)
def test_bench_mapper(benchmark, sp_graph_50, factory):
    _, ev = sp_graph_50
    mapper = factory()
    rng_seed = np.random.SeedSequence(42)
    benchmark.pedantic(
        lambda: mapper.map(ev, rng=np.random.default_rng(rng_seed)),
        rounds=3,
        iterations=1,
    )


@pytest.mark.skipif(
    load_ckernel() is None,
    reason="speedup target assumes the compiled kernel "
    "(pure-Python fallback is exercised for correctness, not speed)",
)
@pytest.mark.skipif(
    bool(os.environ.get("CI")),
    reason="baseline medians are machine-absolute (recorded on the dev "
    "box); CI perf-gating goes through record.py --check instead",
)
def test_mapper_speedup_vs_recorded_baseline(sp_graph_50):
    """First-fit mappers: >= 5x vs the frozen pre-kernel medians.

    Uses best-of-7 (the standard low-noise estimator for 'how fast can
    this go') against the pre-kernel medians frozen in BENCH_eval.json.
    """
    bench_file = Path(__file__).resolve().parent.parent / "BENCH_eval.json"
    baseline = json.loads(bench_file.read_text())["baseline"]["measures"]
    _, ev = sp_graph_50
    for factory, key in ((sp_first_fit, "sp_first_fit_n50"),
                         (sn_first_fit, "sn_first_fit_n50")):
        mapper = factory()

        def run():
            mapper.map(ev, rng=np.random.default_rng(np.random.SeedSequence(42)))

        run()  # warm-up
        times = []
        for _ in range(7):
            t0 = time.perf_counter()
            run()
            times.append(time.perf_counter() - t0)
        best = min(times)
        speedup = baseline[key] / best
        print(f"{key}: {best * 1e3:.2f} ms vs baseline "
              f"{baseline[key] * 1e3:.2f} ms -> {speedup:.1f}x")
        assert speedup >= 5.0, (
            f"{key} regressed: only {speedup:.1f}x over the pre-kernel "
            f"baseline (need >= 5x)"
        )


def test_bench_nsgaii_short(benchmark, sp_graph_50):
    _, ev = sp_graph_50
    mapper = NsgaIIMapper(generations=20)
    benchmark.pedantic(
        lambda: mapper.map(ev, rng=np.random.default_rng(11)),
        rounds=2,
        iterations=1,
    )
