"""Micro-benchmarks of the library's hot paths.

These use pytest-benchmark's statistics properly (many rounds): the cost of
one full model-based evaluation (the paper's key primitive), Algorithm 1
forest construction, candidate-set extraction, and one full mapper run per
algorithm family on a fixed 50-task graph.
"""

import numpy as np
import pytest

from repro.evaluation import MappingEvaluator
from repro.graphs.generators import random_almost_sp_graph, random_sp_graph
from repro.mappers import (
    HeftMapper,
    NsgaIIMapper,
    PeftMapper,
    sn_first_fit,
    sp_first_fit,
)
from repro.sp import grow_decomposition_forest, series_parallel_candidates


def test_bench_cost_model_evaluation(benchmark, sp_graph_50):
    _, ev = sp_graph_50
    mapping = np.zeros(ev.n_tasks, dtype=np.int64)
    benchmark(ev.construction_makespan, mapping)


def test_bench_reported_makespan_suite(benchmark, sp_graph_50):
    _, ev = sp_graph_50
    mapping = np.zeros(ev.n_tasks, dtype=np.int64)
    benchmark(ev.reported_makespan, mapping)


def test_bench_algorithm1_forest_sp(benchmark, platform):
    g = random_sp_graph(200, np.random.default_rng(7))
    rng = np.random.default_rng(0)
    benchmark(lambda: grow_decomposition_forest(g, rng=rng))


def test_bench_algorithm1_forest_almost_sp(benchmark, platform):
    g = random_almost_sp_graph(200, 100, np.random.default_rng(8))
    rng = np.random.default_rng(0)
    benchmark(lambda: grow_decomposition_forest(g, rng=rng))


def test_bench_candidate_extraction(benchmark, platform):
    g = random_sp_graph(200, np.random.default_rng(9))
    rng = np.random.default_rng(0)
    benchmark(lambda: series_parallel_candidates(g, rng=rng))


@pytest.mark.parametrize(
    "factory",
    [HeftMapper, PeftMapper, sn_first_fit, sp_first_fit],
    ids=["heft", "peft", "sn_first_fit", "sp_first_fit"],
)
def test_bench_mapper(benchmark, sp_graph_50, factory):
    _, ev = sp_graph_50
    mapper = factory()
    rng_seed = np.random.SeedSequence(42)
    benchmark.pedantic(
        lambda: mapper.map(ev, rng=np.random.default_rng(rng_seed)),
        rounds=3,
        iterations=1,
    )


def test_bench_nsgaii_short(benchmark, sp_graph_50):
    _, ev = sp_graph_50
    mapper = NsgaIIMapper(generations=20)
    benchmark.pedantic(
        lambda: mapper.map(ev, rng=np.random.default_rng(11)),
        rounds=2,
        iterations=1,
    )
