"""Bench target for paper Fig. 3: decomposition vs MILPs on random SP graphs.

Regenerates both panels (relative improvement and execution time per
algorithm and graph size), prints the paper-style table, writes
``results/fig3*.csv`` and checks the paper's qualitative shape:

- the decomposition mappers match/beat the dependency-blind device MILP,
- the time-based MILP is orders of magnitude slower at the largest size.
"""

from repro.experiments import fig3
from repro.experiments.config import bench_scale
from repro.experiments.reporting import format_sweep_table, write_csv


def test_fig3_regenerate(benchmark):
    result = benchmark.pedantic(
        lambda: fig3.run(scale=bench_scale()), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(result))
    write_csv(result)

    series = {s.name: s for s in result.series()}
    sp = series["SeriesParallel"]
    dev = series["WGDPDev"]
    sp_mean = sum(sp.improvement) / len(sp.improvement)
    dev_mean = sum(dev.improvement) / len(dev.improvement)
    assert sp_mean >= dev_mean - 0.02, "decomposition should beat the device MILP"
    assert series["WGDPTime"].time_s[-1] > 10 * sp.time_s[-1], (
        "time-based MILP should be orders of magnitude slower"
    )
