"""Bench target for the paper's empirical-complexity claim (Sec. IV-B).

"All decomposition-based mapping strategies exhibit a quadratic behavior
regarding their execution time, although their theoretical execution time
has a cubic dependency on the number of tasks."

Fits ``time ~ n^alpha`` over the Fig. 4 size sweep and asserts the fitted
exponents stay clearly below the cubic worst case, with the FirstFit
variants cheaper than the basic ones.
"""

from repro.experiments import scaling
from repro.experiments.config import bench_scale
from repro.experiments.reporting import format_sweep_table, write_csv


def test_scaling_exponents(benchmark):
    result = benchmark.pedantic(
        lambda: scaling.run(scale=bench_scale()), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(result))
    write_csv(result)

    exponents = scaling.fit_exponents(result)
    print("fitted exponents:", {k: round(v, 2) for k, v in exponents.items()})
    for name, alpha in exponents.items():
        # Paper Sec. IV-B: quadratic in practice, cubic worst case.  With
        # the kernel/delta evaluation core the constants shrank ~10-30x
        # and the fitted exponents sit around 0.8-2.1 at smoke scale, so
        # the bound can exclude the cubic regime outright.
        assert alpha < 3.0, f"{name} scales worse than quadratic-with-slack"
    # FirstFit saves a constant-factor (and often asymptotic) amount of work
    series = {s.name: s for s in result.series()}
    assert (
        series["SPFirstFit"].time_s[-1] < series["SeriesParallel"].time_s[-1]
    )
