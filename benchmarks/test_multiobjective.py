"""Benchmarks for the multi-objective extension (paper Sec. V).

Measures the Pareto NSGA-II and the scalarized energy-aware decomposition
mapper, and checks the trade-off shape: lowering alpha must never *increase*
energy, and the Pareto front must contain a solution at least as fast as the
knee of the scalarized sweep.
"""

import numpy as np

from repro.evaluation import EnergyModel, MappingEvaluator
from repro.graphs.generators import random_sp_graph
from repro.mappers import EnergyAwareDecompositionMapper, ParetoNsgaIIMapper
from repro.platform import paper_platform


def _setup(n=30, seed=17):
    g = random_sp_graph(n, np.random.default_rng(seed))
    ev = MappingEvaluator(
        g, paper_platform(), rng=np.random.default_rng(0),
        n_random_schedules=10,
    )
    return ev, EnergyModel(ev.model)


def test_bench_energy_aware_sweep(benchmark):
    ev, energy = _setup()

    def sweep():
        out = []
        for alpha in (1.0, 0.5, 0.0):
            res = EnergyAwareDecompositionMapper(alpha=alpha).map(
                ev, rng=np.random.default_rng(1)
            )
            out.append(
                (alpha, res.makespan, energy.energy(res.mapping))
            )
        return out

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for alpha, ms, e in points:
        print(f"  alpha={alpha:4.2f}: {ms * 1e3:8.1f} ms {e:8.1f} J")
    # energy must be non-increasing as alpha decreases
    energies = [e for _, _, e in points]
    assert energies[0] >= energies[-1] - 1e-9
    # makespan must be non-decreasing as alpha decreases
    makespans = [ms for _, ms, _ in points]
    assert makespans[-1] >= makespans[0] - 1e-9


def test_bench_pareto_nsga2(benchmark):
    ev, energy = _setup()
    mapper = ParetoNsgaIIMapper(generations=30, population_size=40)
    res = benchmark.pedantic(
        lambda: mapper.map(ev, rng=np.random.default_rng(2)),
        rounds=1,
        iterations=1,
    )
    front = mapper.last_front_
    print(f"\n  front: {[(round(m * 1e3, 1), round(e, 1)) for _, m, e in front]}")
    assert res.stats["front_size"] >= 1
    # every front mapping is feasible and no point dominates another
    for i, (_, ms_i, e_i) in enumerate(front):
        for j, (_, ms_j, e_j) in enumerate(front):
            if i != j:
                assert not (ms_i <= ms_j and e_i < e_j) or ms_i < ms_j
