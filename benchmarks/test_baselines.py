"""Bench target: extended baseline roster on one sweep.

Not a paper artifact — a regression radar over every fast mapper in the
library.  Asserts the two structural facts the whole reproduction rests on:
the decomposition mappers beat the single-pass list schedulers on average,
and no mapper ever loses to the all-CPU baseline by construction where that
guarantee exists.
"""

from repro.experiments import baselines
from repro.experiments.config import bench_scale
from repro.experiments.reporting import format_sweep_table, write_csv


def test_baseline_roster(benchmark):
    result = benchmark.pedantic(
        lambda: baselines.run(scale=bench_scale()), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(result))
    write_csv(result)

    series = {s.name: s for s in result.series()}
    mean = lambda s: sum(s.improvement) / len(s.improvement)
    list_schedulers = ["HEFT", "PEFT", "CPOP", "MinMin", "MaxMin"]
    best_list = max(mean(series[n]) for n in list_schedulers)
    assert mean(series["SPFirstFit"]) >= best_list - 0.05, (
        "decomposition should be competitive with every list scheduler"
    )
    for name in ("Tabu", "Annealing", "SNFirstFit", "SPFirstFit"):
        assert min(series[name].improvement) >= 0.0
