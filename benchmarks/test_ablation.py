"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. **Cut strategy** of Algorithm 1 (paper: "a well-designed heuristic might
   exploit this observation"): random vs first vs smallest vs largest —
   measured by the improvement SPFirstFit reaches on almost-SP graphs.
2. **gamma threshold** of the look-ahead heuristic (paper Sec. IV-B: gamma >
   1 "does not provide a significant benefit" over FirstFit) — improvement
   and evaluation counts for gamma in {1, 1.5, 2, basic}.
3. **Streaming awareness**: mapping quality with the FPGA's streaming
   enabled vs disabled in the cost model (quantifies how much of the
   decomposition advantage comes from dataflow streaming).
"""

import numpy as np
import pytest

from repro.evaluation import MappingEvaluator
from repro.graphs.generators import random_almost_sp_graph, random_sp_graph
from repro.mappers import DecompositionMapper
from repro.platform import Platform, cpu, fpga, gpu, paper_platform
from repro.sp import CUT_STRATEGIES


def _mean_improvement(mapper, graphs, platform, seed=0):
    imps = []
    seq = np.random.SeedSequence(seed)
    for g, s in zip(graphs, seq.spawn(len(graphs))):
        r1, r2 = [np.random.default_rng(c) for c in s.spawn(2)]
        ev = MappingEvaluator(g, platform, rng=r1, n_random_schedules=20)
        res = mapper.map(ev, rng=r2)
        imps.append(ev.relative_improvement(res.mapping))
    return float(np.mean(imps))


@pytest.fixture(scope="module")
def almost_sp_graphs():
    rng = np.random.default_rng(77)
    return [random_almost_sp_graph(40, 15, rng) for _ in range(3)]


@pytest.mark.parametrize("strategy", CUT_STRATEGIES)
def test_ablation_cut_strategy(benchmark, almost_sp_graphs, strategy):
    platform = paper_platform()
    mapper = DecompositionMapper(
        "series_parallel", "first_fit", cut_strategy=strategy
    )
    imp = benchmark.pedantic(
        lambda: _mean_improvement(mapper, almost_sp_graphs, platform),
        rounds=1,
        iterations=1,
    )
    print(f"\ncut_strategy={strategy}: improvement={imp:.3f}")
    assert imp >= 0.0


@pytest.mark.parametrize("gamma", [1.0, 1.5, 2.0])
def test_ablation_gamma_threshold(benchmark, almost_sp_graphs, gamma):
    platform = paper_platform()
    mapper = DecompositionMapper("series_parallel", "gamma", gamma=gamma)
    imp = benchmark.pedantic(
        lambda: _mean_improvement(mapper, almost_sp_graphs, platform),
        rounds=1,
        iterations=1,
    )
    print(f"\ngamma={gamma}: improvement={imp:.3f}")
    assert imp >= 0.0


def _no_streaming_platform() -> Platform:
    from repro.platform.device import Device, DeviceKind

    base = paper_platform()
    devices = list(base.devices)
    f = devices[2]
    devices[2] = Device(
        name=f.name,
        kind=DeviceKind.FPGA,
        lane_gops=f.lane_gops,
        stream_gops=f.stream_gops,
        setup_s=f.setup_s,
        area_capacity=f.area_capacity,
        serializes=False,
        streaming=False,  # the ablation: no dataflow overlap on-chip
    )
    return Platform(devices, base.bandwidth_gbps.copy(), base.latency_s.copy())


def test_ablation_streaming_value(benchmark):
    """How much improvement does FPGA dataflow streaming contribute?"""
    rng = np.random.default_rng(21)
    graphs = [random_sp_graph(40, rng) for _ in range(3)]
    mapper = DecompositionMapper("series_parallel", "first_fit")

    with_streaming = _mean_improvement(mapper, graphs, paper_platform())
    without = benchmark.pedantic(
        lambda: _mean_improvement(mapper, graphs, _no_streaming_platform()),
        rounds=1,
        iterations=1,
    )
    print(f"\nstreaming on: {with_streaming:.3f}  off: {without:.3f}")
    # streaming should never hurt the best achievable mapping
    assert with_streaming >= without - 0.03
