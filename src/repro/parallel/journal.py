"""Append-only checkpoint journal for interruptible sweeps.

A :class:`SweepJournal` records every completed work item as one
self-contained line ``{"k": <key>, "p": <base64(pickle(result))>}`` under
a header that fingerprints the run configuration.  Because each record is
a single line flushed as a whole, a crash mid-write can at worst leave
one *partial trailing line*, which the loader drops — everything before
it stays valid.  Resuming is therefore: reopen the journal, skip every
item whose key is present, recompute only the rest.

The determinism story is the seed-sharding contract's: a journalled
result was produced from the item's own :class:`~numpy.random.SeedSequence`,
so replaying the sweep with the same configuration computes byte-for-byte
the same value the journal holds — an interrupted-then-resumed run emits
a CSV identical to an uninterrupted one (pinned in
``tests/test_supervisor.py``).

The fingerprint (driver name, scale config, seed) guards against resuming
with a journal from a *different* run, which would silently splice
mismatched results; :class:`JournalError` is raised instead.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from typing import Dict, Iterator, Optional

__all__ = ["JournalError", "SweepJournal"]

_FORMAT = "repro-journal-v1"

#: sentinel distinguishing "key absent" from a journalled None result
_MISSING = object()


class JournalError(RuntimeError):
    """A journal file that cannot be trusted for this run."""


class SweepJournal:
    """One run's append-only (item key -> result) record.

    ``resume=False`` (a fresh ``--checkpoint`` run) truncates any
    existing file; ``resume=True`` loads prior records first.  Keys are
    arbitrary strings — :func:`repro.parallel.parallel_map` uses
    ``"{label}:{index}"`` and drivers namespace multi-phase sweeps via
    :meth:`scoped`.
    """

    def __init__(self, path: str, *, fingerprint: str, resume: bool = False):
        self.path = path
        self.fingerprint = fingerprint
        self._records: Dict[str, object] = {}
        self.n_loaded = 0
        self.n_corrupt = 0
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        if resume and os.path.exists(path):
            self._load()
            self._fh = open(path, "a")
        else:
            self._fh = open(path, "w")
            self._fh.write(json.dumps(
                {"format": _FORMAT, "fingerprint": fingerprint}
            ) + "\n")
            self._fh.flush()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        with open(self.path) as fh:
            header_line = fh.readline()
            try:
                header = json.loads(header_line)
            except ValueError as exc:
                raise JournalError(
                    f"{self.path}: unreadable journal header"
                ) from exc
            if header.get("format") != _FORMAT:
                raise JournalError(
                    f"{self.path}: not a {_FORMAT} journal"
                )
            if header.get("fingerprint") != self.fingerprint:
                raise JournalError(
                    f"{self.path}: journal fingerprint "
                    f"{header.get('fingerprint')!r} does not match this run "
                    f"({self.fingerprint!r}); refusing to splice results "
                    "from a different configuration"
                )
            for line in fh:
                try:
                    rec = json.loads(line)
                    payload = pickle.loads(base64.b64decode(rec["p"]))
                except (ValueError, KeyError, EOFError, pickle.PickleError):
                    # a crash mid-append leaves at most one partial
                    # trailing line; count it and stop trusting the rest
                    self.n_corrupt += 1
                    break
                self._records[rec["k"]] = payload
        self.n_loaded = len(self._records)

    # ------------------------------------------------------------------
    def get(self, key: str, default=None):
        return self._records.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    @property
    def n_recorded(self) -> int:
        """Records appended by *this* process (excludes loaded ones)."""
        return len(self._records) - self.n_loaded

    def record(self, key: str, payload) -> None:
        """Append one completed item; re-recording a loaded key is a no-op."""
        if key in self._records:
            return
        self._records[key] = payload
        blob = base64.b64encode(pickle.dumps(payload)).decode("ascii")
        # one whole line + flush: the atomic-append unit a resume trusts
        self._fh.write(json.dumps({"k": key, "p": blob}) + "\n")
        self._fh.flush()

    def scoped(self, prefix: str) -> "_ScopedJournal":
        """A view that namespaces keys (multi-phase drivers, sweep points)."""
        return _ScopedJournal(self, prefix)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _ScopedJournal:
    """Key-prefixing view over a :class:`SweepJournal` (same file)."""

    def __init__(self, base, prefix: str):
        self._base = base
        self._prefix = prefix

    def get(self, key: str, default=None):
        return self._base.get(self._prefix + key, default)

    def __contains__(self, key: str) -> bool:
        return (self._prefix + key) in self._base

    def record(self, key: str, payload) -> None:
        self._base.record(self._prefix + key, payload)

    def scoped(self, prefix: str) -> "_ScopedJournal":
        return _ScopedJournal(self._base, self._prefix + prefix)
