"""Parallel experiment backbone: deterministic process-pool fan-out.

Every experiment driver (:mod:`repro.experiments`) runs its
per-(configuration, replication) work through :func:`parallel_map`, so a
sweep scales across cores with ``--workers N`` while staying bit-identical
to a serial run.  The invariant rests on the *seed-sharding contract*
documented in :mod:`repro.parallel.pool` (and ``README.md`` next to it):
seeds are spawned in serial enumeration order before dispatch, workers are
pure functions of their items, and results are re-assembled in submission
order.

>>> from repro.parallel import parallel_map
>>> parallel_map(abs, [-3, -1, 2], workers=2)
[3, 1, 2]
"""

from .pool import parallel_map, resolve_workers, spawn_seeds

__all__ = ["parallel_map", "resolve_workers", "spawn_seeds"]
