"""Parallel experiment backbone: deterministic, fault-tolerant fan-out.

Every experiment driver (:mod:`repro.experiments`) runs its
per-(configuration, replication) work through :func:`parallel_map`, so a
sweep scales across cores with ``--workers N`` while staying bit-identical
to a serial run.  The invariant rests on the *seed-sharding contract*
documented in :mod:`repro.parallel.pool` (and ``README.md`` next to it):
seeds are spawned in serial enumeration order before dispatch, workers are
pure functions of their items, and results are re-assembled in submission
order.

The same contract powers the fault-tolerance layer: a
:class:`SupervisedPool` retries, times out and rebuilds around worker
failures (:mod:`repro.parallel.supervisor`), a :class:`FaultPlan`
injects deterministic chaos for rehearsal (:mod:`repro.parallel.faults`),
and a :class:`SweepJournal` checkpoints completed items so an interrupted
sweep resumes without recomputing — or changing — anything
(:mod:`repro.parallel.journal`).

>>> from repro.parallel import parallel_map
>>> parallel_map(abs, [-3, -1, 2], workers=2)
[3, 1, 2]
"""

from .faults import ChaosError, FaultPlan, plan_from_env, plan_from_spec
from .journal import JournalError, SweepJournal
from .pool import parallel_map, resolve_workers, spawn_seeds
from .supervisor import ItemFailedError, RetryPolicy, SupervisedPool

__all__ = [
    "parallel_map",
    "resolve_workers",
    "spawn_seeds",
    "SupervisedPool",
    "RetryPolicy",
    "ItemFailedError",
    "FaultPlan",
    "ChaosError",
    "plan_from_spec",
    "plan_from_env",
    "SweepJournal",
    "JournalError",
]
