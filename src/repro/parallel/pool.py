"""Process-pool execution backbone with deterministic seed sharding.

All experiment drivers fan their per-(configuration, replication) work out
through :func:`parallel_map`.  The contract that makes ``--workers N``
results bit-identical to a serial run is simple and strict:

1. **Seeds are derived before dispatch.**  The driver enumerates its work
   items in a fixed serial order and attaches every random input (a
   :class:`numpy.random.SeedSequence` child, spawned in that same order)
   to the item itself.  Workers never draw from shared random state.
2. **Workers are pure.**  A worker function receives one picklable item
   and returns a picklable result that depends only on the item — no
   globals, no files, no wall clock in the result payload.
3. **Results are re-assembled in submission order.**  Whatever order the
   pool completes items in, :func:`parallel_map` returns ``results[k]``
   for item ``k`` — so downstream aggregation (means over graphs, CSV row
   order) is independent of scheduling.

Under these rules ``parallel_map(fn, items, workers=1)`` and
``workers=N`` produce the *same floats in the same order*: the serial
path is a plain in-process loop over the identical items.

The pool uses :class:`concurrent.futures.ProcessPoolExecutor`, so worker
functions must be module-level (picklable by reference).  Wall-clock
fields (mapper ``elapsed_s``) are of course still nondeterministic; the
equivalence guarantee covers every seed-derived quantity.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, TypeVar, Union

import numpy as np

from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = ["parallel_map", "resolve_workers", "spawn_seeds"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int], default: int = 1) -> int:
    """Normalize a ``--workers`` request into an effective pool size.

    ``None`` means "use the configured default" (the ``parallel_workers``
    dim of the active :class:`~repro.experiments.config.ScaleConfig`);
    ``0`` or negative means "one worker per CPU".  The result is always
    at least 1.
    """
    if workers is None:
        workers = default
    workers = int(workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


def spawn_seeds(
    seed: Union[int, np.random.SeedSequence], n: int
) -> List[np.random.SeedSequence]:
    """Spawn ``n`` independent seed-sequence children in serial order.

    This is the sharding half of the contract: call it once, in the
    driver's enumeration order, and attach ``seeds[k]`` to work item
    ``k`` — never spawn inside a worker.
    """
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return root.spawn(n)


def _observed_call(payload):
    """Run one work item under fresh, item-local observability state.

    Module-level so the pool can pickle it by reference.  The item's
    spans and metrics snapshot ship back with its result; the parent
    merges them **in submission order** (see :func:`parallel_map`), so
    the merged trace structure is identical for any pool size.  Used on
    the serial path too — the parent's tracer is set aside for the call
    — so ``workers=1`` and ``workers=N`` traces agree lane for lane.
    """
    fn, item = payload
    prev_tracer = _trace.disable()
    prev_registry = _metrics.disable()
    tracer = _trace.enable()
    registry = _metrics.enable()
    try:
        result = fn(item)
    finally:
        _trace.enable(prev_tracer) if prev_tracer is not None else _trace.disable()
        (_metrics.enable(prev_registry) if prev_registry is not None
         else _metrics.disable())
    # worker->parent observability merge: this IS the obs plumbing,
    # not an algorithm reading its own telemetry
    return result, tracer.spans, registry.snapshot()  # repro-lint: disable=OBS001


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    label: str = "task",
    executor=None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Returns results in item order regardless of completion order.  With
    ``workers <= 1`` (or a single item) this is a plain serial loop — the
    reference behaviour the pool path must reproduce bit-identically.
    The first worker exception is re-raised in the parent.

    ``executor`` lets a caller that issues many small batches (a sweep
    with one :func:`parallel_map` per point) reuse one long-lived
    :class:`~concurrent.futures.ProcessPoolExecutor` instead of paying
    pool startup/teardown per batch; the caller owns its lifetime.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        return []
    # With observability on, every item runs under _observed_call and
    # its spans/metrics are merged back here in submission order (a
    # deterministic structure however the pool schedules).  The wrapped
    # payload changes nothing about the item or its seeds, so results
    # remain bit-identical to an unobserved run.
    observed = _trace.enabled()
    if observed:
        tracer = _trace.get_tracer()
        anchor = tracer._clock()
        items = [(fn, item) for item in items]
        fn = _observed_call
    workers = min(resolve_workers(workers), n)
    if workers == 1 and executor is None:
        results = []
        for k, item in enumerate(items):
            results.append(fn(item))
            if progress is not None:
                progress(f"{label} {k + 1}/{n}")
        return _merge_observed(results, label, anchor) if observed else results
    if executor is not None:
        results = _pooled_map(executor, fn, items, progress, label)
        return _merge_observed(results, label, anchor) if observed else results

    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=workers) as pool:
        results = _pooled_map(pool, fn, items, progress, label)
    return _merge_observed(results, label, anchor) if observed else results


def _merge_observed(results: List, label: str, anchor_ns: int) -> List:
    """Fold per-item ``(result, spans, metrics)`` triples into the
    parent tracer/registry; return the bare results in item order."""
    tracer = _trace.get_tracer()
    registry = _metrics.get_registry()
    out = []
    for k, (result, spans, snapshot) in enumerate(results):
        if tracer is not None:
            tracer.merge(spans, label=f"{label} {k}", anchor_ns=anchor_ns)
        if registry is not None:
            registry.merge(snapshot)
        out.append(result)
    return out


def _pooled_map(pool, fn, items, progress, label) -> List:
    """Submit all items to ``pool``; gather results in item order."""
    from concurrent.futures import FIRST_EXCEPTION, wait

    n = len(items)
    results: List = [None] * n
    futures = {pool.submit(fn, item): k for k, item in enumerate(items)}
    pending = set(futures)
    done_count = 0
    while pending:
        done, pending = wait(pending, return_when=FIRST_EXCEPTION)
        for fut in done:
            exc = fut.exception()
            if exc is not None:
                for other in pending:
                    other.cancel()
                raise exc
            results[futures[fut]] = fut.result()
            done_count += 1
            if progress is not None:
                progress(f"{label} {done_count}/{n}")
    return results
