"""Process-pool execution backbone with deterministic seed sharding.

All experiment drivers fan their per-(configuration, replication) work out
through :func:`parallel_map`.  The contract that makes ``--workers N``
results bit-identical to a serial run is simple and strict:

1. **Seeds are derived before dispatch.**  The driver enumerates its work
   items in a fixed serial order and attaches every random input (a
   :class:`numpy.random.SeedSequence` child, spawned in that same order)
   to the item itself.  Workers never draw from shared random state.
2. **Workers are pure.**  A worker function receives one picklable item
   and returns a picklable result that depends only on the item — no
   globals, no files, no wall clock in the result payload.
3. **Results are re-assembled in submission order.**  Whatever order the
   pool completes items in, :func:`parallel_map` returns ``results[k]``
   for item ``k`` — so downstream aggregation (means over graphs, CSV row
   order) is independent of scheduling.

Under these rules ``parallel_map(fn, items, workers=1)`` and
``workers=N`` produce the *same floats in the same order*: the serial
path is a plain in-process loop over the identical items.  The same
three rules make the fault-tolerance layer free: a retried item reruns
the same pure function on the same attached seed, and a journalled item
replays to the same value, so supervision and checkpoint/resume change
*nothing* about the numbers (see ``README.md`` next to this module).

The pool uses :class:`concurrent.futures.ProcessPoolExecutor`, so worker
functions must be module-level (picklable by reference).  Wall-clock
fields (mapper ``elapsed_s``) are of course still nondeterministic; the
equivalence guarantee covers every seed-derived quantity.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, TypeVar, Union

import numpy as np

from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .faults import FaultPlan, plan_from_env
from .supervisor import ItemFailedError, RetryPolicy, SupervisedPool

__all__ = ["parallel_map", "resolve_workers", "spawn_seeds"]

T = TypeVar("T")
R = TypeVar("R")

#: distinguishes "not journalled" from a journalled None result
_MISSING = object()


def resolve_workers(workers: Optional[int], default: int = 1) -> int:
    """Normalize a ``--workers`` request into an effective pool size.

    ``None`` means "use the configured default" (the ``parallel_workers``
    dim of the active :class:`~repro.experiments.config.ScaleConfig`);
    ``0`` or negative means "one worker per CPU".  The result is always
    at least 1.
    """
    if workers is None:
        workers = default
    workers = int(workers)
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


def spawn_seeds(
    seed: Union[int, np.random.SeedSequence], n: int
) -> List[np.random.SeedSequence]:
    """Spawn ``n`` independent seed-sequence children in serial order.

    This is the sharding half of the contract: call it once, in the
    driver's enumeration order, and attach ``seeds[k]`` to work item
    ``k`` — never spawn inside a worker.
    """
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return root.spawn(n)


def _observed_call(payload):
    """Run one work item under fresh, item-local observability state.

    Module-level so the pool can pickle it by reference.  The item's
    spans and metrics snapshot ship back with its result; the parent
    merges them **in submission order** (see :func:`parallel_map`), so
    the merged trace structure is identical for any pool size.  Used on
    the serial path too — the parent's tracer is set aside for the call
    — so ``workers=1`` and ``workers=N`` traces agree lane for lane.
    """
    fn, item = payload
    prev_tracer = _trace.disable()
    prev_registry = _metrics.disable()
    tracer = _trace.enable()
    registry = _metrics.enable()
    try:
        result = fn(item)
    finally:
        _trace.enable(prev_tracer) if prev_tracer is not None else _trace.disable()
        (_metrics.enable(prev_registry) if prev_registry is not None
         else _metrics.disable())
    # worker->parent observability merge: this IS the obs plumbing,
    # not an algorithm reading its own telemetry
    return result, tracer.spans, registry.snapshot()  # repro-lint: disable=OBS001


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    label: str = "task",
    executor=None,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[FaultPlan] = None,
    journal=None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Returns results in item order regardless of completion order.  With
    ``workers <= 1`` (or a single item) this is a plain serial loop — the
    reference behaviour the pool path must reproduce bit-identically.
    A failing item is re-raised in the parent as
    :class:`~repro.parallel.supervisor.ItemFailedError` naming the
    (label, item) cell.

    ``executor`` lets a caller that issues many small batches (a sweep
    with one :func:`parallel_map` per point) reuse one long-lived pool;
    the caller owns its lifetime.  Passing a
    :class:`~repro.parallel.supervisor.SupervisedPool` (what the drivers
    do) adds retries, per-item timeouts and crash recovery; ``policy``
    requests the same supervision for a one-shot call.  ``chaos`` (or an
    armed ``REPRO_CHAOS`` environment) injects deterministic faults for
    rehearsal — see :mod:`repro.parallel.faults`.

    ``journal`` (a :class:`~repro.parallel.journal.SweepJournal` or a
    scoped view) checkpoints completed items under ``"{label}:{index}"``
    keys and, on resume, replays journalled results without recomputing
    them — byte-identical by the seed-sharding contract.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        return []
    if chaos is None:
        chaos = plan_from_env()
    if policy is None and chaos is not None and not isinstance(
        executor, SupervisedPool
    ):
        # an armed chaos plan with no explicit supervision would just
        # crash the sweep; adopt a policy sized to outlast the plan
        policy = RetryPolicy.for_chaos(chaos)

    # With observability on, every item runs under _observed_call and
    # its spans/metrics are merged back here in submission order (a
    # deterministic structure however the pool schedules).  The wrapped
    # payload changes nothing about the item or its seeds, so results
    # remain bit-identical to an unobserved run.
    observed = _trace.enabled()
    anchor = _trace.get_tracer()._clock() if observed else 0
    call = _observed_call if observed else fn
    payloads = [(fn, item) for item in items] if observed else items

    results: List = [None] * n
    fresh: dict = {}               # index -> (spans, snapshot) this run
    done_count = 0
    pending = list(range(n))
    if journal is not None:
        pending = []
        for k in range(n):
            hit = journal.get(f"{label}:{k}", _MISSING)
            if hit is _MISSING:
                pending.append(k)
            else:
                results[k] = hit
                done_count += 1

    def _complete(pos: int, payload) -> None:
        """Fold one finished item (journal, progress, span bookkeeping)."""
        nonlocal done_count
        k = pending[pos]
        if observed:
            value, spans, snapshot = payload
            fresh[k] = (spans, snapshot)
        else:
            value = payload
        results[k] = value
        if journal is not None:
            # the journal stores the bare value: resume must work
            # whether or not the next run observes
            journal.record(f"{label}:{k}", value)
        done_count += 1
        if progress is not None:
            progress(f"{label} {done_count}/{n}")

    if pending:
        sub = [payloads[k] for k in pending]
        eff_workers = min(resolve_workers(workers), len(pending))
        if isinstance(executor, SupervisedPool):
            executor.run(call, sub, indices=pending, total=n,
                         label=label, on_result=_complete)
        elif policy is not None:
            with SupervisedPool(eff_workers, policy=policy,
                                chaos=chaos) as sup:
                sup.run(call, sub, indices=pending, total=n,
                        label=label, on_result=_complete)
        elif eff_workers == 1 and executor is None:
            for pos, k in enumerate(pending):
                try:
                    out = call(sub[pos])
                except Exception as exc:  # noqa: BLE001 — name the cell
                    raise ItemFailedError(label, k, n, 1, exc) from exc
                _complete(pos, out)
        else:
            if executor is not None:
                _pooled_map(executor, call, sub, pending, n, label, _complete)
            else:
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(max_workers=eff_workers) as pool:
                    _pooled_map(pool, call, sub, pending, n, label, _complete)

    if observed:
        _merge_observed(fresh, n, label, anchor)
    return results


def _merge_observed(fresh: dict, n: int, label: str, anchor_ns: int) -> None:
    """Fold per-item ``(spans, metrics)`` pairs into the parent
    tracer/registry in item order (journal-replayed items executed in an
    earlier run and contribute nothing)."""
    tracer = _trace.get_tracer()
    registry = _metrics.get_registry()
    for k in range(n):
        entry = fresh.get(k)
        if entry is None:
            continue
        spans, snapshot = entry
        if tracer is not None:
            tracer.merge(spans, label=f"{label} {k}", anchor_ns=anchor_ns)
        if registry is not None:
            registry.merge(snapshot)


def _pooled_map(pool, call, payloads, pending, n, label, complete) -> None:
    """Submit all payloads to a bare ``pool``; fail fast on the first error."""
    from concurrent.futures import FIRST_EXCEPTION, wait

    futures = {
        pool.submit(call, payload): pos
        for pos, payload in enumerate(payloads)
    }
    waiting = set(futures)
    while waiting:
        done, waiting = wait(waiting, return_when=FIRST_EXCEPTION)
        for fut in done:
            exc = fut.exception()
            if exc is not None:
                for other in waiting:
                    other.cancel()
                raise ItemFailedError(
                    label, pending[futures[fut]], n, 1, exc
                ) from exc
            complete(futures[fut], fut.result())
