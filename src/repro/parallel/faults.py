"""Deterministic chaos injection for the supervised pool.

A :class:`FaultPlan` decides, purely from ``(seed, label, item index,
attempt)``, whether a work item should crash its worker, hang, or raise a
transient exception.  The decision function is a seeded hash — no global
state, no wall clock — so the *same plan injects the same faults* on
every run: a chaos test that passes once passes always, and a CI job can
assert that a faulted sweep emits byte-identical output to a clean one.

Plans come from three places:

- tests construct :class:`FaultPlan` directly,
- :func:`plan_from_spec` parses the compact ``"seed=7,crash=0.1,..."``
  form used on command lines,
- :func:`plan_from_env` reads that form from ``REPRO_CHAOS``, which is
  how the CI ``chaos-smoke`` job arms an entire ``repro experiment`` run
  without touching driver code.

Faults fire only on attempts ``< max_faults``; retries beyond that run
clean, so a plan can never make an item fail forever (the supervisor's
``RetryPolicy`` bounds attempts independently).  Process-killing faults
(``crash``/``hang``) are injected only inside pool workers — in-process
execution downgrades them to no-ops so a chaos plan cannot take down the
parent or a degraded serial run.
"""

from __future__ import annotations

import os
import signal
import time
import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["ChaosError", "FaultPlan", "plan_from_spec", "plan_from_env"]

#: environment variable holding a :func:`plan_from_spec` string
CHAOS_ENV = "REPRO_CHAOS"


class ChaosError(RuntimeError):
    """The transient exception injected by an ``error`` fault."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault schedule over ``(label, item, attempt)`` tuples.

    ``crash``/``hang``/``error`` are independent-ish probabilities (one
    uniform draw per tuple, cut into bands, so their sum must stay
    ``<= 1``).  ``timeout_s`` is not a fault: it is the per-item timeout
    a supervisor should adopt so injected hangs are actually detected
    (see :meth:`RetryPolicy.for_chaos <repro.parallel.supervisor.RetryPolicy.for_chaos>`).
    """

    seed: int
    crash: float = 0.0        # SIGKILL the worker process
    hang: float = 0.0         # sleep hang_s (must exceed the timeout)
    error: float = 0.0        # raise ChaosError
    max_faults: int = 1       # attempts >= this run clean
    hang_s: float = 60.0
    timeout_s: float = 10.0

    def __post_init__(self) -> None:
        for name in ("crash", "hang", "error"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"FaultPlan.{name} must be in [0, 1], got {p}")
        if self.crash + self.hang + self.error > 1.0:
            raise ValueError("FaultPlan crash + hang + error must be <= 1")
        if self.max_faults < 0:
            raise ValueError("FaultPlan.max_faults must be >= 0")
        if self.hang_s <= 0 or self.timeout_s <= 0:
            raise ValueError("FaultPlan.hang_s and timeout_s must be > 0")

    def fault_for(self, label: str, index: int, attempt: int) -> Optional[str]:
        """The fault for one ``(label, item, attempt)`` — or None.

        Deterministic: the draw is a fresh generator seeded from the
        full tuple, so the decision depends on nothing but the plan and
        the item's identity — not on scheduling, pool size, or how many
        other items were drawn before it.
        """
        if attempt >= self.max_faults:
            return None
        rng = np.random.default_rng([
            self.seed, zlib.crc32(label.encode()), index, attempt,
        ])
        u = float(rng.random())
        if u < self.crash:
            return "crash"
        if u < self.crash + self.hang:
            return "hang"
        if u < self.crash + self.hang + self.error:
            return "error"
        return None

    def inject(self, fault: str, *, in_worker: bool) -> None:
        """Execute a fault decision at the top of a work item.

        ``crash`` and ``hang`` only make sense where a supervisor can
        observe the loss from outside (a pool worker process); in-process
        they are skipped rather than killing or stalling the parent.
        """
        if fault == "error":
            raise ChaosError("injected transient fault")
        if not in_worker:
            return
        if fault == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault == "hang":
            # chaos stand-in for a wedged worker; the supervisor's
            # per-item timeout is what kills it
            time.sleep(self.hang_s)  # repro-lint: disable=PAR002
        else:
            raise ValueError(f"unknown fault {fault!r}")


def plan_from_spec(spec: str) -> FaultPlan:
    """Parse ``"seed=7,crash=0.1,hang=0.05,error=0.2,timeout=5"``.

    Keys: ``seed`` (required), ``crash``/``hang``/``error`` rates,
    ``max_faults``, ``hang_s``, ``timeout`` (alias ``timeout_s``).
    """
    kwargs = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed REPRO_CHAOS entry {part!r}; want key=value")
        key = key.strip()
        if key == "timeout":
            key = "timeout_s"
        if key in ("seed", "max_faults"):
            kwargs[key] = int(value)
        elif key in ("crash", "hang", "error", "hang_s", "timeout_s"):
            kwargs[key] = float(value)
        else:
            raise ValueError(f"unknown REPRO_CHAOS key {key!r}")
    if "seed" not in kwargs:
        raise ValueError("REPRO_CHAOS spec needs an explicit seed=N")
    return FaultPlan(**kwargs)


def plan_from_env() -> Optional[FaultPlan]:
    """The :data:`CHAOS_ENV` plan, or None when chaos is not armed."""
    spec = os.environ.get(CHAOS_ENV)
    if not spec:
        return None
    return plan_from_spec(spec)
