"""Supervised pool execution: retries, timeouts, rebuilds, degradation.

:class:`SupervisedPool` wraps a :class:`~concurrent.futures.ProcessPoolExecutor`
with the failure handling the bare pool lacks:

- **bounded retries with exponential backoff** — a transient worker
  exception requeues the item up to :attr:`RetryPolicy.max_attempts`
  times; exhaustion raises :class:`ItemFailedError` naming the item;
- **per-item timeouts** — in-flight submissions are capped at the pool
  width so a deadline measures *running* time; a hung worker cannot be
  cancelled through the executor API, so expiry kills the worker
  processes and rebuilds the pool, recharging only the expired item's
  attempt counter;
- **BrokenProcessPool recovery** — a crashed worker (segfault, OOM kill,
  injected SIGKILL) breaks every in-flight future; the supervisor
  rebuilds the executor and resubmits only the outstanding items;
- **graceful degradation** — after ``max_pool_rebuilds`` *consecutive*
  rebuilds without a single completed item, the pool gives up on process
  parallelism and finishes the remaining items in-process.

None of this can change results: every item carries its own
:class:`~numpy.random.SeedSequence` (the seed-sharding contract in
``README.md`` next to this module), so a retried item reruns the same
pure function on the same seed — results are independent of *when,
where, or how many times* an item executes.  Supervision is visible only
through observability (``parallel.retries`` / ``parallel.timeouts`` /
``parallel.pool_rebuilds`` counters, a ``parallel.attempts`` histogram,
``parallel.retry`` instants) and, of course, wall-clock time.

The module deliberately reads the monotonic clock and sleeps between
retries — it is control-plane code, never on an algorithm path; the
inline pragmas below mark the sanctioned exemptions from DET002/PAR002.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .faults import FaultPlan

__all__ = ["RetryPolicy", "ItemFailedError", "SupervisedPool"]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a :class:`SupervisedPool` tries before giving up."""

    max_attempts: int = 3
    timeout_s: Optional[float] = None       # per-item; None = no deadline
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    max_pool_rebuilds: int = 3              # consecutive, without progress

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("RetryPolicy.max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("RetryPolicy.timeout_s must be > 0 (or None)")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("RetryPolicy backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("RetryPolicy.backoff_factor must be >= 1")
        if self.max_pool_rebuilds < 0:
            raise ValueError("RetryPolicy.max_pool_rebuilds must be >= 0")

    def backoff_s(self, retry: int) -> float:
        """Bounded exponential delay before retry number ``retry`` (0-based)."""
        return min(self.backoff_max_s,
                   self.backoff_base_s * self.backoff_factor ** retry)

    @classmethod
    def for_chaos(cls, plan: FaultPlan) -> "RetryPolicy":
        """A policy guaranteed to outlast ``plan``'s injected faults."""
        return cls(
            max_attempts=max(3, plan.max_faults + 1),
            timeout_s=plan.timeout_s,
        )


class ItemFailedError(RuntimeError):
    """One work item exhausted its retry budget.

    Subclasses :class:`RuntimeError` and embeds the original exception
    text, so existing ``pytest.raises(RuntimeError, match=...)`` style
    handling keeps working while the message now names the offending
    (label, item) cell.
    """

    def __init__(self, label: str, index: int, total: int, attempts: int,
                 cause: BaseException):
        super().__init__(
            f"{label} item {index + 1}/{total} failed after {attempts} "
            f"attempt(s): {cause!r}"
        )
        self.label = label
        self.index = index
        self.total = total
        self.attempts = attempts
        self.cause = cause


def _supervised_call(payload):
    """Worker-side entry: inject any planned fault, then run the item.

    Module-level so the pool pickles it by reference.  The chaos check
    happens *inside the worker* so crash/hang faults genuinely take the
    process down — which is the failure mode being rehearsed.
    """
    fn, item, plan, label, index, attempt = payload
    if plan is not None:
        fault = plan.fault_for(label, index, attempt)
        if fault is not None:
            plan.inject(fault, in_worker=True)
    return fn(item)


def _count(name: str, amount: int = 1) -> None:
    registry = _metrics.get_registry()
    if registry is not None:
        registry.counter(name).inc(amount)


def _observe_attempts(n: int) -> None:
    registry = _metrics.get_registry()
    if registry is not None:
        registry.histogram("parallel.attempts").observe_int(n)


class SupervisedPool:
    """A process pool that survives worker crashes, hangs and flakes.

    Drop-in for the ``executor=`` argument of
    :func:`repro.parallel.parallel_map`; also usable directly via
    :meth:`run`.  ``workers == 1`` runs in-process with the same retry
    semantics (minus process-level faults).  Context-managed: the owner
    creates it once per sweep and every batch reuses the same worker
    processes until one of them has to be killed.
    """

    def __init__(self, workers: int, *,
                 policy: Optional[RetryPolicy] = None,
                 chaos: Optional[FaultPlan] = None):
        self.workers = max(1, int(workers))
        self.policy = policy if policy is not None else RetryPolicy()
        self.chaos = chaos
        self._pool = None

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the executor down hard (workers may be hung or dead)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            # the worker already exited; nothing left to kill
            except (OSError, ValueError):  # repro-lint: disable=EXC001
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    # -- execution ------------------------------------------------------
    def run(
        self,
        fn: Callable,
        payloads: Sequence,
        *,
        indices: Optional[Sequence[int]] = None,
        total: Optional[int] = None,
        label: str = "task",
        on_result: Optional[Callable[[int, object], None]] = None,
    ) -> List:
        """Execute every payload; return results in payload order.

        ``indices``/``total`` carry the items' identities in the caller's
        full sequence (so chaos decisions and error messages name the
        original item even when a resumed run only submits a subset).
        ``on_result(position, result)`` streams completions — in
        completion order — for journalling/progress.
        """
        payloads = list(payloads)
        n = len(payloads)
        if indices is None:
            indices = list(range(n))
        total = n if total is None else total
        results: List = [None] * n
        if n == 0:
            return results
        if self.workers == 1:
            order = range(n)
            self._run_serial(fn, payloads, order, indices, total, label,
                             on_result, results)
        else:
            self._run_pooled(fn, payloads, indices, total, label,
                             on_result, results)
        return results

    # -- serial / degraded path ----------------------------------------
    def _run_serial(self, fn, payloads, order, indices, total, label,
                    on_result, results) -> None:
        for pos in order:
            attempts, value = self._run_one_serial(
                fn, payloads[pos], label, indices[pos], total
            )
            _observe_attempts(attempts)
            results[pos] = value
            if on_result is not None:
                on_result(pos, value)

    def _run_one_serial(self, fn, payload, label, index, total):
        """In-process retry loop for one item; returns (attempts, result)."""
        policy = self.policy
        last: Optional[BaseException] = None
        for attempt in range(policy.max_attempts):
            if attempt:
                self._note_retry(label, index, attempt)
                self._sleep_backoff(attempt - 1)
            try:
                if self.chaos is not None:
                    fault = self.chaos.fault_for(label, index, attempt)
                    if fault is not None:
                        # crash/hang are worker-process faults; in-process
                        # only the transient-error band fires
                        self.chaos.inject(fault, in_worker=False)
                return attempt + 1, fn(payload)
            except Exception as exc:  # noqa: BLE001 — every kind retries
                last = exc
        raise ItemFailedError(
            label, index, total, policy.max_attempts, last
        ) from last

    # -- pooled path ----------------------------------------------------
    def _run_pooled(self, fn, payloads, indices, total, label,
                    on_result, results) -> None:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        policy = self.policy
        queue = deque((pos, 0) for pos in range(len(payloads)))
        inflight: dict = {}        # future -> (pos, attempt, deadline)
        outstanding = len(payloads)
        consecutive_rebuilds = 0
        degraded = False

        def rebuild(reason: str) -> None:
            nonlocal consecutive_rebuilds, degraded
            _count("parallel.pool_rebuilds")
            _trace.instant("parallel.pool_rebuild", "parallel",
                           {"reason": reason})
            consecutive_rebuilds += 1
            self._kill_pool()
            if consecutive_rebuilds > policy.max_pool_rebuilds:
                degraded = True

        def requeue_inflight(extra_attempt_for=()) -> None:
            # preserve position order at the head of the queue so retried
            # items go back out before untouched ones
            bumped = set(extra_attempt_for)
            backlog = sorted(
                (pos, attempt + 1 if f in bumped else attempt)
                for f, (pos, attempt, _d) in inflight.items()
            )
            inflight.clear()
            queue.extendleft(reversed(backlog))

        def submit_ready() -> None:
            while queue and len(inflight) < self.workers and not degraded:
                pos, attempt = queue[0]
                payload = (fn, payloads[pos], self.chaos, label,
                           indices[pos], attempt)
                try:
                    fut = self._ensure_pool().submit(_supervised_call, payload)
                except BrokenProcessPool:
                    # pool died between batches; rebuild and retry the submit
                    requeue_inflight()
                    rebuild("submit")
                    continue
                queue.popleft()
                deadline = None
                if policy.timeout_s is not None:
                    deadline = (
                        time.monotonic()  # repro-lint: disable=DET002
                        + policy.timeout_s
                    )
                inflight[fut] = (pos, attempt, deadline)

        while outstanding and not degraded:
            submit_ready()
            if not inflight:
                if degraded or not queue:
                    break
                continue
            timeout = None
            if policy.timeout_s is not None:
                now = time.monotonic()  # repro-lint: disable=DET002
                timeout = max(
                    0.05,
                    min(d for (_p, _a, d) in inflight.values()) - now,
                )
            done, _ = wait(set(inflight), timeout=timeout,
                           return_when=FIRST_COMPLETED)

            if not done:
                # deadline pass: at least one in-flight item overran.  A
                # running call cannot be cancelled, so kill the workers,
                # rebuild, and recharge only the expired items' attempts.
                now = time.monotonic()  # repro-lint: disable=DET002
                expired = [
                    f for f, (_p, _a, d) in inflight.items()
                    if d is not None and d <= now
                ]
                if not expired:
                    continue
                for f in expired:
                    pos, attempt, _d = inflight[f]
                    _count("parallel.timeouts")
                    _trace.instant("parallel.timeout", "parallel",
                                   {"item": indices[pos],
                                    "attempt": attempt + 1})
                    if attempt + 1 >= policy.max_attempts:
                        self._kill_pool()
                        cause = TimeoutError(
                            f"no result within {policy.timeout_s:g}s"
                        )
                        raise ItemFailedError(
                            label, indices[pos], total,
                            attempt + 1, cause,
                        ) from cause
                requeue_inflight(extra_attempt_for=expired)
                rebuild("timeout")
                continue

            crashed = False
            # harvest completions first: real progress resets the
            # consecutive-rebuild budget even in a crashing batch
            for fut in [f for f in done if f.exception() is None]:
                pos, attempt, _d = inflight.pop(fut)
                results[pos] = fut.result()
                outstanding -= 1
                consecutive_rebuilds = 0
                _observe_attempts(attempt + 1)
                if on_result is not None:
                    on_result(pos, results[pos])
            for fut in [f for f in done if f in inflight]:
                pos, attempt, _d = inflight.pop(fut)
                exc = fut.exception()
                if isinstance(exc, BrokenProcessPool):
                    # a worker died; every in-flight future is broken and
                    # nobody knows which item was the trigger — charge
                    # all broken ones one attempt
                    crashed = True
                    if attempt + 1 >= policy.max_attempts:
                        self._kill_pool()
                        raise ItemFailedError(
                            label, indices[pos], total, attempt + 1, exc
                        ) from exc
                    queue.appendleft((pos, attempt + 1))
                else:
                    # an ordinary exception from the item itself
                    if attempt + 1 >= policy.max_attempts:
                        self._kill_pool()
                        raise ItemFailedError(
                            label, indices[pos], total, attempt + 1, exc
                        ) from exc
                    self._note_retry(label, indices[pos], attempt + 1)
                    self._sleep_backoff(attempt)
                    queue.appendleft((pos, attempt + 1))
            if crashed:
                requeue_inflight()
                rebuild("crash")

        if outstanding:
            # degradation: repeated rebuilds made no progress — finish the
            # rest in-process (fresh attempt budget, process faults moot)
            _trace.instant("parallel.degraded", "parallel",
                           {"outstanding": outstanding})
            backlog = sorted({pos for pos, _a in queue}
                             | {pos for (pos, _a, _d) in inflight.values()})
            inflight.clear()
            self._kill_pool()
            self._run_serial(fn, payloads, backlog, indices, total, label,
                             on_result, results)

    # -- shared helpers -------------------------------------------------
    def _note_retry(self, label: str, index: int, attempt: int) -> None:
        _count("parallel.retries")
        _trace.instant("parallel.retry", "parallel",
                       {"label": label, "item": index, "attempt": attempt})

    def _sleep_backoff(self, retry: int) -> None:
        delay = self.policy.backoff_s(retry)
        if delay > 0:
            # bounded control-plane wait between retries (never on an
            # algorithm path); RetryPolicy validation caps it
            time.sleep(delay)  # repro-lint: disable=PAR002
