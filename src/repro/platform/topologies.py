"""Preset interconnect topologies, derived from a platform's link costs.

Platform *shape* is an experimental axis the same way platform
granularity is in HeSP: the contention sweep
(``repro experiment contention --topology ...``) replays identical
workloads over different link graphs and measures what routing and
per-link queueing cost.  Every preset here derives its per-link
bandwidth/latency from the platform's existing pairwise matrices, so a
topology variant of e.g. :func:`~repro.platform.presets.paper_platform`
is a *reshaping* of the same hardware numbers, never a new hardware
spec:

- ``star``  — one hub (the host, device 0) with a dedicated hub↔device
  link per device; device↔device transfers route over two hops through
  the hub.  This is the explicit form of the paper's host-mediated
  interconnect.
- ``mesh``  — a direct link for every device pair.  All routes are one
  hop, so effective costs equal the legacy matrices **bit-for-bit**;
  only contention changes (per-link pools instead of one shared pool).
- ``ring``  — devices on a cycle ``0-1-...-(m-1)-0``; transfers route
  the shorter arc (ascending-index tie-break).
- ``numa``  — two NUMA nodes (first half / second half of the device
  list), full mesh inside each node, one bridge link between the node
  heads — the classic contended inter-socket channel.

``slots`` bounds concurrent transfers *per link* (``None``/``0`` =
unlimited, the repo-wide convention); ``with_topology`` installs the
preset on a platform and returns the topology-aware variant.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .links import Link, LinkGraph
from .platform import Platform

__all__ = [
    "TOPOLOGY_NAMES",
    "star",
    "mesh",
    "ring",
    "numa_pairs",
    "make_topology",
    "with_topology",
]


def _pair_link(
    platform: Platform, a: int, b: int, slots: Optional[int]
) -> Link:
    """A link between ``a`` and ``b`` at the platform's pairwise cost."""
    return Link(
        a=a,
        b=b,
        bandwidth_gbps=float(platform.bandwidth_gbps[a, b]),
        latency_s=float(platform.latency_s[a, b]),
        slots=slots,
    )


def star(platform: Platform, *, slots: Optional[int] = None) -> LinkGraph:
    """Hub-and-spoke: one host↔device link per device (hub = device 0)."""
    m = platform.n_devices
    links = [_pair_link(platform, 0, d, slots) for d in range(1, m)]
    return LinkGraph(m, links)


def mesh(platform: Platform, *, slots: Optional[int] = None) -> LinkGraph:
    """Fully connected: a direct link for every device pair."""
    m = platform.n_devices
    links = [
        _pair_link(platform, a, b, slots)
        for a in range(m)
        for b in range(a + 1, m)
    ]
    return LinkGraph(m, links)


def ring(platform: Platform, *, slots: Optional[int] = None) -> LinkGraph:
    """A cycle ``0-1-...-(m-1)-0`` (a line for two devices)."""
    m = platform.n_devices
    links = [_pair_link(platform, d, d + 1, slots) for d in range(m - 1)]
    if m > 2:
        links.append(_pair_link(platform, 0, m - 1, slots))
    return LinkGraph(m, links)


def numa_pairs(
    platform: Platform,
    *,
    slots: Optional[int] = None,
    bridge_slots: Optional[int] = None,
) -> LinkGraph:
    """Two NUMA nodes bridged by one inter-node link.

    Devices ``0 .. ceil(m/2)-1`` form node 0, the rest node 1; each node
    is internally fully connected and the node heads (device 0 and the
    first device of node 1) share the single bridge.  ``bridge_slots``
    defaults to ``slots`` — making the bridge the narrowest resource is
    exactly the NUMA experiment.  Falls back to a plain mesh below three
    devices (there is nothing to partition).
    """
    m = platform.n_devices
    if m < 3:
        return mesh(platform, slots=slots)
    half = (m + 1) // 2
    nodes = [list(range(half)), list(range(half, m))]
    links: List[Link] = []
    for node in nodes:
        for x, a in enumerate(node):
            for b in node[x + 1:]:
                links.append(_pair_link(platform, a, b, slots))
    links.append(_pair_link(
        platform, 0, half, bridge_slots if bridge_slots is not None else slots
    ))
    return LinkGraph(m, links)


_PRESETS: Dict[str, Callable[..., LinkGraph]] = {
    "star": star,
    "mesh": mesh,
    "ring": ring,
    "numa": numa_pairs,
}

#: Preset names accepted by :func:`make_topology` and the CLI's
#: ``--topology`` axis (the CLI additionally accepts ``"shared"`` for
#: the legacy single-pool model, which is not a link graph).
TOPOLOGY_NAMES = tuple(sorted(_PRESETS))


def make_topology(
    name: str, platform: Platform, *, slots: Optional[int] = None
) -> LinkGraph:
    """Build the named preset topology for ``platform``."""
    try:
        preset = _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r} (choose from {', '.join(TOPOLOGY_NAMES)})"
        ) from None
    return preset(platform, slots=slots)


def with_topology(
    platform: Platform, name: str, *, slots: Optional[int] = None
) -> Platform:
    """``platform`` reshaped onto the named preset topology.

    The returned platform keeps the devices and ``link_slots`` but
    carries the preset :class:`~repro.platform.links.LinkGraph`; its
    ``bandwidth_gbps``/``latency_s`` become the routed effective
    matrices.  ``name="shared"`` (or ``"flat"``) returns the platform
    unchanged — the legacy uniform-interconnect model.
    """
    if name in ("shared", "flat", "none"):
        return platform
    return platform.with_link_graph(make_topology(name, platform, slots=slots))
