"""Heterogeneous platform: devices plus interconnect.

A :class:`Platform` bundles the processing units with a symmetric
bandwidth/latency matrix.  By convention **device 0 is the host CPU**: it is
the default mapping target, holds the input data of source tasks and receives
the output of sink tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .device import Device, DeviceKind

__all__ = ["Platform"]


@dataclass(frozen=True)
class Platform:
    """A set of devices and their interconnect.

    ``bandwidth_gbps[i][j]`` / ``latency_s[i][j]`` describe the link from
    device ``i`` to device ``j``; the diagonal is ignored (same-device
    transfers are free).  Matrices may be given as nested lists or numpy
    arrays.

    ``link_slots`` bounds how many cross-device transfers the shared
    host↔device interconnect (think: one PCIe root complex) can carry
    concurrently.  ``None`` (the default) and ``0`` both mean the
    paper's analytic model: links are infinitely parallel and every
    transfer takes exactly its nominal time (``0`` is normalized to
    ``None``, matching the engine/CLI convention where ``0`` forces the
    unlimited model).  A finite value only affects the runtime engine
    (:mod:`repro.runtime.engine`), which then queues transfers FIFO for
    the ``link_slots`` slots — the analytic :class:`CostModel` always
    evaluates the uncontended model.
    """

    devices: Tuple[Device, ...]
    bandwidth_gbps: np.ndarray
    latency_s: np.ndarray
    link_slots: Optional[int]

    def __init__(
        self,
        devices: Sequence[Device],
        bandwidth_gbps,
        latency_s,
        *,
        link_slots: Optional[int] = None,
    ) -> None:
        devices = tuple(devices)
        bw = np.asarray(bandwidth_gbps, dtype=float).copy()
        lat = np.asarray(latency_s, dtype=float).copy()
        m = len(devices)
        if not devices:
            raise ValueError("platform needs at least one device")
        if devices[0].kind is not DeviceKind.CPU:
            raise ValueError("device 0 must be the host CPU")
        if bw.shape != (m, m) or lat.shape != (m, m):
            raise ValueError(
                f"interconnect matrices must be {m}x{m}, got {bw.shape}/{lat.shape}"
            )
        if np.any(bw[~np.eye(m, dtype=bool)] <= 0):
            raise ValueError("off-diagonal bandwidths must be positive")
        if np.any(lat < 0):
            raise ValueError("latencies must be non-negative")
        names = [d.name for d in devices]
        if len(set(names)) != m:
            raise ValueError(f"duplicate device names: {names}")
        if link_slots is not None:
            link_slots = int(link_slots)
            if link_slots < 0:
                raise ValueError("link_slots must be >= 0 (0/None = unlimited)")
            if link_slots == 0:
                link_slots = None
        np.fill_diagonal(bw, np.inf)
        np.fill_diagonal(lat, 0.0)
        bw.setflags(write=False)
        lat.setflags(write=False)
        object.__setattr__(self, "devices", devices)
        object.__setattr__(self, "bandwidth_gbps", bw)
        object.__setattr__(self, "latency_s", lat)
        object.__setattr__(self, "link_slots", link_slots)

    # ------------------------------------------------------------------
    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def host_index(self) -> int:
        """Index of the host CPU (always 0 by construction)."""
        return 0

    def index_of(self, name: str) -> int:
        for i, d in enumerate(self.devices):
            if d.name == name:
                return i
        raise KeyError(f"no device named {name!r}")

    def device(self, name: str) -> Device:
        return self.devices[self.index_of(name)]

    def fpga_indices(self) -> List[int]:
        return [i for i, d in enumerate(self.devices) if d.is_fpga]

    def kind_mask(self, kind: DeviceKind) -> np.ndarray:
        return np.array([d.kind is kind for d in self.devices])

    def transfer_time(self, d_from: int, d_to: int, data_mb: float) -> float:
        """Time (s) to move ``data_mb`` MB between two devices (0 if same)."""
        if d_from == d_to:
            return 0.0
        bw = self.bandwidth_gbps[d_from, d_to]
        return float(self.latency_s[d_from, d_to] + data_mb / 1000.0 / bw)

    def serializes(self) -> np.ndarray:
        return np.array([d.serializes for d in self.devices])

    def streaming(self) -> np.ndarray:
        return np.array([d.streaming for d in self.devices])

    def with_devices(self, devices: Sequence[Device]) -> "Platform":
        """A platform with new devices on this platform's interconnect.

        Keeps ``bandwidth_gbps``/``latency_s``/``link_slots`` — the one
        way to derive a variant platform (e.g. a resized FPGA) without
        hand-copying, and forgetting, an interconnect field.
        """
        return Platform(
            devices, self.bandwidth_gbps, self.latency_s,
            link_slots=self.link_slots,
        )

    def area_capacities(self) -> Dict[int, float]:
        """Device index -> area capacity, for area-constrained devices."""
        return {
            i: d.area_capacity
            for i, d in enumerate(self.devices)
            if d.area_capacity is not None
        }

    def __repr__(self) -> str:
        names = ", ".join(f"{d.name}({d.kind.value})" for d in self.devices)
        return f"Platform([{names}])"
