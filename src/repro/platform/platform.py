"""Heterogeneous platform: devices plus interconnect.

A :class:`Platform` bundles the processing units with a symmetric
bandwidth/latency matrix.  By convention **device 0 is the host CPU**: it is
the default mapping target, holds the input data of source tasks and receives
the output of sink tasks.

Interconnect models.  A platform describes its interconnect in one of two
ways:

- **uniform (legacy)** — dense ``bandwidth_gbps`` / ``latency_s`` matrices
  giving every device pair a direct transfer cost, contended (if at all)
  against one shared slot pool.  This is the paper's host-mediated PCIe
  model and the behaviour of every platform built before link graphs
  existed; it is bit-for-bit unchanged.
- **topology-aware** — an explicit :class:`~repro.platform.links.LinkGraph`
  of per-device-pair links.  Routing is resolved *here, at construction
  time*: the platform's ``bandwidth_gbps``/``latency_s`` attributes become
  the routed **effective** matrices (hop-summed latency, harmonically
  composed bandwidth — see :mod:`repro.platform.links`), so every consumer
  of the matrices (cost-model tables, kernels, mappers) prices topology
  with zero per-evaluation cost.  Only the runtime engine additionally
  reads the route structure, to queue transfers on per-link slot pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .device import Device, DeviceKind
from .links import Link, LinkGraph

__all__ = ["Platform"]


@dataclass(frozen=True)
class Platform:
    """A set of devices and their interconnect.

    ``bandwidth_gbps[i][j]`` / ``latency_s[i][j]`` describe the (possibly
    routed, see below) transfer cost from device ``i`` to device ``j``;
    the diagonal is ignored (same-device transfers are free).  Matrices
    may be given as nested lists or numpy arrays.

    ``link_graph`` switches the platform to the topology-aware model:
    pass a :class:`~repro.platform.links.LinkGraph` *instead of* the
    matrices (passing both is an error — the matrices are derived from
    the graph's precomputed routes, so the stored
    ``bandwidth_gbps``/``latency_s`` are the *effective* per-pair values
    and every matrix consumer transparently prices the topology).
    ``link_graph=None`` (the legacy default) is the uniform
    host-mediated interconnect: direct matrix costs, one shared
    transfer pool.

    ``link_slots`` bounds concurrent cross-device transfers.  The
    repo-wide convention — shared with ``RuntimeEngine(link_slots=...)``
    and per-link ``Link.slots`` — is that **``0`` means unlimited**:
    ``0`` is normalized to ``None`` here at construction, and the
    engine's ``link_slots=0`` likewise selects the unlimited analytic
    model (its ``None`` means *inherit the platform setting* instead).
    On a uniform platform a finite value is the width of the single
    shared pool (think: one PCIe root complex); on a topology-aware
    platform it is the default width for links that do not declare
    their own ``slots``.  Either way a finite value only affects the
    runtime engine (:mod:`repro.runtime.engine`), which queues
    transfers FIFO per pool — the analytic :class:`CostModel` always
    evaluates the uncontended model.
    """

    devices: Tuple[Device, ...]
    bandwidth_gbps: np.ndarray
    latency_s: np.ndarray
    link_slots: Optional[int]
    link_graph: Optional[LinkGraph]

    def __init__(
        self,
        devices: Sequence[Device],
        bandwidth_gbps=None,
        latency_s=None,
        *,
        link_slots: Optional[int] = None,
        link_graph: Optional[LinkGraph] = None,
    ) -> None:
        devices = tuple(devices)
        m = len(devices)
        if not devices:
            raise ValueError("platform needs at least one device")
        if devices[0].kind is not DeviceKind.CPU:
            raise ValueError("device 0 must be the host CPU")
        if link_graph is not None:
            if not isinstance(link_graph, LinkGraph):
                raise TypeError(
                    f"link_graph must be a LinkGraph, got "
                    f"{type(link_graph).__name__}"
                )
            if link_graph.n_devices != m:
                raise ValueError(
                    f"link graph spans {link_graph.n_devices} devices, "
                    f"platform has {m}"
                )
            if bandwidth_gbps is not None or latency_s is not None:
                raise ValueError(
                    "pass either interconnect matrices or link_graph, not "
                    "both (the matrices are derived from the link graph)"
                )
            bw = link_graph.eff_bandwidth_gbps.copy()
            lat = link_graph.eff_latency_s.copy()
        else:
            if bandwidth_gbps is None or latency_s is None:
                raise ValueError(
                    "bandwidth_gbps and latency_s are required without a "
                    "link_graph"
                )
            bw = np.asarray(bandwidth_gbps, dtype=float).copy()
            lat = np.asarray(latency_s, dtype=float).copy()
        if bw.shape != (m, m) or lat.shape != (m, m):
            raise ValueError(
                f"interconnect matrices must be {m}x{m}, got {bw.shape}/{lat.shape}"
            )
        if np.any(bw[~np.eye(m, dtype=bool)] <= 0):
            raise ValueError("off-diagonal bandwidths must be positive")
        if np.any(lat < 0):
            raise ValueError("latencies must be non-negative")
        names = [d.name for d in devices]
        if len(set(names)) != m:
            raise ValueError(f"duplicate device names: {names}")
        if link_slots is not None:
            link_slots = int(link_slots)
            if link_slots < 0:
                raise ValueError("link_slots must be >= 0 (0/None = unlimited)")
            if link_slots == 0:
                link_slots = None
        np.fill_diagonal(bw, np.inf)
        np.fill_diagonal(lat, 0.0)
        bw.setflags(write=False)
        lat.setflags(write=False)
        object.__setattr__(self, "devices", devices)
        object.__setattr__(self, "bandwidth_gbps", bw)
        object.__setattr__(self, "latency_s", lat)
        object.__setattr__(self, "link_slots", link_slots)
        object.__setattr__(self, "link_graph", link_graph)

    # ------------------------------------------------------------------
    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def host_index(self) -> int:
        """Index of the host CPU (always 0 by construction)."""
        return 0

    def index_of(self, name: str) -> int:
        for i, d in enumerate(self.devices):
            if d.name == name:
                return i
        raise KeyError(f"no device named {name!r}")

    def device(self, name: str) -> Device:
        return self.devices[self.index_of(name)]

    def fpga_indices(self) -> List[int]:
        return [i for i, d in enumerate(self.devices) if d.is_fpga]

    def kind_mask(self, kind: DeviceKind) -> np.ndarray:
        return np.array([d.kind is kind for d in self.devices])

    def transfer_time(self, d_from: int, d_to: int, data_mb: float) -> float:
        """Time (s) to move ``data_mb`` MB between two devices (0 if same).

        On a topology-aware platform the matrices are the routed
        effective values, so this *is* the routed transfer cost — the
        one formula every evaluation layer shares.
        """
        if d_from == d_to:
            return 0.0
        bw = self.bandwidth_gbps[d_from, d_to]
        return float(self.latency_s[d_from, d_to] + data_mb / 1000.0 / bw)

    # ------------------------------------------------------------------
    # link-graph views (empty/trivial on uniform legacy platforms)
    # ------------------------------------------------------------------
    @property
    def links(self) -> Tuple[Link, ...]:
        """The explicit links, or ``()`` for a uniform platform."""
        return self.link_graph.links if self.link_graph is not None else ()

    @property
    def n_links(self) -> int:
        return len(self.links)

    def route(self, d_from: int, d_to: int) -> Tuple[int, ...]:
        """Link indices a ``d_from -> d_to`` transfer traverses.

        Empty for same-device transfers and on uniform platforms (whose
        single shared interconnect has no explicit links — the runtime
        engine models it as one anonymous pool).
        """
        if d_from == d_to or self.link_graph is None:
            return ()
        return self.link_graph.route(d_from, d_to)

    def link_label(self, index: int) -> str:
        """Human-readable name of link ``index`` (``a<->b`` device names).

        ``-1`` — and any index on a uniform platform — names the legacy
        shared interconnect.
        """
        if self.link_graph is None or not 0 <= index < self.n_links:
            return "interconnect"
        link = self.link_graph.links[index]
        return f"{self.devices[link.a].name}<->{self.devices[link.b].name}"

    def serializes(self) -> np.ndarray:
        return np.array([d.serializes for d in self.devices])

    def streaming(self) -> np.ndarray:
        return np.array([d.streaming for d in self.devices])

    def with_devices(self, devices: Sequence[Device]) -> "Platform":
        """A platform with new devices on this platform's interconnect.

        Keeps ``bandwidth_gbps``/``latency_s``/``link_slots`` — and the
        link graph, if any — the one way to derive a variant platform
        (e.g. a resized FPGA) without hand-copying, and forgetting, an
        interconnect field.
        """
        if self.link_graph is not None:
            return Platform(
                devices, link_slots=self.link_slots,
                link_graph=self.link_graph,
            )
        return Platform(
            devices, self.bandwidth_gbps, self.latency_s,
            link_slots=self.link_slots,
        )

    def with_link_graph(self, link_graph: Optional[LinkGraph]) -> "Platform":
        """This platform reshaped onto ``link_graph``.

        With ``None``, drops the topology and keeps the *current*
        (effective) matrices as a uniform interconnect — the flattened
        twin used by the bit-identity equivalence tests.
        """
        if link_graph is None:
            return Platform(
                self.devices, self.bandwidth_gbps, self.latency_s,
                link_slots=self.link_slots,
            )
        return Platform(
            self.devices, link_slots=self.link_slots, link_graph=link_graph,
        )

    def area_capacities(self) -> Dict[int, float]:
        """Device index -> area capacity, for area-constrained devices."""
        return {
            i: d.area_capacity
            for i, d in enumerate(self.devices)
            if d.area_capacity is not None
        }

    def __repr__(self) -> str:
        names = ", ".join(f"{d.name}({d.kind.value})" for d in self.devices)
        topo = (
            f", {self.link_graph.n_links} links"
            if self.link_graph is not None
            else ""
        )
        return f"Platform([{names}]{topo})"
