"""Explicit interconnect topology: per-device-pair links and hop routing.

The paper's cost model (and this repo's seed state) charges every
cross-device transfer against one uniform host-mediated interconnect —
a single bandwidth/latency matrix plus, since PR 5, one shared FIFO
slot pool.  Real heterogeneous platforms are NoC/NUMA-shaped: a
transfer between two devices traverses *specific links*, pays a
hop-dependent cost, and contends with other transfers **per link**, not
against one global pool (Benhaoua et al., "Heuristics for Routing and
Spiral Run-time Task Mapping in NoC-based Heterogeneous MPSOCs").

:class:`LinkGraph` makes that structure first-class:

- a :class:`Link` is an undirected channel between two device indices
  with its own ``bandwidth_gbps`` / ``latency_s`` and an optional
  ``slots`` bound on concurrent transfers (``None``/``0`` = unlimited,
  the repo-wide convention);
- routes are **shortest-hop paths**, precomputed once per graph with a
  deterministic breadth-first search (neighbours visited in ascending
  device index, so equal-hop ties always resolve the same way on every
  host and every run);
- per-pair *effective* transfer parameters are resolved at construction
  time into plain ``(m, m)`` matrices — the exact shape every existing
  evaluation layer already consumes:

  - ``eff_latency_s[i, j]`` — the sum of link latencies along the route
    (one hop's worth of signalling latency per link crossed);
  - ``eff_bandwidth_gbps[i, j]`` — the route's sustained bandwidth,
    composed harmonically (``1 / sum(1 / bw_l)``): a pipelined
    (wormhole-style) transfer is throttled by the accumulated
    serialization of every channel it occupies.  A **single-hop** route
    keeps its link's bandwidth *verbatim* (no ``1/(1/x)`` float round
    trip), so a topology whose routes are all direct reproduces a
    legacy matrix platform bit-for-bit.

A transfer of ``data_mb`` between ``i`` and ``j`` therefore costs
``eff_latency_s[i, j] + data_mb / 1000 / eff_bandwidth_gbps[i, j]`` —
literally the legacy matrix formula, evaluated on routed matrices.
This is the load-bearing design decision: **routing is resolved at
table-build time**.  :class:`~repro.platform.platform.Platform` exposes
the effective matrices as its ``bandwidth_gbps`` / ``latency_s``, the
cost-model tables are built from them unchanged, and the flat/C/batch/
delta kernels and every mapper price topology with *zero* new
inner-loop cost.  Only the runtime engine reads the route structure
itself, to queue transfers on the per-link slot pools.

Preset topologies (star / mesh / ring / NUMA pairs) live in
:mod:`repro.platform.topologies`; the JSON schema is documented in
``src/repro/platform/README.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Link", "LinkGraph"]


@dataclass(frozen=True)
class Link:
    """One undirected interconnect channel between two device indices.

    ``slots`` bounds how many transfers may occupy the link
    concurrently; ``None`` and ``0`` both mean unlimited (``0`` is
    normalized to ``None`` — the repo-wide convention shared with
    ``Platform.link_slots``).  A link with ``slots=None`` still shapes
    *cost* through routing; it simply never queues.
    """

    a: int
    b: int
    bandwidth_gbps: float
    latency_s: float = 0.0
    slots: Optional[int] = None

    def __post_init__(self) -> None:
        a, b = int(self.a), int(self.b)
        if a == b:
            raise ValueError(f"link endpoints must differ, got ({a}, {b})")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        bw = float(self.bandwidth_gbps)
        if not bw > 0.0:
            raise ValueError(f"link ({a}, {b}): bandwidth must be positive")
        object.__setattr__(self, "bandwidth_gbps", bw)
        lat = float(self.latency_s)
        if lat < 0.0:
            raise ValueError(f"link ({a}, {b}): latency must be >= 0")
        object.__setattr__(self, "latency_s", lat)
        if self.slots is not None:
            slots = int(self.slots)
            if slots < 0:
                raise ValueError(
                    f"link ({a}, {b}): slots must be >= 0 (0/None = unlimited)"
                )
            object.__setattr__(self, "slots", slots if slots else None)

    @property
    def pair(self) -> Tuple[int, int]:
        """Endpoint pair in canonical (low, high) order."""
        return (self.a, self.b) if self.a < self.b else (self.b, self.a)


class LinkGraph:
    """An undirected link topology over ``n_devices`` device indices.

    The graph must be connected (every device must be able to reach
    every other, or transfers between them would be impossible) and may
    hold at most one link per device pair.  Construction precomputes:

    - ``routes[i][j]`` — the tuple of **link indices** (into
      :attr:`links`) a transfer from ``i`` to ``j`` traverses, in hop
      order; empty for ``i == j``.  Routes are shortest-hop, with
      deterministic ascending-index BFS tie-breaking, and symmetric
      (``routes[j][i]`` is the reverse traversal of the same links).
    - ``eff_latency_s`` / ``eff_bandwidth_gbps`` — dense ``(m, m)``
      effective transfer matrices (see the module docstring for the
      composition rules; diagonal is ``0`` / ``inf``).

    Instances are immutable after construction and pickle cleanly
    (plain arrays and tuples — platforms cross process boundaries in
    ``repro.parallel`` workers).
    """

    __slots__ = (
        "n_devices",
        "links",
        "routes",
        "eff_latency_s",
        "eff_bandwidth_gbps",
        "_hops",
    )

    def __init__(self, n_devices: int, links: Sequence[Link]) -> None:
        m = int(n_devices)
        if m < 1:
            raise ValueError("link graph needs at least one device")
        links = tuple(
            l if isinstance(l, Link) else Link(*l) for l in links
        )
        seen: Dict[Tuple[int, int], int] = {}
        adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(m)]
        for idx, link in enumerate(links):
            if not (0 <= link.a < m and 0 <= link.b < m):
                raise ValueError(
                    f"link ({link.a}, {link.b}) references a device outside "
                    f"0..{m - 1}"
                )
            if link.pair in seen:
                raise ValueError(
                    f"duplicate link between devices {link.pair[0]} and "
                    f"{link.pair[1]}"
                )
            seen[link.pair] = idx
            adjacency[link.a].append((link.b, idx))
            adjacency[link.b].append((link.a, idx))
        if m > 1 and not links:
            raise ValueError("a multi-device link graph needs links")
        # deterministic BFS: neighbours in ascending device index
        for nbrs in adjacency:
            nbrs.sort()

        self.n_devices = m
        self.links = links

        routes: List[List[Tuple[int, ...]]] = [
            [() for _ in range(m)] for _ in range(m)
        ]
        hops = np.zeros((m, m), dtype=np.int64)
        for src in range(m):
            parent_link = [-1] * m
            parent_dev = [-1] * m
            dist = [-1] * m
            dist[src] = 0
            frontier = [src]
            while frontier:
                nxt: List[int] = []
                for u in frontier:
                    for v, li in adjacency[u]:
                        if dist[v] < 0:
                            dist[v] = dist[u] + 1
                            parent_link[v] = li
                            parent_dev[v] = u
                            nxt.append(v)
                frontier = nxt
            for dst in range(m):
                if dst == src:
                    continue
                if dist[dst] < 0:
                    raise ValueError(
                        f"link graph is disconnected: no route from device "
                        f"{src} to device {dst}"
                    )
                path: List[int] = []
                v = dst
                while v != src:
                    path.append(parent_link[v])
                    v = parent_dev[v]
                path.reverse()
                routes[src][dst] = tuple(path)
                hops[src, dst] = len(path)
        self.routes = tuple(tuple(row) for row in routes)
        self._hops = hops

        lat = np.zeros((m, m), dtype=np.float64)
        bw = np.full((m, m), np.inf, dtype=np.float64)
        for i in range(m):
            for j in range(m):
                if i == j:
                    continue
                route = self.routes[i][j]
                if len(route) == 1:
                    # single hop: the link's parameters verbatim (exact
                    # legacy-matrix equivalence for direct topologies)
                    link = links[route[0]]
                    lat[i, j] = link.latency_s
                    bw[i, j] = link.bandwidth_gbps
                else:
                    total_lat = 0.0
                    inv_bw = 0.0
                    for li in route:
                        link = links[li]
                        total_lat += link.latency_s
                        inv_bw += 1.0 / link.bandwidth_gbps
                    lat[i, j] = total_lat
                    bw[i, j] = np.inf if inv_bw == 0.0 else 1.0 / inv_bw
        lat.setflags(write=False)
        bw.setflags(write=False)
        self.eff_latency_s = lat
        self.eff_bandwidth_gbps = bw
        self._hops.setflags(write=False)

    # ------------------------------------------------------------------
    @property
    def n_links(self) -> int:
        return len(self.links)

    def route(self, i: int, j: int) -> Tuple[int, ...]:
        """Link indices a transfer ``i -> j`` traverses (empty if same)."""
        return self.routes[i][j]

    def hops(self, i: int, j: int) -> int:
        """Route length in links (0 for ``i == j``)."""
        return int(self._hops[i, j])

    def link_between(self, a: int, b: int) -> Optional[int]:
        """Index of the direct link between two devices, if one exists."""
        pair = (a, b) if a < b else (b, a)
        for idx, link in enumerate(self.links):
            if link.pair == pair:
                return idx
        return None

    # ------------------------------------------------------------------
    def to_dict(self) -> List[Dict]:
        """Serializable link list (the ``"links"`` entry of a platform
        JSON document; see ``src/repro/platform/README.md``)."""
        return [
            {
                "a": l.a,
                "b": l.b,
                "bandwidth_gbps": l.bandwidth_gbps,
                "latency_s": l.latency_s,
                "slots": l.slots,
            }
            for l in self.links
        ]

    @classmethod
    def from_dict(cls, n_devices: int, specs: Sequence[Dict]) -> "LinkGraph":
        """Rebuild from :meth:`to_dict` output (raises ``ValueError`` on
        malformed entries — missing endpoints, bad numbers, duplicates)."""
        if not isinstance(specs, (list, tuple)):
            raise ValueError(
                f"'links' must be a list of link objects, got "
                f"{type(specs).__name__}"
            )
        links = []
        for k, spec in enumerate(specs):
            if not isinstance(spec, dict):
                raise ValueError(
                    f"links[{k}]: expected an object, got "
                    f"{type(spec).__name__}"
                )
            try:
                a = spec["a"]
                b = spec["b"]
                bw = spec["bandwidth_gbps"]
            except KeyError as exc:
                raise ValueError(
                    f"links[{k}]: missing required key {exc.args[0]!r} "
                    "(need 'a', 'b', 'bandwidth_gbps')"
                ) from None
            try:
                links.append(Link(
                    a=int(a),
                    b=int(b),
                    bandwidth_gbps=float(bw),
                    latency_s=float(spec.get("latency_s", 0.0)),
                    slots=spec.get("slots"),
                ))
            except (TypeError, ValueError) as exc:
                raise ValueError(f"links[{k}]: {exc}") from None
        return cls(n_devices, links)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinkGraph)
            and self.n_devices == other.n_devices
            and self.links == other.links
        )

    def __hash__(self) -> int:
        return hash((self.n_devices, self.links))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{l.a}-{l.b}" for l in self.links)
        return f"LinkGraph({self.n_devices} devices: [{pairs}])"

    # -- pickling: slots-only class needs explicit state -----------------
    def __getstate__(self):
        return (self.n_devices, self.links)

    def __setstate__(self, state):
        self.__init__(state[0], state[1])

    def __reduce__(self):
        return (LinkGraph, (self.n_devices, self.links))
