"""Processing-unit model.

A :class:`Device` abstracts one processing unit of the heterogeneous platform
(paper Sec. IV-A: one AMD Epyc 7351P CPU, one AMD Radeon RX Vega 56 GPU and
one Xilinx XCZ7045 FPGA).  The parameters capture exactly the properties the
mapping algorithms are sensitive to:

``lane_gops`` / ``lanes``
    Throughput of one execution lane (Gop/s) and the number of lanes.  A
    task with parallelizability ``p`` achieves the Amdahl speedup
    ``1 / ((1 - p) + p / lanes)`` over a single lane.  CPUs have few fast
    lanes; GPUs have many slow ones, so poorly parallelizable tasks run
    *slower* on the GPU than on the CPU.
``stream_gops``
    FPGA only: dataflow throughput per unit of task *streamability*; the
    effective FPGA throughput of a task is ``stream_gops * streamability``.
``setup_s``
    Fixed per-task launch overhead (kernel launch, DMA setup, ...).
``area_capacity``
    FPGA only: total area budget; the summed ``area`` of all tasks mapped to
    the FPGA must not exceed it (hard feasibility constraint).
``serializes`` / ``slots``
    Whether the device executes a bounded number of tasks at a time.  A
    serializing device offers ``slots`` concurrent task slots (a 16-core CPU
    is modeled as 4 slots of 4 lanes each: independent tasks share the
    cores).  GPUs serialize kernels (1 slot).  The FPGA does not serialize —
    tasks occupy disjoint area and run concurrently (spatial compute), which
    together with ``streaming`` models the dataflow behaviour the paper
    emphasises.
``streaming``
    Whether consecutive co-mapped tasks may stream data on-chip: the consumer
    starts once the producer's pipeline is filled instead of waiting for its
    completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

__all__ = ["DeviceKind", "Device", "cpu", "gpu", "fpga", "amdahl_speedup"]


class DeviceKind(str, Enum):
    CPU = "cpu"
    GPU = "gpu"
    FPGA = "fpga"


def amdahl_speedup(parallelizability: float, lanes: int) -> float:
    """Amdahl's-law speedup of a ``p``-parallelizable task on ``lanes`` lanes."""
    p = min(max(parallelizability, 0.0), 1.0)
    return 1.0 / ((1.0 - p) + p / max(lanes, 1))


@dataclass(frozen=True)
class Device:
    """One processing unit (see module docstring for field semantics)."""

    name: str
    kind: DeviceKind
    lane_gops: float
    lanes: int = 1
    stream_gops: float = 0.0
    setup_s: float = 0.0
    area_capacity: Optional[float] = None
    serializes: bool = True
    streaming: bool = False
    slots: int = 1
    #: power draw while executing a task / while idle (multi-objective
    #: extension, Sec. V: "can easily be transferred to multi-objective
    #: optimization"); defaults follow the device kind, see ``cpu``/``gpu``/
    #: ``fpga`` below.
    watts_active: float = 0.0
    watts_idle: float = 0.0

    def __post_init__(self) -> None:
        if self.lane_gops <= 0 and self.stream_gops <= 0:
            raise ValueError(f"device {self.name!r} has no throughput")
        if self.lanes < 1:
            raise ValueError(f"device {self.name!r} needs at least one lane")
        if self.setup_s < 0:
            raise ValueError(f"device {self.name!r} has negative setup time")
        if self.area_capacity is not None and self.area_capacity <= 0:
            raise ValueError(f"device {self.name!r} has non-positive area")
        if self.slots < 1:
            raise ValueError(f"device {self.name!r} needs at least one slot")
        if self.watts_active < 0 or self.watts_idle < 0:
            raise ValueError(f"device {self.name!r} has negative power draw")

    @property
    def is_fpga(self) -> bool:
        return self.kind is DeviceKind.FPGA

    @property
    def peak_gops(self) -> float:
        """Throughput of a perfectly parallelizable task."""
        if self.kind is DeviceKind.FPGA:
            return self.stream_gops
        return self.lane_gops * self.lanes


def cpu(
    name: str = "cpu",
    *,
    lane_gops: float = 8.0,
    lanes: int = 4,
    slots: int = 4,
    setup_s: float = 1e-5,
    watts_active: float = 155.0,
    watts_idle: float = 45.0,
) -> Device:
    """A multicore CPU (default: 16 cores as 4 slots x 4 lanes, Epyc 7351P).

    ``slots`` independent tasks run concurrently; each uses up to ``lanes``
    cores for its intra-task (Amdahl) parallelism.
    """
    return Device(
        name=name,
        kind=DeviceKind.CPU,
        lane_gops=lane_gops,
        lanes=lanes,
        slots=slots,
        setup_s=setup_s,
        watts_active=watts_active,
        watts_idle=watts_idle,
    )


def gpu(
    name: str = "gpu",
    *,
    lane_gops: float = 3.0,
    lanes: int = 64,
    setup_s: float = 2e-4,
    watts_active: float = 210.0,
    watts_idle: float = 25.0,
) -> Device:
    """A discrete GPU (default: 64 CUs, modeled after the RX Vega 56).

    One GPU lane is slower than a CPU core, but there are many: perfectly
    parallelizable tasks gain, sequential tasks lose.
    """
    return Device(
        name=name,
        kind=DeviceKind.GPU,
        lane_gops=lane_gops,
        lanes=lanes,
        setup_s=setup_s,
        watts_active=watts_active,
        watts_idle=watts_idle,
    )


def fpga(
    name: str = "fpga",
    *,
    stream_gops: float = 3.0,
    area_capacity: float = 100.0,
    setup_s: float = 5e-5,
    watts_active: float = 18.0,
    watts_idle: float = 3.0,
) -> Device:
    """A streaming FPGA (default modeled after the Xilinx XCZ7045).

    Effective throughput of a task is ``stream_gops * streamability`` (median
    streamability in the paper's augmentation is ~7.4).  The FPGA does not
    serialize tasks (spatial compute) but is bounded by ``area_capacity``.
    """
    return Device(
        name=name,
        kind=DeviceKind.FPGA,
        lane_gops=0.1,  # irrelevant fallback; FPGA uses stream_gops
        lanes=1,
        stream_gops=stream_gops,
        setup_s=setup_s,
        area_capacity=area_capacity,
        serializes=False,
        streaming=True,
        watts_active=watts_active,
        watts_idle=watts_idle,
    )
