"""Task execution-time model (substitute for Wilhelm et al. [5]).

The paper evaluates every mapping with the analytic cost model of [5]; that
paper is not bundled, so this module provides a documented model with the
same structure (see DESIGN.md "Substitutions"):

- a task's *work* is ``complexity * input_MB * OPS_PER_MB`` operations
  (complexity = operations per data point, Sec. IV-B),
- on a CPU/GPU the task runs at ``lane_gops * amdahl(parallelizability,
  lanes)`` Gop/s,
- on an FPGA it runs at ``stream_gops * streamability`` Gop/s (dataflow
  pipelining; parallelizability is irrelevant to a spatial pipeline),
- every execution pays the device's fixed ``setup_s``.

All mapping algorithms see the model *only* through these functions plus the
makespan evaluator, so — as the paper argues in Sec. II-B — relative
comparisons between algorithms are meaningful regardless of the absolute
constants.
"""

from __future__ import annotations

import numpy as np

from ..graphs.taskgraph import TaskGraph, TaskParams
from .device import Device, DeviceKind, amdahl_speedup
from .platform import Platform

__all__ = ["OPS_PER_MB", "work_gops", "execution_time", "exec_time_table"]

#: Operations per MB of input data and per unit of complexity.  With the
#: paper's augmentation (complexity median ~7.4, 100 MB per edge) a median
#: task carries ~0.74 Gop of work: ~90 ms on one CPU core, ~6 ms on 16
#: perfectly-used cores — the same order as the 100 MB PCIe transfer cost,
#: which is exactly the regime the paper targets (communication matters).
OPS_PER_MB = 1.0e6


def work_gops(complexity: float, input_mb: float) -> float:
    """Total work of a task in Gop."""
    return complexity * input_mb * OPS_PER_MB / 1e9


def execution_time(params: TaskParams, input_mb: float, device: Device) -> float:
    """Execution time (s) of one task on one device."""
    work = work_gops(params.complexity, input_mb)
    if work <= 0.0:
        return 0.0  # virtual/zero-work tasks are free everywhere
    if device.kind is DeviceKind.FPGA:
        # floor keeps the FPGA throughput positive; not an area tolerance
        throughput = device.stream_gops * max(
            params.streamability, 1e-9  # repro-lint: disable=TOL001
        )
    else:
        throughput = device.lane_gops * amdahl_speedup(
            params.parallelizability, device.lanes
        )
    return device.setup_s + work / throughput


def exec_time_table(g: TaskGraph, platform: Platform) -> np.ndarray:
    """Dense ``(n_tasks, n_devices)`` execution-time table.

    Row order follows ``g.tasks()`` (insertion order); this is the table all
    mapping algorithms and the evaluator share.
    """
    tasks = g.tasks()
    table = np.empty((len(tasks), platform.n_devices), dtype=float)
    for i, t in enumerate(tasks):
        params = g.params(t)
        inp = g.input_mb(t)
        for j, dev in enumerate(platform.devices):
            table[i, j] = execution_time(params, inp, dev)
    return table
