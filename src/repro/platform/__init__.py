"""Heterogeneous platform model: devices, interconnect, execution times."""

from .device import Device, DeviceKind, amdahl_speedup, cpu, fpga, gpu
from .links import Link, LinkGraph
from .platform import Platform
from .presets import (
    cpu_gpu_platform,
    cpu_only_platform,
    dual_fpga_platform,
    paper_platform,
)
from .taskmodel import OPS_PER_MB, exec_time_table, execution_time, work_gops
from .topologies import (
    TOPOLOGY_NAMES,
    make_topology,
    mesh,
    numa_pairs,
    ring,
    star,
    with_topology,
)

__all__ = [
    "Device",
    "DeviceKind",
    "amdahl_speedup",
    "cpu",
    "fpga",
    "gpu",
    "Link",
    "LinkGraph",
    "Platform",
    "cpu_gpu_platform",
    "cpu_only_platform",
    "dual_fpga_platform",
    "paper_platform",
    "OPS_PER_MB",
    "exec_time_table",
    "execution_time",
    "work_gops",
    "TOPOLOGY_NAMES",
    "make_topology",
    "mesh",
    "numa_pairs",
    "ring",
    "star",
    "with_topology",
]
