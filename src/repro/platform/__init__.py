"""Heterogeneous platform model: devices, interconnect, execution times."""

from .device import Device, DeviceKind, amdahl_speedup, cpu, fpga, gpu
from .platform import Platform
from .presets import (
    cpu_gpu_platform,
    cpu_only_platform,
    dual_fpga_platform,
    paper_platform,
)
from .taskmodel import OPS_PER_MB, exec_time_table, execution_time, work_gops

__all__ = [
    "Device",
    "DeviceKind",
    "amdahl_speedup",
    "cpu",
    "fpga",
    "gpu",
    "Platform",
    "cpu_gpu_platform",
    "cpu_only_platform",
    "dual_fpga_platform",
    "paper_platform",
    "OPS_PER_MB",
    "exec_time_table",
    "execution_time",
    "work_gops",
]
