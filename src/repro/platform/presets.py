"""Platform presets.

:func:`paper_platform` models the paper's evaluation system (Sec. IV-A): one
AMD Epyc 7351P CPU (16 cores), one AMD Radeon RX Vega 56 GPU and one Xilinx
XCZ7045 FPGA, connected over PCIe.  The constants are derived from public
spec sheets and chosen so that the *relative* device strengths match the
hardware profile (see DESIGN.md "Substitutions"):

- CPU: few fast lanes — the safe default;
- GPU: many slow lanes — wins on perfectly parallelizable tasks, pays PCIe
  transfers, loses badly on sequential tasks;
- FPGA: moderate streaming throughput, free on-chip edges, pipeline overlap
  along co-mapped chains, but area-limited.
"""

from __future__ import annotations

import numpy as np

from .device import cpu, fpga, gpu
from .platform import Platform

__all__ = [
    "paper_platform",
    "cpu_only_platform",
    "cpu_gpu_platform",
    "dual_fpga_platform",
]


def paper_platform(
    *,
    cpu_lanes: int = 16,
    gpu_lanes: int = 64,
    fpga_area: float = 100.0,
) -> Platform:
    """CPU + GPU + FPGA system of the paper's evaluation (Sec. IV-A)."""
    devices = [
        cpu("epyc7351p", lanes=cpu_lanes),
        gpu("vega56", lanes=gpu_lanes),
        fpga("xcz7045", area_capacity=fpga_area),
    ]
    #                 cpu   gpu   fpga
    bandwidth = [
        [np.inf, 12.0, 6.0],   # from cpu  (PCIe 3.0 x16 / x8)
        [12.0, np.inf, 4.0],   # from gpu  (peer via host)
        [6.0, 4.0, np.inf],    # from fpga
    ]
    latency = [
        [0.0, 1e-4, 1e-4],
        [1e-4, 0.0, 2e-4],
        [1e-4, 2e-4, 0.0],
    ]
    return Platform(devices, bandwidth, latency)


def cpu_only_platform() -> Platform:
    """Single-CPU platform (the baseline mapping target)."""
    return Platform([cpu("host")], [[np.inf]], [[0.0]])


def cpu_gpu_platform() -> Platform:
    """Low-heterogeneity CPU + GPU system (the classic HEFT habitat)."""
    devices = [cpu("host"), gpu("gpu0")]
    bandwidth = [[np.inf, 12.0], [12.0, np.inf]]
    latency = [[0.0, 1e-4], [1e-4, 0.0]]
    return Platform(devices, bandwidth, latency)


def dual_fpga_platform() -> Platform:
    """CPU + two FPGAs — stresses streaming placement and area pressure."""
    devices = [
        cpu("host"),
        fpga("fpga0", area_capacity=60.0),
        fpga("fpga1", area_capacity=60.0),
    ]
    bandwidth = [
        [np.inf, 6.0, 6.0],
        [6.0, np.inf, 3.0],
        [6.0, 3.0, np.inf],
    ]
    latency = [
        [0.0, 1e-4, 1e-4],
        [1e-4, 0.0, 2e-4],
        [1e-4, 2e-4, 0.0],
    ]
    return Platform(devices, bandwidth, latency)
