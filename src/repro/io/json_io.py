"""JSON serialization for task graphs, platforms and mapping results.

The on-disk format is a plain versioned JSON document, so experiments can be
archived and replayed, and graphs can be exchanged with external tools:

.. code-block:: json

    {
      "format": "repro-taskgraph",
      "version": 1,
      "tasks": [{"id": 0, "complexity": 7.4, "parallelizability": 1.0,
                 "streamability": 7.4, "area": 7.4}],
      "edges": [{"src": 0, "dst": 1, "data_mb": 100.0}]
    }
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..graphs.taskgraph import TaskGraph
from ..platform.device import Device, DeviceKind
from ..platform.links import LinkGraph
from ..platform.platform import Platform

__all__ = [
    "FormatError",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "platform_to_dict",
    "platform_from_dict",
    "save_platform",
    "load_platform",
    "mapping_to_dict",
    "mapping_from_dict",
]

GRAPH_FORMAT = "repro-taskgraph"
PLATFORM_FORMAT = "repro-platform"
MAPPING_FORMAT = "repro-mapping"
VERSION = 1


class FormatError(ValueError):
    """Raised for documents with the wrong format marker or broken shape."""


def _check_header(doc: Dict, expected: str) -> None:
    if not isinstance(doc, dict):
        raise FormatError(f"expected a JSON object, got {type(doc).__name__}")
    if doc.get("format") != expected:
        raise FormatError(
            f"expected format {expected!r}, got {doc.get('format')!r}"
        )
    if int(doc.get("version", -1)) > VERSION:
        raise FormatError(f"unsupported version {doc.get('version')}")


# ---------------------------------------------------------------------------
# task graphs
# ---------------------------------------------------------------------------

def graph_to_dict(g: TaskGraph) -> Dict:
    """Serializable dict representation of a task graph."""
    return {
        "format": GRAPH_FORMAT,
        "version": VERSION,
        "tasks": [
            {
                "id": t,
                "complexity": g.params(t).complexity,
                "parallelizability": g.params(t).parallelizability,
                "streamability": g.params(t).streamability,
                "area": g.params(t).area,
            }
            for t in g.tasks()
        ],
        "edges": [
            {"src": u, "dst": v, "data_mb": g.data_mb(u, v)}
            for u, v in g.edges()
        ],
    }


def graph_from_dict(doc: Dict) -> TaskGraph:
    """Rebuild a task graph from its dict representation."""
    _check_header(doc, GRAPH_FORMAT)
    g = TaskGraph()
    for task in doc.get("tasks", []):
        g.add_task(
            int(task["id"]),
            complexity=float(task.get("complexity", 1.0)),
            parallelizability=float(task.get("parallelizability", 0.0)),
            streamability=float(task.get("streamability", 1.0)),
            area=float(task.get("area", 0.0)),
        )
    for edge in doc.get("edges", []):
        g.add_edge(
            int(edge["src"]),
            int(edge["dst"]),
            data_mb=float(edge.get("data_mb", 0.0)),
        )
    g.validate()
    return g


def save_graph(g: TaskGraph, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(graph_to_dict(g), fh, indent=2)


def load_graph(path: str) -> TaskGraph:
    with open(path) as fh:
        return graph_from_dict(json.load(fh))


# ---------------------------------------------------------------------------
# platforms
# ---------------------------------------------------------------------------

def platform_to_dict(p: Platform) -> Dict:
    """Serializable dict representation of a platform.

    A topology-aware platform adds a ``"links"`` key (the link graph's
    :meth:`~repro.platform.links.LinkGraph.to_dict` list) **and omits
    the matrices**, which are derived from the links on load; a uniform
    platform emits exactly the legacy document (no ``"links"`` key), so
    pre-link-graph files round-trip byte-for-byte.
    """
    doc = {
        "format": PLATFORM_FORMAT,
        "version": VERSION,
        "devices": [
            {
                "name": d.name,
                "kind": d.kind.value,
                "lane_gops": d.lane_gops,
                "lanes": d.lanes,
                "stream_gops": d.stream_gops,
                "setup_s": d.setup_s,
                "area_capacity": d.area_capacity,
                "serializes": d.serializes,
                "streaming": d.streaming,
                "slots": d.slots,
                "watts_active": d.watts_active,
                "watts_idle": d.watts_idle,
            }
            for d in p.devices
        ],
    }
    if p.link_graph is not None:
        doc["links"] = p.link_graph.to_dict()
    else:
        bw = p.bandwidth_gbps.copy()
        bw[~np.isfinite(bw)] = -1.0  # JSON has no Infinity
        doc["bandwidth_gbps"] = bw.tolist()
        doc["latency_s"] = p.latency_s.tolist()
    doc["link_slots"] = p.link_slots
    return doc


def platform_from_dict(doc: Dict) -> Platform:
    _check_header(doc, PLATFORM_FORMAT)
    devices = []
    for d in doc["devices"]:
        devices.append(
            Device(
                name=d["name"],
                kind=DeviceKind(d["kind"]),
                lane_gops=float(d["lane_gops"]),
                lanes=int(d.get("lanes", 1)),
                stream_gops=float(d.get("stream_gops", 0.0)),
                setup_s=float(d.get("setup_s", 0.0)),
                area_capacity=d.get("area_capacity"),
                serializes=bool(d.get("serializes", True)),
                streaming=bool(d.get("streaming", False)),
                slots=int(d.get("slots", 1)),
                watts_active=float(d.get("watts_active", 0.0)),
                watts_idle=float(d.get("watts_idle", 0.0)),
            )
        )
    if "links" in doc:
        if "bandwidth_gbps" in doc or "latency_s" in doc:
            raise FormatError(
                "platform document has both 'links' and interconnect "
                "matrices; a topology-aware platform derives its matrices "
                "from the links"
            )
        try:
            graph = LinkGraph.from_dict(len(devices), doc["links"])
        except ValueError as exc:
            raise FormatError(f"bad 'links' entry: {exc}") from None
        return Platform(
            devices, link_slots=doc.get("link_slots"), link_graph=graph
        )
    try:
        bw = np.array(doc["bandwidth_gbps"], dtype=float)
        lat = np.array(doc["latency_s"], dtype=float)
    except KeyError as exc:
        raise FormatError(
            f"platform document missing {exc.args[0]!r} "
            "(need matrices or a 'links' list)"
        ) from None
    bw[bw < 0] = np.inf
    return Platform(devices, bw, lat, link_slots=doc.get("link_slots"))


def save_platform(p: Platform, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(platform_to_dict(p), fh, indent=2)


def load_platform(path: str) -> Platform:
    with open(path) as fh:
        return platform_from_dict(json.load(fh))


# ---------------------------------------------------------------------------
# mappings
# ---------------------------------------------------------------------------

def mapping_to_dict(
    g: TaskGraph,
    p: Platform,
    mapping: Sequence[int],
    *,
    makespan: Optional[float] = None,
    algorithm: str = "",
) -> Dict:
    """Task-id -> device-name mapping document (robust to reordering)."""
    mapping = list(int(m) for m in mapping)
    if len(mapping) != g.n_tasks:
        raise FormatError(
            f"mapping length {len(mapping)} != {g.n_tasks} tasks"
        )
    return {
        "format": MAPPING_FORMAT,
        "version": VERSION,
        "algorithm": algorithm,
        "makespan_s": makespan,
        "assignment": {
            str(t): p.devices[d].name for t, d in zip(g.tasks(), mapping)
        },
    }


def mapping_from_dict(doc: Dict, g: TaskGraph, p: Platform) -> np.ndarray:
    """Rebuild a device-index mapping array aligned with ``g.tasks()``."""
    _check_header(doc, MAPPING_FORMAT)
    assignment = doc["assignment"]
    out = np.zeros(g.n_tasks, dtype=np.int64)
    for i, t in enumerate(g.tasks()):
        key = str(t)
        if key not in assignment:
            raise FormatError(f"mapping misses task {t}")
        out[i] = p.index_of(assignment[key])
    return out
