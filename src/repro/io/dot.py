"""Graphviz DOT export for task graphs, mappings and decomposition forests.

Produces plain DOT text (no graphviz dependency); render externally with
``dot -Tpdf graph.dot -o graph.pdf``.  A mapping can be overlaid as node
colors, and a decomposition forest as clustered subgraphs — handy to *see*
which subgraphs Algorithm 1 found and where the mapper put them.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..graphs.taskgraph import TaskGraph
from ..platform.platform import Platform
from ..sp.forest import DecompositionForest

__all__ = ["graph_to_dot", "forest_to_dot"]

#: default fill colors per device index
_DEVICE_COLORS = [
    "#cccccc",  # host CPU: grey
    "#88c0f0",  # GPU: blue
    "#f2b06b",  # FPGA: orange
    "#a8d8a8",
    "#e8a0e8",
]


def graph_to_dot(
    g: TaskGraph,
    *,
    mapping: Optional[Sequence[int]] = None,
    platform: Optional[Platform] = None,
    name: str = "taskgraph",
) -> str:
    """Render a task graph (optionally colored by mapping) as DOT text."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=ellipse];"]
    device_names = (
        [d.name for d in platform.devices] if platform is not None else None
    )
    index = {t: i for i, t in enumerate(g.tasks())}
    for t in g.tasks():
        p = g.params(t)
        label = f"{t}\\nc={p.complexity:.1f}"
        attrs = [f'label="{label}"']
        if mapping is not None:
            d = int(mapping[index[t]])
            color = _DEVICE_COLORS[d % len(_DEVICE_COLORS)]
            attrs.append(f'style=filled fillcolor="{color}"')
            if device_names is not None:
                attrs[0] = f'label="{label}\\n{device_names[d]}"'
        lines.append(f"  t{t} [{' '.join(attrs)}];")
    for u, v in g.edges():
        lines.append(f'  t{u} -> t{v} [label="{g.data_mb(u, v):.0f}MB"];')
    lines.append("}")
    return "\n".join(lines)


def forest_to_dot(
    g: TaskGraph, forest: DecompositionForest, *, name: str = "forest"
) -> str:
    """Render the decomposition forest as DOT clusters over the graph."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  compound=true;"]
    real = set(g.tasks())
    for k, tree in enumerate(forest.trees):
        nodes = sorted(n for n in tree.nodes() if n in real)
        title = "core" if k == 0 else f"cut {k}"
        lines.append(f"  subgraph cluster_{k} {{")
        lines.append(f'    label="{title} [{tree.source} - {tree.sink}]";')
        lines.append("    color=gray;")
        for n in nodes:
            lines.append(f"    t{n};")
        lines.append("  }")
    for u, v in g.edges():
        lines.append(f"  t{u} -> t{v};")
    lines.append("}")
    return "\n".join(lines)
