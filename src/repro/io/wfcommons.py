"""Importer for WfCommons workflow instances (wfformat JSON).

The paper's Table I benchmark [29] is built from WfCommons [26] instances.
Those files are not bundled (offline), but this importer lets anyone with
real instance files run the Table I harness on them directly, replacing the
synthetic generators of :mod:`repro.graphs.generators.workflows`:

    g = load_wfcommons("montage-chameleon-2mass-10d-001.json")
    augment_workflow(g, rng)          # parallelizability/streamability
    evaluator = MappingEvaluator(g, paper_platform())

Supported schema (wfformat 1.x, the subset the mapper needs):

- ``workflow.tasks`` (or legacy ``workflow.jobs``): list of tasks with
  ``name``, optional ``id``, ``runtime`` (seconds), ``children`` and/or
  ``parents`` (lists of task names), and ``files`` (``link``: input/output,
  ``sizeInBytes`` or legacy ``size``).
- Task *complexity* is derived from ``runtime`` (seconds are interpreted as
  the relative work factor, matching the role complexity plays in the
  model); per-edge data volume is taken from the producer's output files
  consumed by the child (file-name matching), falling back to
  ``default_data_mb``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..graphs.taskgraph import TaskGraph

__all__ = ["load_wfcommons", "wfcommons_from_dict"]


def load_wfcommons(
    path: str,
    *,
    default_data_mb: float = 10.0,
    runtime_to_complexity: float = 1.0,
) -> TaskGraph:
    """Load a WfCommons wfformat JSON file as a :class:`TaskGraph`."""
    with open(path) as fh:
        doc = json.load(fh)
    return wfcommons_from_dict(
        doc,
        default_data_mb=default_data_mb,
        runtime_to_complexity=runtime_to_complexity,
    )


def wfcommons_from_dict(
    doc: Dict,
    *,
    default_data_mb: float = 10.0,
    runtime_to_complexity: float = 1.0,
) -> TaskGraph:
    """Build a task graph from a parsed wfformat document."""
    workflow = doc.get("workflow", doc)
    tasks = workflow.get("tasks", workflow.get("jobs"))
    if not isinstance(tasks, list) or not tasks:
        raise ValueError("document has no workflow.tasks / workflow.jobs list")

    name_to_id: Dict[str, int] = {}
    for i, task in enumerate(tasks):
        name = task.get("name")
        if name is None:
            raise ValueError(f"task #{i} has no name")
        if name in name_to_id:
            raise ValueError(f"duplicate task name {name!r}")
        name_to_id[name] = i

    # output file sizes per producer: file name -> MB
    outputs: List[Dict[str, float]] = []
    inputs: List[Dict[str, float]] = []
    for task in tasks:
        outs: Dict[str, float] = {}
        ins: Dict[str, float] = {}
        for f in task.get("files", []) or []:
            size_b = f.get("sizeInBytes", f.get("size", 0.0)) or 0.0
            mb = float(size_b) / 1e6
            fname = f.get("name", "")
            if f.get("link") == "output":
                outs[fname] = mb
            elif f.get("link") == "input":
                ins[fname] = mb
        outputs.append(outs)
        inputs.append(ins)

    g = TaskGraph()
    for name, i in name_to_id.items():
        runtime = float(tasks[i].get("runtime", 1.0) or 1.0)
        g.add_task(i, complexity=max(runtime * runtime_to_complexity, 1e-3))

    def edge_volume(parent: int, child: int) -> float:
        shared = set(outputs[parent]) & set(inputs[child])
        if shared:
            return max(sum(outputs[parent][f] for f in shared), 1e-3)
        return default_data_mb

    for task in tasks:
        i = name_to_id[task["name"]]
        for child in task.get("children", []) or []:
            j = _resolve(child, name_to_id)
            if j is not None and not g.has_edge(i, j):
                g.add_edge(i, j, data_mb=edge_volume(i, j))
        for parent in task.get("parents", []) or []:
            j = _resolve(parent, name_to_id)
            if j is not None and not g.has_edge(j, i):
                g.add_edge(j, i, data_mb=edge_volume(j, i))

    g.validate()
    return g


def _resolve(name, name_to_id) -> Optional[int]:
    if isinstance(name, dict):  # some instances use {"name": ...}
        name = name.get("name")
    return name_to_id.get(name)
