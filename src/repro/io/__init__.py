"""Serialization: JSON graphs/platforms/mappings, WfCommons import, DOT export."""

from .dot import forest_to_dot, graph_to_dot
from .json_io import (
    FormatError,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_platform,
    mapping_from_dict,
    mapping_to_dict,
    platform_from_dict,
    platform_to_dict,
    save_graph,
    save_platform,
)
from .wfcommons import load_wfcommons, wfcommons_from_dict

__all__ = [
    "forest_to_dot",
    "graph_to_dot",
    "FormatError",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "load_platform",
    "mapping_from_dict",
    "mapping_to_dict",
    "platform_from_dict",
    "platform_to_dict",
    "save_graph",
    "save_platform",
    "load_wfcommons",
    "wfcommons_from_dict",
]
