"""repro — decomposition-based static task mapping for heterogeneous systems.

A from-scratch reproduction of

    Martin Wilhelm and Thilo Pionteck:
    "Static task mapping for heterogeneous systems based on series-parallel
    decompositions", IPPS 2025 (arXiv:2502.19745).

Public API tour
---------------
- :mod:`repro.graphs` — task-graph substrate and generators (random SP,
  almost-SP, scientific-workflow families);
- :mod:`repro.sp` — series-parallel decomposition trees, recognition, and
  the paper's Algorithm 1 (decomposition forests for arbitrary DAGs);
- :mod:`repro.platform` — CPU/GPU/FPGA platform model, with an optional
  explicit interconnect topology: a link graph of per-device-pair
  links (bandwidth/latency/slots) with deterministic shortest-hop
  routing, star/mesh/ring/NUMA-pair presets
  (:func:`~repro.platform.with_topology`) and a JSON ``"links"``
  schema; routing is resolved at table-build time into *effective*
  cost matrices so every evaluator prices topology at zero inner-loop
  cost (contract: ``src/repro/platform/README.md``);
- :mod:`repro.evaluation` — the linear-time model-based makespan evaluator
  on a flat-array kernel (compiled C when a system compiler is present,
  pure Python otherwise — bit-identical either way), plus the incremental
  :class:`~repro.evaluation.delta.DeltaEvaluator` that re-simulates only
  the schedule suffix a candidate move can affect;
- :mod:`repro.mappers` — SingleNode/SeriesParallel decomposition mappers
  (with FirstFit / gamma-threshold heuristics), HEFT, PEFT, NSGA-II and
  three MILP baselines;
- :mod:`repro.runtime` — discrete-event execution engine that stress-tests
  static mappings under stochastic runtime noise, device slowdowns and
  failures, and multi-workflow arrival streams (``repro simulate`` on the
  command line); with zero noise, unlimited link slots and a single job it
  reproduces the analytic evaluator exactly; concurrent jobs share the
  platform for real — a cross-job FPGA area ledger, FIFO transfer slot
  pools on the interconnect (one shared ``link_slots`` pool on flat
  platforms, one pool per finite-width link on topology-aware ones,
  with transfers claiming every link along their route and
  ``LinkWait`` naming the blocking link; ``link_slots=0`` = unlimited),
  and per-trace energy accounting including rolled-back work; on failure (or a past-threshold
  slowdown, or an arrival under fabric pressure) it rescues work with a
  fixed fallback or by re-running a mapper on the surviving/degraded
  platform (:mod:`repro.runtime.replan`, ``--replan-policy``);
- :mod:`repro.parallel` — process-pool experiment backbone with
  deterministic seed sharding: ``--workers N`` scales every driver across
  cores with results bit-identical to a serial run; execution is
  *supervised* (per-item timeouts, bounded retries with backoff, pool
  rebuild after worker crashes, serial degradation as the last resort)
  and the seed contract makes fault tolerance free — a retried item
  recomputes the same numbers, proven by a deterministic chaos harness
  (``REPRO_CHAOS`` injects seeded crashes/hangs/errors) and pinned by
  CSV byte-identity tests; long sweeps checkpoint to an append-only
  journal and resume recomputing only outstanding cells
  (``--checkpoint``/``--resume``);
- :mod:`repro.experiments` — drivers regenerating every figure and table of
  the paper's evaluation, plus the runtime-robustness noise sweep, the
  failure re-mapping policy sweep (:mod:`repro.experiments.robustness`)
  and the shared-resource contention sweep
  (:mod:`repro.experiments.contention`);
- :mod:`repro.obs` — the observability backbone: hierarchical span
  tracing with Chrome trace-event export (open ``--trace`` output in
  Perfetto), a counters/gauges/histograms metrics registry with one
  ``snapshot()``/``merge()`` surface, the simulated-time engine
  timeline, environment diagnostics (``repro env``) and the CLI
  reporter (``--verbose``/``--quiet``).  Off by default; enabling it
  never changes numeric results (``repro profile`` shows the
  phase-time breakdown);
- :mod:`repro.analysis` — the invariants above are *linted*, not just
  tested: an AST-based checker (``repro lint``) with stable rule codes
  enforces seeded randomness, no wall-clock reads in algorithms,
  write-only observability, single-sourced tolerances, picklable
  ``parallel_map`` payloads, no silent excepts, bounded retry loops
  with no sleeping in algorithm modules, and that the C kernel's
  constants match their Python mirrors and stay topology-agnostic
  (rule catalogue in
  ``src/repro/analysis/README.md``); ``REPRO_CKERNEL_SANITIZE=asan,ubsan``
  additionally rebuilds the C kernel under AddressSanitizer/UBSan —
  still bit-identical — for memory/UB checking in CI.

Quickstart
----------
>>> import numpy as np
>>> from repro.graphs.generators import random_sp_graph
>>> from repro.platform import paper_platform
>>> from repro.evaluation import MappingEvaluator
>>> from repro.mappers import sp_first_fit
>>> g = random_sp_graph(50, np.random.default_rng(0))
>>> ev = MappingEvaluator(g, paper_platform())
>>> result = sp_first_fit().map(ev)
>>> 0.0 <= ev.relative_improvement(result.mapping) <= 1.0
True
"""

from . import evaluation, graphs, mappers, obs, parallel, platform, runtime, sp

__version__ = "1.9.0"

__all__ = [
    "evaluation", "graphs", "mappers", "obs", "parallel", "platform",
    "runtime", "sp", "__version__",
]
