"""Generic layered random DAG generator.

Not used by the paper's experiments directly, but handy as a stress input for
the decomposition forest (Alg. 1 must work on *arbitrary* DAGs) and for
property-based tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..augment import AugmentConfig, augment
from ..taskgraph import DEFAULT_DATA_MB, TaskGraph

__all__ = ["random_layered_graph"]


def random_layered_graph(
    n_layers: int,
    width: int,
    rng: np.random.Generator,
    *,
    edge_prob: float = 0.35,
    augmented: bool = True,
    augment_config: Optional[AugmentConfig] = None,
) -> TaskGraph:
    """Random DAG with ``n_layers`` layers of up to ``width`` tasks.

    Each task in layer ``l`` gets at least one predecessor in layer ``l-1``
    (so the graph is connected along layers) plus random extra edges with
    probability ``edge_prob``.
    """
    if n_layers < 1 or width < 1:
        raise ValueError("n_layers and width must be positive")
    g = TaskGraph()
    layers = []
    tid = 0
    for _ in range(n_layers):
        w = int(rng.integers(1, width + 1))
        layer = list(range(tid, tid + w))
        for t in layer:
            g.add_task(t)
        tid += w
        layers.append(layer)
    for l in range(1, n_layers):
        prev, cur = layers[l - 1], layers[l]
        for v in cur:
            u = prev[int(rng.integers(len(prev)))]
            g.add_edge(u, v, data_mb=DEFAULT_DATA_MB)
        for u in prev:
            for v in cur:
                if not g.has_edge(u, v) and rng.random() < edge_prob:
                    g.add_edge(u, v, data_mb=DEFAULT_DATA_MB)
    if augmented:
        augment(g, rng, augment_config)
    return g
