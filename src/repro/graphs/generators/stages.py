"""Stage-structured random DAGs: fork-join sequences and pipelines.

Complements the paper's generators with two structured families common in
the scheduling literature (daggen-style):

- :func:`random_forkjoin_graph` — a sequence of fork-join *stages*: each
  stage forks into a random number of parallel tasks that join into a
  synchronization task.  Fork-join graphs are series-parallel by
  construction, but unlike :func:`~repro.graphs.generators.sp_random.
  random_sp_graph` their parallelism is bursty and stage-aligned — a
  distinct stress profile for slot contention.
- :func:`random_pipeline_graph` — ``width`` parallel chains of ``depth``
  tasks with optional cross-links between neighbouring chains; with
  ``cross_prob = 0`` it is the FPGA streaming sweet spot, and every
  cross-link is a conflicting edge for the decomposition.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..augment import AugmentConfig, augment
from ..taskgraph import DEFAULT_DATA_MB, TaskGraph

__all__ = ["random_forkjoin_graph", "random_pipeline_graph"]


def random_forkjoin_graph(
    n_stages: int,
    max_width: int,
    rng: np.random.Generator,
    *,
    augmented: bool = True,
    augment_config: Optional[AugmentConfig] = None,
) -> TaskGraph:
    """A chain of fork-join stages with random widths in [1, max_width]."""
    if n_stages < 1 or max_width < 1:
        raise ValueError("n_stages and max_width must be positive")
    g = TaskGraph()
    tid = 0
    g.add_task(tid)
    join = tid
    tid += 1
    for _ in range(n_stages):
        fork = join
        width = int(rng.integers(1, max_width + 1))
        members = []
        for _ in range(width):
            g.add_task(tid)
            g.add_edge(fork, tid, data_mb=DEFAULT_DATA_MB)
            members.append(tid)
            tid += 1
        g.add_task(tid)
        for t in members:
            g.add_edge(t, tid, data_mb=DEFAULT_DATA_MB)
        join = tid
        tid += 1
    if augmented:
        augment(g, rng, augment_config)
    return g


def random_pipeline_graph(
    width: int,
    depth: int,
    rng: np.random.Generator,
    *,
    cross_prob: float = 0.0,
    augmented: bool = True,
    augment_config: Optional[AugmentConfig] = None,
) -> TaskGraph:
    """``width`` parallel chains of ``depth`` tasks with optional cross-links.

    Cross-links go from chain ``i`` position ``j`` to chain ``i+1`` position
    ``j+1`` with probability ``cross_prob`` (keeping the graph acyclic);
    each one is a conflicting edge for the SP decomposition.
    """
    if width < 1 or depth < 1:
        raise ValueError("width and depth must be positive")
    if not 0.0 <= cross_prob <= 1.0:
        raise ValueError("cross_prob must be in [0, 1]")
    g = TaskGraph()
    source = 0
    g.add_task(source)
    sink = width * depth + 1
    ids = [[1 + c * depth + p for p in range(depth)] for c in range(width)]
    for chain in ids:
        prev = source
        for t in chain:
            g.add_task(t)
            g.add_edge(prev, t, data_mb=DEFAULT_DATA_MB)
            prev = t
        g.add_task(sink)
        g.add_edge(prev, sink, data_mb=DEFAULT_DATA_MB)
    for c in range(width - 1):
        for p in range(depth - 1):
            if rng.random() < cross_prob:
                g.add_edge(ids[c][p], ids[c + 1][p + 1],
                           data_mb=DEFAULT_DATA_MB)
    if augmented:
        augment(g, rng, augment_config)
    return g
