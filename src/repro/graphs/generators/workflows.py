"""Synthetic scientific-workflow generators (WfCommons substitute).

The paper's Table I evaluates on the fixed benchmark set of Sukhoroslov and
Gorokhovskii [29], which is derived from WfCommons [26] workflow instances
(1000genome, blast, bwa, cycles, epigenomics, montage, seismology, soykb,
srasearch).  Those instance files are not available offline, so this module
provides parametric generators that reproduce each family's *published
topology* and its characteristic task-weight/data profile:

========================  =====================================================
family                    shape (as characterized in Juve et al. [28] and the
                          WfCommons documentation)
========================  =====================================================
``1000genome``            per-chromosome fan of ``individuals`` tasks ->
                          ``individuals_merge`` + ``sifting``; per-population
                          ``mutation_overlap``/``frequency`` consumers
``blast``                 ``split_fasta`` -> N parallel ``blastall`` ->
                          ``cat_blast`` -> ``cleanup`` (split-map-merge)
``bwa``                   index + split -> N parallel ``bwa_align`` -> concat;
                          tiny compute per MB (data-bound)
``cycles``                independent crop/parameter chains
                          (``cycles`` -> ``fertilizer_increase`` ->
                          ``cycles_fi_output``) + global plots/summary
``epigenomics``           parallel per-lane chains (filter -> sol2sanger ->
                          fastq2bfq -> map) -> merge -> index -> pileup
``montage``               ``mProjectPP`` fan -> pairwise ``mDiffFit`` ->
                          concat/bgModel funnel -> ``mBackground`` fan ->
                          ``mImgtbl``/``mAdd``/``mShrink``/``mJPEG`` tail with
                          dominant end-of-graph work
``seismology``            wide fan of tiny ``sG1IterDecon`` tasks into one
                          merge (nothing worth accelerating)
``soykb``                 per-sample alignment chains -> per-chromosome
                          haplotype calling -> genotype/filter funnel
``srasearch``             parallel download+align pairs -> merge
========================  =====================================================

Why the substitution is adequate: the paper's Table I commentary explains each
family's result through its *shape* (epigenomics = parallel chains => SP
decomposition excels; montage = heavy final funnel => PEFT competitive; bwa &
seismology = data-bound / tiny tasks => no algorithm finds an acceleration).
The generators reproduce exactly those shapes and weight profiles, so the
per-family ranking logic of the evaluation is preserved.

Task ``complexity`` here plays the role of the WfCommons task runtimes and is
*structural* (per task type, with mild jitter); ``parallelizability`` and
``streamability`` are augmented randomly, "analogously to Section IV-B", via
:func:`augment_workflow`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..augment import AugmentConfig
from ..taskgraph import TaskGraph

__all__ = [
    "WORKFLOW_FAMILIES",
    "make_workflow",
    "augment_workflow",
    "benchmark_sizes",
    "benchmark_set",
    "make_1000genome",
    "make_blast",
    "make_bwa",
    "make_cycles",
    "make_epigenomics",
    "make_montage",
    "make_seismology",
    "make_soykb",
    "make_srasearch",
]


class _Builder:
    """Incremental TaskGraph builder with per-task-type weight profiles."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.g = TaskGraph()
        self.rng = rng
        self._next = 0

    def task(self, complexity: float, *, jitter: float = 0.15) -> int:
        """Add a task with complexity jittered by +-``jitter`` (relative)."""
        c = complexity * float(1.0 + self.rng.uniform(-jitter, jitter))
        tid = self._next
        self._next += 1
        self.g.add_task(tid, complexity=max(c, 1e-3))
        return tid

    def edge(self, u: int, v: int, data_mb: float, *, jitter: float = 0.15) -> None:
        d = data_mb * float(1.0 + self.rng.uniform(-jitter, jitter))
        self.g.add_edge(u, v, data_mb=max(d, 1e-3))


# ---------------------------------------------------------------------------
# family generators
# ---------------------------------------------------------------------------

def make_1000genome(size: int, rng: np.random.Generator) -> TaskGraph:
    """1000genome: per-chromosome individual fan + merge, population consumers.

    ``size`` controls the total task count (roughly ``size`` tasks).
    """
    b = _Builder(rng)
    n_chrom = max(1, size // 25)
    per_chrom = max(3, (size - 2 * n_chrom) // (n_chrom * 2))
    n_pop = max(2, per_chrom // 2)
    for _ in range(n_chrom):
        individuals = [b.task(8.0) for _ in range(per_chrom)]
        merge = b.task(12.0)
        sifting = b.task(3.0)
        for t in individuals:
            b.edge(t, merge, 50.0)
        # sifting runs on the raw chromosome data, parallel to individuals
        src = individuals[0]
        b.edge(src, sifting, 20.0)
        for _ in range(n_pop):
            overlap = b.task(10.0)
            freq = b.task(9.0)
            b.edge(merge, overlap, 80.0)
            b.edge(sifting, overlap, 10.0)
            b.edge(merge, freq, 80.0)
            b.edge(sifting, freq, 10.0)
    return b.g


def make_blast(size: int, rng: np.random.Generator) -> TaskGraph:
    """blast: split -> N parallel blastall -> concat -> cleanup."""
    b = _Builder(rng)
    n = max(2, size - 3)
    split = b.task(4.0)
    blasts = [b.task(25.0) for _ in range(n)]
    concat = b.task(3.0)
    cleanup = b.task(1.0)
    for t in blasts:
        b.edge(split, t, 30.0)
        b.edge(t, concat, 15.0)
    b.edge(concat, cleanup, 20.0)
    return b.g


def make_bwa(size: int, rng: np.random.Generator) -> TaskGraph:
    """bwa: split-map-merge with *data-bound* tasks.

    Tiny compute per transferred MB: any off-CPU placement pays more in
    transfers than it gains, reproducing the paper's observation that no
    algorithm finds a significant acceleration for this family.
    """
    b = _Builder(rng)
    n = max(2, size - 4)
    index = b.task(0.4)
    split = b.task(0.2)
    b.edge(index, split, 200.0)
    aligns = [b.task(0.5) for _ in range(n)]
    concat = b.task(0.2)
    sort = b.task(0.3)
    for t in aligns:
        b.edge(split, t, 150.0)
        b.edge(t, concat, 150.0)
    b.edge(concat, sort, 250.0)
    return b.g


def make_cycles(size: int, rng: np.random.Generator) -> TaskGraph:
    """cycles: independent crop/parameter chains + global summary tasks."""
    b = _Builder(rng)
    n_chains = max(2, (size - 2) // 3)
    plots = b.task(6.0)
    summary = b.task(4.0)
    for _ in range(n_chains):
        sim = b.task(15.0)
        fert = b.task(10.0)
        out = b.task(2.0)
        b.edge(sim, fert, 25.0)
        b.edge(fert, out, 25.0)
        b.edge(out, plots, 5.0)
        b.edge(out, summary, 5.0)
    return b.g


def make_epigenomics(size: int, rng: np.random.Generator) -> TaskGraph:
    """epigenomics: parallel per-lane chains -> merge -> index -> pileup.

    "The workflows here primarily consist of long chains of operations, which
    are executed in parallel.  This forms a series-parallel graph."
    """
    b = _Builder(rng)
    chain_len = 4
    n_lanes = max(2, (size - 4) // (chain_len + 1))
    split = b.task(5.0)
    merge = b.task(14.0)
    stage_complexity = [6.0, 4.0, 5.0, 18.0]  # filter, sol2sanger, fastq2bfq, map
    for _ in range(n_lanes):
        prev = split
        data = 40.0
        for c in stage_complexity:
            t = b.task(c)
            b.edge(prev, t, data)
            prev = t
            data = max(10.0, data * 0.8)
        b.edge(prev, merge, 30.0)
    index = b.task(8.0)
    pileup = b.task(10.0)
    b.edge(merge, index, 60.0)
    b.edge(index, pileup, 60.0)
    return b.g


def make_montage(size: int, rng: np.random.Generator) -> TaskGraph:
    """montage: projection fan, pairwise diff-fit, background funnel, heavy tail.

    The end-of-graph tasks (``mImgtbl``/``mAdd``/``mShrink``) carry most of
    the work: "a small number of nodes near the end of the computation are
    responsible for most of the makespan" (paper Sec. IV-D).
    """
    b = _Builder(rng)
    w = max(2, (size - 6) // 4)
    projects = [b.task(7.0) for _ in range(w)]
    diffs = []
    # mDiffFit works on overlapping image pairs: adjacent projections.
    for i in range(w - 1):
        d = b.task(2.0)
        b.edge(projects[i], d, 10.0)
        b.edge(projects[i + 1], d, 10.0)
        diffs.append(d)
    # ring-like extra overlaps to approximate the 2D mosaic adjacency
    for i in range(0, w - 2, 2):
        d = b.task(2.0)
        b.edge(projects[i], d, 10.0)
        b.edge(projects[i + 2], d, 10.0)
        diffs.append(d)
    concat = b.task(3.0)
    bgmodel = b.task(9.0)
    for d in diffs:
        b.edge(d, concat, 2.0)
    b.edge(concat, bgmodel, 5.0)
    backgrounds = []
    for p in projects:
        t = b.task(6.0)
        b.edge(p, t, 12.0)
        b.edge(bgmodel, t, 1.0)
        backgrounds.append(t)
    # the tail does the mosaic-wide work: its cost grows with the fan width,
    # so a handful of end-of-graph tasks dominate at every instance size
    imgtbl = b.task(0.8 * w)
    madd = b.task(4.0 * w)
    shrink = b.task(1.2 * w)
    jpeg = b.task(4.0)
    for t in backgrounds:
        b.edge(t, imgtbl, 12.0)
        b.edge(t, madd, 12.0)
    b.edge(imgtbl, madd, 3.0)
    b.edge(madd, shrink, 150.0)
    b.edge(shrink, jpeg, 40.0)
    return b.g


def make_seismology(size: int, rng: np.random.Generator) -> TaskGraph:
    """seismology: wide fan of tiny deconvolution tasks into one merge.

    Per-task work is negligible relative to the data each task moves, so no
    mapper can beat the pure-CPU mapping (paper: "neither of the algorithms
    could find a significant acceleration").
    """
    b = _Builder(rng)
    n = max(2, size - 1)
    merge = b.task(0.5)
    for _ in range(n):
        t = b.task(0.15)
        b.edge(t, merge, 30.0)
    return b.g


def make_soykb(size: int, rng: np.random.Generator) -> TaskGraph:
    """soykb: per-sample alignment chains + haplotype/genotype funnel."""
    b = _Builder(rng)
    n_samples = max(2, (size - 5) // 5)
    gvcf = b.task(6.0)
    for _ in range(n_samples):
        align = b.task(9.0)
        sort = b.task(2.0)
        dedup = b.task(2.5)
        realign = b.task(7.0)
        haplo = b.task(12.0)
        b.edge(align, sort, 60.0)
        b.edge(sort, dedup, 60.0)
        b.edge(dedup, realign, 60.0)
        b.edge(realign, haplo, 40.0)
        b.edge(haplo, gvcf, 15.0)
    select = b.task(2.0)
    filt = b.task(2.0)
    merge = b.task(3.0)
    b.edge(gvcf, select, 25.0)
    b.edge(select, filt, 25.0)
    b.edge(filt, merge, 25.0)
    return b.g


def make_srasearch(size: int, rng: np.random.Generator) -> TaskGraph:
    """srasearch: parallel download + align pairs into a single merge."""
    b = _Builder(rng)
    n = max(2, (size - 2) // 2)
    merge = b.task(4.0)
    report = b.task(1.5)
    for _ in range(n):
        dump = b.task(3.0)
        align = b.task(22.0)
        b.edge(dump, align, 45.0)
        b.edge(align, merge, 12.0)
    b.edge(merge, report, 10.0)
    return b.g


WORKFLOW_FAMILIES: Dict[str, Callable[[int, np.random.Generator], TaskGraph]] = {
    "1000genome": make_1000genome,
    "blast": make_blast,
    "bwa": make_bwa,
    "cycles": make_cycles,
    "epigenomics": make_epigenomics,
    "montage": make_montage,
    "seismology": make_seismology,
    "soykb": make_soykb,
    "srasearch": make_srasearch,
}


def make_workflow(family: str, size: int, rng: np.random.Generator) -> TaskGraph:
    """Build a workflow of the given family with roughly ``size`` tasks."""
    try:
        factory = WORKFLOW_FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown workflow family {family!r}; "
            f"choose from {sorted(WORKFLOW_FAMILIES)}"
        ) from None
    return factory(size, rng)


def augment_workflow(
    g: TaskGraph,
    rng: np.random.Generator,
    config: Optional[AugmentConfig] = None,
) -> TaskGraph:
    """Augment a workflow graph "analogously to Section IV-B".

    Unlike :func:`repro.graphs.augment.augment`, the structural complexity
    and the input/output data sizes of the workflow are *kept*; only
    parallelizability and streamability are drawn randomly, and the FPGA
    area is derived from the (structural) complexity.
    """
    cfg = config or AugmentConfig()
    for t in g.tasks():
        p = g.params(t)
        if rng.random() < cfg.perfect_parallel_prob:
            parallelizability = 1.0
        else:
            parallelizability = float(rng.random())
        streamability = float(
            rng.lognormal(cfg.streamability_mu, cfg.streamability_sigma)
        )
        g.add_task(
            t,
            complexity=p.complexity,
            parallelizability=parallelizability,
            streamability=streamability,
            area=cfg.area_per_complexity * p.complexity,
        )
    return g


#: Task-count targets per family and benchmark scale.  The "paper" scale
#: matches the published instance sizes (montage up to 1312 tasks,
#: epigenomics up to 1695); "smoke" keeps the suite fast.
_BENCHMARK_SIZES: Dict[str, Dict[str, List[int]]] = {
    "smoke": {
        "1000genome": [30, 60],
        "blast": [15, 30],
        "bwa": [15, 30],
        "cycles": [20, 40],
        "epigenomics": [25, 50],
        "montage": [30, 60],
        "seismology": [15, 30],
        "soykb": [20, 40],
        "srasearch": [15, 30],
    },
    "small": {
        "1000genome": [50, 100, 150],
        "blast": [30, 60, 90],
        "bwa": [30, 60, 90],
        "cycles": [40, 80, 120],
        "epigenomics": [50, 100, 200],
        "montage": [60, 120, 240],
        "seismology": [30, 60, 90],
        "soykb": [40, 80, 120],
        "srasearch": [30, 60, 90],
    },
    "paper": {
        "1000genome": [100, 250, 500, 750, 900],
        "blast": [45, 105, 300, 600],
        "bwa": [100, 300, 600, 1000],
        "cycles": [70, 140, 450, 900],
        "epigenomics": [100, 350, 700, 1100, 1695],
        "montage": [60, 180, 470, 900, 1312],
        "seismology": [100, 300, 700, 1000],
        "soykb": [100, 250, 500],
        "srasearch": [40, 80, 160],
    },
}


def benchmark_sizes(scale: str = "smoke") -> Dict[str, List[int]]:
    """Task-count targets per family for a given benchmark scale."""
    try:
        return {k: list(v) for k, v in _BENCHMARK_SIZES[scale].items()}
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(_BENCHMARK_SIZES)}"
        ) from None


def benchmark_set(
    rng: np.random.Generator,
    scale: str = "smoke",
    *,
    families: Optional[List[str]] = None,
    augmented: bool = True,
) -> Dict[str, List[TaskGraph]]:
    """Build the full benchmark set: one graph per (family, size) pair."""
    sizes = benchmark_sizes(scale)
    out: Dict[str, List[TaskGraph]] = {}
    for family in families or sorted(WORKFLOW_FAMILIES):
        graphs = []
        for size in sizes[family]:
            g = make_workflow(family, size, rng)
            if augmented:
                augment_workflow(g, rng)
            graphs.append(g)
        out[family] = graphs
    return out
