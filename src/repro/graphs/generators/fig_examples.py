"""The paper's running examples as ready-made graphs.

Useful for anyone following along with the paper: Fig. 1's series-parallel
graph (whose decomposition tree and candidate set the paper derives) and
Fig. 2's non-series-parallel graph (which exercises Algorithm 1's cut
step).
"""

from __future__ import annotations

from ..taskgraph import TaskGraph

__all__ = ["fig1_graph", "fig2_graph"]


def fig1_graph() -> TaskGraph:
    """Paper Fig. 1: series-parallel, decomposes into
    ``P(0-5){ S[0-1, P(1-3){[1-3], S[1-2, 2-3]}, 3-5], S[0-4, 4-5] }``."""
    return TaskGraph.from_edges(
        [(0, 1), (1, 3), (1, 2), (2, 3), (3, 5), (0, 4), (4, 5)]
    )


def fig2_graph() -> TaskGraph:
    """Paper Fig. 2: *not* series-parallel — the branch ``1-5`` is blocked
    by edge ``4-5`` and the branch ``1-4`` by edge ``0-4``, so Algorithm 1
    must cut one of them."""
    return TaskGraph.from_edges(
        [(0, 1), (0, 4), (1, 2), (2, 3), (1, 3), (3, 5), (1, 4), (4, 5)]
    )
