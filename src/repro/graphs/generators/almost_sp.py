"""Almost-series-parallel DAG generator (paper Sec. IV-C).

"We generate almost series-parallel graphs by generating a series-parallel
graph with the desired number of nodes and randomly inserting k new edges,
which are directed according to a random topological order.  Since in a
series-parallel graph there can only be a linear number of non-conflicting
edges, most of the newly generated edges will be conflicting."
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..augment import AugmentConfig, augment
from ..taskgraph import DEFAULT_DATA_MB, TaskGraph
from .sp_random import random_sp_graph

__all__ = ["random_almost_sp_graph", "add_random_edges"]


def add_random_edges(
    g: TaskGraph,
    k: int,
    rng: np.random.Generator,
    *,
    data_mb: float = DEFAULT_DATA_MB,
    max_attempts_factor: int = 50,
) -> int:
    """Insert up to ``k`` random edges directed along a random topological order.

    Edges are sampled uniformly over ordered node pairs ``(i, j)`` with ``i``
    before ``j`` in a randomly chosen topological order of ``g``; existing
    edges are skipped.  Returns the number of edges actually inserted (it can
    fall short of ``k`` only on very dense graphs).
    """
    order = g.topological_order()
    # Randomise among valid topological orders by shuffling and re-sorting
    # stably by depth: a cheap way to obtain a *random* topological order is
    # Kahn's algorithm with random tie-breaking.
    order = _random_topological_order(g, rng)
    pos = {t: i for i, t in enumerate(order)}
    n = len(order)
    inserted = 0
    attempts = 0
    max_attempts = max_attempts_factor * max(k, 1)
    while inserted < k and attempts < max_attempts:
        attempts += 1
        i = int(rng.integers(n))
        j = int(rng.integers(n))
        if i == j:
            continue
        u, v = order[min(i, j)], order[max(i, j)]
        if g.has_edge(u, v):
            continue
        g.add_edge(u, v, data_mb=data_mb)
        inserted += 1
    return inserted


def _random_topological_order(g: TaskGraph, rng: np.random.Generator):
    indeg = {t: g.in_degree(t) for t in g.tasks()}
    ready = [t for t in g.tasks() if indeg[t] == 0]
    order = []
    while ready:
        idx = int(rng.integers(len(ready)))
        t = ready.pop(idx)
        order.append(t)
        for s in g.successors(t):
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    return order


def random_almost_sp_graph(
    n_tasks: int,
    extra_edges: int,
    rng: np.random.Generator,
    *,
    augment_config: Optional[AugmentConfig] = None,
    augmented: bool = True,
) -> TaskGraph:
    """Random SP graph with ``extra_edges`` additional (mostly conflicting) edges."""
    g = random_sp_graph(n_tasks, rng, augmented=False)
    cfg = augment_config or AugmentConfig()
    add_random_edges(g, extra_edges, rng, data_mb=cfg.data_mb)
    if augmented:
        augment(g, rng, cfg)
    return g
