"""Task-graph generators: random SP, almost-SP, layered, and workflows."""

from .almost_sp import add_random_edges, random_almost_sp_graph
from .fig_examples import fig1_graph, fig2_graph
from .layered import random_layered_graph
from .sp_random import random_sp_edges, random_sp_graph
from .stages import random_forkjoin_graph, random_pipeline_graph
from .workflows import (
    WORKFLOW_FAMILIES,
    augment_workflow,
    benchmark_set,
    benchmark_sizes,
    make_workflow,
)

__all__ = [
    "add_random_edges",
    "fig1_graph",
    "fig2_graph",
    "random_almost_sp_graph",
    "random_layered_graph",
    "random_sp_edges",
    "random_sp_graph",
    "random_forkjoin_graph",
    "random_pipeline_graph",
    "WORKFLOW_FAMILIES",
    "augment_workflow",
    "benchmark_set",
    "benchmark_sizes",
    "make_workflow",
]
