"""Structural metrics for task graphs.

These are used by the experiment drivers for reporting and by the test suite
to validate generator output (e.g. the random series-parallel generator must
produce graphs whose density stays linear).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .taskgraph import TaskGraph

__all__ = ["GraphStats", "graph_stats", "edge_density", "max_width"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a task graph."""

    n_tasks: int
    n_edges: int
    depth: int          # longest path, in edges
    width: int          # largest BFS level
    n_sources: int
    n_sinks: int
    density: float      # edges / tasks
    avg_in_degree: float
    total_data_mb: float


def edge_density(g: TaskGraph) -> float:
    """Edges per task; series-parallel graphs are guaranteed < 2."""
    return g.n_edges / max(1, g.n_tasks)


def max_width(g: TaskGraph) -> int:
    """Size of the largest breadth-first level (graph parallelism)."""
    levels = g.bfs_levels()
    return max((len(lvl) for lvl in levels), default=0)


def graph_stats(g: TaskGraph) -> GraphStats:
    """Compute all summary statistics in one pass."""
    total_data = sum(g.data_mb(u, v) for u, v in g.edges())
    n = max(1, g.n_tasks)
    return GraphStats(
        n_tasks=g.n_tasks,
        n_edges=g.n_edges,
        depth=g.longest_path_length(),
        width=max_width(g),
        n_sources=len(g.sources()),
        n_sinks=len(g.sinks()),
        density=g.n_edges / n,
        avg_in_degree=g.n_edges / n,
        total_data_mb=total_data,
    )


def degree_histogram(g: TaskGraph) -> Dict[int, int]:
    """Histogram of total degrees (in + out)."""
    hist: Dict[int, int] = {}
    for t in g.tasks():
        d = g.in_degree(t) + g.out_degree(t)
        hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))
