"""Random parameter augmentation for task graphs (paper Sec. IV-B).

The paper augments generated graphs with random *complexity*,
*parallelizability* and *streamability*:

- complexity and streamability are drawn from ``LogNormal(mu=2, sigma=0.5)``
  ("90 % of the values are in the range from 3 to 17 with a median of about
  7.4"),
- parallelizability is perfect (1.0) with 50 % probability and uniform in
  [0, 1] otherwise (Amdahl's-law argument),
- the FPGA area requirement is proportional to the task's complexity,
- each edge carries a constant data flow of 100 MB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .taskgraph import DEFAULT_DATA_MB, TaskGraph

__all__ = ["AugmentConfig", "augment", "lognormal_median"]


@dataclass(frozen=True)
class AugmentConfig:
    """Parameters of the random augmentation.

    ``area_per_complexity`` converts task complexity into FPGA area units.
    The paper assigns "an area limitation proportionally to the task's
    complexity" without giving the constant; we calibrate it so that with
    the default platform (capacity 100) roughly 50 median tasks fit the
    fabric.  That reproduces the paper's regime: whole series-parallel
    subgraphs can be streamed on the FPGA (which is where the SP
    decomposition earns its ~5 pp advantage over single-node mapping),
    while the area budget still binds on large graphs.
    """

    complexity_mu: float = 2.0
    complexity_sigma: float = 0.5
    streamability_mu: float = 2.0
    streamability_sigma: float = 0.5
    perfect_parallel_prob: float = 0.5
    area_per_complexity: float = 0.25
    data_mb: float = DEFAULT_DATA_MB


def lognormal_median(mu: float = 2.0) -> float:
    """Median of the paper's lognormal distribution (about 7.4 for mu=2)."""
    return float(np.exp(mu))


def augment(
    g: TaskGraph,
    rng: np.random.Generator,
    config: Optional[AugmentConfig] = None,
    *,
    overwrite_data: bool = True,
) -> TaskGraph:
    """Assign random model parameters to all tasks of ``g`` in place.

    Tasks are processed in insertion order, so a fixed ``rng`` seed yields a
    reproducible augmentation.  Returns ``g`` for chaining.
    """
    cfg = config or AugmentConfig()
    for t in g.tasks():
        complexity = float(
            rng.lognormal(cfg.complexity_mu, cfg.complexity_sigma)
        )
        streamability = float(
            rng.lognormal(cfg.streamability_mu, cfg.streamability_sigma)
        )
        if rng.random() < cfg.perfect_parallel_prob:
            parallelizability = 1.0
        else:
            parallelizability = float(rng.random())
        g.add_task(
            t,
            complexity=complexity,
            parallelizability=parallelizability,
            streamability=streamability,
            area=cfg.area_per_complexity * complexity,
        )
    if overwrite_data:
        for u, v in g.edges():
            g.set_data_mb(u, v, cfg.data_mb)
    return g
