"""Task-graph substrate: graph type, metrics, augmentation and generators."""

from .augment import AugmentConfig, augment
from .properties import GraphStats, graph_stats
from .taskgraph import DEFAULT_DATA_MB, GraphError, TaskGraph, TaskParams

__all__ = [
    "AugmentConfig",
    "augment",
    "GraphStats",
    "graph_stats",
    "DEFAULT_DATA_MB",
    "GraphError",
    "TaskGraph",
    "TaskParams",
]
