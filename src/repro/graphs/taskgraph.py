"""Task-graph substrate.

A :class:`TaskGraph` is a directed acyclic graph whose nodes are *tasks* and
whose edges are *data dependencies*.  Every task carries the four parameters
used by the platform model of Wilhelm et al. [5] (the cost model the paper
builds on):

``complexity``
    Number of operations per data point (dimensionless work factor).
``parallelizability``
    Fraction ``p in [0, 1]`` of the task that can be parallelized; the
    achievable speedup on a device with ``c`` lanes follows Amdahl's law,
    ``1 / ((1 - p) + p / c)``.
``streamability``
    Dataflow pipelining factor (> 0) describing how well the task maps to an
    FPGA pipeline; it scales the effective FPGA throughput.
``area``
    FPGA area requirement (arbitrary units, proportional to complexity in the
    paper's augmentation).

Edges carry ``data_mb``, the amount of data (in MB) transferred from producer
to consumer (the paper assumes a constant 100 MB between tasks).

The class is a thin, deterministic adjacency structure optimised for the
access patterns of the mapping algorithms (topological sweeps, predecessor
iteration, subgraph extraction).  Conversion to/from :mod:`networkx` is
provided for interoperability and for cross-checking in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

__all__ = ["TaskParams", "TaskGraph", "GraphError", "DEFAULT_DATA_MB"]

#: Default per-edge data volume in MB (Sec. IV-B of the paper).
DEFAULT_DATA_MB = 100.0


class GraphError(ValueError):
    """Raised for structurally invalid graph operations (cycles, dangling ids)."""


@dataclass
class TaskParams:
    """Per-task model parameters (see module docstring)."""

    complexity: float = 1.0
    parallelizability: float = 0.0
    streamability: float = 1.0
    area: float = 0.0

    def copy(self) -> "TaskParams":
        return TaskParams(
            self.complexity, self.parallelizability, self.streamability, self.area
        )


@dataclass
class _Node:
    params: TaskParams = field(default_factory=TaskParams)
    succ: List[int] = field(default_factory=list)
    pred: List[int] = field(default_factory=list)


class TaskGraph:
    """A directed acyclic task graph with model parameters.

    Nodes are integer ids.  Insertion order of nodes and edges is preserved,
    which keeps every algorithm in the library deterministic for a fixed
    input.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, _Node] = {}
        self._edges: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(
        self,
        tid: int,
        *,
        complexity: float = 1.0,
        parallelizability: float = 0.0,
        streamability: float = 1.0,
        area: float = 0.0,
    ) -> int:
        """Add a task.  Re-adding an existing id updates its parameters."""
        params = TaskParams(complexity, parallelizability, streamability, area)
        if tid in self._nodes:
            self._nodes[tid].params = params
        else:
            self._nodes[tid] = _Node(params=params)
        return tid

    def add_edge(self, u: int, v: int, *, data_mb: float = DEFAULT_DATA_MB) -> None:
        """Add a dependency edge ``u -> v``.

        Both endpoints are created with default parameters if absent.
        Parallel edges are collapsed: re-adding an edge overwrites its data
        volume.  Self-loops are rejected.
        """
        if u == v:
            raise GraphError(f"self-loop on task {u}")
        for t in (u, v):
            if t not in self._nodes:
                self._nodes[t] = _Node()
        if (u, v) not in self._edges:
            self._nodes[u].succ.append(v)
            self._nodes[v].pred.append(u)
        self._edges[(u, v)] = float(data_mb)

    def remove_edge(self, u: int, v: int) -> None:
        if (u, v) not in self._edges:
            raise GraphError(f"no edge {u} -> {v}")
        del self._edges[(u, v)]
        self._nodes[u].succ.remove(v)
        self._nodes[v].pred.remove(u)

    def remove_task(self, tid: int) -> None:
        if tid not in self._nodes:
            raise GraphError(f"no task {tid}")
        for v in list(self._nodes[tid].succ):
            self.remove_edge(tid, v)
        for u in list(self._nodes[tid].pred):
            self.remove_edge(u, tid)
        del self._nodes[tid]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self._nodes)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def tasks(self) -> List[int]:
        """Task ids in insertion order."""
        return list(self._nodes)

    def edges(self) -> List[Tuple[int, int]]:
        """Edges in insertion order."""
        return list(self._edges)

    def has_task(self, tid: int) -> bool:
        return tid in self._nodes

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._edges

    def params(self, tid: int) -> TaskParams:
        return self._nodes[tid].params

    def data_mb(self, u: int, v: int) -> float:
        return self._edges[(u, v)]

    def set_data_mb(self, u: int, v: int, data_mb: float) -> None:
        if (u, v) not in self._edges:
            raise GraphError(f"no edge {u} -> {v}")
        self._edges[(u, v)] = float(data_mb)

    def successors(self, tid: int) -> List[int]:
        return list(self._nodes[tid].succ)

    def predecessors(self, tid: int) -> List[int]:
        return list(self._nodes[tid].pred)

    def out_degree(self, tid: int) -> int:
        return len(self._nodes[tid].succ)

    def in_degree(self, tid: int) -> int:
        return len(self._nodes[tid].pred)

    def sources(self) -> List[int]:
        return [t for t, n in self._nodes.items() if not n.pred]

    def sinks(self) -> List[int]:
        return [t for t, n in self._nodes.items() if not n.succ]

    def input_mb(self, tid: int, *, source_default: float = DEFAULT_DATA_MB) -> float:
        """Total input data volume of a task.

        Source tasks (no predecessors) are assumed to read ``source_default``
        MB from main memory, so they carry non-trivial work as well.
        """
        preds = self._nodes[tid].pred
        if not preds:
            return source_default
        return sum(self._edges[(p, tid)] for p in preds)

    # ------------------------------------------------------------------
    # orders and structure
    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """Kahn topological order with insertion-order tie breaking."""
        indeg = {t: len(n.pred) for t, n in self._nodes.items()}
        queue = [t for t in self._nodes if indeg[t] == 0]
        order: List[int] = []
        head = 0
        while head < len(queue):
            t = queue[head]
            head += 1
            order.append(t)
            for s in self._nodes[t].succ:
                indeg[s] -= 1
                if indeg[s] == 0:
                    queue.append(s)
        if len(order) != len(self._nodes):
            raise GraphError("graph contains a cycle")
        return order

    def bfs_levels(self) -> List[List[int]]:
        """Breadth-first levels: level of a task = longest path from a source."""
        level = {t: 0 for t in self._nodes}
        for t in self.topological_order():
            for s in self._nodes[t].succ:
                level[s] = max(level[s], level[t] + 1)
        n_levels = max(level.values(), default=-1) + 1
        out: List[List[int]] = [[] for _ in range(n_levels)]
        for t in self._nodes:  # insertion order within level
            out[level[t]].append(t)
        return out

    def bfs_order(self) -> List[int]:
        """Breadth-first schedule order (level by level)."""
        return [t for lvl in self.bfs_levels() for t in lvl]

    def is_dag(self) -> bool:
        try:
            self.topological_order()
            return True
        except GraphError:
            return False

    def validate(self) -> None:
        """Raise :class:`GraphError` if the graph is not a well-formed DAG."""
        if not self._nodes:
            raise GraphError("empty graph")
        self.topological_order()
        for (u, v), d in self._edges.items():
            if d < 0:
                raise GraphError(f"negative data volume on edge {u} -> {v}")
        for t, n in self._nodes.items():
            p = n.params
            if p.complexity < 0 or p.streamability <= 0 or p.area < 0:
                raise GraphError(f"invalid parameters on task {t}")
            if not 0.0 <= p.parallelizability <= 1.0:
                raise GraphError(f"parallelizability out of range on task {t}")

    def longest_path_length(self) -> int:
        """Number of edges on the longest path (graph depth)."""
        dist = {t: 0 for t in self._nodes}
        for t in self.topological_order():
            for s in self._nodes[t].succ:
                dist[s] = max(dist[s], dist[t] + 1)
        return max(dist.values(), default=0)

    def descendants(self, tid: int) -> set:
        seen = set()
        stack = list(self._nodes[tid].succ)
        while stack:
            t = stack.pop()
            if t not in seen:
                seen.add(t)
                stack.extend(self._nodes[t].succ)
        return seen

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def copy(self) -> "TaskGraph":
        g = TaskGraph()
        for t, n in self._nodes.items():
            p = n.params
            g.add_task(
                t,
                complexity=p.complexity,
                parallelizability=p.parallelizability,
                streamability=p.streamability,
                area=p.area,
            )
        for (u, v), d in self._edges.items():
            g.add_edge(u, v, data_mb=d)
        return g

    def subgraph(self, nodes: Iterable[int]) -> "TaskGraph":
        """Node-induced subgraph (parameters and edge data preserved)."""
        keep = set(nodes)
        g = TaskGraph()
        for t in self._nodes:
            if t in keep:
                p = self._nodes[t].params
                g.add_task(
                    t,
                    complexity=p.complexity,
                    parallelizability=p.parallelizability,
                    streamability=p.streamability,
                    area=p.area,
                )
        for (u, v), d in self._edges.items():
            if u in keep and v in keep:
                g.add_edge(u, v, data_mb=d)
        return g

    def normalized(
        self, *, source_id: Optional[int] = None, sink_id: Optional[int] = None
    ) -> Tuple["TaskGraph", int, int]:
        """Return ``(graph, source, sink)`` with a single source and sink.

        If the graph already has a unique source/sink those are returned on a
        copy.  Otherwise virtual zero-work tasks are inserted, connected with
        zero-data edges (Sec. III-C: "we may just insert new start and end
        nodes").  Fresh ids default to ``max(id) + 1`` and ``+ 2``.
        """
        g = self.copy()
        sources = g.sources()
        sinks = g.sinks()
        next_id = max(self._nodes) + 1 if self._nodes else 0
        if len(sources) == 1:
            src = sources[0]
        else:
            src = source_id if source_id is not None else next_id
            next_id = max(next_id, src + 1)
            g.add_task(src, complexity=0.0, streamability=1.0)
            for s in sources:
                g.add_edge(src, s, data_mb=0.0)
        if len(sinks) == 1:
            snk = sinks[0]
        else:
            snk = sink_id if sink_id is not None else next_id
            g.add_task(snk, complexity=0.0, streamability=1.0)
            for t in sinks:
                g.add_edge(t, snk, data_mb=0.0)
        return g, src, snk

    def transitive_reduction(self) -> "TaskGraph":
        """Copy with all transitive (redundant) edges removed."""
        nxg = self.to_networkx()
        red = nx.transitive_reduction(nxg)
        g = TaskGraph()
        for t in self._nodes:
            p = self._nodes[t].params
            g.add_task(
                t,
                complexity=p.complexity,
                parallelizability=p.parallelizability,
                streamability=p.streamability,
                area=p.area,
            )
        for u, v in red.edges():
            g.add_edge(u, v, data_mb=self._edges[(u, v)])
        return g

    def relabeled(self) -> Tuple["TaskGraph", Dict[int, int]]:
        """Copy with ids renumbered 0..n-1 in topological order.

        Returns the new graph and the old-id -> new-id map.
        """
        order = self.topological_order()
        remap = {old: new for new, old in enumerate(order)}
        g = TaskGraph()
        for old in order:
            p = self._nodes[old].params
            g.add_task(
                remap[old],
                complexity=p.complexity,
                parallelizability=p.parallelizability,
                streamability=p.streamability,
                area=p.area,
            )
        for (u, v), d in self._edges.items():
            g.add_edge(remap[u], remap[v], data_mb=d)
        return g, remap

    # ------------------------------------------------------------------
    # interoperability
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        g = nx.DiGraph()
        for t, n in self._nodes.items():
            p = n.params
            g.add_node(
                t,
                complexity=p.complexity,
                parallelizability=p.parallelizability,
                streamability=p.streamability,
                area=p.area,
            )
        for (u, v), d in self._edges.items():
            g.add_edge(u, v, data_mb=d)
        return g

    @classmethod
    def from_networkx(cls, g: nx.DiGraph) -> "TaskGraph":
        tg = cls()
        for t, attrs in g.nodes(data=True):
            tg.add_task(
                int(t),
                complexity=attrs.get("complexity", 1.0),
                parallelizability=attrs.get("parallelizability", 0.0),
                streamability=attrs.get("streamability", 1.0),
                area=attrs.get("area", 0.0),
            )
        for u, v, attrs in g.edges(data=True):
            tg.add_edge(int(u), int(v), data_mb=attrs.get("data_mb", DEFAULT_DATA_MB))
        return tg

    @classmethod
    def from_edges(
        cls, edges: Sequence[Tuple[int, int]], *, data_mb: float = DEFAULT_DATA_MB
    ) -> "TaskGraph":
        """Build a graph from an edge list with uniform data volumes."""
        tg = cls()
        for u, v in edges:
            tg.add_edge(u, v, data_mb=data_mb)
        return tg

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __contains__(self, tid: int) -> bool:
        return tid in self._nodes

    def __iter__(self) -> Iterator[int]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"TaskGraph(n_tasks={self.n_tasks}, n_edges={self.n_edges})"
