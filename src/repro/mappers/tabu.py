"""Tabu-search mapper (extension baseline from the MPSoC tradition).

The paper's related work points to the MPSoC mapping literature dominated by
metaheuristics [11], [12]; tabu search is its standard trajectory method.
This implementation searches the same move space as the decomposition
mapper — (subgraph, device) reassignments over single nodes and, optionally,
the series-parallel candidates — with:

- steepest-descent over a random *neighborhood sample* per iteration,
- a tabu list of recently touched (subgraph, device) moves (FIFO tenure),
- the aspiration criterion (tabu moves allowed when they beat the best),
- best-seen tracking, so the result is never worse than the all-CPU start.

Comparing it against the greedy decomposition mapper isolates the value of
the paper's *exhaustive-candidate greedy* loop versus a classic local-search
regime on identical moves.

Neighborhood scans run through prepared-candidate delta evaluation
(:class:`~repro.evaluation.delta.DeltaEvaluator`): every sampled move is a
single-subgraph reassignment off the current mapping — exactly the delta
contract — so each move costs O(affected suffix) instead of a fresh scalar
simulation, with a bound-abort at the best makespan seen in the current
scan (max is monotone, so an aborted move could never have been selected).
``delta_eval=False`` selects the legacy scalar loop; both paths take
bit-identical move decisions (pinned by ``tests/test_batch_population.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

import numpy as np

from ..evaluation.delta import DeltaEvaluator
from ..evaluation.evaluator import MappingEvaluator
from ..sp.subgraphs import series_parallel_candidates, single_node_candidates
from .base import Mapper

__all__ = ["TabuSearchMapper"]


class TabuSearchMapper(Mapper):
    """Tabu search over (subgraph, device) moves (see module docstring)."""

    name = "Tabu"

    def __init__(
        self,
        *,
        iterations: int = 400,
        neighborhood: int = 40,
        tenure: int = 25,
        use_subgraph_moves: bool = True,
        cut_strategy: str = "random",
        delta_eval: bool = True,
    ) -> None:
        if iterations < 1 or neighborhood < 1 or tenure < 0:
            raise ValueError("invalid tabu parameters")
        self.iterations = iterations
        self.neighborhood = neighborhood
        self.tenure = tenure
        self.use_subgraph_moves = use_subgraph_moves
        self.cut_strategy = cut_strategy
        self.delta_eval = delta_eval
        #: best-seen construction makespan after each iteration (last run)
        self.history_: List[float] = []
        super().__init__()

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        g = evaluator.graph
        index = evaluator.model.index
        m = evaluator.n_devices

        if self.use_subgraph_moves:
            sets = series_parallel_candidates(
                g, rng=rng, cut_strategy=self.cut_strategy
            )
        else:
            sets = single_node_candidates(g)
        subgraphs: List[np.ndarray] = [
            np.fromiter((index[t] for t in s), dtype=np.int64, count=len(s))
            for s in sets
        ]
        moves: List[Tuple[int, int]] = [
            (k, d) for k in range(len(subgraphs)) for d in range(m)
        ]
        if self.delta_eval:
            return self._run_delta(evaluator, rng, subgraphs, moves)
        return self._run_scalar(evaluator, rng, subgraphs, moves)

    # ------------------------------------------------------------------
    def _run_delta(
        self,
        evaluator: MappingEvaluator,
        rng: np.random.Generator,
        subgraphs: List[np.ndarray],
        moves: List[Tuple[int, int]],
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        delta = DeltaEvaluator(evaluator.model)
        cands = [delta.candidate(sub) for sub in subgraphs]

        current_ms = delta.reset(evaluator.cpu_mapping())
        mp = delta.base_list  # live view, updated by apply_move
        best = delta.mapping
        best_ms = current_ms

        tabu: deque = deque(maxlen=self.tenure if self.tenure > 0 else None)
        tabu_set = set()
        improved_iters = 0
        history: List[float] = []
        evaluate = delta.evaluate_move

        for _ in range(self.iterations):
            sample_idx = rng.choice(
                len(moves), size=min(self.neighborhood, len(moves)),
                replace=False,
            )
            chosen = None
            chosen_ms = np.inf
            chosen_move = None
            for mi in sample_idx:
                k, d = moves[mi]
                cand = cands[k]
                if all(mp[t] == d for t in cand.members):
                    continue
                # bound at the scan's best: a move whose running makespan
                # reaches chosen_ms returns inf and could not have been
                # selected by the legacy exact scan either (ms is a max)
                ms = evaluate(cand, d, bound=chosen_ms)
                if not np.isfinite(ms):
                    continue
                is_tabu = (k, d) in tabu_set
                # aspiration: a tabu move is admissible if it beats best-seen
                if is_tabu and ms >= best_ms - 1e-12:
                    continue
                if ms < chosen_ms:
                    chosen = cand
                    chosen_ms = ms
                    chosen_move = (k, d)
            if chosen is not None:
                delta.apply_move(
                    chosen.members, chosen_move[1], first_pos=chosen.first_pos
                )
                current_ms = chosen_ms
                if self.tenure > 0:
                    if len(tabu) == tabu.maxlen:
                        tabu_set.discard(tabu[0])
                    tabu.append(chosen_move)
                    tabu_set.add(chosen_move)
                if current_ms < best_ms:
                    best = delta.mapping
                    best_ms = current_ms
                    improved_iters += 1
            history.append(best_ms)
        self.history_ = history
        return best, {
            "iterations": float(self.iterations),
            "improving_steps": float(improved_iters),
            "best_makespan": best_ms,
        }

    # ------------------------------------------------------------------
    def _run_scalar(
        self,
        evaluator: MappingEvaluator,
        rng: np.random.Generator,
        subgraphs: List[np.ndarray],
        moves: List[Tuple[int, int]],
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        """Legacy scan: one scalar simulation per sampled move."""
        current = evaluator.cpu_mapping()
        current_ms = evaluator.construction_makespan(current)
        best = current.copy()
        best_ms = current_ms

        tabu: deque = deque(maxlen=self.tenure if self.tenure > 0 else None)
        tabu_set = set()
        improved_iters = 0
        history: List[float] = []

        for _ in range(self.iterations):
            sample_idx = rng.choice(
                len(moves), size=min(self.neighborhood, len(moves)),
                replace=False,
            )
            chosen = None
            chosen_ms = np.inf
            chosen_move = None
            for mi in sample_idx:
                k, d = moves[mi]
                sub = subgraphs[k]
                if np.all(current[sub] == d):
                    continue
                trial = current.copy()
                trial[sub] = d
                ms = evaluator.construction_makespan(trial)
                if not np.isfinite(ms):
                    continue
                is_tabu = (k, d) in tabu_set
                # aspiration: a tabu move is admissible if it beats best-seen
                if is_tabu and ms >= best_ms - 1e-12:
                    continue
                if ms < chosen_ms:
                    chosen = trial
                    chosen_ms = ms
                    chosen_move = (k, d)
            if chosen is not None:
                current = chosen
                current_ms = chosen_ms
                if self.tenure > 0:
                    if len(tabu) == tabu.maxlen:
                        tabu_set.discard(tabu[0])
                    tabu.append(chosen_move)
                    tabu_set.add(chosen_move)
                if current_ms < best_ms:
                    best = current.copy()
                    best_ms = current_ms
                    improved_iters += 1
            history.append(best_ms)
        self.history_ = history
        return best, {
            "iterations": float(self.iterations),
            "improving_steps": float(improved_iters),
            "best_makespan": best_ms,
        }
