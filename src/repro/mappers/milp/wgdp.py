"""The two WGDP MILPs of Wilhelm et al. [5] (paper Sec. IV-A).

``WGDP Dev`` — device-based workload balancing:
    binary assignment ``y[t, d]``; minimize the maximum device load
    ``sum_t exec[t, d] * y[t, d] / slots(d)`` subject to FPGA area.  "Aims to
    balance the workload on the available processing units without
    considering dependencies" — very fast, mediocre on dependency-heavy
    graphs.

``WGDP Time`` — time-based formulation:
    assignment binaries on *slot-expanded* devices, continuous start times,
    big-M precedence with pair-exact transfer costs, disjunctive no-overlap
    for precedence-unordered task pairs on serializing devices, and —
    uniquely among the MILPs (paper: "the only MILP that takes data
    streaming into account") — optional streaming relaxation: an edge whose
    endpoints both sit on a streaming device may overlap producer and
    consumer (consumer starts after the producer's pipeline fill time).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ...evaluation.evaluator import MappingEvaluator
from ..base import Mapper
from .common import MilpBuilder, MilpProblemData

__all__ = ["WgdpDeviceMapper", "WgdpTimeMapper"]


class WgdpDeviceMapper(Mapper):
    """Device-based workload-balancing MILP (``WGDP Dev``)."""

    name = "WGDPDev"

    def __init__(self, *, time_limit_s: float = 60.0) -> None:
        self.time_limit_s = time_limit_s
        super().__init__()

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        model = evaluator.model
        platform = evaluator.platform
        n, m = model.n, model.m
        exec_table = model.exec_table
        area = model._area  # noqa: SLF001
        slots = np.array([d.slots if d.serializes else 1 for d in platform.devices])

        b = MilpBuilder()
        y = [[b.add_binary() for _ in range(m)] for _ in range(n)]
        c_max = b.add_continuous()
        for i in range(n):
            b.add_constraint({y[i][d]: 1.0 for d in range(m)}, lb=1.0, ub=1.0)
        for d in range(m):
            coeffs = {y[i][d]: exec_table[i, d] / slots[d] for i in range(n)}
            coeffs[c_max] = -1.0
            b.add_constraint(coeffs, ub=0.0)
        for d, cap in platform.area_capacities().items():
            b.add_constraint(
                {y[i][d]: float(area[i]) for i in range(n)}, ub=float(cap)
            )
        b.set_objective({c_max: 1.0})
        sol = b.solve(time_limit_s=self.time_limit_s)

        stats = {"status": float(sol.status), "objective": sol.objective}
        if sol.x is None:
            return evaluator.cpu_mapping(), {**stats, "fallback": 1.0}
        mapping = np.zeros(n, dtype=np.int64)
        for i in range(n):
            mapping[i] = int(np.argmax([sol.x[y[i][d]] for d in range(m)]))
        if not evaluator.is_feasible(mapping):  # pragma: no cover - defensive
            return evaluator.cpu_mapping(), {**stats, "fallback": 1.0}
        return mapping, stats


class WgdpTimeMapper(Mapper):
    """Time-based MILP with streaming awareness (``WGDP Time``)."""

    name = "WGDPTime"

    def __init__(
        self,
        *,
        time_limit_s: float = 60.0,
        mip_rel_gap: float = 1e-3,
        streaming_aware: bool = True,
    ) -> None:
        self.time_limit_s = time_limit_s
        self.mip_rel_gap = mip_rel_gap
        self.streaming_aware = streaming_aware
        super().__init__()

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        data = MilpProblemData(evaluator)
        model = evaluator.model
        platform = evaluator.platform
        n = data.n
        me = data.m_expanded
        exec_table = data.exec_table
        big_m = data.horizon

        streaming_exp = [
            platform.devices[d].streaming for d in data.device_map
        ]
        fill = model._fill  # noqa: SLF001  (n x m real devices)

        b = MilpBuilder()
        y = [[b.add_binary() for _ in range(me)] for _ in range(n)]
        s = [b.add_continuous() for _ in range(n)]
        c_max = b.add_continuous()

        # assignment
        for i in range(n):
            b.add_constraint({y[i][e]: 1.0 for e in range(me)}, lb=1.0, ub=1.0)
        # area on expanded FPGA devices
        area = model._area  # noqa: SLF001
        for e, cap in data.area_devices.items():
            b.add_constraint(
                {y[i][e]: float(area[i]) for i in range(n)}, ub=float(cap)
            )
        # source input transfers: s[t] >= sum_e initial[t,e] y[t,e]
        for i in range(n):
            if data.initial[i].max() > 0:
                coeffs = {s[i]: 1.0}
                for e in range(me):
                    coeffs[y[i][e]] = -float(data.initial[i][e])
                b.add_constraint(coeffs, lb=0.0)

        def dur_coeffs(i: int, sign: float) -> Dict[int, float]:
            return {y[i][e]: sign * float(exec_table[i, e]) for e in range(me)}

        # precedence + transfers (+ optional streaming relaxation)
        edge_comm: Dict[Tuple[int, int], int] = {}
        stream_z: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for (u, v) in data.edges:
            trans = data.edge_trans[(u, v)]
            c_e = b.add_continuous()
            edge_comm[(u, v)] = c_e
            # c_e >= trans[du,dv] - M(2 - y[u,du] - y[v,dv])
            for du in range(me):
                for dv in range(me):
                    t_cost = float(trans[du, dv])
                    if t_cost <= 0.0:
                        continue
                    b.add_constraint(
                        {
                            c_e: 1.0,
                            y[u][du]: -t_cost,
                            y[v][dv]: -t_cost,
                        },
                        lb=-t_cost,
                    )
            zs: List[Tuple[int, int]] = []
            if self.streaming_aware:
                for e in range(me):
                    if not streaming_exp[e]:
                        continue
                    z = b.add_binary()
                    zs.append((z, e))
                    b.add_constraint({z: 1.0, y[u][e]: -1.0}, ub=0.0)
                    b.add_constraint({z: 1.0, y[v][e]: -1.0}, ub=0.0)
                    # streamed floor: s[v] >= s[u] + fill(u) - M(1 - z)
                    real_d = data.device_map[e]
                    b.add_constraint(
                        {
                            s[v]: 1.0,
                            s[u]: -1.0,
                            z: -big_m,
                        },
                        lb=float(fill[u][real_d]) - big_m,
                    )
            stream_z[(u, v)] = zs
            # s[v] >= s[u] + dur(u) + c_e - M * sum(z)
            coeffs = {s[v]: 1.0, s[u]: -1.0, c_e: -1.0}
            coeffs.update(dur_coeffs(u, -1.0))
            for z, _ in zs:
                coeffs[z] = big_m
            b.add_constraint(coeffs, lb=0.0)

        # disjunctive no-overlap on serializing expanded devices, only for
        # precedence-unordered pairs (ordered pairs are separated already)
        n_pairs = 0
        for (i, j) in data.unordered_pairs():
            o = b.add_binary()
            n_pairs += 1
            for e in data.serial_devices:
                # s[j] >= s[i] + exec[i,e] - M(3 - y[i,e] - y[j,e] - o)
                b.add_constraint(
                    {
                        s[j]: 1.0,
                        s[i]: -1.0,
                        y[i][e]: -big_m,
                        y[j][e]: -big_m,
                        o: -big_m,
                    },
                    lb=float(exec_table[i, e]) - 3.0 * big_m,
                )
                # s[i] >= s[j] + exec[j,e] - M(2 + o - y[i,e] - y[j,e])
                b.add_constraint(
                    {
                        s[i]: 1.0,
                        s[j]: -1.0,
                        y[i][e]: -big_m,
                        y[j][e]: -big_m,
                        o: big_m,
                    },
                    lb=float(exec_table[j, e]) - 2.0 * big_m,
                )

        # makespan: c_max >= s[t] + dur(t) + final return
        for i in range(n):
            coeffs = {c_max: 1.0, s[i]: -1.0}
            coeffs.update(dur_coeffs(i, -1.0))
            for e in range(me):
                f_cost = float(data.final[i][e])
                if f_cost > 0:
                    coeffs[y[i][e]] = coeffs.get(y[i][e], 0.0) - f_cost
            b.add_constraint(coeffs, lb=0.0)

        b.set_objective({c_max: 1.0})
        sol = b.solve(
            time_limit_s=self.time_limit_s, mip_rel_gap=self.mip_rel_gap
        )
        stats = {
            "status": float(sol.status),
            "objective": sol.objective,
            "n_variables": float(b.n_variables),
            "n_pairs": float(n_pairs),
        }
        if sol.x is None:
            return evaluator.cpu_mapping(), {**stats, "fallback": 1.0}
        expanded = [
            int(np.argmax([sol.x[y[i][e]] for e in range(me)])) for i in range(n)
        ]
        mapping = data.collapse_mapping(expanded)
        if not evaluator.is_feasible(mapping):  # pragma: no cover - defensive
            return evaluator.cpu_mapping(), {**stats, "fallback": 1.0}
        return mapping, stats
