"""The Zhou & Liu MILP [2] (paper Sec. IV-A, ``ZhouLiu``).

"The MILP presented by Zhou and Liu represents one of the first and most
detailed MILPs for a CPU-GPU environment, which creates a total order of
tasks on each processing unit by assigning execution slots to each task.  It
can be expected to produce very good results at high computation cost."

Formulation (on slot-expanded devices, so CPU task-concurrency is modeled):

- binaries ``x[t, d, k]``: task ``t`` occupies execution slot ``k`` of
  device ``d``; every task takes exactly one slot, every slot at most one
  task, slots are filled in order (symmetry breaking);
- continuous per-slot start/finish times ``S[d, k] / F[d, k]`` chained by
  ``S[d, k] >= F[d, k-1]``, with ``F = S + assigned execution time``;
- task start/finish ``s[t] / f[t]`` tied to their slot's times via big-M;
- precedence ``s[v] >= f[u] + comm`` with pair-exact transfer costs;
- FPGA area budget; host I/O for sources/sinks; objective = makespan.

The slot structure makes the model *large*: ``O(n^2 m)`` binaries, which is
why the paper could only run it up to 20 tasks within a 5-minute limit — a
behaviour this reproduction inherits by design.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ...evaluation.evaluator import MappingEvaluator
from ..base import Mapper
from .common import MilpBuilder, MilpProblemData

__all__ = ["ZhouLiuMapper"]


class ZhouLiuMapper(Mapper):
    """Execution-slot MILP of Zhou & Liu (see module docstring)."""

    name = "ZhouLiu"

    def __init__(
        self,
        *,
        time_limit_s: float = 300.0,
        mip_rel_gap: float = 1e-3,
        max_slots: int = 0,
    ) -> None:
        """``max_slots`` bounds slots per device (0 = n_tasks, the exact model)."""
        self.time_limit_s = time_limit_s
        self.mip_rel_gap = mip_rel_gap
        self.max_slots = max_slots
        super().__init__()

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        data = MilpProblemData(evaluator)
        model = evaluator.model
        n = data.n
        me = data.m_expanded
        exec_table = data.exec_table
        big_m = data.horizon
        n_slots = n if self.max_slots <= 0 else min(self.max_slots, n)

        b = MilpBuilder()
        # x[i][e][k]
        x = [
            [[b.add_binary() for _ in range(n_slots)] for _ in range(me)]
            for _ in range(n)
        ]
        s = [b.add_continuous() for _ in range(n)]
        f = [b.add_continuous() for _ in range(n)]
        slot_s = [[b.add_continuous() for _ in range(n_slots)] for _ in range(me)]
        slot_f = [[b.add_continuous() for _ in range(n_slots)] for _ in range(me)]
        c_max = b.add_continuous()

        # each task in exactly one slot
        for i in range(n):
            b.add_constraint(
                {x[i][e][k]: 1.0 for e in range(me) for k in range(n_slots)},
                lb=1.0,
                ub=1.0,
            )
        # each slot holds at most one task; slots fill in order
        for e in range(me):
            for k in range(n_slots):
                b.add_constraint(
                    {x[i][e][k]: 1.0 for i in range(n)}, ub=1.0
                )
                if k > 0:
                    coeffs = {x[i][e][k]: 1.0 for i in range(n)}
                    for i in range(n):
                        coeffs[x[i][e][k - 1]] = coeffs.get(x[i][e][k - 1], 0.0) - 1.0
                    b.add_constraint(coeffs, ub=0.0)
        # slot time chaining and duration
        for e in range(me):
            for k in range(n_slots):
                # F[e,k] = S[e,k] + sum_i exec[i,e] x[i,e,k]
                coeffs = {slot_f[e][k]: 1.0, slot_s[e][k]: -1.0}
                for i in range(n):
                    coeffs[x[i][e][k]] = -float(exec_table[i, e])
                b.add_constraint(coeffs, lb=0.0, ub=0.0)
                if k > 0:
                    b.add_constraint(
                        {slot_s[e][k]: 1.0, slot_f[e][k - 1]: -1.0}, lb=0.0
                    )
        # tie task times to slot times (big-M on assignment)
        for i in range(n):
            for e in range(me):
                for k in range(n_slots):
                    xi = x[i][e][k]
                    b.add_constraint(
                        {s[i]: 1.0, slot_s[e][k]: -1.0, xi: big_m}, ub=big_m
                    )
                    b.add_constraint(
                        {s[i]: 1.0, slot_s[e][k]: -1.0, xi: -big_m}, lb=-big_m
                    )
                    b.add_constraint(
                        {f[i]: 1.0, slot_f[e][k]: -1.0, xi: big_m}, ub=big_m
                    )
                    b.add_constraint(
                        {f[i]: 1.0, slot_f[e][k]: -1.0, xi: -big_m}, lb=-big_m
                    )
            # f[i] = s[i] + dur(i)  (tightening)
            coeffs = {f[i]: 1.0, s[i]: -1.0}
            for e in range(me):
                for k in range(n_slots):
                    coeffs[x[i][e][k]] = -float(exec_table[i, e])
            b.add_constraint(coeffs, lb=0.0, ub=0.0)
            # source input transfer: s[i] >= sum initial[i,e] * y[i,e]
            if data.initial[i].max() > 0:
                coeffs = {s[i]: 1.0}
                for e in range(me):
                    for k in range(n_slots):
                        coeffs[x[i][e][k]] = -float(data.initial[i][e])
                b.add_constraint(coeffs, lb=0.0)

        # precedence with pair-exact communication
        for (u, v) in data.edges:
            trans = data.edge_trans[(u, v)]
            c_e = b.add_continuous()
            for du in range(me):
                for dv in range(me):
                    t_cost = float(trans[du, dv])
                    if t_cost <= 0.0:
                        continue
                    coeffs = {c_e: 1.0}
                    for k in range(n_slots):
                        coeffs[x[u][du][k]] = coeffs.get(x[u][du][k], 0.0) - t_cost
                        coeffs[x[v][dv][k]] = coeffs.get(x[v][dv][k], 0.0) - t_cost
                    b.add_constraint(coeffs, lb=-t_cost)
            b.add_constraint({s[v]: 1.0, f[u]: -1.0, c_e: -1.0}, lb=0.0)

        # FPGA area
        area = model._area  # noqa: SLF001
        for e, cap in data.area_devices.items():
            b.add_constraint(
                {
                    x[i][e][k]: float(area[i])
                    for i in range(n)
                    for k in range(n_slots)
                },
                ub=float(cap),
            )
        # makespan with sink return transfers
        for i in range(n):
            coeffs = {c_max: 1.0, f[i]: -1.0}
            for e in range(me):
                f_cost = float(data.final[i][e])
                if f_cost > 0:
                    for k in range(n_slots):
                        coeffs[x[i][e][k]] = coeffs.get(x[i][e][k], 0.0) - f_cost
            b.add_constraint(coeffs, lb=0.0)

        b.set_objective({c_max: 1.0})
        sol = b.solve(
            time_limit_s=self.time_limit_s, mip_rel_gap=self.mip_rel_gap
        )
        stats = {
            "status": float(sol.status),
            "objective": sol.objective,
            "n_variables": float(b.n_variables),
        }
        if sol.x is None:
            return evaluator.cpu_mapping(), {**stats, "fallback": 1.0}
        expanded: List[int] = []
        for i in range(n):
            weights = [
                sum(sol.x[x[i][e][k]] for k in range(n_slots)) for e in range(me)
            ]
            expanded.append(int(np.argmax(weights)))
        mapping = data.collapse_mapping(expanded)
        if not evaluator.is_feasible(mapping):  # pragma: no cover - defensive
            return evaluator.cpu_mapping(), {**stats, "fallback": 1.0}
        return mapping, stats
