"""MILP mappers solved with scipy.optimize.milp (HiGHS)."""

from .common import MilpBuilder, MilpProblemData, MilpSolution
from .wgdp import WgdpDeviceMapper, WgdpTimeMapper
from .zhouliu import ZhouLiuMapper

__all__ = [
    "MilpBuilder",
    "MilpProblemData",
    "MilpSolution",
    "WgdpDeviceMapper",
    "WgdpTimeMapper",
    "ZhouLiuMapper",
]
