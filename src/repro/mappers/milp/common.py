"""Shared infrastructure for the MILP mappers.

The paper solves its three mixed-integer linear programs with Gurobi; we use
:func:`scipy.optimize.milp` (HiGHS), which is available offline.  This module
provides

- :class:`MilpBuilder` — a tiny variable/constraint registry that assembles
  the sparse constraint matrix for ``scipy.optimize.milp``;
- :class:`MilpProblemData` — the per-instance tables every formulation
  needs: the *slot-expanded* device list (a serializing device with ``k``
  slots becomes ``k`` identical MILP devices so that device concurrency is
  representable with disjunctive constraints), execution/transfer tables on
  expanded devices, reachability (to skip no-overlap constraints for pairs
  already ordered by precedence), and a big-M horizon.

Mappings are extracted on expanded devices and collapsed back to the real
platform devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.optimize import Bounds, LinearConstraint, milp

from ...evaluation.evaluator import MappingEvaluator

__all__ = ["MilpBuilder", "MilpSolution", "MilpProblemData"]


@dataclass
class MilpSolution:
    """Raw solver outcome."""

    x: Optional[np.ndarray]
    status: int           # scipy milp status code (0 = optimal, 1 = limit hit)
    message: str
    objective: float


class MilpBuilder:
    """Incremental builder for ``scipy.optimize.milp`` problems."""

    def __init__(self) -> None:
        self._n = 0
        self._lb: List[float] = []
        self._ub: List[float] = []
        self._integrality: List[int] = []
        self._obj: Dict[int, float] = {}
        # constraint triplets
        self._rows: List[int] = []
        self._cols: List[int] = []
        self._vals: List[float] = []
        self._con_lb: List[float] = []
        self._con_ub: List[float] = []

    # -- variables -------------------------------------------------------
    def add_continuous(self, lb: float = 0.0, ub: float = np.inf) -> int:
        idx = self._n
        self._n += 1
        self._lb.append(lb)
        self._ub.append(ub)
        self._integrality.append(0)
        return idx

    def add_binary(self) -> int:
        idx = self._n
        self._n += 1
        self._lb.append(0.0)
        self._ub.append(1.0)
        self._integrality.append(1)
        return idx

    def add_binaries(self, count: int) -> List[int]:
        return [self.add_binary() for _ in range(count)]

    @property
    def n_variables(self) -> int:
        return self._n

    # -- constraints & objective ------------------------------------------
    def add_constraint(
        self,
        coeffs: Dict[int, float],
        lb: float = -np.inf,
        ub: float = np.inf,
    ) -> None:
        """Add ``lb <= sum(coef * var) <= ub`` (merge duplicate columns)."""
        row = len(self._con_lb)
        merged: Dict[int, float] = {}
        for col, val in coeffs.items():
            merged[col] = merged.get(col, 0.0) + val
        for col, val in merged.items():
            if val != 0.0:
                self._rows.append(row)
                self._cols.append(col)
                self._vals.append(val)
        self._con_lb.append(lb)
        self._con_ub.append(ub)

    def set_objective(self, coeffs: Dict[int, float]) -> None:
        self._obj = dict(coeffs)

    # -- solve -------------------------------------------------------------
    def solve(
        self,
        *,
        time_limit_s: Optional[float] = None,
        mip_rel_gap: Optional[float] = None,
    ) -> MilpSolution:
        c = np.zeros(self._n)
        for col, val in self._obj.items():
            c[col] = val
        a = sp.csr_matrix(
            (self._vals, (self._rows, self._cols)),
            shape=(len(self._con_lb), self._n),
        )
        constraints = LinearConstraint(
            a, np.array(self._con_lb), np.array(self._con_ub)
        )
        options: Dict[str, object] = {}
        if time_limit_s is not None:
            options["time_limit"] = float(time_limit_s)
        if mip_rel_gap is not None:
            options["mip_rel_gap"] = float(mip_rel_gap)
        integrality = np.array(self._integrality)
        bounds = Bounds(np.array(self._lb), np.array(self._ub))
        res = milp(
            c,
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options=options,
        )
        if int(res.status) == 4:
            # HiGHS presolve occasionally chokes on big-M streaming rows
            # ("Solve error"); retrying without presolve is reliable.
            res = milp(
                c,
                constraints=constraints,
                integrality=integrality,
                bounds=bounds,
                options={**options, "presolve": False},
            )
        x = getattr(res, "x", None)
        obj = float(res.fun) if x is not None and res.fun is not None else np.inf
        return MilpSolution(
            x=None if x is None else np.asarray(x),
            status=int(res.status),
            message=str(res.message),
            objective=obj,
        )


@dataclass
class MilpProblemData:
    """Slot-expanded per-instance tables shared by all MILP formulations."""

    evaluator: MappingEvaluator
    n: int = field(init=False)
    #: expanded device index -> real platform device index
    device_map: List[int] = field(init=False)
    #: expanded execution table (n x m_expanded)
    exec_table: np.ndarray = field(init=False)
    #: expanded per-edge transfer tables: edges[(u_idx, v_idx)] -> matrix
    edge_trans: Dict[Tuple[int, int], np.ndarray] = field(init=False)
    #: topologically ordered edge list as index pairs
    edges: List[Tuple[int, int]] = field(init=False)
    #: initial / final host transfer tables on expanded devices
    initial: np.ndarray = field(init=False)
    final: np.ndarray = field(init=False)
    #: expanded indices that serialize (need disjunctive no-overlap)
    serial_devices: List[int] = field(init=False)
    #: expanded FPGA-like indices with (capacity) for area constraints
    area_devices: Dict[int, float] = field(init=False)
    #: reach[i] = set of task indices reachable from i (excluding i)
    reach: List[set] = field(init=False)
    horizon: float = field(init=False)

    def __post_init__(self) -> None:
        ev = self.evaluator
        model = ev.model
        platform = ev.platform
        self.n = model.n

        self.device_map = []
        for d, dev in enumerate(platform.devices):
            copies = dev.slots if dev.serializes else 1
            self.device_map.extend([d] * copies)
        m_exp = len(self.device_map)

        self.exec_table = model.exec_table[:, self.device_map]
        self.initial = np.array(
            [[model._initial[i][d] for d in self.device_map]  # noqa: SLF001
             for i in range(self.n)]
        )
        self.final = np.array(
            [[model._final[i][d] for d in self.device_map]  # noqa: SLF001
             for i in range(self.n)]
        )

        self.edges = []
        self.edge_trans = {}
        for v_idx in range(self.n):
            for p_idx, trans in model._pred[v_idx]:  # noqa: SLF001
                t = np.asarray(trans)[np.ix_(self.device_map, self.device_map)]
                # same real device => free, also across slot copies
                for a in range(m_exp):
                    for b in range(m_exp):
                        if self.device_map[a] == self.device_map[b]:
                            t[a, b] = 0.0
                self.edges.append((p_idx, v_idx))
                self.edge_trans[(p_idx, v_idx)] = t

        self.serial_devices = [
            e for e, d in enumerate(self.device_map)
            if platform.devices[d].serializes
        ]
        caps = platform.area_capacities()
        self.area_devices = {
            e: caps[d] for e, d in enumerate(self.device_map) if d in caps
        }

        # reachability via DFS over successors
        g = ev.graph
        index = model.index
        succ_idx: List[List[int]] = [[] for _ in range(self.n)]
        for t in g.tasks():
            succ_idx[index[t]] = [index[s] for s in g.successors(t)]
        reach: List[set] = [set() for _ in range(self.n)]
        for t in reversed(g.topological_order()):
            i = index[t]
            acc = set()
            for j in succ_idx[i]:
                acc.add(j)
                acc |= reach[j]
            reach[i] = acc
        self.reach = reach

        self.horizon = float(
            self.exec_table.max(axis=1).sum()
            + sum(t.max() for t in self.edge_trans.values())
            + self.initial.max(axis=1).sum()
            + self.final.max(axis=1).sum()
        ) * 1.05 + 1.0

    # ------------------------------------------------------------------
    @property
    def m_expanded(self) -> int:
        return len(self.device_map)

    def collapse_mapping(self, expanded: Sequence[int]) -> np.ndarray:
        """Expanded-device assignment -> real platform mapping."""
        return np.array([self.device_map[e] for e in expanded], dtype=np.int64)

    def unordered_pairs(self) -> List[Tuple[int, int]]:
        """Task pairs not ordered by precedence (need disjunctive constraints)."""
        out = []
        for i in range(self.n):
            ri = self.reach[i]
            for j in range(i + 1, self.n):
                if j not in ri and i not in self.reach[j]:
                    out.append((i, j))
        return out
