"""CPOP — Critical Path On a Processor (Topcuoglu et al. [6]).

The companion algorithm to HEFT from the same paper: tasks on the *critical
path* (maximal ``rank_u + rank_d``) are all pinned to the single processor
that minimizes the path's total execution time; off-path tasks are scheduled
like HEFT (insertion-based earliest finish time), processed in decreasing
``rank_u + rank_d`` priority from a ready queue.

Included as an extension baseline: like HEFT it has a local view plus one
global decision (the critical-path processor), which makes it an instructive
middle point between HEFT and the decomposition principle — it effectively
maps one special "subgraph" (the critical path) as a unit, but chooses it
statically instead of by model-based search.
"""

from __future__ import annotations

import heapq
from typing import Dict, Tuple

import numpy as np

from ..evaluation.costmodel import AREA_TOL
from ..evaluation.evaluator import MappingEvaluator
from .base import Mapper
from .heft import DeviceTimelines, mean_comm, mean_exec, upward_ranks

__all__ = ["CpopMapper"]

_INF = float("inf")


def downward_ranks(evaluator: MappingEvaluator) -> np.ndarray:
    """``rank_d(t) = max over preds(rank_d(p) + w_mean(p) + c_mean(p,t))``."""
    model = evaluator.model
    w = mean_exec(evaluator)
    c = mean_comm(evaluator)
    g = evaluator.graph
    index = model.index
    rank = np.zeros(model.n)
    for t in g.topological_order():
        i = index[t]
        best = 0.0
        for p in g.predecessors(t):
            j = index[p]
            val = rank[j] + w[j] + c[(j, i)]
            if val > best:
                best = val
        rank[i] = best
    return rank


class CpopMapper(Mapper):
    """CPOP list scheduler used as a mapping algorithm."""

    name = "CPOP"

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        model = evaluator.model
        g = evaluator.graph
        index = model.index
        tasks = model.tasks
        n, m = model.n, model.m
        exec_table = model.exec_table

        rank_u = upward_ranks(evaluator)
        rank_d = downward_ranks(evaluator)
        priority = rank_u + rank_d
        cp_value = priority.max()

        # critical path: walk from the entry task along max-priority children
        on_cp = np.zeros(n, dtype=bool)
        # rank tie-break epsilon, unrelated to the area tolerance
        eps = 1e-9 * max(cp_value, 1.0)  # repro-lint: disable=TOL001
        entry = [index[t] for t in g.sources()]
        cur = max(entry, key=lambda i: priority[i])
        on_cp[cur] = True
        while True:
            succs = [index[s] for s in g.successors(tasks[cur])]
            cp_succs = [j for j in succs if priority[j] >= cp_value - eps]
            if not cp_succs:
                break
            cur = cp_succs[0]
            on_cp[cur] = True

        # the critical-path processor minimizes the summed execution time,
        # subject to area feasibility
        area = model._area  # noqa: SLF001
        caps = evaluator.platform.area_capacities()
        cp_area = float(area[on_cp].sum())
        best_d, best_cost = 0, _INF
        for d in range(m):
            if d in caps and cp_area > caps[d] + AREA_TOL:
                continue
            cost = float(exec_table[on_cp, d].sum())
            if cost < best_cost:
                best_cost = cost
                best_d = d
        cp_processor = best_d

        timelines = DeviceTimelines(evaluator)
        mapping = np.zeros(n, dtype=np.int64)
        aft = np.zeros(n)
        indeg = {t: g.in_degree(t) for t in g.tasks()}
        ready = [(-priority[index[t]], index[t]) for t in g.tasks()
                 if indeg[t] == 0]
        heapq.heapify(ready)

        def eft_on(i: int, d: int) -> Tuple[float, int, float]:
            if not timelines.area_allows(i, d):
                return _INF, -1, _INF
            r = model._initial[i][d]  # noqa: SLF001
            for p, trans in model._pred[i]:  # noqa: SLF001
                v = aft[p] + trans[mapping[p]][d]
                if v > r:
                    r = v
            duration = exec_table[i, d]
            start, slot = timelines.earliest_start(d, r, duration)
            return start + duration, slot, start

        while ready:
            _, i = heapq.heappop(ready)
            if on_cp[i]:
                eft, slot, start = eft_on(i, cp_processor)
                d = cp_processor
                if not np.isfinite(eft):
                    d = 0
                    eft, slot, start = eft_on(i, 0)
            else:
                best = (_INF, 0, -1, 0.0)
                for d_try in range(m):
                    eft, slot, start = eft_on(i, d_try)
                    if eft < best[0] - 1e-15:
                        best = (eft, d_try, slot, start)
                eft, d, slot, start = best
                if not np.isfinite(eft):  # pragma: no cover - area exhausted
                    d = 0
                    eft, slot, start = eft_on(i, 0)
            mapping[i] = d
            aft[i] = eft
            timelines.commit(i, d, slot, start, eft)
            for s in g.successors(tasks[i]):
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(ready, (-priority[index[s]], index[s]))
        return mapping, {
            "schedule_length": float(aft.max(initial=0.0)),
            "cp_processor": float(cp_processor),
            "cp_tasks": float(on_cp.sum()),
        }
