"""Multi-objective mapping: makespan + energy (paper Sec. V extension).

The paper frames its single-objective study as transferable to
multi-objective optimization ("the basic algorithmic ideas presented in this
work can easily be transferred").  This module carries that out for the
(makespan, energy) pair defined in :mod:`repro.evaluation.energy`:

- :class:`ParetoNsgaIIMapper` — the *real* NSGA-II [14]: fast non-dominated
  sorting plus crowding-distance survival over both objectives.  Its
  :meth:`~repro.mappers.base.Mapper.map` result is the knee-point solution;
  the full Pareto front of the final population is kept on
  ``mapper.last_front_`` as ``(mapping, makespan, energy)`` triples.
- :class:`EnergyAwareDecompositionMapper` — the decomposition principle with
  a scalarized objective ``alpha * makespan/ms0 + (1-alpha) * energy/e0``
  (baselines = the all-CPU mapping), demonstrating that the greedy
  subgraph-move framework is objective-agnostic: only the full-evaluation
  cost function changes (Sec. III-A).

``examples/energy_tradeoff.py`` sweeps ``alpha`` and plots both mappers'
fronts side by side.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..evaluation.energy import EnergyModel
from ..evaluation.evaluator import MappingEvaluator
from .base import Mapper
from .decomposition import DecompositionMapper
from .genetic import single_point_crossover

__all__ = [
    "dominates",
    "domination_matrix",
    "nondominated_sort",
    "crowding_distance",
    "ParetoNsgaIIMapper",
    "EnergyAwareDecompositionMapper",
]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff ``a`` Pareto-dominates ``b`` (all <=, at least one <).

    NaN objectives count as ``+inf`` (worst): they arise on
    infeasible-energy lanes — an infeasible makespan is ``inf`` and a
    zero-idle platform multiplies it by ``0.0`` — and without the guard a
    NaN point would compare incomparable to everything and pollute front
    zero.  With it, a NaN point never dominates and is dominated by any
    point that is strictly better somewhere and NaN-free there.
    """
    strictly_better = False
    for x, y in zip(a, b):
        if x != x:
            x = np.inf
        if y != y:
            y = np.inf
        if x > y:
            return False
        if x < y:
            strictly_better = True
    return strictly_better


def domination_matrix(objectives: np.ndarray) -> np.ndarray:
    """Boolean ``D[i, j]`` = point ``i`` Pareto-dominates point ``j``.

    One numpy broadcast over all pairs, replacing the O(n^2) Python
    pairwise :func:`dominates` loop; NaN objectives are mapped to
    ``+inf`` first (same guard as :func:`dominates`, with which this
    agrees decision-for-decision).
    """
    objs = np.asarray(objectives, dtype=float)
    objs = np.where(np.isnan(objs), np.inf, objs)
    if objs.ndim == 2 and objs.shape[1] == 2:
        # two-objective hot path (makespan, energy): 2-D broadcasts only,
        # no (n, n, m) temporaries or axis reductions
        x = objs[:, 0]
        y = objs[:, 1]
        le = (x[:, None] <= x[None, :]) & (y[:, None] <= y[None, :])
        lt = (x[:, None] < x[None, :]) | (y[:, None] < y[None, :])
        return le & lt
    a = objs[:, None, :]
    b = objs[None, :, :]
    return (a <= b).all(axis=-1) & (a < b).any(axis=-1)


def nondominated_sort(objectives: np.ndarray) -> List[List[int]]:
    """Fast non-dominated sorting (Deb et al. [14]); returns index fronts.

    Domination comes from one :func:`domination_matrix` broadcast; the
    front-peeling loop then visits each dominated edge once.  Front
    membership *and internal ordering* are identical to the classic
    pairwise implementation (each point's dominated list is iterated
    smaller-indices-first, the pairwise loop's append order), so
    crowding-distance tie-breaks — and hence seeded NSGA-II trajectories
    — are unchanged.
    """
    n = len(objectives)
    if n == 0:
        return []
    dom = domination_matrix(objectives)
    # plain Python ints for the peel: list indexing beats np fancy/scalar
    # indexing by ~3x over the O(sum of dominated-list lengths) decrements
    domination_count: List[int] = dom.sum(axis=0).tolist()
    fronts: List[List[int]] = []
    current: List[int] = [i for i in range(n) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        nxt: List[int] = []
        for i in current:
            # ascending == the pairwise loop's append order (smaller
            # indices first, then larger), so front ordering — and hence
            # crowding tie-breaks and seeded trajectories — is unchanged
            for j in np.flatnonzero(dom[i]).tolist():
                c = domination_count[j] - 1
                domination_count[j] = c
                if c == 0:
                    nxt.append(j)
        current = nxt
    return fronts


def crowding_distance(objectives: np.ndarray) -> np.ndarray:
    """Crowding distance of each point within one front.

    Vectorized per objective (one stable argsort plus one sliced
    subtraction instead of a Python loop over interior points); float
    operations match the classic per-point loop exactly.
    """
    n, m = objectives.shape
    dist = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for k in range(m):
        order = np.argsort(objectives[:, k], kind="stable")
        vals = objectives[order, k]
        lo, hi = vals[0], vals[-1]
        dist[order[0]] = dist[order[-1]] = np.inf
        span = hi - lo
        if span <= 0:
            continue
        dist[order[1:-1]] += (vals[2:] - vals[:-2]) / span
    return dist


class ParetoNsgaIIMapper(Mapper):
    """True two-objective NSGA-II over (makespan, energy)."""

    name = "ParetoNSGAII"

    def __init__(
        self,
        *,
        generations: int = 200,
        population_size: int = 100,
        crossover_rate: float = 0.9,
        mutation_rate: Optional[float] = None,
        batch_eval: bool = True,
    ) -> None:
        if generations < 1 or population_size < 4:
            raise ValueError("need >= 1 generation and >= 4 individuals")
        self.generations = generations
        self.population_size = population_size
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.batch_eval = batch_eval
        #: Pareto front of the final population: (mapping, makespan, energy)
        self.last_front_: List[Tuple[np.ndarray, float, float]] = []
        #: (best makespan, best energy) of the population per generation
        self.history_: List[Tuple[float, float]] = []
        self._batched = None
        self._energy_memo: Dict[bytes, float] = {}
        super().__init__()

    # -- helpers ----------------------------------------------------------
    def _evaluate(
        self, pop: np.ndarray, evaluator: MappingEvaluator, energy: EnergyModel
    ) -> np.ndarray:
        objs = np.empty((len(pop), 2))
        if self._batched is not None:
            # makespan lanes in one batch call; energy scalar per
            # *distinct* genome, memoized across the whole run (elitism
            # and crossover recreate genomes constantly; the memo shares
            # the exact value, never an approximation)
            ms = self._batched(pop)
            objs[:, 0] = ms
            memo = self._energy_memo
            rows = pop.tolist()
            for r in range(len(pop)):
                if np.isfinite(ms[r]):
                    key = pop[r].tobytes()
                    e = memo.get(key)
                    if e is None:
                        memo[key] = e = energy.energy(
                            rows[r], makespan=ms[r], check_feasibility=False
                        )
                    objs[r, 1] = e
                else:
                    objs[r, 1] = np.inf
            return objs
        for r, ind in enumerate(pop):
            ms = evaluator.construction_makespan(ind)
            objs[r, 0] = ms
            objs[r, 1] = (
                energy.energy(ind, makespan=ms, check_feasibility=False)
                if np.isfinite(ms)
                else np.inf
            )
        return objs

    def _repair(self, pop, evaluator, rng) -> None:
        model = evaluator.model
        area = model._area  # noqa: SLF001
        host = evaluator.platform.host_index
        for d, capacity in evaluator.platform.area_capacities().items():
            usage = (pop == d) @ area
            for r in np.nonzero(usage > capacity)[0]:
                genome = pop[r]
                on_dev = rng.permutation(np.nonzero(genome == d)[0])
                used = float(area[np.nonzero(genome == d)[0]].sum())
                for g in on_dev:
                    if used <= capacity:
                        break
                    genome[g] = host
                    used -= area[g]

    @staticmethod
    def _survival(objs: np.ndarray, keep: int) -> np.ndarray:
        """NSGA-II environmental selection: fronts, then crowding."""
        fronts = nondominated_sort(objs)
        chosen: List[int] = []
        for front in fronts:
            if len(chosen) + len(front) <= keep:
                chosen.extend(front)
            else:
                dist = crowding_distance(objs[front])
                order = np.argsort(-dist, kind="stable")
                for pos in order[: keep - len(chosen)]:
                    chosen.append(front[pos])
                break
        return np.array(chosen, dtype=int)

    # -- main loop ----------------------------------------------------------
    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        n = evaluator.n_tasks
        m = evaluator.n_devices
        pop_size = self.population_size
        p_mut = self.mutation_rate if self.mutation_rate is not None else 1.0 / n
        energy = EnergyModel(evaluator.model)
        self._batched = (
            getattr(evaluator, "construction_makespans", None)
            if self.batch_eval
            else None
        )
        self._energy_memo: Dict[bytes, float] = {}

        pop = rng.integers(0, m, size=(pop_size, n), dtype=np.int64)
        pop[0] = evaluator.platform.host_index
        self._repair(pop, evaluator, rng)
        objs = self._evaluate(pop, evaluator, energy)
        history: List[Tuple[float, float]] = []

        for _ in range(self.generations):
            # binary tournament on (front rank approximated by domination).
            # Pairwise domination is precomputed vectorized (same NaN->inf
            # guard as `dominates`); rng.random() is drawn exactly where
            # the classic short-circuit expression would draw it — only
            # for mutually non-dominating pairs — so the stream matches
            # the pairwise loop draw for draw.
            a = rng.integers(0, pop_size, size=pop_size)
            b = rng.integers(0, pop_size, size=pop_size)
            oa = np.where(np.isnan(objs[a]), np.inf, objs[a])
            ob = np.where(np.isnan(objs[b]), np.inf, objs[b])
            a_dom = ((oa <= ob).all(1) & (oa < ob).any(1)).tolist()
            b_dom = ((ob <= oa).all(1) & (ob < oa).any(1)).tolist()
            pick_a = np.empty(pop_size, dtype=bool)
            for k in range(pop_size):
                if a_dom[k]:
                    pick_a[k] = True
                elif b_dom[k]:
                    pick_a[k] = False
                else:
                    pick_a[k] = rng.random() < 0.5
            parents = np.where(pick_a, a, b)
            children = pop[parents].copy()
            single_point_crossover(children, rng, self.crossover_rate)
            mask = rng.random(size=children.shape) < p_mut
            if mask.any():
                children[mask] = rng.integers(0, m, size=int(mask.sum()))
            self._repair(children, evaluator, rng)
            child_objs = self._evaluate(children, evaluator, energy)

            combined = np.vstack([pop, children])
            combined_objs = np.vstack([objs, child_objs])
            keep = self._survival(combined_objs, pop_size)
            pop = combined[keep]
            objs = combined_objs[keep]
            history.append(
                (float(objs[:, 0].min()), float(objs[:, 1].min()))
            )

        self.history_ = history
        self._batched = None  # don't pin the evaluator past the run
        self._energy_memo = {}
        # final front and knee selection
        finite = np.isfinite(objs).all(axis=1)
        pop, objs = pop[finite], objs[finite]
        front_idx = nondominated_sort(objs)[0]
        seen = set()
        self.last_front_ = []
        for i in sorted(front_idx, key=lambda i: objs[i, 0]):
            key = (round(float(objs[i, 0]), 12), round(float(objs[i, 1]), 9))
            if key not in seen:
                seen.add(key)
                self.last_front_.append(
                    (pop[i].copy(), float(objs[i, 0]), float(objs[i, 1]))
                )
        knee = self._knee(objs[front_idx])
        best = pop[front_idx[knee]].copy()
        return best, {
            "generations": float(self.generations),
            "front_size": float(len(front_idx)),
            "best_makespan": float(objs[front_idx, 0].min()),
            "best_energy": float(objs[front_idx, 1].min()),
        }

    @staticmethod
    def _knee(front: np.ndarray) -> int:
        """Point closest to the (normalized) ideal corner."""
        lo = front.min(axis=0)
        hi = front.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        normalized = (front - lo) / span
        return int(np.argmin(np.linalg.norm(normalized, axis=1)))


class EnergyAwareDecompositionMapper(DecompositionMapper):
    """Decomposition mapping with a scalarized makespan/energy objective.

    ``alpha = 1`` reduces to the plain (makespan-only) decomposition mapper;
    ``alpha = 0`` minimizes energy alone.  Baselines for normalization are
    the all-CPU mapping's makespan and energy.
    """

    def __init__(
        self,
        alpha: float = 0.5,
        strategy: str = "series_parallel",
        heuristic: str = "first_fit",
        **kwargs,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.alpha = alpha
        self._energy: Optional[EnergyModel] = None
        self._ms0 = 1.0
        self._e0 = 1.0
        super().__init__(
            strategy, heuristic, name=kwargs.pop("name", f"EnergyAware{alpha:g}"),
            **kwargs,
        )

    def _objective(self, evaluator: MappingEvaluator, mapping) -> float:
        ms = evaluator.construction_makespan(mapping)
        if not np.isfinite(ms):
            return ms
        e = self._energy.energy(mapping, makespan=ms, check_feasibility=False)
        return self.alpha * ms / self._ms0 + (1.0 - self.alpha) * e / self._e0

    def _run(self, evaluator: MappingEvaluator, rng: np.random.Generator):
        self._energy = EnergyModel(evaluator.model)
        cpu = evaluator.cpu_mapping()
        self._ms0 = max(evaluator.cpu_construction_makespan, 1e-12)
        self._e0 = max(
            self._energy.energy(cpu, makespan=self._ms0), 1e-12
        )
        return super()._run(evaluator, rng)
