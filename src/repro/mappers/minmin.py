"""Min-min and Max-min batch heuristics (Braun et al. [13]).

The paper cites Braun et al.'s comparison of eleven static heuristics for
mapping *independent* tasks; min-min and max-min are its classic batch
algorithms.  The DAG adaptation used here processes the *ready set* in
waves:

- compute, for every ready task, the minimum-completion-time (MCT) device;
- **min-min** commits the ready task with the *smallest* MCT first (small
  tasks pack tightly, large ones risk starving);
- **max-min** commits the *largest* MCT first (front-loads the long poles).

Completion times use the same slot timelines and transfer model as the HEFT
implementation, so the four list-scheduling baselines differ only in their
ordering policy — a clean controlled comparison against the decomposition
principle.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..evaluation.evaluator import MappingEvaluator
from .base import Mapper
from .heft import DeviceTimelines

__all__ = ["MinMinMapper", "MaxMinMapper"]

_INF = float("inf")


class _BatchMapper(Mapper):
    """Shared wave machinery; subclasses pick from each wave."""

    #: pick the ready task with the max (True) or min (False) best MCT
    pick_max: bool = False

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        model = evaluator.model
        g = evaluator.graph
        index = model.index
        tasks = model.tasks
        n, m = model.n, model.m
        exec_table = model.exec_table

        timelines = DeviceTimelines(evaluator)
        mapping = np.zeros(n, dtype=np.int64)
        aft = np.zeros(n)
        indeg = {t: g.in_degree(t) for t in g.tasks()}
        ready = {index[t] for t in g.tasks() if indeg[t] == 0}
        scheduled = 0
        waves = 0

        def best_mct(i: int) -> Tuple[float, int, int, float]:
            best = (_INF, 0, -1, 0.0)
            for d in range(m):
                if not timelines.area_allows(i, d):
                    continue
                r = model._initial[i][d]  # noqa: SLF001
                for p, trans in model._pred[i]:  # noqa: SLF001
                    v = aft[p] + trans[mapping[p]][d]
                    if v > r:
                        r = v
                duration = exec_table[i, d]
                start, slot = timelines.earliest_start(d, r, duration)
                if start + duration < best[0] - 1e-15:
                    best = (start + duration, d, slot, start)
            return best

        while ready:
            waves += 1
            # completion-time matrix for the current wave
            candidates = {i: best_mct(i) for i in ready}
            pick = (max if self.pick_max else min)(
                candidates, key=lambda i: (candidates[i][0], i)
            )
            mct, d, slot, start = candidates[pick]
            if not np.isfinite(mct):  # pragma: no cover - area exhausted
                d, slot = 0, 0
                r = model._initial[pick][0]  # noqa: SLF001
                for p, trans in model._pred[pick]:  # noqa: SLF001
                    r = max(r, aft[p] + trans[mapping[p]][0])
                start, slot = timelines.earliest_start(
                    0, r, exec_table[pick, 0]
                )
                mct = start + exec_table[pick, 0]
            mapping[pick] = d
            aft[pick] = mct
            timelines.commit(pick, d, slot, start, mct)
            scheduled += 1
            ready.discard(pick)
            for s in g.successors(tasks[pick]):
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.add(index[s])
        if scheduled != n:  # pragma: no cover - defensive
            raise RuntimeError("batch mapper failed to schedule all tasks")
        return mapping, {
            "schedule_length": float(aft.max(initial=0.0)),
            "waves": float(waves),
        }


class MinMinMapper(_BatchMapper):
    """Min-min: smallest minimum completion time first."""

    name = "MinMin"
    pick_max = False


class MaxMinMapper(_BatchMapper):
    """Max-min: largest minimum completion time first."""

    name = "MaxMin"
    pick_max = True
