"""Simulated-annealing mapper (extension baseline).

A second metaheuristic besides NSGA-II, using the same model-based fitness.
Neighborhood moves mirror the decomposition mapper's move structure:

- *point move*: reassign one random task to a random device;
- *subgraph move* (with probability ``subgraph_move_prob``): reassign one
  random series-parallel candidate subgraph as a whole — this imports the
  paper's key insight into an annealer and is exactly what the ablation
  benchmark toggles to quantify the value of subgraph moves independently
  of the greedy framework.

Geometric cooling; infeasible neighbours (FPGA area) are rejected outright.
The best-seen mapping is returned, so the result is never worse than the
all-CPU start.

Both move kinds reassign one (subgraph, device) pair off the current
mapping, so trial evaluation goes through
:class:`~repro.evaluation.delta.DeltaEvaluator` (O(affected suffix) per
proposal; a full rebuild only on acceptance).  ``delta_eval=False``
selects the legacy scalar loop; both paths draw the same rng sequence and
accept the same moves (pinned by ``tests/test_batch_population.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..evaluation.delta import Candidate, DeltaEvaluator
from ..evaluation.evaluator import MappingEvaluator
from ..sp.subgraphs import series_parallel_candidates
from .base import Mapper

__all__ = ["SimulatedAnnealingMapper"]


class SimulatedAnnealingMapper(Mapper):
    """Simulated annealing over mappings (see module docstring)."""

    name = "Annealing"

    def __init__(
        self,
        *,
        iterations: int = 5000,
        start_temperature: float = 0.25,
        cooling: float = 0.999,
        subgraph_move_prob: float = 0.25,
        use_subgraph_moves: bool = True,
        delta_eval: bool = True,
    ) -> None:
        if iterations < 1:
            raise ValueError("need at least one iteration")
        if not 0 < cooling <= 1:
            raise ValueError("cooling must be in (0, 1]")
        self.iterations = iterations
        self.start_temperature = start_temperature
        self.cooling = cooling
        self.subgraph_move_prob = subgraph_move_prob
        self.use_subgraph_moves = use_subgraph_moves
        self.delta_eval = delta_eval
        #: best-seen construction makespan after each iteration (last run)
        self.history_: List[float] = []
        super().__init__()

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        n = evaluator.n_tasks
        m = evaluator.n_devices
        index = evaluator.model.index

        subgraphs: List[np.ndarray] = []
        if self.use_subgraph_moves:
            for s in series_parallel_candidates(evaluator.graph, rng=rng):
                if len(s) > 1:
                    subgraphs.append(
                        np.fromiter((index[t] for t in s), dtype=np.int64)
                    )
        if self.delta_eval:
            return self._run_delta(evaluator, rng, subgraphs)
        return self._run_scalar(evaluator, rng, subgraphs)

    # ------------------------------------------------------------------
    def _run_delta(
        self,
        evaluator: MappingEvaluator,
        rng: np.random.Generator,
        subgraphs: List[np.ndarray],
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        n = evaluator.n_tasks
        m = evaluator.n_devices
        delta = DeltaEvaluator(evaluator.model)
        sub_cands = [delta.candidate(sub) for sub in subgraphs]
        point_cands: List[Optional[Candidate]] = [None] * n

        current_ms = delta.reset(evaluator.cpu_mapping())
        best = delta.mapping
        best_ms = current_ms
        # temperature is relative to the baseline makespan
        temp = self.start_temperature * current_ms
        accepted = 0
        history: List[float] = []

        for _ in range(self.iterations):
            if subgraphs and rng.random() < self.subgraph_move_prob:
                cand = sub_cands[int(rng.integers(len(sub_cands)))]
                device = int(rng.integers(m))
            else:
                # legacy draw order: `trial[rng.integers(n)] = rng.integers(m)`
                # evaluates the RHS first, so the device comes off the
                # stream before the task index
                device = int(rng.integers(m))
                t = int(rng.integers(n))
                cand = point_cands[t]
                if cand is None:
                    cand = point_cands[t] = delta.candidate(
                        np.array([t], dtype=np.int64)
                    )
            ms = delta.evaluate_move(cand, device)
            if not np.isfinite(ms):
                temp *= self.cooling
                history.append(best_ms)
                continue
            dms = ms - current_ms
            if dms <= 0 or rng.random() < np.exp(-dms / max(temp, 1e-12)):
                delta.apply_move(cand.members, device, first_pos=cand.first_pos)
                current_ms = ms
                accepted += 1
                if ms < best_ms:
                    best = delta.mapping
                    best_ms = ms
            temp *= self.cooling
            history.append(best_ms)
        self.history_ = history
        return best, {
            "iterations": float(self.iterations),
            "accepted": float(accepted),
            "best_makespan": best_ms,
        }

    # ------------------------------------------------------------------
    def _run_scalar(
        self,
        evaluator: MappingEvaluator,
        rng: np.random.Generator,
        subgraphs: List[np.ndarray],
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        """Legacy loop: one scalar simulation per proposed move."""
        n = evaluator.n_tasks
        m = evaluator.n_devices

        current = evaluator.cpu_mapping()
        current_ms = evaluator.construction_makespan(current)
        best = current.copy()
        best_ms = current_ms
        # temperature is relative to the baseline makespan
        temp = self.start_temperature * current_ms
        accepted = 0
        history: List[float] = []

        for _ in range(self.iterations):
            trial = current.copy()
            if subgraphs and rng.random() < self.subgraph_move_prob:
                sub = subgraphs[int(rng.integers(len(subgraphs)))]
                trial[sub] = int(rng.integers(m))
            else:
                trial[int(rng.integers(n))] = int(rng.integers(m))
            ms = evaluator.construction_makespan(trial)
            if not np.isfinite(ms):
                temp *= self.cooling
                history.append(best_ms)
                continue
            dms = ms - current_ms
            if dms <= 0 or rng.random() < np.exp(-dms / max(temp, 1e-12)):
                current = trial
                current_ms = ms
                accepted += 1
                if ms < best_ms:
                    best = trial.copy()
                    best_ms = ms
            temp *= self.cooling
            history.append(best_ms)
        self.history_ = history
        return best, {
            "iterations": float(self.iterations),
            "accepted": float(accepted),
            "best_makespan": best_ms,
        }
