"""Simulated-annealing mapper (extension baseline).

A second metaheuristic besides NSGA-II, using the same model-based fitness.
Neighborhood moves mirror the decomposition mapper's move structure:

- *point move*: reassign one random task to a random device;
- *subgraph move* (with probability ``subgraph_move_prob``): reassign one
  random series-parallel candidate subgraph as a whole — this imports the
  paper's key insight into an annealer and is exactly what the ablation
  benchmark toggles to quantify the value of subgraph moves independently
  of the greedy framework.

Geometric cooling; infeasible neighbours (FPGA area) are rejected outright.
The best-seen mapping is returned, so the result is never worse than the
all-CPU start.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..evaluation.evaluator import MappingEvaluator
from ..sp.subgraphs import series_parallel_candidates
from .base import Mapper

__all__ = ["SimulatedAnnealingMapper"]


class SimulatedAnnealingMapper(Mapper):
    """Simulated annealing over mappings (see module docstring)."""

    name = "Annealing"

    def __init__(
        self,
        *,
        iterations: int = 5000,
        start_temperature: float = 0.25,
        cooling: float = 0.999,
        subgraph_move_prob: float = 0.25,
        use_subgraph_moves: bool = True,
    ) -> None:
        if iterations < 1:
            raise ValueError("need at least one iteration")
        if not 0 < cooling <= 1:
            raise ValueError("cooling must be in (0, 1]")
        self.iterations = iterations
        self.start_temperature = start_temperature
        self.cooling = cooling
        self.subgraph_move_prob = subgraph_move_prob
        self.use_subgraph_moves = use_subgraph_moves
        super().__init__()

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        n = evaluator.n_tasks
        m = evaluator.n_devices
        index = evaluator.model.index

        subgraphs: List[np.ndarray] = []
        if self.use_subgraph_moves:
            for s in series_parallel_candidates(evaluator.graph, rng=rng):
                if len(s) > 1:
                    subgraphs.append(
                        np.fromiter((index[t] for t in s), dtype=np.int64)
                    )

        current = evaluator.cpu_mapping()
        current_ms = evaluator.construction_makespan(current)
        best = current.copy()
        best_ms = current_ms
        # temperature is relative to the baseline makespan
        temp = self.start_temperature * current_ms
        accepted = 0

        for _ in range(self.iterations):
            trial = current.copy()
            if subgraphs and rng.random() < self.subgraph_move_prob:
                sub = subgraphs[int(rng.integers(len(subgraphs)))]
                trial[sub] = int(rng.integers(m))
            else:
                trial[int(rng.integers(n))] = int(rng.integers(m))
            ms = evaluator.construction_makespan(trial)
            if not np.isfinite(ms):
                temp *= self.cooling
                continue
            delta = ms - current_ms
            if delta <= 0 or rng.random() < np.exp(-delta / max(temp, 1e-12)):
                current = trial
                current_ms = ms
                accepted += 1
                if ms < best_ms:
                    best = trial.copy()
                    best_ms = ms
            temp *= self.cooling
        return best, {
            "iterations": float(self.iterations),
            "accepted": float(accepted),
            "best_makespan": best_ms,
        }
