"""PEFT — Predict Earliest Finish Time (Arabnejad & Barbosa [8]).

PEFT improves on HEFT with an *optimistic cost table* (OCT):

``OCT(t, d)`` is the shortest possible time from ``t``'s completion on
device ``d`` to the end of the graph, assuming every descendant picks its
best device (min instead of HEFT's average):

    OCT(t, d) = max_{s in succ(t)} min_{d'} [ OCT(s, d') + w(s, d')
                                              + c(t, s, d, d') ]

with ``c`` the actual pair transfer (0 for ``d' = d``).  Tasks are scheduled
from a ready list in decreasing ``rank_oct(t) = mean_d OCT(t, d)``; each
task takes the device minimizing the *optimistic* EFT,
``O_EFT(t, d) = EFT(t, d) + OCT(t, d)``.

The paper's evaluation uses PEFT as the stronger list-scheduling baseline
("one of the best-performing HEFT variants for complex systems" [10]).
Scheduling machinery (insertion-based slot timelines, FPGA area tracking) is
shared with :mod:`repro.mappers.heft`.
"""

from __future__ import annotations

import heapq
from typing import Dict, Tuple

import numpy as np

from ..evaluation.evaluator import MappingEvaluator
from .base import Mapper
from .heft import DeviceTimelines

__all__ = ["PeftMapper", "optimistic_cost_table"]

_INF = float("inf")


def optimistic_cost_table(evaluator: MappingEvaluator) -> np.ndarray:
    """The ``(n_tasks, n_devices)`` OCT matrix (0 rows for sink tasks)."""
    model = evaluator.model
    g = evaluator.graph
    index = model.index
    n, m = model.n, model.m
    exec_table = model.exec_table
    # successor edge transfer tables: trans[du][dv] per edge, via _pred of the
    # successor (package-internal access is deliberate here).
    oct_table = np.zeros((n, m))
    for t in reversed(g.topological_order()):
        i = index[t]
        succs = g.successors(t)
        if not succs:
            continue
        for d in range(m):
            worst = 0.0
            for s in succs:
                j = index[s]
                trans = None
                for p, row in model._pred[j]:  # noqa: SLF001
                    if p == i:
                        trans = row
                        break
                best = _INF
                for d2 in range(m):
                    c = 0.0 if d2 == d else trans[d][d2]
                    val = oct_table[j, d2] + exec_table[j, d2] + c
                    if val < best:
                        best = val
                if best > worst:
                    worst = best
            oct_table[i, d] = worst
    return oct_table


class PeftMapper(Mapper):
    """PEFT list scheduler used as a mapping algorithm."""

    name = "PEFT"

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        model = evaluator.model
        g = evaluator.graph
        index = model.index
        n, m = model.n, model.m
        exec_table = model.exec_table
        oct_table = optimistic_cost_table(evaluator)
        rank_oct = oct_table.mean(axis=1)

        timelines = DeviceTimelines(evaluator)
        mapping = np.zeros(n, dtype=np.int64)
        aft = np.zeros(n)
        scheduled = [False] * n

        indeg = {t: g.in_degree(t) for t in g.tasks()}
        ready_heap = [
            (-rank_oct[index[t]], index[t]) for t in g.tasks() if indeg[t] == 0
        ]
        heapq.heapify(ready_heap)
        tasks = model.tasks

        n_done = 0
        while ready_heap:
            _, i = heapq.heappop(ready_heap)
            best = (_INF, _INF, 0, -1, 0.0)  # (O_EFT, EFT, device, slot, start)
            for d in range(m):
                if not timelines.area_allows(i, d):
                    continue
                ready = model._initial[i][d]  # noqa: SLF001
                for p, trans in model._pred[i]:  # noqa: SLF001
                    r = aft[p] + trans[mapping[p]][d]
                    if r > ready:
                        ready = r
                duration = exec_table[i, d]
                start, slot = timelines.earliest_start(d, ready, duration)
                eft = start + duration
                o_eft = eft + oct_table[i, d]
                if o_eft < best[0] - 1e-15:
                    best = (o_eft, eft, d, slot, start)
            o_eft, eft, d, slot, start = best
            if not np.isfinite(o_eft):  # pragma: no cover - area exhausted
                d, slot = 0, 0
                ready = model._initial[i][0]  # noqa: SLF001
                for p, trans in model._pred[i]:  # noqa: SLF001
                    ready = max(ready, aft[p] + trans[mapping[p]][0])
                start, slot = timelines.earliest_start(0, ready, exec_table[i, 0])
                eft = start + exec_table[i, 0]
            mapping[i] = d
            aft[i] = eft
            scheduled[i] = True
            n_done += 1
            timelines.commit(i, d, slot, start, eft)
            for s in g.successors(tasks[i]):
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(ready_heap, (-rank_oct[index[s]], index[s]))
        if n_done != n:  # pragma: no cover - defensive
            raise RuntimeError("PEFT failed to schedule all tasks")
        return mapping, {"schedule_length": float(aft.max(initial=0.0))}
