"""Decomposition-based task mapping (paper Sec. III — the core contribution).

The general principle (Sec. III-A):

1. start from the all-CPU default mapping;
2. among all (candidate subgraph, device) *moves*, find the one whose
   application most reduces the **fully re-evaluated** model-based makespan;
3. apply it; repeat until no move improves the makespan.

Because every candidate is evaluated with the full cost model, every applied
move is a guaranteed improvement and the algorithm terminates (the makespan
strictly decreases and the evaluation is deterministic).  An iteration cap of
``n`` guards against degenerate inputs (Sec. III-A).

Candidate subgraph sets (``O(n)`` by design):

- ``single_node`` (Sec. III-B): every task alone;
- ``series_parallel`` (Sec. III-C): single nodes plus the operations of the
  series-parallel decomposition forest (Algorithm 1).

Heuristics (Sec. III-D):

- ``basic``: every iteration evaluates every move;
- ``gamma`` / ``first_fit``: after the first full pass each move keeps an
  *expected improvement* in a priority queue.  A round pops moves in
  descending expected order, re-evaluates them, and stops looking ahead once
  the best actual improvement ``b`` satisfies ``expected <= b / gamma`` —
  stale-but-promising moves are recomputed lazily instead of every round.
  ``first_fit`` is the ``gamma = 1`` special case: apply the first actual
  improvement unless some move still *expects* strictly more.  When a round
  finds no improvement, every move has just been recomputed under the final
  mapping (the paper's "last iteration recomputes every possible mapping"),
  so termination is exact, not heuristic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..evaluation.delta import Candidate, DeltaEvaluator
from ..evaluation.evaluator import MappingEvaluator
from ..obs import trace as _trace
from ..sp.subgraphs import series_parallel_candidates, single_node_candidates
from .base import Mapper

__all__ = [
    "DecompositionMapper",
    "single_node",
    "series_parallel",
    "sn_first_fit",
    "sp_first_fit",
]

STRATEGIES = ("single_node", "series_parallel")
HEURISTICS = ("basic", "gamma", "first_fit")


class DecompositionMapper(Mapper):
    """Greedy decomposition-based mapper (see module docstring).

    Parameters
    ----------
    strategy:
        Candidate subgraph set: ``"single_node"`` or ``"series_parallel"``.
    heuristic:
        ``"basic"``, ``"gamma"`` or ``"first_fit"``.
    gamma:
        Look-ahead threshold for the ``"gamma"`` heuristic (>= 1).
    cut_strategy:
        Cut choice for Algorithm 1 (series-parallel strategy only).
    iteration_cap_factor:
        The iteration cap is ``ceil(factor * n_tasks)``.
    """

    def __init__(
        self,
        strategy: str = "series_parallel",
        heuristic: str = "basic",
        *,
        gamma: float = 1.0,
        cut_strategy: str = "random",
        iteration_cap_factor: float = 1.0,
        name: str = "",
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        if heuristic not in HEURISTICS:
            raise ValueError(f"unknown heuristic {heuristic!r}")
        if gamma < 1.0:
            raise ValueError("gamma must be >= 1")
        self.strategy = strategy
        self.heuristic = heuristic
        self.gamma = 1.0 if heuristic == "first_fit" else gamma
        self.cut_strategy = cut_strategy
        self.iteration_cap_factor = iteration_cap_factor
        self.name = name or self._default_name()
        super().__init__()

    def _default_name(self) -> str:
        base = "SeriesParallel" if self.strategy == "series_parallel" else "SingleNode"
        if self.heuristic == "first_fit":
            return ("SP" if base == "SeriesParallel" else "SN") + "FirstFit"
        if self.heuristic == "gamma":
            return base + f"Gamma{self.gamma:g}"
        return base

    # ------------------------------------------------------------------
    def candidate_index_sets(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> List[np.ndarray]:
        """Candidate subgraphs as arrays of task indices."""
        g = evaluator.graph
        if self.strategy == "single_node":
            sets = single_node_candidates(g)
        else:
            sets = series_parallel_candidates(
                g, rng=rng, cut_strategy=self.cut_strategy
            )
        index = evaluator.model.index
        return [
            np.fromiter((index[t] for t in s), dtype=np.int64, count=len(s))
            for s in sets
        ]

    # ------------------------------------------------------------------
    def _objective(self, evaluator: MappingEvaluator, mapping) -> float:
        """Cost minimized by the greedy loop.

        Defaults to the construction (BFS-schedule) makespan; subclasses may
        optimize any other full-evaluation objective (e.g. the weighted
        makespan/energy sum of
        :class:`repro.mappers.multiobjective.EnergyAwareDecompositionMapper`)
        — the principle only requires a deterministic, fully re-evaluated
        cost (Sec. III-A).
        """
        return evaluator.construction_makespan(mapping)

    # ------------------------------------------------------------------
    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        with _trace.span("mapper.decompose", "mapper"):
            subgraphs = self.candidate_index_sets(evaluator, rng)
        n_devices = evaluator.n_devices
        mapping = evaluator.cpu_mapping()
        cap = max(1, int(np.ceil(self.iteration_cap_factor * evaluator.n_tasks)))

        # The incremental (delta) path evaluates moves by re-simulating only
        # the suffix from each move's first affected schedule position —
        # bit-identical results, O(affected suffix) per move.  It applies
        # whenever the objective is the plain construction makespan (the
        # default); subclasses with a custom ``_objective`` (e.g. the
        # energy-aware mapper) fall back to full trial evaluations.
        model = getattr(evaluator, "model", None)
        if type(self)._objective is DecompositionMapper._objective and model is not None:
            with _trace.span("mapper.construct", "mapper"):
                delta = DeltaEvaluator(model)
                prepared = [delta.candidate(sub) for sub in subgraphs]
                dmoves = [
                    (cand, d) for cand in prepared for d in range(n_devices)
                ]
            with _trace.span("mapper.improve", "mapper"):
                if self.heuristic == "basic":
                    mapping, current, iterations = self._run_basic_delta(
                        delta, mapping, dmoves, cap
                    )
                else:
                    mapping, current, iterations = self._run_gamma_delta(
                        delta, mapping, dmoves, cap
                    )
            n_moves = len(dmoves)
        else:
            with _trace.span("mapper.construct", "mapper"):
                moves: List[Tuple[np.ndarray, int]] = [
                    (sub, d) for sub in subgraphs for d in range(n_devices)
                ]
                current = self._objective(evaluator, mapping)
            with _trace.span("mapper.improve", "mapper"):
                if self.heuristic == "basic":
                    mapping, current, iterations = self._run_basic(
                        evaluator, mapping, current, moves, cap
                    )
                else:
                    mapping, current, iterations = self._run_gamma(
                        evaluator, mapping, current, moves, cap
                    )
            n_moves = len(moves)
        stats = {
            "iterations": float(iterations),
            "n_candidates": float(len(subgraphs)),
            "n_moves": float(n_moves),
        }
        return mapping, stats

    # ------------------------------------------------------------------
    def _run_basic_delta(
        self,
        delta: DeltaEvaluator,
        mapping: np.ndarray,
        moves: Sequence[Tuple[Candidate, int]],
        cap: int,
    ) -> Tuple[np.ndarray, float, int]:
        """Basic heuristic on the incremental evaluator.

        Move selection is identical to :meth:`_run_basic`: the evaluator
        returns bit-identical makespans and move order is preserved (the
        tie-break is the first strict improvement in move order).  Each
        move is one suffix evaluation with a bound-abort at the best
        makespan so far — the abort only short-circuits moves that could
        not have been selected anyway (the running makespan is a
        monotone lower bound), so the scan result is exact.
        """
        iterations = 0
        eps = 1e-12
        current = delta.reset(mapping)
        mp = delta.base_list
        evaluate = delta.evaluate_move
        while iterations < cap:
            best_ms = current
            best_move: Optional[Tuple[Candidate, int]] = None
            for cand, d in moves:
                for t in cand.members:
                    if mp[t] != d:
                        break
                else:  # no-op move: already mapped there
                    continue
                ms = evaluate(cand, d, bound=best_ms - eps)
                if ms < best_ms - eps:
                    best_ms = ms
                    best_move = (cand, d)
            if best_move is None:
                break
            delta.apply_move(best_move[0].members, best_move[1])
            current = best_ms
            iterations += 1
        return delta.mapping, current, iterations

    # ------------------------------------------------------------------
    def _run_gamma_delta(
        self,
        delta: DeltaEvaluator,
        mapping: np.ndarray,
        moves: Sequence[Tuple[Candidate, int]],
        cap: int,
    ) -> Tuple[np.ndarray, float, int]:
        """Gamma/FirstFit heuristic on the incremental evaluator.

        Mirrors :meth:`_run_gamma` exactly.  Expectations steer later
        scan orders, so every evaluated move's gain is exact (no
        bound-abort).  The first pass evaluates every move and goes
        through :meth:`DeltaEvaluator.evaluate_moves` (one large batch
        on the pure Python path, plain suffix evaluations with the C
        kernel); the per-round priority scans evaluate only a handful of
        moves before stopping, so they always follow the scan move by
        move.
        """
        eps = 1e-12
        n_moves = len(moves)
        expected = [0.0] * n_moves
        current = delta.reset(mapping)
        mp = delta.base_list

        def pass_gains(indices) -> Dict[int, float]:
            """Exact gains for a set of move indices (no-ops are 0)."""
            items = []
            keys = []
            gains: Dict[int, float] = {}
            for k in indices:
                cand, d = moves[k]
                for t in cand.members:
                    if mp[t] != d:
                        break
                else:
                    gains[k] = 0.0
                    continue
                items.append((cand, d))
                keys.append(k)
            if items:
                for k, ms in zip(keys, delta.evaluate_moves(items)):
                    gains[k] = current - ms
            return gains

        # First pass (Sec. III-D): evaluate every move once.
        gains = pass_gains(range(n_moves))
        best_gain = 0.0
        best_idx = -1
        for k in range(n_moves):
            gain = gains[k]
            expected[k] = gain
            if gain > best_gain + eps:
                best_gain = gain
                best_idx = k
        iterations = 0
        if best_idx < 0:
            return delta.mapping, current, iterations
        cand, d = moves[best_idx]
        delta.apply_move(cand.members, d)
        current -= best_gain
        iterations += 1

        gamma = self.gamma
        evaluate = delta.evaluate_move
        while iterations < cap:
            order = np.argsort(
                -np.asarray(expected), kind="stable"
            ).tolist()
            best_gain = 0.0
            best_idx = -1
            for k in order:
                if best_gain > eps and expected[k] <= best_gain / gamma + eps:
                    break
                cand, d = moves[k]
                for t in cand.members:
                    if mp[t] != d:
                        break
                else:
                    expected[k] = 0.0
                    continue
                gain = current - evaluate(cand, d)
                expected[k] = gain
                if gain > best_gain + eps:
                    best_gain = gain
                    best_idx = k
            if best_idx < 0:
                break
            cand, d = moves[best_idx]
            delta.apply_move(cand.members, d)
            current -= best_gain
            iterations += 1
        return delta.mapping, current, iterations

    # ------------------------------------------------------------------
    def _run_basic(
        self,
        evaluator: MappingEvaluator,
        mapping: np.ndarray,
        current: float,
        moves: Sequence[Tuple[np.ndarray, int]],
        cap: int,
    ) -> Tuple[np.ndarray, float, int]:
        iterations = 0
        eps = 1e-12
        while iterations < cap:
            best_ms = current
            best_move: Optional[Tuple[np.ndarray, int]] = None
            for sub, d in moves:
                if np.all(mapping[sub] == d):
                    continue
                trial = mapping.copy()
                trial[sub] = d
                ms = self._objective(evaluator, trial)
                if ms < best_ms - eps:
                    best_ms = ms
                    best_move = (sub, d)
            if best_move is None:
                break
            mapping[best_move[0]] = best_move[1]
            current = best_ms
            iterations += 1
        return mapping, current, iterations

    # ------------------------------------------------------------------
    def _run_gamma(
        self,
        evaluator: MappingEvaluator,
        mapping: np.ndarray,
        current: float,
        moves: Sequence[Tuple[np.ndarray, int]],
        cap: int,
    ) -> Tuple[np.ndarray, float, int]:
        eps = 1e-12
        n_moves = len(moves)
        expected = [0.0] * n_moves  # expected improvement per move

        def evaluate(k: int) -> float:
            sub, d = moves[k]
            if np.all(mapping[sub] == d):
                return 0.0
            trial = mapping.copy()
            trial[sub] = d
            return current - self._objective(evaluator, trial)

        # First pass (Sec. III-D: expectations are assigned "after the first
        # iteration of the algorithm"): evaluate every move once.
        best_gain = 0.0
        best_idx = -1
        for k in range(n_moves):
            gain = evaluate(k)
            expected[k] = gain
            if gain > best_gain + eps:
                best_gain = gain
                best_idx = k
        iterations = 0
        if best_idx < 0:
            return mapping, current, iterations
        sub, d = moves[best_idx]
        mapping[sub] = d
        current -= best_gain
        iterations += 1

        while iterations < cap:
            # One round: scan moves in descending expected improvement
            # (the paper's priority queue); once an actual improvement b is
            # found, only look ahead while expected > b / gamma.  A round
            # that finds nothing has recomputed *every* move under the final
            # mapping (the paper's exact-termination pass).
            order = sorted(range(n_moves), key=lambda k: -expected[k])
            best_gain = 0.0
            best_idx = -1
            for k in order:
                if best_gain > eps and expected[k] <= best_gain / self.gamma + eps:
                    break
                gain = evaluate(k)
                expected[k] = gain
                if gain > best_gain + eps:
                    best_gain = gain
                    best_idx = k
            if best_idx < 0:
                break
            sub, d = moves[best_idx]
            mapping[sub] = d
            current -= best_gain
            iterations += 1
        return mapping, current, iterations


def single_node(**kwargs) -> DecompositionMapper:
    """The ``SingleNode`` mapper of the paper's evaluation."""
    return DecompositionMapper("single_node", "basic", **kwargs)


def series_parallel(**kwargs) -> DecompositionMapper:
    """The ``SeriesParallel`` mapper of the paper's evaluation."""
    return DecompositionMapper("series_parallel", "basic", **kwargs)


def sn_first_fit(**kwargs) -> DecompositionMapper:
    """The ``SNFirstFit`` mapper (single node + FirstFit heuristic)."""
    return DecompositionMapper("single_node", "first_fit", **kwargs)


def sp_first_fit(**kwargs) -> DecompositionMapper:
    """The ``SPFirstFit`` mapper (series-parallel + FirstFit heuristic)."""
    return DecompositionMapper("series_parallel", "first_fit", **kwargs)
