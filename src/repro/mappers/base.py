"""Mapper interface.

A *mapping* assigns every task (by index into ``graph.tasks()``) a device
(by index into ``platform.devices``), represented as an ``int64`` numpy
array.  Every mapping algorithm in this package derives from
:class:`Mapper` and returns a :class:`MappingResult` carrying the mapping
plus construction statistics (evaluation counts, iterations) used by the
experiment harness.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..evaluation.evaluator import MappingEvaluator
from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = ["Mapper", "MappingResult"]


@dataclass
class MappingResult:
    """Outcome of one mapping run."""

    mapping: np.ndarray
    #: construction (BFS-schedule) makespan of the final mapping
    makespan: float
    #: wall-clock seconds spent inside the mapper
    elapsed_s: float
    #: cost-model evaluations performed by the mapper (full simulations
    #: plus incremental delta evaluations; split in ``stats``)
    n_evaluations: int = 0
    #: algorithm-specific counters (iterations, generations, MILP status ...)
    stats: Dict[str, float] = field(default_factory=dict)


class Mapper(abc.ABC):
    """Base class for static task-mapping algorithms.

    Subclasses implement :meth:`_run`; :meth:`map` adds timing and
    evaluation-count bookkeeping around it.
    """

    #: short name used in experiment tables (defaults to the class name)
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    def map(
        self,
        evaluator: MappingEvaluator,
        rng: Optional[np.random.Generator] = None,
    ) -> MappingResult:
        """Compute a mapping for the evaluator's graph/platform."""
        rng = rng if rng is not None else np.random.default_rng(0)
        evals_before = evaluator.n_evaluations
        sims_before = getattr(evaluator, "n_full_simulations", 0)
        deltas_before = getattr(evaluator, "n_delta_evaluations", 0)
        batched_before = getattr(evaluator, "n_batched_evaluations", 0)
        calls_before = getattr(evaluator, "n_batch_calls", 0)
        equiv_before = getattr(evaluator, "n_equivalent_evaluations", None)
        cache_hits_before = getattr(evaluator, "hits", None)
        cache_misses_before = getattr(evaluator, "misses", 0)
        # wall time feeds only the reported elapsed_s diagnostic,
        # never the mapping itself
        t0 = time.perf_counter()  # repro-lint: disable=DET002
        with _trace.span("mapper.run", "mapper", {"mapper": self.name}
                         if _trace.enabled() else None):
            mapping, stats = self._run(evaluator, rng)
        elapsed = time.perf_counter() - t0  # repro-lint: disable=DET002
        stats.setdefault(
            "n_simulations",
            float(getattr(evaluator, "n_full_simulations", 0) - sims_before),
        )
        stats.setdefault(
            "n_delta_evaluations",
            float(getattr(evaluator, "n_delta_evaluations", 0) - deltas_before),
        )
        n_batched = getattr(evaluator, "n_batched_evaluations", 0) - batched_before
        n_calls = getattr(evaluator, "n_batch_calls", 0) - calls_before
        stats.setdefault("n_batched_evaluations", float(n_batched))
        stats.setdefault(
            "batch_size_mean",
            float(n_batched) / n_calls if n_calls > 0 else 0.0,
        )
        if equiv_before is not None:
            stats.setdefault(
                "n_equivalent_evaluations",
                float(evaluator.n_equivalent_evaluations - equiv_before),
            )
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (evaluator.n_tasks,):
            raise ValueError(
                f"{self.name}: mapping has shape {mapping.shape}, "
                f"expected ({evaluator.n_tasks},)"
            )
        if mapping.min() < 0 or mapping.max() >= evaluator.n_devices:
            raise ValueError(f"{self.name}: device index out of range")
        result = MappingResult(
            mapping=mapping,
            makespan=evaluator.construction_makespan(mapping),
            elapsed_s=elapsed,
            n_evaluations=evaluator.n_evaluations - evals_before,
            stats=stats,
        )
        registry = _metrics.get_registry()
        if registry is not None:
            # Absorb this run's ad-hoc counters into the registry.
            # Write-only: nothing here feeds back into any algorithm.
            registry.counter("mapper.runs").inc()
            registry.counter("mapper.n_evaluations").inc(result.n_evaluations)
            for key in ("n_simulations", "n_delta_evaluations",
                        "n_batched_evaluations", "n_equivalent_evaluations"):
                if key in stats:
                    registry.counter(f"mapper.{key}").inc(stats[key])
            if stats.get("batch_size_mean"):
                registry.gauge("mapper.batch_size_mean").set(
                    stats["batch_size_mean"]
                )
            if cache_hits_before is not None:
                registry.counter("mapper.cache_hits").inc(
                    evaluator.hits - cache_hits_before
                )
                registry.counter("mapper.cache_misses").inc(
                    evaluator.misses - cache_misses_before
                )
            registry.histogram("mapper.elapsed_s").observe(result.elapsed_s)
            registry.histogram("mapper.makespan").observe(result.makespan)
        return result

    @abc.abstractmethod
    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> tuple:
        """Return ``(mapping, stats_dict)``."""
