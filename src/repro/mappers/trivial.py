"""Trivial reference mappers: all-on-one-device and random.

Not part of the paper's comparison, but useful as sanity baselines in tests
and examples (the pure-CPU mapper *is* the improvement baseline of Sec. IV-A).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..evaluation.evaluator import MappingEvaluator
from .base import Mapper

__all__ = ["AllOnDeviceMapper", "RandomMapper", "BestRandomMapper"]


class AllOnDeviceMapper(Mapper):
    """Map every task to one fixed device (device 0 = the CPU baseline)."""

    def __init__(self, device: int = 0) -> None:
        self.device = device
        self.name = f"AllOn{device}"
        super().__init__()

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        if not 0 <= self.device < evaluator.n_devices:
            raise ValueError(f"no device {self.device}")
        mapping = np.full(evaluator.n_tasks, self.device, dtype=np.int64)
        if not evaluator.is_feasible(mapping):
            mapping[:] = evaluator.platform.host_index
        return mapping, {}


class RandomMapper(Mapper):
    """A single uniformly random feasible mapping."""

    name = "Random"

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        for _ in range(100):
            mapping = rng.integers(
                0, evaluator.n_devices, size=evaluator.n_tasks, dtype=np.int64
            )
            if evaluator.is_feasible(mapping):
                return mapping, {}
        return evaluator.cpu_mapping(), {"fallback": 1.0}


class BestRandomMapper(Mapper):
    """Best of ``k`` random feasible mappings (cheap search baseline)."""

    def __init__(self, k: int = 100) -> None:
        self.k = k
        self.name = f"BestRandom{k}"
        super().__init__()

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        best = evaluator.cpu_mapping()
        best_ms = evaluator.construction_makespan(best)
        for _ in range(self.k):
            mapping = rng.integers(
                0, evaluator.n_devices, size=evaluator.n_tasks, dtype=np.int64
            )
            ms = evaluator.construction_makespan(mapping)
            if ms < best_ms:
                best, best_ms = mapping, ms
        return best, {"best_makespan": best_ms}
