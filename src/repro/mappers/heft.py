"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al. [6]).

The classic list-scheduling baseline of the paper's evaluation:

1. *upward ranks*: ``rank_u(t) = w_mean(t) + max_succ(c_mean(t,s) +
   rank_u(s))`` where ``w_mean`` is the device-averaged execution time and
   ``c_mean`` the device-pair-averaged transfer time;
2. tasks are scheduled in decreasing ``rank_u`` order, each on the device
   minimizing its earliest finish time (EFT) with *insertion-based* slot
   scheduling.

Device timelines honour the platform's concurrency model: each slot of a
serializing device is a separate timeline; the FPGA does not queue at all but
its remaining area is tracked — a placement that would overflow the area gets
``EFT = inf``.  Per the paper's critique, HEFT has no notion of dataflow
streaming: it sees only the same-device-transfer-is-free effect.  The final
*mapping* (not HEFT's internal schedule) is evaluated by the shared cost
model, exactly as in the paper's model-based comparison.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..evaluation.costmodel import AREA_TOL
from ..evaluation.evaluator import MappingEvaluator
from .base import Mapper

__all__ = ["HeftMapper", "DeviceTimelines", "mean_exec", "mean_comm"]

_INF = float("inf")


class DeviceTimelines:
    """Insertion-based timelines for all devices of a platform.

    Serializing devices expose one timeline per slot; non-serializing
    (FPGA-like) devices accept any start time but consume area.
    """

    def __init__(self, evaluator: MappingEvaluator) -> None:
        platform = evaluator.platform
        self._slots: List[Optional[List[List[Tuple[float, float]]]]] = []
        for dev in platform.devices:
            if dev.serializes:
                self._slots.append([[] for _ in range(dev.slots)])
            else:
                self._slots.append(None)
        self._area_left: Dict[int, float] = dict(platform.area_capacities())
        model = evaluator.model
        self._task_area = model._area  # noqa: SLF001 - package-internal
        self.exec_table = model.exec_table

    # ------------------------------------------------------------------
    def area_allows(self, task_idx: int, device: int) -> bool:
        if device not in self._area_left:
            return True
        return self._task_area[task_idx] <= self._area_left[device] + AREA_TOL

    def earliest_start(self, device: int, ready: float, duration: float) -> Tuple[float, int]:
        """Earliest start >= ready on ``device``; returns (start, slot)."""
        slots = self._slots[device]
        if slots is None:
            return ready, -1
        best_start = _INF
        best_slot = 0
        for j, intervals in enumerate(slots):
            st = self._earliest_gap(intervals, ready, duration)
            if st < best_start:
                best_start = st
                best_slot = j
        return best_start, best_slot

    @staticmethod
    def _earliest_gap(
        intervals: List[Tuple[float, float]], ready: float, duration: float
    ) -> float:
        """Earliest feasible start in a sorted busy-interval list (insertion)."""
        t = ready
        for s, f in intervals:
            if s - t >= duration:
                return t
            if f > t:
                t = f
        return t

    def commit(
        self, task_idx: int, device: int, slot: int, start: float, finish: float
    ) -> None:
        slots = self._slots[device]
        if slots is not None:
            intervals = slots[slot]
            bisect.insort(intervals, (start, finish))
        if device in self._area_left:
            self._area_left[device] -= self._task_area[task_idx]

    def clone(self) -> "DeviceTimelines":
        """Cheap copy for tentative scheduling (lookahead): copies only the
        mutable timeline/area state, shares the read-only tables."""
        other = object.__new__(DeviceTimelines)
        other._slots = [
            None if s is None else [list(iv) for iv in s] for s in self._slots
        ]
        other._area_left = dict(self._area_left)
        other._task_area = self._task_area
        other.exec_table = self.exec_table
        return other


def mean_exec(evaluator: MappingEvaluator) -> np.ndarray:
    """Device-averaged execution time per task (HEFT's ``w_mean``)."""
    return evaluator.model.exec_table.mean(axis=1)


def mean_comm(evaluator: MappingEvaluator) -> Dict[Tuple[int, int], float]:
    """Pair-averaged transfer time per edge (HEFT's ``c_mean``).

    Average over all *distinct* device pairs, as in the HEFT paper (the
    same-device case is free and excluded from the average).
    """
    model = evaluator.model
    m = model.m
    out: Dict[Tuple[int, int], float] = {}
    n_pairs = m * (m - 1)
    for i in range(model.n):
        for p, trans in model._pred[i]:  # noqa: SLF001
            if n_pairs == 0:
                out[(p, i)] = 0.0
                continue
            total = 0.0
            for du in range(m):
                for dv in range(m):
                    if du != dv:
                        total += trans[du][dv]
            out[(p, i)] = total / n_pairs
    return out


def upward_ranks(evaluator: MappingEvaluator) -> np.ndarray:
    """HEFT upward ranks over mean execution and communication costs."""
    model = evaluator.model
    w = mean_exec(evaluator)
    c = mean_comm(evaluator)
    g = evaluator.graph
    index = model.index
    rank = np.zeros(model.n)
    for t in reversed(g.topological_order()):
        i = index[t]
        best = 0.0
        for s in g.successors(t):
            j = index[s]
            val = c[(i, j)] + rank[j]
            if val > best:
                best = val
        rank[i] = w[i] + best
    return rank


class HeftMapper(Mapper):
    """HEFT list scheduler used as a mapping algorithm."""

    name = "HEFT"

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        model = evaluator.model
        n, m = model.n, model.m
        rank = upward_ranks(evaluator)
        # Decreasing rank_u is a topological order (rank(parent) > rank(child)
        # whenever mean costs are positive); stable tie-break on index.
        order = sorted(range(n), key=lambda i: (-rank[i], i))

        timelines = DeviceTimelines(evaluator)
        exec_table = model.exec_table
        mapping = np.zeros(n, dtype=np.int64)
        aft = np.zeros(n)

        for i in order:
            best = (_INF, _INF, 0, -1, 0.0)  # (EFT, EST, device, slot, start)
            for d in range(m):
                if not timelines.area_allows(i, d):
                    continue
                ready = model._initial[i][d]  # noqa: SLF001
                for p, trans in model._pred[i]:  # noqa: SLF001
                    r = aft[p] + trans[mapping[p]][d]
                    if r > ready:
                        ready = r
                duration = exec_table[i, d]
                start, slot = timelines.earliest_start(d, ready, duration)
                eft = start + duration
                if eft < best[0] - 1e-15:
                    best = (eft, start, d, slot, start)
            eft, _, d, slot, start = best
            if not np.isfinite(eft):  # pragma: no cover - area exhausted
                d, slot = 0, 0
                ready = model._initial[i][0]  # noqa: SLF001
                for p, trans in model._pred[i]:  # noqa: SLF001
                    ready = max(ready, aft[p] + trans[mapping[p]][0])
                start, slot = timelines.earliest_start(0, ready, exec_table[i, 0])
                eft = start + exec_table[i, 0]
            mapping[i] = d
            aft[i] = eft
            timelines.commit(i, d, slot, start, eft)
        return mapping, {"schedule_length": float(aft.max(initial=0.0))}
