"""Lookahead HEFT (Bittencourt, Sakellariou & Madeira [7]).

The paper cites lookahead variants as the standard attempt to fix HEFT's
"mostly local view": when choosing a device for task ``t``, tentatively
commit each candidate device, then schedule ``t``'s *children* with plain
EFT and pick the device minimizing the maximum child EFT instead of ``t``'s
own EFT.  One level of lookahead multiplies HEFT's cost by roughly
``m * avg_out_degree`` but can dodge decisions that strangle the next layer.

Included as an extension baseline (not part of the paper's evaluation
roster) — the ablation benchmark compares it against HEFT and the
decomposition mappers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..evaluation.evaluator import MappingEvaluator
from .base import Mapper
from .heft import DeviceTimelines, upward_ranks

__all__ = ["LookaheadHeftMapper"]

_INF = float("inf")


class LookaheadHeftMapper(Mapper):
    """HEFT with one level of child lookahead (see module docstring)."""

    name = "LAHEFT"

    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        model = evaluator.model
        g = evaluator.graph
        index = model.index
        tasks = model.tasks
        n, m = model.n, model.m
        exec_table = model.exec_table
        rank = upward_ranks(evaluator)
        order = sorted(range(n), key=lambda i: (-rank[i], i))

        timelines = DeviceTimelines(evaluator)
        mapping = np.zeros(n, dtype=np.int64)
        aft = np.zeros(n)

        def eft_on(i: int, d: int, tl: DeviceTimelines, aft_arr) -> Tuple[float, int, float]:
            if not tl.area_allows(i, d):
                return _INF, -1, _INF
            ready = model._initial[i][d]  # noqa: SLF001
            for p, trans in model._pred[i]:  # noqa: SLF001
                r = aft_arr[p] + trans[mapping[p]][d]
                if r > ready:
                    ready = r
            duration = exec_table[i, d]
            start, slot = tl.earliest_start(d, ready, duration)
            return start + duration, slot, start

        for i in order:
            children = [index[s] for s in g.successors(tasks[i])]
            best = (_INF, _INF, 0, -1, 0.0)  # (score, eft, device, slot, start)
            for d in range(m):
                eft, slot, start = eft_on(i, d, timelines, aft)
                if not np.isfinite(eft):
                    continue
                if children:
                    # tentative commit, then greedy-EFT the children
                    trial_tl = timelines.clone()
                    trial_tl.commit(i, d, slot, start, eft)
                    trial_aft = aft.copy()
                    trial_aft[i] = eft
                    mapping[i] = d
                    score = eft
                    for c in sorted(children, key=lambda j: (-rank[j], j)):
                        c_best = _INF
                        c_pick = None
                        for dc in range(m):
                            c_eft, c_slot, c_start = eft_on(
                                c, dc, trial_tl, trial_aft
                            )
                            if c_eft < c_best:
                                c_best = c_eft
                                c_pick = (dc, c_slot, c_start)
                        if c_pick is None:
                            score = _INF
                            break
                        trial_tl.commit(c, c_pick[0], c_pick[1], c_pick[2], c_best)
                        trial_aft[c] = c_best
                        score = max(score, c_best)
                else:
                    score = eft
                if score < best[0] - 1e-15:
                    best = (score, eft, d, slot, start)
            score, eft, d, slot, start = best
            if not np.isfinite(score):  # pragma: no cover - area exhausted
                d = 0
                eft, slot, start = eft_on(i, 0, timelines, aft)
            mapping[i] = d
            aft[i] = eft
            timelines.commit(i, d, slot, start, eft)
        return mapping, {"schedule_length": float(aft.max(initial=0.0))}
