"""Static task-mapping algorithms.

The paper's own contribution (decomposition mappers) plus every baseline of
the evaluation: HEFT, PEFT, single-objective NSGA-II and three MILPs.
"""

from .base import Mapper, MappingResult
from .cpop import CpopMapper
from .decomposition import (
    DecompositionMapper,
    series_parallel,
    single_node,
    sn_first_fit,
    sp_first_fit,
)
from .annealing import SimulatedAnnealingMapper
from .genetic import NsgaIIMapper
from .heft import HeftMapper
from .lookahead import LookaheadHeftMapper
from .milp import WgdpDeviceMapper, WgdpTimeMapper, ZhouLiuMapper
from .minmin import MaxMinMapper, MinMinMapper
from .multiobjective import EnergyAwareDecompositionMapper, ParetoNsgaIIMapper
from .peft import PeftMapper
from .tabu import TabuSearchMapper
from .trivial import AllOnDeviceMapper, BestRandomMapper, RandomMapper

__all__ = [
    "Mapper",
    "MappingResult",
    "CpopMapper",
    "MaxMinMapper",
    "MinMinMapper",
    "TabuSearchMapper",
    "DecompositionMapper",
    "series_parallel",
    "single_node",
    "sn_first_fit",
    "sp_first_fit",
    "NsgaIIMapper",
    "SimulatedAnnealingMapper",
    "LookaheadHeftMapper",
    "HeftMapper",
    "WgdpDeviceMapper",
    "WgdpTimeMapper",
    "ZhouLiuMapper",
    "EnergyAwareDecompositionMapper",
    "ParetoNsgaIIMapper",
    "PeftMapper",
    "AllOnDeviceMapper",
    "BestRandomMapper",
    "RandomMapper",
]
