"""Single-objective NSGA-II genetic mapper (paper Sec. IV-A, ``NSGAII``).

The paper uses "a single objective variant of the NSGA-II algorithm [14]"
with:

- a genome holding one gene (device index) per task, in topologically
  sorted task order;
- single-point crossover with 90 % crossover rate;
- per-gene mutation rate ``1/n``;
- a population of 100 individuals;
- a repair function after variation to keep mappings feasible (FPGA area);
- 500 generations unless stated otherwise;
- the *same model-based evaluation function* as the decomposition mappers
  ("in order to ensure fairness").

With a single objective, NSGA-II's non-dominated sorting degenerates to
sorting by fitness, so the algorithm is the classic elitist (mu + lambda)
GA with binary tournament selection.  The all-CPU individual is seeded into
the initial population, so the final result never loses to the baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..evaluation.evaluator import MappingEvaluator
from .base import Mapper

__all__ = ["NsgaIIMapper"]


class NsgaIIMapper(Mapper):
    """Single-objective NSGA-II (see module docstring)."""

    name = "NSGAII"

    def __init__(
        self,
        *,
        generations: int = 500,
        population_size: int = 100,
        crossover_rate: float = 0.9,
        mutation_rate: Optional[float] = None,
        seed_cpu_individual: bool = True,
    ) -> None:
        if generations < 1 or population_size < 2:
            raise ValueError("need at least 1 generation and 2 individuals")
        self.generations = generations
        self.population_size = population_size
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.seed_cpu_individual = seed_cpu_individual
        super().__init__()

    # ------------------------------------------------------------------
    def _repair(self, pop: np.ndarray, evaluator: MappingEvaluator,
                rng: np.random.Generator) -> None:
        """Move tasks off over-committed area devices until feasible (in place)."""
        model = evaluator.model
        area = model._area  # noqa: SLF001 - package-internal
        host = evaluator.platform.host_index
        for d, capacity in evaluator.platform.area_capacities().items():
            usage = (pop == d) @ area
            for r in np.nonzero(usage > capacity)[0]:
                genome = pop[r]
                on_dev = np.nonzero(genome == d)[0]
                order = rng.permutation(on_dev)
                used = float(area[on_dev].sum())
                for g in order:
                    if used <= capacity:
                        break
                    genome[g] = host
                    used -= area[g]

    # ------------------------------------------------------------------
    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        n = evaluator.n_tasks
        m = evaluator.n_devices
        pop_size = self.population_size
        p_mut = self.mutation_rate if self.mutation_rate is not None else 1.0 / n

        pop = rng.integers(0, m, size=(pop_size, n), dtype=np.int64)
        if self.seed_cpu_individual:
            pop[0] = evaluator.platform.host_index
        self._repair(pop, evaluator, rng)
        fitness = np.array(
            [evaluator.construction_makespan(ind) for ind in pop]
        )

        for _ in range(self.generations):
            # binary tournament selection of parents
            a = rng.integers(0, pop_size, size=pop_size)
            b = rng.integers(0, pop_size, size=pop_size)
            parents = np.where(fitness[a] <= fitness[b], a, b)

            children = pop[parents].copy()
            # single-point crossover on consecutive parent pairs
            for i in range(0, pop_size - 1, 2):
                if rng.random() < self.crossover_rate and n > 1:
                    cut = int(rng.integers(1, n))
                    tail = children[i, cut:].copy()
                    children[i, cut:] = children[i + 1, cut:]
                    children[i + 1, cut:] = tail
            # per-gene mutation
            mask = rng.random(size=children.shape) < p_mut
            if mask.any():
                children[mask] = rng.integers(0, m, size=int(mask.sum()))
            self._repair(children, evaluator, rng)

            child_fitness = np.array(
                [evaluator.construction_makespan(ind) for ind in children]
            )
            # (mu + lambda) elitism == single-objective NSGA-II survival
            combined = np.vstack([pop, children])
            combined_fit = np.concatenate([fitness, child_fitness])
            keep = np.argsort(combined_fit, kind="stable")[:pop_size]
            pop = combined[keep]
            fitness = combined_fit[keep]

        best = int(np.argmin(fitness))
        stats = {
            "generations": float(self.generations),
            "best_makespan": float(fitness[best]),
        }
        return pop[best].copy(), stats
