"""Single-objective NSGA-II genetic mapper (paper Sec. IV-A, ``NSGAII``).

The paper uses "a single objective variant of the NSGA-II algorithm [14]"
with:

- a genome holding one gene (device index) per task, in topologically
  sorted task order;
- single-point crossover with 90 % crossover rate;
- per-gene mutation rate ``1/n``;
- a population of 100 individuals;
- a repair function after variation to keep mappings feasible (FPGA area);
- 500 generations unless stated otherwise;
- the *same model-based evaluation function* as the decomposition mappers
  ("in order to ensure fairness").

With a single objective, NSGA-II's non-dominated sorting degenerates to
sorting by fitness, so the algorithm is the classic elitist (mu + lambda)
GA with binary tournament selection.  The all-CPU individual is seeded into
the initial population, so the final result never loses to the baseline.

Fitness is evaluated through the population batch entry
(:meth:`~repro.evaluation.evaluator.MappingEvaluator.construction_makespans`):
one call per generation scores the whole offspring block, with identical
genomes deduplicated and simulated once.  ``batch_eval=False`` selects the
legacy per-genome scalar loop — both paths produce bit-identical fitness
values, hence bit-identical seeded trajectories (same rng draws, same
survivors, same final mapping; pinned by ``tests/test_batch_population.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..evaluation.evaluator import MappingEvaluator
from .base import Mapper

__all__ = ["NsgaIIMapper", "single_point_crossover"]


def single_point_crossover(
    children: np.ndarray, rng: np.random.Generator, crossover_rate: float
) -> None:
    """Single-point crossover on consecutive pairs (in place).

    Shared by :class:`NsgaIIMapper` and
    :class:`~repro.mappers.multiobjective.ParetoNsgaIIMapper`.  The rng
    draws happen pair by pair in the classic loop order (one
    ``random()`` per pair, one ``integers(1, n)`` per crossover), so the
    stream — and hence every seeded trajectory — is unchanged; only the
    tail swaps are applied in one vectorized pass instead of three numpy
    slice copies per pair.
    """
    pop_size, n = children.shape
    rows: List[int] = []
    cuts: List[int] = []
    for i in range(0, pop_size - 1, 2):
        if rng.random() < crossover_rate and n > 1:
            rows.append(i)
            cuts.append(int(rng.integers(1, n)))
    if not rows:
        return
    idx = np.asarray(rows)
    tail = np.arange(n) >= np.asarray(cuts)[:, None]
    a = children[idx]
    b = children[idx + 1]
    children[idx] = np.where(tail, b, a)
    children[idx + 1] = np.where(tail, a, b)


class NsgaIIMapper(Mapper):
    """Single-objective NSGA-II (see module docstring)."""

    name = "NSGAII"

    def __init__(
        self,
        *,
        generations: int = 500,
        population_size: int = 100,
        crossover_rate: float = 0.9,
        mutation_rate: Optional[float] = None,
        seed_cpu_individual: bool = True,
        batch_eval: bool = True,
    ) -> None:
        if generations < 1 or population_size < 2:
            raise ValueError("need at least 1 generation and 2 individuals")
        self.generations = generations
        self.population_size = population_size
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.seed_cpu_individual = seed_cpu_individual
        self.batch_eval = batch_eval
        #: best construction makespan after each generation (last run)
        self.history_: List[float] = []
        self._batched = None
        super().__init__()

    # ------------------------------------------------------------------
    def _fitness(self, evaluator: MappingEvaluator, pop: np.ndarray) -> np.ndarray:
        if self._batched is not None:
            return self._batched(pop)
        return np.array(
            [evaluator.construction_makespan(ind) for ind in pop]
        )

    def _repair(self, pop: np.ndarray, area: np.ndarray, host: int,
                capacities: Sequence[Tuple[int, float]],
                rng: np.random.Generator) -> None:
        """Move tasks off over-committed area devices until feasible (in place)."""
        for d, capacity in capacities:
            usage = (pop == d) @ area
            for r in np.nonzero(usage > capacity)[0]:
                genome = pop[r]
                on_dev = np.nonzero(genome == d)[0]
                order = rng.permutation(on_dev)
                used = float(area[on_dev].sum())
                for g in order:
                    if used <= capacity:
                        break
                    genome[g] = host
                    used -= area[g]

    # ------------------------------------------------------------------
    def _run(
        self, evaluator: MappingEvaluator, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        n = evaluator.n_tasks
        m = evaluator.n_devices
        pop_size = self.population_size
        p_mut = self.mutation_rate if self.mutation_rate is not None else 1.0 / n
        area = evaluator.model._area  # noqa: SLF001 - package-internal
        host = evaluator.platform.host_index
        capacities = list(evaluator.platform.area_capacities().items())
        self._batched = (
            getattr(evaluator, "construction_makespans", None)
            if self.batch_eval
            else None
        )

        pop = rng.integers(0, m, size=(pop_size, n), dtype=np.int64)
        if self.seed_cpu_individual:
            pop[0] = host
        self._repair(pop, area, host, capacities, rng)
        fitness = self._fitness(evaluator, pop)
        history: List[float] = []

        for _ in range(self.generations):
            # binary tournament selection of parents
            a = rng.integers(0, pop_size, size=pop_size)
            b = rng.integers(0, pop_size, size=pop_size)
            parents = np.where(fitness[a] <= fitness[b], a, b)

            children = pop[parents]
            single_point_crossover(children, rng, self.crossover_rate)
            # per-gene mutation
            mask = rng.random(size=children.shape) < p_mut
            if mask.any():
                children[mask] = rng.integers(0, m, size=int(mask.sum()))
            self._repair(children, area, host, capacities, rng)

            child_fitness = self._fitness(evaluator, children)
            # (mu + lambda) elitism == single-objective NSGA-II survival
            combined = np.concatenate([pop, children])
            combined_fit = np.concatenate([fitness, child_fitness])
            keep = np.argsort(combined_fit, kind="stable")[:pop_size]
            pop = combined[keep]
            fitness = combined_fit[keep]
            history.append(float(fitness[0]))

        self.history_ = history
        self._batched = None  # don't pin the evaluator past the run
        best = int(np.argmin(fitness))
        stats = {
            "generations": float(self.generations),
            "best_makespan": float(fitness[best]),
        }
        return pop[best].copy(), stats
