"""Typed event records emitted by the runtime engine.

Every observable state change of a simulation — a job arriving, a task
moving through the released → ready → running → done state machine, a
scenario striking a device, a job completing — is logged as one immutable
record.  The log is the ground truth a robustness experiment inspects: it
is strictly ordered by ``(time, insertion)`` and is deterministic for a
fixed seed, which the reproducibility tests rely on.

The records are *observations*, not the engine's internal scheduling
events; the engine keeps its own heap of realization entries and only
materializes these dataclasses when something actually happens.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Event",
    "JobArrived",
    "TaskReady",
    "TaskStarted",
    "TaskFinished",
    "TaskKilled",
    "TaskRemapped",
    "AreaWait",
    "LinkWait",
    "DeviceSlowed",
    "DeviceFailed",
    "FallbackDead",
    "JobCompleted",
]


@dataclass(frozen=True)
class Event:
    """Base record: simulation time (seconds) at which the event occurred."""

    time: float

    @property
    def kind(self) -> str:
        """Short lowercase tag (``task-started``, ``device-failed``, ...)."""
        name = type(self).__name__
        out = [name[0].lower()]
        for c in name[1:]:
            out.append(f"-{c.lower()}" if c.isupper() else c)
        return "".join(out)


@dataclass(frozen=True)
class JobArrived(Event):
    """A job (graph + mapping) was submitted to the engine."""

    job: str


@dataclass(frozen=True)
class TaskReady(Event):
    """All input data of a task is available on its device."""

    job: str
    task: int
    device: int


@dataclass(frozen=True)
class TaskStarted(Event):
    """A task began executing (``slot`` is -1 on non-serializing devices)."""

    job: str
    task: int
    device: int
    slot: int


@dataclass(frozen=True)
class TaskFinished(Event):
    """A task completed execution on its device."""

    job: str
    task: int
    device: int


@dataclass(frozen=True)
class TaskKilled(Event):
    """A running task was killed by a device failure (it will re-execute)."""

    job: str
    task: int
    device: int


@dataclass(frozen=True)
class TaskRemapped(Event):
    """An unfinished task was moved off a failed device."""

    job: str
    task: int
    from_device: int
    to_device: int


@dataclass(frozen=True)
class AreaWait(Event):
    """A task's start was delayed by the cross-job FPGA area ledger.

    Emitted just before the task's :class:`TaskStarted` record: in-flight
    tasks of *other* jobs held enough of ``device``'s reconfigurable area
    that co-residency would have oversubscribed the budget, so the task
    waited ``waited`` seconds for area to free up.  The trace aggregates
    these in ``RuntimeTrace.area_wait_time`` / ``n_area_waits``.
    """

    job: str
    task: int
    device: int
    waited: float


@dataclass(frozen=True)
class LinkWait(Event):
    """A task's input transfers queued for a busy interconnect slot.

    Emitted just before the task's :class:`TaskStarted` record when the
    platform bounds concurrent transfers (``link_slots`` or per-link
    ``slots`` on a topology-aware platform) and at least one of the
    task's input transfers (predecessor edges or the initial
    host→device staging) had to wait ``waited`` seconds in total for a
    free slot.  ``link`` identifies the blocking resource: the index
    into ``platform.links`` whose queue contributed the longest wait on
    a topology-aware platform, or ``-1`` for the legacy single shared
    pool.  Sink-side result transfers also queue but are aggregated
    directly into ``RuntimeTrace.link_wait_time`` (the task has already
    finished when they run, so there is no task record to attach to).
    """

    job: str
    task: int
    waited: float
    link: int = -1


@dataclass(frozen=True)
class DeviceSlowed(Event):
    """A device's execution times were scaled by ``factor`` from now on."""

    device: int
    factor: float


@dataclass(frozen=True)
class DeviceFailed(Event):
    """A device dropped out; unfinished work moves to a fallback device."""

    device: int


@dataclass(frozen=True)
class FallbackDead(Event):
    """A failure's designated fallback device was itself already dead.

    Stranded work is rescued by the area-aware remapping path instead;
    the trace counts these in ``RuntimeTrace.n_fallback_dead``.
    """

    fallback: int
    failed: int


@dataclass(frozen=True)
class JobCompleted(Event):
    """All tasks of a job finished and its results returned to the host."""

    job: str
    makespan: float
