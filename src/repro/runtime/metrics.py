"""Robustness and throughput metrics over engine traces.

A static mapping's *model* makespan is one number; under stochastic
runtimes it becomes a distribution.  :func:`replicate` samples that
distribution (N independently-seeded engine runs) and
:func:`robustness_report` condenses it into the quantities the robustness
experiments rank mappers by:

- **expected makespan** and its spread (std, best/worst, p50/p95),
- **degradation** — expected / analytic − 1, how much the cost model's
  promise erodes under noise (0 for a perfectly robust mapping),
- **p95 degradation** — the tail a latency SLO would care about.

For arrival streams, :func:`throughput_report` summarizes a multi-job
trace: served jobs per second over the busy horizon plus the latency
distribution (arrival → results-on-host), the serving view of a mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..evaluation.costmodel import CostModel
from ..graphs.taskgraph import TaskGraph
from ..platform.platform import Platform
from .engine import RuntimeEngine, RuntimeTrace
from .replan import ReplanPolicy
from .scenarios import Job, Scenario
from .stochastic import PerturbationModel

__all__ = [
    "RobustnessReport",
    "ThroughputReport",
    "analytic_makespan",
    "replicate",
    "robustness_report",
    "throughput_report",
]


@dataclass(frozen=True)
class RobustnessReport:
    """Distribution summary of one mapping's makespan under perturbation."""

    n: int
    analytic: float        # CostModel.simulate() makespan (the model's claim)
    mean: float
    std: float
    best: float
    p50: float
    p95: float
    worst: float

    @property
    def degradation(self) -> float:
        """Expected makespan relative to the analytic model (0 = robust)."""
        return self.mean / self.analytic - 1.0 if self.analytic > 0 else 0.0

    @property
    def p95_degradation(self) -> float:
        return self.p95 / self.analytic - 1.0 if self.analytic > 0 else 0.0

    def __str__(self) -> str:
        return (
            f"n={self.n} analytic={self.analytic * 1e3:.2f}ms "
            f"mean={self.mean * 1e3:.2f}ms (+{self.degradation:.1%}) "
            f"p95={self.p95 * 1e3:.2f}ms (+{self.p95_degradation:.1%})"
        )


@dataclass(frozen=True)
class ThroughputReport:
    """Serving summary of a multi-job (arrival stream) trace.

    Besides the classic serving quantities it carries the shared-resource
    accounting of the underlying :class:`RuntimeTrace`: total energy at
    the :mod:`repro.evaluation.energy` rates, per-job energy, and the
    seconds jobs spent waiting on the cross-job FPGA area ledger and on
    busy link slots — the costs the per-job analytic model cannot see.
    """

    n_jobs: int
    horizon: float             # first arrival -> last completion (s)
    jobs_per_second: float
    latency_mean: float        # arrival -> results-on-host (s)
    latency_p95: float
    latency_worst: float
    energy_j: float = 0.0          # total energy of the trace (J)
    energy_per_job_j: float = 0.0
    area_wait_s: float = 0.0       # summed cross-job FPGA area waiting
    link_wait_s: float = 0.0       # summed link-slot queueing

    def __str__(self) -> str:
        return (
            f"{self.n_jobs} jobs in {self.horizon * 1e3:.1f}ms "
            f"({self.jobs_per_second:.2f} jobs/s), latency "
            f"mean {self.latency_mean * 1e3:.1f}ms / "
            f"p95 {self.latency_p95 * 1e3:.1f}ms, "
            f"{self.energy_per_job_j:.1f} J/job"
        )


def replicate(
    graph: TaskGraph,
    platform: Platform,
    mapping: Sequence[int],
    *,
    n: int,
    noise: PerturbationModel,
    scenarios: Sequence[Scenario] = (),
    order: Optional[Sequence[int]] = None,
    seed: Union[int, np.random.SeedSequence] = 0,
    replan_policy: Union[None, str, ReplanPolicy] = None,
    link_slots: Optional[int] = None,
    slowdown_replan_threshold: float = 2.0,
) -> List[RuntimeTrace]:
    """Run ``n`` independently-seeded replications of one static mapping.

    Seeds are spawned from a root :class:`numpy.random.SeedSequence`, the
    same scheme the experiment runner uses, so replication ``k`` of a
    configuration is reproducible in isolation.  Children are derived
    *statelessly* (``spawn_key + (2**32 + k,)``), so the call never
    mutates the root: passing the same root twice — or sharing it across
    the cells of a paired experiment, possibly in different worker
    processes — always replays the same ``n`` draws.  The ``2**32``
    offset keeps the keys out of the space ``SeedSequence.spawn`` uses
    (numpy's documented convention), so replication streams can never
    collide with children a caller spawns from the same root.
    """
    if n < 1:
        raise ValueError("need at least one replication")
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    engine = RuntimeEngine(
        platform, noise=noise, scenarios=scenarios,
        replan_policy=replan_policy, link_slots=link_slots,
        slowdown_replan_threshold=slowdown_replan_threshold,
    )
    traces = []
    for k in range(n):
        child = np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=tuple(root.spawn_key) + (2**32 + k,),
            pool_size=root.pool_size,
        )
        job = Job(graph, mapping, order=order)
        traces.append(engine.run(job, rng=np.random.default_rng(child)))
    return traces


def robustness_report(
    traces_or_makespans: Union[Sequence[RuntimeTrace], Sequence[float]],
    analytic: float,
) -> RobustnessReport:
    """Condense replication makespans into a :class:`RobustnessReport`."""
    values = [
        t.makespan if isinstance(t, RuntimeTrace) else float(t)
        for t in traces_or_makespans
    ]
    if not values:
        raise ValueError("need at least one makespan sample")
    arr = np.asarray(values, dtype=float)
    return RobustnessReport(
        n=int(arr.size),
        analytic=float(analytic),
        mean=float(arr.mean()),
        std=float(arr.std()),
        best=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        worst=float(arr.max()),
    )


def analytic_makespan(
    graph: TaskGraph,
    platform: Platform,
    mapping: Sequence[int],
    order: Optional[Sequence[int]] = None,
) -> float:
    """The cost model's makespan for ``mapping`` (engine's zero-noise twin)."""
    return CostModel(graph, platform).simulate(list(mapping), order)


def throughput_report(trace: RuntimeTrace) -> ThroughputReport:
    """Serving metrics of a (typically multi-job) trace."""
    if not trace.jobs:
        raise ValueError("trace has no jobs")
    arrivals = np.array([j.arrival for j in trace.jobs])
    completions = np.array([j.completion for j in trace.jobs])
    latencies = completions - arrivals
    horizon = float(completions.max() - arrivals.min())
    return ThroughputReport(
        n_jobs=len(trace.jobs),
        horizon=horizon,
        jobs_per_second=len(trace.jobs) / horizon if horizon > 0 else float("inf"),
        latency_mean=float(latencies.mean()),
        latency_p95=float(np.percentile(latencies, 95)),
        latency_worst=float(latencies.max()),
        energy_j=trace.energy_j,
        energy_per_job_j=trace.energy_j / len(trace.jobs),
        area_wait_s=trace.area_wait_time,
        link_wait_s=trace.link_wait_time,
    )
