"""Dynamic scenarios: device degradation/failure and workflow arrival streams.

Scenarios are the second perturbation axis (orthogonal to the stochastic
runtime noise of :mod:`repro.runtime.stochastic`): timed, structural changes
to the platform while a static mapping executes.

``DeviceSlowdown(device, time, factor)``
    From ``time`` on, tasks *starting* on ``device`` take ``factor`` times
    longer (thermal throttling, a co-tenant stealing the accelerator, ...).
    Tasks already running keep their committed times.

``DeviceFailure(device, time, fallback=None)``
    At ``time`` the device drops out: running tasks on it are killed and
    every unfinished task mapped to it is re-executed from scratch on a
    surviving device — the ``fallback`` when given, else the lowest index,
    skipping any device whose FPGA area budget the move would exceed.
    Results of tasks that already *finished* on the failed device remain
    available — the host stages completed outputs, so successors pay the
    recorded transfer but need no recompute.

Arrival streams turn the single-shot simulator into a throughput-serving
experiment: a :class:`Job` bundles one workflow instance (graph + static
mapping + optional priority order) with an arrival time, and
:func:`periodic_stream` / :func:`poisson_stream` build batches of them.
Jobs share the platform's device slots first-come-first-served: a job's
tasks queue behind all unfinished tasks of earlier arrivals on the same
device (non-preemptive FIFO across jobs, priority order within a job).

FPGA area budgets are enforced twice: *statically* per job at submission
(the cost model's feasibility check — a job whose own mapping overflows a
budget is rejected), and *dynamically* across jobs by the engine's area
ledger — concurrent jobs never co-reside beyond the platform budget; a
task whose claim would oversubscribe the fabric waits for area to free
(``AreaWait``) or, with a replan policy, the arriving job is re-mapped
against the residual capacity (see :mod:`repro.runtime.engine`,
"Shared resources").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..graphs.taskgraph import TaskGraph

__all__ = [
    "Scenario",
    "DeviceSlowdown",
    "DeviceFailure",
    "Job",
    "periodic_stream",
    "poisson_stream",
]


@dataclass(frozen=True)
class Scenario:
    """A timed platform change (see module docstring for subclasses)."""

    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("scenario time must be non-negative")

    def describe(self) -> str:
        return f"{type(self).__name__}@{self.time:g}s"


@dataclass(frozen=True)
class DeviceSlowdown(Scenario):
    """Scale execution times on ``device`` by ``factor`` (> 1 = slower)."""

    device: int = 0
    factor: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 0:
            raise ValueError("slowdown factor must be positive")

    def describe(self) -> str:
        return f"slowdown(device={self.device}, x{self.factor:g})@{self.time:g}s"


@dataclass(frozen=True)
class DeviceFailure(Scenario):
    """Remove ``device``; unfinished work restarts on ``fallback``."""

    device: int = 0
    #: fallback device index; None = lowest-index surviving device
    fallback: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fallback is not None and self.fallback == self.device:
            raise ValueError("fallback must differ from the failed device")

    def describe(self) -> str:
        return f"failure(device={self.device})@{self.time:g}s"


@dataclass(frozen=True)
class Job:
    """One workflow instance to execute: graph, static mapping, arrival."""

    graph: TaskGraph
    mapping: Sequence[int]
    arrival: float = 0.0
    name: str = ""
    #: topological priority order (task indices); None = BFS schedule
    order: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("job arrival time must be non-negative")


def periodic_stream(
    graph: TaskGraph,
    mapping: Sequence[int],
    n: int,
    period: float,
    *,
    start: float = 0.0,
    name: str = "job",
) -> List[Job]:
    """``n`` copies of one workflow arriving every ``period`` seconds."""
    if n < 1:
        raise ValueError("need at least one job")
    if period < 0:
        raise ValueError("period must be non-negative")
    return [
        Job(graph, mapping, arrival=start + k * period, name=f"{name}{k}")
        for k in range(n)
    ]


def poisson_stream(
    graph: TaskGraph,
    mapping: Sequence[int],
    n: int,
    rate: float,
    rng: np.random.Generator,
    *,
    start: float = 0.0,
    name: str = "job",
) -> List[Job]:
    """``n`` copies arriving as a Poisson process with ``rate`` jobs/second."""
    if n < 1:
        raise ValueError("need at least one job")
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    t = start
    jobs = []
    for k in range(n):
        jobs.append(Job(graph, mapping, arrival=t, name=f"{name}{k}"))
        t += float(rng.exponential(1.0 / rate))
    return jobs
