"""Runtime subsystem: stress-test static mappings under dynamic scenarios.

The analytic evaluator answers "how good is this mapping *under the
model*"; this package answers "how does it behave when reality misbehaves".
A discrete-event engine (:mod:`~repro.runtime.engine`) executes a static
mapping with pluggable stochastic runtime/transfer noise
(:mod:`~repro.runtime.stochastic`), timed device slowdowns and failures,
and multi-workflow arrival streams (:mod:`~repro.runtime.scenarios`),
emitting a :class:`~repro.runtime.engine.RuntimeTrace` that renders through
the existing Gantt tooling.  :mod:`~repro.runtime.metrics` condenses
replications into robustness (expected/p95 makespan, degradation vs the
model) and throughput reports.

Invariant: with zero noise and no scenarios the engine reproduces
``CostModel.simulate()`` exactly — it is a strict generalization of the
paper's evaluation, so robustness experiments compose with every existing
mapper, platform, and graph family.

Quickstart
----------
>>> import numpy as np
>>> from repro.graphs.generators import random_sp_graph
>>> from repro.platform import paper_platform
>>> from repro.runtime import LognormalNoise, replicate, robustness_report
>>> from repro.evaluation import CostModel
>>> g = random_sp_graph(30, np.random.default_rng(0))
>>> platform = paper_platform()
>>> mapping = [0] * g.n_tasks
>>> traces = replicate(g, platform, mapping, n=10,
...                    noise=LognormalNoise(0.2), seed=7)
>>> report = robustness_report(traces, CostModel(g, platform).simulate(mapping))
>>> report.n
10
"""

from .engine import JobResult, RuntimeEngine, RuntimeTrace, simulate_mapping
from .events import (
    DeviceFailed,
    DeviceSlowed,
    Event,
    FallbackDead,
    JobArrived,
    JobCompleted,
    TaskFinished,
    TaskKilled,
    TaskReady,
    TaskRemapped,
    TaskStarted,
)
from .replan import (
    REPLAN_POLICY_NAMES,
    MapperReplanPolicy,
    ReplanContext,
    ReplanPolicy,
    make_replan_policy,
)
from .metrics import (
    RobustnessReport,
    ThroughputReport,
    analytic_makespan,
    replicate,
    robustness_report,
    throughput_report,
)
from .scenarios import (
    DeviceFailure,
    DeviceSlowdown,
    Job,
    Scenario,
    periodic_stream,
    poisson_stream,
)
from .stochastic import GammaNoise, LognormalNoise, NoNoise, PerturbationModel

__all__ = [
    "RuntimeEngine",
    "RuntimeTrace",
    "JobResult",
    "simulate_mapping",
    "Event",
    "JobArrived",
    "JobCompleted",
    "TaskReady",
    "TaskStarted",
    "TaskFinished",
    "TaskKilled",
    "TaskRemapped",
    "DeviceSlowed",
    "DeviceFailed",
    "FallbackDead",
    "REPLAN_POLICY_NAMES",
    "ReplanContext",
    "ReplanPolicy",
    "MapperReplanPolicy",
    "make_replan_policy",
    "Scenario",
    "DeviceSlowdown",
    "DeviceFailure",
    "Job",
    "periodic_stream",
    "poisson_stream",
    "PerturbationModel",
    "NoNoise",
    "LognormalNoise",
    "GammaNoise",
    "RobustnessReport",
    "ThroughputReport",
    "analytic_makespan",
    "replicate",
    "robustness_report",
    "throughput_report",
]
