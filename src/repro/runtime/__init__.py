"""Runtime subsystem: stress-test static mappings under dynamic scenarios.

The analytic evaluator answers "how good is this mapping *under the
model*"; this package answers "how does it behave when reality misbehaves".
A discrete-event engine (:mod:`~repro.runtime.engine`) executes a static
mapping with pluggable stochastic runtime/transfer noise
(:mod:`~repro.runtime.stochastic`), timed device slowdowns and failures,
and multi-workflow arrival streams (:mod:`~repro.runtime.scenarios`),
emitting a :class:`~repro.runtime.engine.RuntimeTrace` that renders through
the existing Gantt tooling.  :mod:`~repro.runtime.metrics` condenses
replications into robustness (expected/p95 makespan, degradation vs the
model) and throughput reports.

Shared resources (cross-job).  Platform resources the analytic model
budgets per job are global at runtime:

- **FPGA area** — a cross-job ledger holds every in-flight task's fabric
  claim between its start and finish; a task whose claim would
  oversubscribe the device budget *waits* (``AreaWait`` events,
  ``RuntimeTrace.area_wait_time``) or, with a replan policy, the arriving
  job is re-mapped against the residual capacity.  Concurrent jobs never
  silently co-reside beyond the budget.
- **Link slots** — ``Platform.link_slots`` (or
  ``RuntimeEngine(link_slots=...)``) bounds concurrent host↔device
  transfers; transfers queue FIFO in commitment order (``LinkWait``
  events, ``RuntimeTrace.link_wait_time``).  ``None`` keeps the analytic
  infinitely-parallel link model.
- **Energy** — every trace accounts compute/transfer/idle energy at the
  :mod:`repro.evaluation.energy` rates (``RuntimeTrace.energy_j`` and
  its components), including energy burned on work that device failures
  rolled back (``wasted_energy_j``).

Replan policies (:mod:`~repro.runtime.replan`) now fire on three
triggers: device failures (as before), device slowdowns whose cumulative
factor crosses ``slowdown_replan_threshold`` (the policy maps the
*degraded* platform), and arrivals under FPGA area pressure (the policy
maps the *residual* capacity).

Invariant: with zero noise, no scenarios, unlimited link slots and a
single job the engine reproduces ``CostModel.simulate()`` exactly — it
is a strict generalization of the paper's evaluation, so robustness
experiments compose with every existing mapper, platform, and graph
family.  The shared-resource models only ever *add* waiting on top of
the exact recurrence; they never change an uncontended run.

Quickstart
----------
>>> import numpy as np
>>> from repro.graphs.generators import random_sp_graph
>>> from repro.platform import paper_platform
>>> from repro.runtime import LognormalNoise, replicate, robustness_report
>>> from repro.evaluation import CostModel
>>> g = random_sp_graph(30, np.random.default_rng(0))
>>> platform = paper_platform()
>>> mapping = [0] * g.n_tasks
>>> traces = replicate(g, platform, mapping, n=10,
...                    noise=LognormalNoise(0.2), seed=7)
>>> report = robustness_report(traces, CostModel(g, platform).simulate(mapping))
>>> report.n
10
"""

from .engine import JobResult, RuntimeEngine, RuntimeTrace, simulate_mapping
from .events import (
    AreaWait,
    DeviceFailed,
    DeviceSlowed,
    Event,
    FallbackDead,
    JobArrived,
    JobCompleted,
    LinkWait,
    TaskFinished,
    TaskKilled,
    TaskReady,
    TaskRemapped,
    TaskStarted,
)
from .replan import (
    REPLAN_POLICY_NAMES,
    MapperReplanPolicy,
    ReplanContext,
    ReplanPolicy,
    make_replan_policy,
)
from .metrics import (
    RobustnessReport,
    ThroughputReport,
    analytic_makespan,
    replicate,
    robustness_report,
    throughput_report,
)
from .scenarios import (
    DeviceFailure,
    DeviceSlowdown,
    Job,
    Scenario,
    periodic_stream,
    poisson_stream,
)
from .stochastic import GammaNoise, LognormalNoise, NoNoise, PerturbationModel

__all__ = [
    "RuntimeEngine",
    "RuntimeTrace",
    "JobResult",
    "simulate_mapping",
    "Event",
    "JobArrived",
    "JobCompleted",
    "TaskReady",
    "TaskStarted",
    "TaskFinished",
    "TaskKilled",
    "TaskRemapped",
    "AreaWait",
    "LinkWait",
    "DeviceSlowed",
    "DeviceFailed",
    "FallbackDead",
    "REPLAN_POLICY_NAMES",
    "ReplanContext",
    "ReplanPolicy",
    "MapperReplanPolicy",
    "make_replan_policy",
    "Scenario",
    "DeviceSlowdown",
    "DeviceFailure",
    "Job",
    "periodic_stream",
    "poisson_stream",
    "PerturbationModel",
    "NoNoise",
    "LognormalNoise",
    "GammaNoise",
    "RobustnessReport",
    "ThroughputReport",
    "analytic_makespan",
    "replicate",
    "robustness_report",
    "throughput_report",
]
