"""Event-driven execution engine for static mappings under dynamic scenarios.

The analytic evaluator (:class:`repro.evaluation.costmodel.CostModel`) is a
*planning* recurrence: it claims device slots task by task along a fixed
priority order, so a later-priority task may legally start earlier in time
than the decision that scheduled it.  A naive work-conserving event
simulator ("start the highest-priority ready task whenever a slot idles")
does **not** reproduce that recurrence.  This engine therefore separates

- **commitment** — scheduling decisions, made per device in strict priority
  order the moment all information a decision needs is available (all
  predecessor finish times known, all earlier-priority tasks on the device
  committed), exactly like the analytic pass; and
- **realization** — a classic discrete-event heap that plays the committed
  ready/start/finish instants back in time order, drives the task state
  machine released → ready → running → done, and logs the typed records of
  :mod:`repro.runtime.events`.

With zero noise and no scenarios the commitment cascade *is* the analytic
recurrence (same tables, same slot tie-breaking, same streaming/drain
rules), so the engine's makespan equals ``CostModel.simulate()`` exactly —
the simulator is a strict generalization of the model, and the test suite
pins this invariant across every graph generator family.

Dynamic behaviour enters through interruptions, in the spirit of the
HeSP simulation framework and dask.distributed's scheduler state machine:
when a :class:`~repro.runtime.scenarios.DeviceSlowdown` or
:class:`~repro.runtime.scenarios.DeviceFailure` fires at time *t*, every
commitment that has not started yet (``start >= t``) is rolled back, running
tasks on a failed device are killed and remapped, and the cascade replans
from the surviving state — decisions made before *t* are never rewritten.
Stochastic runtimes come from :mod:`repro.runtime.stochastic` factors that
are drawn once per task at submission, so replanning never resamples noise
and a seed fully determines the trace.

Multi-job arrival streams share the platform FIFO: tasks of later arrivals
queue behind all unfinished tasks of earlier jobs on the same device.

Shared resources (cross-job).  Three platform resources are global, not
per job:

- **FPGA area** — a ledger per area-capped device tracks the fabric every
  in-flight task occupies between its start and its finish, across *all*
  jobs.  A task whose area claim would oversubscribe the budget waits for
  area to free (``AreaWait`` events, ``RuntimeTrace.area_wait_time``)
  instead of silently co-residing; with a replan policy, an arriving job
  that would contend is instead routed through the policy with the
  residual capacity (see :mod:`repro.runtime.replan`).  Within one job
  the static feasibility check already guarantees the sum fits, so
  single-job runs never wait and stay bit-identical to the model.
  Ledger claims release at task *finish* (dynamic partial
  reconfiguration across jobs); the per-job *static* check deliberately
  stays more conservative — a job's bitstreams persist until the job
  completes (see :func:`_remap_tasks`).  The two layers answer different
  questions: "may this job's mapping exist at all" vs "who holds the
  fabric right now".
- **Interconnect links** — with transfer slots bounded, every
  cross-device transfer (predecessor edges, initial host→device staging,
  final device→host results) queues FIFO in commitment order.  On a
  uniform (legacy) platform the bound is ``link_slots`` (on the
  :class:`~repro.platform.platform.Platform` or the engine) and there is
  **one shared pool** of transfer slots; on a topology-aware platform
  each finite-width link owns its own pool and a transfer claims a slot
  on **every link of its route simultaneously** (a routed transfer holds
  the whole path for its duration, wormhole-style) — it starts at the
  max of its data-ready time and each route pool's earliest-free slot,
  and the ``LinkWait`` record names the link whose queue blocked
  longest.  Either way, slots keep per-slot busy-until times exactly
  like the device slots themselves: no gap backfilling, so a transfer
  committed later never slips into an idle window before an earlier
  commitment — reported link waits are the conservative list-scheduling
  answer, consistent with how the whole engine schedules.  Unlimited
  slots (``None``/``0``, and links without their own ``slots``) keep
  the analytic infinite-parallel link model bit-identically; routing
  still shapes *cost* through the platform's effective matrices, which
  the cost-model tables already price.
- **Energy** — the trace accounts energy with the rates of
  :mod:`repro.evaluation.energy`: execution seconds × active watts,
  transferred MB × :data:`~repro.evaluation.energy.JOULES_PER_MB`, plus
  the platform idle floor over the horizon.  Work rolled back by
  failures is charged when it ran (and surfaced as
  ``RuntimeTrace.wasted_energy_j``), so a failure-heavy trace is honestly
  more expensive than its analytic twin.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..evaluation.costmodel import AREA_TOL, CostModel, area_guard_band
from ..evaluation.energy import JOULES_PER_MB, EnergyModel
from ..evaluation.trace import TaskTrace
from ..graphs.taskgraph import TaskGraph
from ..obs import metrics as _metrics
from ..obs import trace as _obs_trace
from ..platform.platform import Platform
from . import events as ev
from .replan import ReplanContext, ReplanPolicy, make_replan_policy
from .scenarios import DeviceFailure, DeviceSlowdown, Job, Scenario
from .stochastic import NoNoise, PerturbationModel

__all__ = ["RuntimeEngine", "JobResult", "RuntimeTrace", "simulate_mapping"]

# heap ranks at equal timestamps: arrivals first; then readies and
# finishes; then scenario mutations; then starts (so a task finishing
# exactly at the scenario time counts as done, while one starting exactly
# then has *not* begun and is replanned under the new platform state — a
# slowdown at t therefore affects every start >= t); job completions
# last.  Rolled-back realizations are invalidated by generation counters.
_ARRIVAL, _READY, _FINISH, _SCENARIO, _START, _JOB_DONE = range(6)

# task states (released -> ready -> running -> done; kills rewind to released)
_RELEASED, _READY_ST, _RUNNING, _DONE = range(4)


@dataclass
class JobResult:
    """Outcome of one job: completion time and per-task execution records."""

    name: str
    arrival: float
    completion: float          # absolute time incl. final host transfers
    tasks: List[TaskTrace]
    n_killed: int = 0          # task executions lost to device failures
    n_remapped: int = 0        # tasks moved off a failed device

    @property
    def makespan(self) -> float:
        """Job-relative makespan (completion − arrival)."""
        return self.completion - self.arrival


@dataclass
class RuntimeTrace:
    """Full record of one engine run.

    Duck-compatible with :class:`repro.evaluation.trace.ScheduleTrace`
    (``tasks`` / ``makespan`` / ``device_busy``), so single-job traces
    render directly through :func:`repro.evaluation.trace.render_gantt`.
    """

    jobs: List[JobResult]
    events: List[ev.Event]
    makespan: float            # latest job completion (absolute time)
    device_busy: List[float]   # summed execution seconds per device
    #: failures whose designated fallback device was itself already dead
    n_fallback_dead: int = 0
    #: seconds tasks waited on the cross-job FPGA area ledger / how many did
    area_wait_time: float = 0.0
    n_area_waits: int = 0
    #: seconds transfers queued for a shared link slot / how many waited
    link_wait_time: float = 0.0
    n_link_waits: int = 0
    #: energy actually burned, at :mod:`repro.evaluation.energy` rates:
    #: execution seconds x active watts (including re-executed work),
    #: transferred MB x JOULES_PER_MB, and the platform idle floor over
    #: the serving horizon (first arrival -> last completion).
    #: ``wasted_energy_j`` is the subset spent on work a device failure
    #: rolled back (killed partial executions plus their already-paid
    #: input transfers); it is included in the totals.
    compute_energy_j: float = 0.0
    transfer_energy_j: float = 0.0
    idle_energy_j: float = 0.0
    wasted_energy_j: float = 0.0

    @property
    def energy_j(self) -> float:
        """Total energy of the run (compute + transfers + idle floor)."""
        return self.compute_energy_j + self.transfer_energy_j + self.idle_energy_j

    @property
    def tasks(self) -> List[TaskTrace]:
        return [t for job in self.jobs for t in job.tasks]

    @property
    def n_killed(self) -> int:
        return sum(job.n_killed for job in self.jobs)

    def by_device(self, device: int) -> List[TaskTrace]:
        return [t for t in self.tasks if t.device == device]

    def total_wait(self) -> float:
        return sum(t.waited for t in self.tasks)


class _JobState:
    """Mutable per-job simulation state (arrays indexed by task index)."""

    __slots__ = (
        "idx", "name", "arrival", "model", "emodel", "order", "mapping",
        "exec_f", "trans_f", "init_f", "final_f", "succs",
        "committed", "done", "state", "gen",
        "ready_val", "unknown", "drain", "streamed",
        "start", "finish", "slot", "ready", "exec_actual", "fill_actual",
        "area_wait", "link_wait", "link_wait_n", "link_block", "final_wait",
        "link_claims", "final_end",
        "remaining", "completion", "n_killed", "n_remapped",
    )

    def __init__(
        self,
        idx: int,
        job: Job,
        model: CostModel,
        emodel: EnergyModel,
        noise: PerturbationModel,
        rng: np.random.Generator,
    ) -> None:
        n = model.n
        self.idx = idx
        self.name = job.name or f"job{idx}"
        self.arrival = float(job.arrival)
        self.model = model
        self.emodel = emodel
        order = list(job.order) if job.order is not None else list(model.bfs_order)
        if sorted(order) != list(range(n)):
            raise ValueError(f"job {self.name}: order is not a permutation")
        self.order = order
        self.mapping = [int(d) for d in job.mapping]
        if len(self.mapping) != n:
            raise ValueError(f"job {self.name}: mapping has wrong length")
        if min(self.mapping) < 0 or max(self.mapping) >= model.m:
            raise ValueError(f"job {self.name}: device index out of range")

        # noise factors, sampled once in a fixed order (see stochastic.py)
        self.exec_f = [1.0] * n
        self.trans_f: List[List[float]] = [[] for _ in range(n)]
        self.init_f = [1.0] * n
        self.final_f = [1.0] * n
        if not noise.deterministic:
            for i in range(n):
                self.exec_f[i] = noise.exec_factor(rng)
                self.trans_f[i] = [
                    noise.transfer_factor(rng) for _ in model._pred[i]
                ]
                self.init_f[i] = noise.transfer_factor(rng)
                self.final_f[i] = noise.transfer_factor(rng)
        else:
            for i in range(n):
                self.trans_f[i] = [1.0] * len(model._pred[i])

        # successor contributions: succs[p] = [(consumer, pred-position)]
        self.succs: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for s in range(n):
            for k, (p, _row) in enumerate(model._pred[s]):
                self.succs[p].append((s, k))

        self.committed = [False] * n
        self.done = [False] * n
        self.state = [_RELEASED] * n
        self.gen = [0] * n
        self.unknown = [len(model._pred[i]) for i in range(n)]
        self.ready_val = [0.0] * n
        self.drain = [0.0] * n
        self.streamed = [False] * n
        self.start = [0.0] * n
        self.finish = [0.0] * n
        self.slot = [-1] * n
        self.ready = [0.0] * n
        self.exec_actual = [0.0] * n
        self.fill_actual = [0.0] * n
        self.area_wait = [0.0] * n      # start delay from the area ledger
        self.link_wait = [0.0] * n      # input transfers' slot-queue time
        self.link_wait_n = [0] * n      # how many input transfers queued
        self.link_block = [-1] * n      # link index that blocked longest
        self.final_wait = [0.0] * n     # result transfer's slot-queue time
        #: link-slot claims per task: [(pool, slot, busy-until), ...]
        self.link_claims: List[List[Tuple[int, int, float]]] = [
            [] for _ in range(n)
        ]
        #: absolute end of the claimed result transfer (-1 = uncontended)
        self.final_end = [-1.0] * n
        self.remaining = n
        self.completion = float("inf")
        self.n_killed = 0
        self.n_remapped = 0
        for i in range(n):
            self.ready_val[i] = self.input_ready(i)

    def input_ready(self, i: int) -> float:
        """Arrival plus the (jittered) host→device input transfer."""
        return self.arrival + self.model._initial[i][self.mapping[i]] * self.init_f[i]

    def end_time(self, i: int) -> float:
        """Finish plus the (jittered, possibly slot-queued) result transfer."""
        if self.final_end[i] >= 0.0:
            return self.final_end[i]
        return self.finish[i] + self.model._final[i][self.mapping[i]] * self.final_f[i]


class RuntimeEngine:
    """Discrete-event executor of static mappings on one platform.

    ``link_slots`` overrides the platform's transfer-slot bound for this
    engine.  The repo-wide ``0 = unlimited`` convention applies, with
    one engine-specific nuance: ``None`` means *inherit*
    ``platform.link_slots`` (where ``0`` has already been normalized to
    ``None`` = unlimited), while an explicit ``0`` here **forces** the
    unlimited analytic link model — overriding both the platform's
    shared width and any per-link ``slots`` a topology-aware platform's
    links declare.  A positive value bounds concurrent cross-device
    transfers: the width of the single shared pool on a uniform
    platform, or the default width of links without their own ``slots``
    on a topology-aware one (links that declare ``slots`` keep them).

    ``slowdown_replan_threshold``: with a replan policy set, a
    :class:`~repro.runtime.scenarios.DeviceSlowdown` whose *cumulative*
    factor on a device reaches this threshold triggers a policy replan on
    the degraded platform (must exceed 1; plain failures always replan).
    """

    def __init__(
        self,
        platform: Platform,
        *,
        noise: Optional[PerturbationModel] = None,
        scenarios: Sequence[Scenario] = (),
        replan_policy: Union[None, str, ReplanPolicy] = None,
        link_slots: Optional[int] = None,
        slowdown_replan_threshold: float = 2.0,
    ) -> None:
        self.platform = platform
        self.noise = noise if noise is not None else NoNoise()
        self.replan_policy = make_replan_policy(replan_policy)
        if link_slots is None:
            self.link_slots = platform.link_slots
            self._links_forced_off = False
        else:
            slots = int(link_slots)
            if slots != link_slots or slots < 0:
                raise ValueError(
                    "link_slots must be a non-negative integer "
                    "(0 = unlimited)"
                )
            self.link_slots = slots if slots else None
            # an explicit 0 disables per-link pools too (force-unlimited)
            self._links_forced_off = slots == 0
        if slowdown_replan_threshold <= 1.0:
            raise ValueError("slowdown_replan_threshold must exceed 1")
        self.slowdown_replan_threshold = float(slowdown_replan_threshold)
        self.scenarios = sorted(scenarios, key=lambda s: s.time)
        m = platform.n_devices
        for scn in self.scenarios:
            if isinstance(scn, (DeviceSlowdown, DeviceFailure)):
                if not 0 <= scn.device < m:
                    raise ValueError(f"scenario device {scn.device} out of range")
                if isinstance(scn, DeviceFailure) and scn.fallback is not None:
                    if not 0 <= scn.fallback < m:
                        raise ValueError(
                            f"fallback device {scn.fallback} out of range"
                        )
            else:
                raise TypeError(f"unknown scenario type {type(scn).__name__}")
        self._area_caps: Dict[int, float] = platform.area_capacities()
        self._watts_active = [d.watts_active for d in platform.devices]
        self._watts_idle_total = float(
            sum(d.watts_idle for d in platform.devices)
        )
        self._models: Dict[int, Tuple[CostModel, EnergyModel]] = {}

    # ------------------------------------------------------------------
    def _model_for(self, graph: TaskGraph) -> Tuple[CostModel, EnergyModel]:
        pair = self._models.get(id(graph))
        if pair is None or pair[0].graph is not graph:
            if len(self._models) >= 64:  # bound a long-lived engine's cache
                self._models.clear()
            model = CostModel(graph, self.platform)
            pair = (model, EnergyModel(model))
            self._models[id(graph)] = pair
        return pair

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Union[Job, Sequence[Job]],
        rng: Union[None, int, np.random.Generator] = None,
    ) -> RuntimeTrace:
        """Execute ``jobs`` under this engine's noise and scenarios."""
        if isinstance(jobs, Job):
            jobs = [jobs]
        if not jobs:
            raise ValueError("need at least one job")
        with _obs_trace.span(
            "engine.run", "runtime",
            {"jobs": len(jobs)} if _obs_trace.enabled() else None,
        ):
            return self._run_loop(list(jobs), rng)

    def _run_loop(
        self,
        jobs: Sequence[Job],
        rng: Union[None, int, np.random.Generator],
    ) -> RuntimeTrace:
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(0 if rng is None else rng)

        m = self.platform.n_devices
        devices = self.platform.devices
        self._speed = [1.0] * m
        self._alive = [True] * m
        self._avail: List[List[float]] = [
            [0.0] * d.slots if d.serializes else [] for d in devices
        ]
        self._serializes = [d.serializes for d in devices]
        self._streaming = [d.streaming for d in devices]
        self._queues: List[List[Tuple[int, int]]] = [[] for _ in range(m)]
        self._heads = [0] * m
        self._busy = [0.0] * m
        self._jobs: List[_JobState] = []
        self._log: List[ev.Event] = []
        self._heap: List[tuple] = []
        self._seq = 0
        self._now = 0.0
        self._n_fallback_dead = 0
        # shared-resource state: link slot pools, FPGA area ledger, energy.
        # _link_pools[p] holds pool p's per-slot busy-until times;
        # _route_pools[a][b] lists the (pool, link) pairs a transfer
        # a -> b claims.  A uniform platform has one anonymous pool
        # (link -1) on every cross-device route; a topology-aware
        # platform has one pool per finite-width link, and routes
        # through only-unlimited links claim nothing.  No finite pools
        # at all -> None -> the analytic infinite-parallel model.
        self._link_pools, self._route_pools = self._build_link_pools(m)
        #: per area-capped device: [(start, end, area)] of in-flight claims
        self._area_claims: Dict[int, List[Tuple[float, float, float]]] = {
            d: [] for d in self._area_caps
        }
        self._e_compute_j = 0.0
        self._e_mb = 0.0
        self._e_wasted_j = 0.0
        self._area_wait_total = 0.0
        self._n_area_waits = 0
        self._link_wait_total = 0.0
        self._n_link_waits = 0

        for k, job in enumerate(sorted(jobs, key=lambda j: j.arrival)):
            self._push(job.arrival, _ARRIVAL, ("arrival", job))
        for scn in self.scenarios:
            self._push(scn.time, _SCENARIO, ("scenario", scn))

        while self._heap:
            t, rank, _seq, payload = heapq.heappop(self._heap)
            self._now = t
            kind = payload[0]
            if kind == "arrival":
                self._handle_arrival(payload[1], rng)
            elif kind == "scenario":
                self._apply_scenario(payload[1])
            elif kind == "ready":
                self._realize_ready(*payload[1:])
            elif kind == "start":
                self._realize_start(*payload[1:])
            elif kind == "finish":
                self._realize_finish(*payload[1:])
            else:  # job-done
                self._realize_job_done(payload[1])

        for js in self._jobs:
            if js.remaining > 0:
                raise ValueError(
                    f"job {js.name}: priority order is not topological "
                    f"({js.remaining} task(s) never became ready)"
                )
        return self._build_trace()

    # ------------------------------------------------------------------
    # heap / log helpers
    # ------------------------------------------------------------------
    def _push(self, time: float, rank: int, payload: tuple) -> None:
        heapq.heappush(self._heap, (time, rank, self._seq, payload))
        self._seq += 1

    def _emit(self, record: ev.Event) -> None:
        self._log.append(record)

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------
    def _handle_arrival(self, job: Job, rng: np.random.Generator) -> None:
        model, emodel = self._model_for(job.graph)
        js = _JobState(len(self._jobs), job, model, emodel, self.noise, rng)
        self._emit(ev.JobArrived(self._now, js.name))
        # tasks targeted at an already-dead device move to a surviving,
        # area-feasible device; with a replan policy the whole arriving
        # job (nothing has started yet) is spliced onto the policy's
        # mapping for the surviving platform, same as a mid-run failure.
        # A job arriving while in-flight jobs hold so much FPGA fabric
        # that co-residency would oversubscribe a budget is likewise
        # routed through the policy, which then maps against the
        # *residual* capacity (without a policy its tasks simply wait on
        # the area ledger at start time) — and so is a job arriving onto
        # a device whose cumulative slowdown already crossed the replan
        # threshold, mirroring how in-flight jobs were remapped when the
        # slowdown struck.
        dead = [i for i in range(model.n) if not self._alive[js.mapping[i]]]
        pressure = (
            self._area_pressure(js) if self.replan_policy is not None else ()
        )
        degraded = self.replan_policy is not None and any(
            self._alive[js.mapping[i]]
            and self._speed[js.mapping[i]] >= self.slowdown_replan_threshold
            for i in range(model.n)
        )
        if dead or pressure or degraded:
            proposal = None
            if self.replan_policy is not None:
                proposal = self.replan_policy.propose(ReplanContext(
                    graph=model.graph,
                    platform=self.platform,
                    alive=tuple(self._alive),
                    mapping=tuple(js.mapping),
                    movable=tuple(range(model.n)),
                    failed=None,
                    fallback=None,
                    speed=tuple(self._speed),
                    area_in_use=pressure,
                ))
            if proposal is None:
                targets = self._remap_tasks(js, dead, None) if dead else {}
            else:
                targets = self._remap_tasks(
                    js, list(range(model.n)), None, desired=proposal
                )
            for i, target in targets.items():
                old = js.mapping[i]
                if target == old:
                    continue
                js.mapping[i] = target
                js.ready_val[i] = js.input_ready(i)
                js.n_remapped += 1
                self._emit(ev.TaskRemapped(
                    self._now, js.name, model.tasks[i], old, target
                ))
        if not model.is_feasible(js.mapping):
            raise ValueError(
                f"job {js.name}: mapping violates an area budget "
                f"(usage {model.area_usage(js.mapping)})"
            )
        self._jobs.append(js)
        for i in js.order:
            self._queues[js.mapping[i]].append((js.idx, i))
        self._cascade()

    # ------------------------------------------------------------------
    # commitment cascade (the analytic recurrence, incrementalized)
    # ------------------------------------------------------------------
    def _cascade(self) -> None:
        work = deque(range(self.platform.n_devices))
        while work:
            d = work.popleft()
            q = self._queues[d]
            while self._heads[d] < len(q):
                j, i = q[self._heads[d]]
                js = self._jobs[j]
                if js.unknown[i] > 0:
                    break
                self._heads[d] += 1
                self._commit(js, i, d, work)

    def _commit(self, js: _JobState, i: int, d: int, work: deque) -> None:
        model = js.model
        if self._link_pools is not None:
            r = self._claim_links(js, i, d)
        else:
            r = js.ready_val[i]
        slot = -1
        st = r if r > self._now else self._now
        if self._serializes[d]:
            slots_d = self._avail[d]
            slot = 0
            earliest = slots_d[0]
            for k in range(1, len(slots_d)):
                if slots_d[k] < earliest:
                    earliest = slots_d[k]
                    slot = k
            if earliest > st:
                st = earliest
        speed = self._speed[d]
        exec_t = model._exec[i][d] * js.exec_f[i] * speed
        js.area_wait[i] = 0.0
        if d in self._area_caps and model._area[i] > 0.0:
            # cross-job area ledger: wait until the claim fits the fabric
            st0 = st
            st, fin = self._claim_area(js, i, d, st, exec_t)
            js.area_wait[i] = st - st0
        else:
            fin = st + exec_t
            if js.drain[i] > fin:
                fin = js.drain[i]
        if slot >= 0:
            self._avail[d][slot] = fin
        js.committed[i] = True
        js.ready[i] = r
        js.start[i] = st
        js.finish[i] = fin
        js.slot[i] = slot
        js.exec_actual[i] = exec_t
        js.fill_actual[i] = model._fill[i][d] * js.exec_f[i] * speed
        js.final_end[i] = -1.0
        js.final_wait[i] = 0.0
        if self._link_pools is not None:
            # the device→host result transfer of a sink queues as well
            tf = model._final[i][d] * js.final_f[i]
            if tf > 0.0:
                pools = self._route_pools[d][0]
                if pools:
                    ts, end, _bl = self._claim_route(js, i, fin, tf, pools)
                    js.final_end[i] = end
                    js.final_wait[i] = ts - fin

        gen = js.gen[i]
        if js.state[i] == _RELEASED:
            self._push(max(r, self._now), _READY, ("ready", js.idx, i, gen))
        self._push(st, _START, ("start", js.idx, i, gen))
        self._push(fin, _FINISH, ("finish", js.idx, i, gen))

        # propagate contributions to (necessarily uncommitted) successors
        for s, k in js.succs[i]:
            ds = js.mapping[s]
            if ds == d and self._streaming[d]:
                contrib = st + js.fill_actual[i]
                js.streamed[s] = True
                if fin > js.drain[s]:
                    js.drain[s] = fin
            else:
                contrib = fin + model._pred[s][k][1][d][ds] * js.trans_f[s][k]
            if contrib > js.ready_val[s]:
                js.ready_val[s] = contrib
            js.unknown[s] -= 1
            if js.unknown[s] == 0:
                work.append(ds)

    # ------------------------------------------------------------------
    # shared-resource claims (cross-job area ledger, link slots, energy)
    # ------------------------------------------------------------------
    def _build_link_pools(
        self, m: int
    ) -> Tuple[
        Optional[List[List[float]]],
        Optional[List[List[Tuple[Tuple[int, int], ...]]]],
    ]:
        """Slot pools and per-pair route→pool tables for this run.

        Uniform platform + finite ``link_slots``: one pool, every
        cross-device route claims it (link id ``-1`` — the anonymous
        shared interconnect).  Topology-aware platform: one pool per
        link with a finite width (its own ``slots``, else the engine
        default); a route's claim list keeps hop order and skips
        unlimited links.  ``(None, None)`` when nothing is finite (or
        the engine was built with ``link_slots=0``): the analytic model.
        """
        if self._links_forced_off:
            return None, None
        lg = self.platform.link_graph
        if lg is None:
            if self.link_slots is None:
                return None, None
            shared = ((0, -1),)
            routes = [
                [() if a == b else shared for b in range(m)]
                for a in range(m)
            ]
            return [[0.0] * self.link_slots], routes
        pool_of: Dict[int, int] = {}
        pools: List[List[float]] = []
        for li, link in enumerate(lg.links):
            width = link.slots if link.slots is not None else self.link_slots
            if width is not None:
                pool_of[li] = len(pools)
                pools.append([0.0] * width)
        if not pools:
            return None, None
        routes = [
            [
                tuple(
                    (pool_of[li], li)
                    for li in lg.routes[a][b]
                    if li in pool_of
                )
                for b in range(m)
            ]
            for a in range(m)
        ]
        return pools, routes

    def _claim_route(
        self,
        js: _JobState,
        i: int,
        ready: float,
        dur: float,
        pools: Tuple[Tuple[int, int], ...],
    ) -> Tuple[float, float, int]:
        """FIFO-claim one slot on every pool of a transfer's route.

        The transfer starts at the max of ``ready`` and each pool's
        earliest-free slot (lowest index on ties) and occupies all the
        claimed slots for ``dur`` — a routed transfer holds its whole
        path.  Claims are recorded on task ``i`` as ``(pool, slot,
        end)`` so rollback can rebuild slot state.  Returns ``(start,
        end, link)`` where ``link`` is the route link whose queue set
        the start time (``-1`` if ``ready`` did, or on the uniform
        platform's anonymous pool).
        """
        ts = ready
        blocking = -1
        picks: List[Tuple[int, int, int]] = []
        for pi, li in pools:
            avail = self._link_pools[pi]
            best = 0
            earliest = avail[0]
            for k in range(1, len(avail)):
                if avail[k] < earliest:
                    earliest = avail[k]
                    best = k
            picks.append((pi, best, li))
            if earliest > ts:
                ts = earliest
                blocking = li
        end = ts + dur
        claims = js.link_claims[i]
        for pi, best, _li in picks:
            self._link_pools[pi][best] = end
            claims.append((pi, best, end))
        return ts, end, blocking

    def _claim_links(self, js: _JobState, i: int, d: int) -> float:
        """Queue task ``i``'s input transfers on their routes' slot pools.

        Recomputes the task's ready time with every cross-device transfer
        (initial host→device staging first, then predecessor edges in
        model order) claiming the earliest-free slots FIFO in commitment
        order: a transfer starts at ``max(data available, route free)``.
        Same-device and zero-duration transfers — and routes through
        only-unlimited links — bypass the slot pools.  Also refreshes
        drain/streamed exactly like the uncontended path, and records
        which link blocked the longest (for the ``LinkWait`` event).
        """
        model = js.model
        route_pools = self._route_pools
        js.link_claims[i].clear()
        wait = 0.0
        n_waited = 0
        worst = 0.0
        block = -1
        r = js.arrival
        t0 = model._initial[i][d] * js.init_f[i]
        if t0 > 0.0:
            pools = route_pools[0][d]
            if pools:
                ts, end, bl = self._claim_route(js, i, js.arrival, t0, pools)
                w = ts - js.arrival
                wait += w
                n_waited += ts > js.arrival
                if w > worst:
                    worst = w
                    block = bl
                r = end
            else:
                r = js.arrival + t0
        drain = 0.0
        streamed = False
        for k, (p, row) in enumerate(model._pred[i]):
            dp = js.mapping[p]
            if dp == d and self._streaming[d]:
                contrib = js.start[p] + js.fill_actual[p]
                streamed = True
                if js.finish[p] > drain:
                    drain = js.finish[p]
            else:
                tau = row[dp][d] * js.trans_f[i][k]
                pools = route_pools[dp][d] if dp != d else ()
                if pools and tau > 0.0:
                    fp = js.finish[p]
                    ts, contrib, bl = self._claim_route(js, i, fp, tau, pools)
                    w = ts - fp
                    wait += w
                    n_waited += ts > fp
                    if w > worst:
                        worst = w
                        block = bl
                else:
                    contrib = js.finish[p] + tau
            if contrib > r:
                r = contrib
        js.drain[i] = drain
        js.streamed[i] = streamed
        js.link_wait[i] = wait
        js.link_wait_n[i] = n_waited
        js.link_block[i] = block
        return r

    def _claim_area(
        self, js: _JobState, i: int, d: int, st0: float, exec_t: float
    ) -> Tuple[float, float]:
        """Earliest start >= ``st0`` whose area claim fits device ``d``.

        The ledger holds the ``(start, end, area)`` intervals of every
        committed, unfinished task across *all* in-flight jobs.  The task
        occupies its area over ``[start, finish)``; candidate starts are
        ``st0`` and the ends of active claims, checked in time order, so
        the first fit is the FIFO-earliest.  Admission is guard-banded:
        a claim is accepted up to
        ``AREA_TOL + AREA_BAND * max(1, limit)`` beyond the capacity.
        Unlike the static check (where :data:`AREA_BAND` only triggers an
        exact recount), concurrent subset sums have no canonical
        reference order to recount in, so the band here is genuine slack
        — physically negligible (1e-6 area units), and required so a
        statically-feasible single job (whose total usage fits by
        construction) can never be delayed by float re-association of
        partial sums: single-job runs stay bit-identical to the model.
        """
        cap = self._area_caps[d]
        a = float(js.model._area[i])
        limit = cap + AREA_TOL
        band = area_guard_band(limit)
        claims = self._area_claims[d]
        if claims:
            # claims ending by now can never overlap a start >= now
            now = self._now
            claims = [c for c in claims if c[1] > now]
            self._area_claims[d] = claims
        drain = js.drain[i]
        candidates = sorted({st0} | {ce for _, ce, _ in claims if ce > st0})
        st = fin = st0
        for st in candidates:
            fin = st + exec_t
            if drain > fin:
                fin = drain
            # peak concurrent usage of overlapping claims over [st, fin)
            events = []
            for cs, ce, ca in claims:
                if cs < fin and ce > st:
                    events.append((cs if cs > st else st, 1, ca))
                    events.append((ce, 0, ca))
            events.sort(key=lambda e: (e[0], e[1]))
            cur = peak = 0.0
            for _, phase, ca in events:
                cur = cur + ca if phase else cur - ca
                if cur > peak:
                    peak = cur
            if peak + a <= limit + band:
                break
            # the last candidate (max claim end) always fits: nothing
            # overlaps it, and a single task fits an empty fabric by the
            # static feasibility check
        claims.append((st, fin, a))
        return st, fin

    def _area_pressure(
        self, js: _JobState
    ) -> Tuple[Tuple[int, float], ...]:
        """Fabric held by other in-flight jobs, if ``js`` would contend.

        Returns ``(device, area_in_use)`` pairs when the arriving job's
        static usage plus the area that *unfinished* tasks of other
        incomplete jobs still occupy oversubscribes some budget — the
        signal to route the arrival through the replan policy.  Empty
        tuple: no contention, the job proceeds unchanged.
        """
        caps = self._area_caps
        if not caps or not self._jobs:
            return ()
        new = {d: 0.0 for d in caps}
        for i in range(js.model.n):
            d = js.mapping[i]
            if d in new:
                new[d] += js.model._area[i]
        in_use = {d: 0.0 for d in caps}
        for other in self._jobs:
            if other.remaining == 0:
                continue
            oa = other.model._area
            for i in range(other.model.n):
                d = other.mapping[i]
                if d in in_use and not other.done[i]:
                    in_use[d] += oa[i]
        for d, cap in caps.items():
            limit = cap + AREA_TOL
            if new[d] > 0.0 and new[d] + in_use[d] > limit + area_guard_band(limit):
                return tuple(sorted(
                    (dev, use) for dev, use in in_use.items() if use > 0.0
                ))
        return ()

    # ------------------------------------------------------------------
    # realizations
    # ------------------------------------------------------------------
    def _realize_ready(self, j: int, i: int, gen: int) -> None:
        js = self._jobs[j]
        if gen != js.gen[i] or js.state[i] != _RELEASED:
            return
        js.state[i] = _READY_ST
        self._emit(ev.TaskReady(self._now, js.name, js.model.tasks[i], js.mapping[i]))

    def _realize_start(self, j: int, i: int, gen: int) -> None:
        js = self._jobs[j]
        if gen != js.gen[i]:
            return
        js.state[i] = _RUNNING
        w = js.area_wait[i]
        if w > 0.0:
            self._area_wait_total += w
            self._n_area_waits += 1
            self._emit(ev.AreaWait(
                self._now, js.name, js.model.tasks[i], js.mapping[i], w
            ))
        w = js.link_wait[i]
        if w > 0.0:
            self._link_wait_total += w
            self._n_link_waits += js.link_wait_n[i]
            self._emit(ev.LinkWait(
                self._now, js.name, js.model.tasks[i], w, js.link_block[i]
            ))
        # input data is on the device now: charge the transfer energy
        # (re-charged if a failure rolls the task back and it restarts)
        self._e_mb += js.emodel.transfer_mb(js.mapping, i)
        self._emit(ev.TaskStarted(
            self._now, js.name, js.model.tasks[i], js.mapping[i], js.slot[i]
        ))

    def _realize_finish(self, j: int, i: int, gen: int) -> None:
        js = self._jobs[j]
        if gen != js.gen[i]:
            return
        js.done[i] = True
        js.state[i] = _DONE
        d = js.mapping[i]
        self._busy[d] += js.exec_actual[i]
        self._e_compute_j += js.exec_actual[i] * self._watts_active[d]
        self._e_mb += js.emodel.sink_mb(js.mapping, i)
        fw = js.final_wait[i]
        if fw > 0.0:
            self._link_wait_total += fw
            self._n_link_waits += 1
        self._emit(ev.TaskFinished(self._now, js.name, js.model.tasks[i], js.mapping[i]))
        js.remaining -= 1
        if js.remaining == 0:
            completion = max(js.end_time(i) for i in range(js.model.n))
            js.completion = completion
            self._push(completion, _JOB_DONE, ("job-done", j))

    def _realize_job_done(self, j: int) -> None:
        js = self._jobs[j]
        self._emit(ev.JobCompleted(self._now, js.name, js.completion - js.arrival))

    # ------------------------------------------------------------------
    # scenarios: rollback + replan
    # ------------------------------------------------------------------
    def _remap_tasks(
        self,
        js: _JobState,
        tasks: List[int],
        preferred: Optional[int],
        desired: Optional[Dict[int, int]] = None,
    ) -> Dict[int, int]:
        """Pick an alive, area-feasible target device for each task.

        The *static* area budgets validated here are per job, at the
        shared :data:`~repro.evaluation.costmodel.AREA_TOL` tolerance (so
        replan and static mapping agree on feasibility at the boundary;
        dynamic cross-job co-residency is the area ledger's job):
        usage counts every task still mapped to an area-limited device —
        including finished ones, whose bitstreams occupied the fabric —
        minus the tasks being moved.  Preference order: the task's entry
        in ``desired`` (a replan policy's proposal — tried first when the
        device is alive, so an overflowing or dead proposal degrades
        gracefully), then the explicit fallback device, then lowest index.
        """
        if not tasks:
            return {}
        model = js.model
        limits = model._area_limits
        moving = set(tasks)
        usage = {d: 0.0 for d in limits}
        for i in range(model.n):
            d = js.mapping[i]
            if d in usage and i not in moving:
                usage[d] += model._area[i]
        candidates = [d for d in range(self.platform.n_devices) if self._alive[d]]
        if not candidates:
            raise RuntimeError("all devices have failed")
        if preferred is not None and preferred in candidates:
            candidates.remove(preferred)
            candidates.insert(0, preferred)
        targets: Dict[int, int] = {}
        for i in tasks:
            order = candidates
            if desired is not None:
                want = desired.get(i, js.mapping[i])
                if self._alive[want]:
                    order = [want] + [d for d in candidates if d != want]
            area = model._area[i]
            for d in order:
                if d in limits and usage[d] + area > limits[d] + AREA_TOL:
                    continue
                targets[i] = d
                if d in limits:
                    usage[d] += area
                break
            else:
                raise RuntimeError(
                    f"job {js.name}: no surviving device can host task "
                    f"{model.tasks[i]} within its area budget"
                )
        return targets

    def _apply_scenario(self, scn: Scenario) -> None:
        if isinstance(scn, DeviceSlowdown):
            if not self._alive[scn.device]:
                return
            self._speed[scn.device] *= scn.factor
            self._emit(ev.DeviceSlowed(self._now, scn.device, scn.factor))
            # a slowdown whose cumulative factor crosses the threshold
            # asks the replan policy for a mapping of the degraded
            # platform; below it (or with no policy) the rollback/recommit
            # alone re-times the committed frontier at the new speed
            slowed = None
            if (
                self.replan_policy is not None
                and self._speed[scn.device] >= self.slowdown_replan_threshold
            ):
                slowed = scn.device
            self._replan(slowed=slowed)
        elif isinstance(scn, DeviceFailure):
            if not self._alive[scn.device]:
                return
            self._alive[scn.device] = False
            self._emit(ev.DeviceFailed(self._now, scn.device))
            self._replan(failed=scn.device, fallback=scn.fallback)

    def _replan(
        self,
        failed: Optional[int] = None,
        fallback: Optional[int] = None,
        slowed: Optional[int] = None,
    ) -> None:
        t = self._now
        # 1) roll back every commitment that has not started yet (start >= t:
        #    same-instant starts realize after the scenario, see the rank
        #    order); kill running tasks on a failed device (done tasks are
        #    never touched)
        for js in self._jobs:
            for i in range(js.model.n):
                if not js.committed[i] or js.done[i]:
                    continue
                if js.start[i] >= t:
                    js.committed[i] = False
                    js.gen[i] += 1
                elif failed is not None and js.mapping[i] == failed:
                    js.committed[i] = False
                    js.gen[i] += 1
                    js.state[i] = _RELEASED
                    js.n_killed += 1
                    partial = t - js.start[i]
                    self._busy[failed] += partial
                    # energy burned on the rolled-back execution — and on
                    # the input transfers it already paid — is real; it
                    # stays in the totals and is surfaced as waste
                    burned = partial * self._watts_active[failed]
                    self._e_compute_j += burned
                    self._e_wasted_j += (
                        burned
                        + js.emodel.transfer_mb(js.mapping, i) * JOULES_PER_MB
                    )
                    self._emit(ev.TaskKilled(t, js.name, js.model.tasks[i], failed))

        # 2) move unfinished work off the failed device (area-aware: a
        #    fallback that would blow an FPGA budget is skipped for the
        #    next surviving device).  With a replan policy, *every*
        #    not-yet-started task may move: the policy re-runs a mapper on
        #    the surviving platform and the fresh mapping is spliced in.
        if failed is not None and fallback is not None and not self._alive[fallback]:
            # the designated fallback is itself dead: record it loudly
            # (the area-aware _remap_tasks path takes over) instead of
            # silently coercing to None
            self._n_fallback_dead += 1
            self._emit(ev.FallbackDead(t, fallback, failed))
            fallback = None
        if failed is not None or slowed is not None:
            policy = self.replan_policy
            for js in self._jobs:
                movable = [
                    i for i in range(js.model.n)
                    if not js.done[i] and not js.committed[i]
                ]
                if slowed is not None and failed is None and not any(
                    js.mapping[i] == slowed for i in movable
                ):
                    continue  # the slowdown cannot affect this job's plan
                proposal = None
                if policy is not None and movable:
                    proposal = policy.propose(ReplanContext(
                        graph=js.model.graph,
                        platform=self.platform,
                        alive=tuple(self._alive),
                        mapping=tuple(js.mapping),
                        movable=tuple(movable),
                        failed=failed,
                        fallback=fallback,
                        slowed=slowed,
                        speed=tuple(self._speed),
                    ))
                if proposal is None:
                    if failed is None:
                        continue  # slowdown-only: nothing is stranded
                    stranded = [
                        i for i in movable if js.mapping[i] == failed
                    ]
                    targets = self._remap_tasks(js, stranded, fallback)
                else:
                    targets = self._remap_tasks(
                        js, movable, fallback, desired=proposal
                    )
                for i, target in targets.items():
                    old = js.mapping[i]
                    if target == old:
                        continue
                    js.mapping[i] = target
                    # any logged TaskReady named the old device; re-announce
                    # readiness on the device the task will actually run on
                    js.state[i] = _RELEASED
                    js.n_remapped += 1
                    self._emit(ev.TaskRemapped(
                        t, js.name, js.model.tasks[i], old, target
                    ))

        # 3) rebuild the planning frontier of every uncommitted task
        for js in self._jobs:
            model = js.model
            for i in range(model.n):
                if js.committed[i]:
                    continue
                d = js.mapping[i]
                rv = js.input_ready(i)
                drain = 0.0
                streamed = False
                unknown = 0
                for k, (p, row) in enumerate(model._pred[i]):
                    if not js.committed[p]:
                        unknown += 1
                        continue
                    dp = js.mapping[p]
                    if dp == d and self._streaming[d]:
                        contrib = js.start[p] + js.fill_actual[p]
                        streamed = True
                        if js.finish[p] > drain:
                            drain = js.finish[p]
                    else:
                        contrib = js.finish[p] + row[dp][d] * js.trans_f[i][k]
                    if contrib > rv:
                        rv = contrib
                js.ready_val[i] = rv
                js.drain[i] = drain
                js.streamed[i] = streamed
                js.unknown[i] = unknown

        # 4) rebuild device queues and slot availability, then replan
        m = self.platform.n_devices
        self._queues = [[] for _ in range(m)]
        self._heads = [0] * m
        for js in self._jobs:
            for i in js.order:
                if not js.committed[i]:
                    self._queues[js.mapping[i]].append((js.idx, i))
        for d in range(m):
            if not self._serializes[d]:
                continue
            avail = [0.0] * len(self._avail[d])
            for js in self._jobs:
                for i in range(js.model.n):
                    if js.committed[i] and js.mapping[i] == d and js.slot[i] >= 0:
                        if js.finish[i] > avail[js.slot[i]]:
                            avail[js.slot[i]] = js.finish[i]
            self._avail[d] = avail
        # shared-resource state follows the same rebuild discipline: link
        # slots stay busy for transfers of still-committed work (a done
        # task's result transfer may outlive it); rolled-back tasks'
        # claims evaporate and are re-queued when they recommit.  The
        # area ledger keeps the claims of committed, unfinished tasks.
        if self._link_pools is not None:
            link_pools = [[0.0] * len(pool) for pool in self._link_pools]
            for js in self._jobs:
                for i in range(js.model.n):
                    if js.committed[i]:
                        for pool, s, end in js.link_claims[i]:
                            if end > link_pools[pool][s]:
                                link_pools[pool][s] = end
            self._link_pools = link_pools
        if self._area_claims:
            claims: Dict[int, List[Tuple[float, float, float]]] = {
                d: [] for d in self._area_caps
            }
            for js in self._jobs:
                area = js.model._area
                for i in range(js.model.n):
                    if js.committed[i] and not js.done[i]:
                        d = js.mapping[i]
                        if d in claims and area[i] > 0.0:
                            claims[d].append(
                                (js.start[i], js.finish[i], float(area[i]))
                            )
            self._area_claims = claims
        self._cascade()

    # ------------------------------------------------------------------
    def _build_trace(self) -> RuntimeTrace:
        jobs = []
        for js in self._jobs:
            model = js.model
            tasks = [
                TaskTrace(
                    task=model.tasks[i],
                    index=i,
                    device=js.mapping[i],
                    slot=js.slot[i],
                    ready=js.ready[i],
                    start=js.start[i],
                    finish=js.finish[i],
                    streamed=js.streamed[i],
                    waited=max(0.0, js.start[i] - js.ready[i]),
                )
                for i in js.order
            ]
            jobs.append(JobResult(
                name=js.name,
                arrival=js.arrival,
                completion=js.completion,
                tasks=tasks,
                n_killed=js.n_killed,
                n_remapped=js.n_remapped,
            ))
        makespan = max((job.completion for job in jobs), default=0.0)
        # idle floor over the serving horizon (first arrival -> last
        # completion, the same window throughput_report measures): a job
        # arriving at t is not charged platform idle for [0, t), keeping
        # engine energy == EnergyModel.energy for clean runs at any
        # arrival offset
        horizon = makespan - min((job.arrival for job in jobs), default=0.0)
        trace = RuntimeTrace(
            jobs=jobs,
            events=self._log,
            makespan=makespan,
            device_busy=list(self._busy),
            n_fallback_dead=self._n_fallback_dead,
            area_wait_time=self._area_wait_total,
            n_area_waits=self._n_area_waits,
            link_wait_time=self._link_wait_total,
            n_link_waits=self._n_link_waits,
            compute_energy_j=self._e_compute_j,
            transfer_energy_j=self._e_mb * JOULES_PER_MB,
            idle_energy_j=horizon * self._watts_idle_total,
            wasted_energy_j=self._e_wasted_j,
        )
        registry = _metrics.get_registry()
        if registry is not None:
            # Absorb the run's shared-resource aggregates (write-only;
            # nothing in the engine ever reads these back).
            registry.counter("runtime.runs").inc()
            registry.counter("runtime.jobs").inc(len(jobs))
            registry.counter("runtime.n_killed").inc(
                sum(j.n_killed for j in jobs))
            registry.counter("runtime.n_remapped").inc(
                sum(j.n_remapped for j in jobs))
            registry.counter("runtime.n_fallback_dead").inc(
                trace.n_fallback_dead)
            registry.counter("runtime.area_wait_time").inc(
                trace.area_wait_time)
            registry.counter("runtime.n_area_waits").inc(trace.n_area_waits)
            registry.counter("runtime.link_wait_time").inc(
                trace.link_wait_time)
            registry.counter("runtime.n_link_waits").inc(trace.n_link_waits)
            registry.counter("runtime.wasted_energy_j").inc(
                trace.wasted_energy_j)
            registry.histogram("runtime.makespan").observe(makespan)
            for job in jobs:
                registry.histogram("runtime.job_latency").observe(
                    job.completion - job.arrival)
        return trace


# ---------------------------------------------------------------------------
def simulate_mapping(
    graph: TaskGraph,
    platform: Platform,
    mapping: Sequence[int],
    *,
    noise: Optional[PerturbationModel] = None,
    scenarios: Sequence[Scenario] = (),
    order: Optional[Sequence[int]] = None,
    rng: Union[None, int, np.random.Generator] = None,
    name: str = "job0",
    replan_policy: Union[None, str, ReplanPolicy] = None,
    link_slots: Optional[int] = None,
    slowdown_replan_threshold: float = 2.0,
) -> RuntimeTrace:
    """Run one static mapping through the engine and return its trace."""
    engine = RuntimeEngine(
        platform, noise=noise, scenarios=scenarios,
        replan_policy=replan_policy, link_slots=link_slots,
        slowdown_replan_threshold=slowdown_replan_threshold,
    )
    return engine.run(Job(graph, mapping, name=name, order=order), rng=rng)
