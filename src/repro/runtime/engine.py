"""Event-driven execution engine for static mappings under dynamic scenarios.

The analytic evaluator (:class:`repro.evaluation.costmodel.CostModel`) is a
*planning* recurrence: it claims device slots task by task along a fixed
priority order, so a later-priority task may legally start earlier in time
than the decision that scheduled it.  A naive work-conserving event
simulator ("start the highest-priority ready task whenever a slot idles")
does **not** reproduce that recurrence.  This engine therefore separates

- **commitment** — scheduling decisions, made per device in strict priority
  order the moment all information a decision needs is available (all
  predecessor finish times known, all earlier-priority tasks on the device
  committed), exactly like the analytic pass; and
- **realization** — a classic discrete-event heap that plays the committed
  ready/start/finish instants back in time order, drives the task state
  machine released → ready → running → done, and logs the typed records of
  :mod:`repro.runtime.events`.

With zero noise and no scenarios the commitment cascade *is* the analytic
recurrence (same tables, same slot tie-breaking, same streaming/drain
rules), so the engine's makespan equals ``CostModel.simulate()`` exactly —
the simulator is a strict generalization of the model, and the test suite
pins this invariant across every graph generator family.

Dynamic behaviour enters through interruptions, in the spirit of the
HeSP simulation framework and dask.distributed's scheduler state machine:
when a :class:`~repro.runtime.scenarios.DeviceSlowdown` or
:class:`~repro.runtime.scenarios.DeviceFailure` fires at time *t*, every
commitment that has not started yet (``start >= t``) is rolled back, running
tasks on a failed device are killed and remapped, and the cascade replans
from the surviving state — decisions made before *t* are never rewritten.
Stochastic runtimes come from :mod:`repro.runtime.stochastic` factors that
are drawn once per task at submission, so replanning never resamples noise
and a seed fully determines the trace.

Multi-job arrival streams share the platform FIFO: tasks of later arrivals
queue behind all unfinished tasks of earlier jobs on the same device.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..evaluation.costmodel import CostModel
from ..evaluation.trace import TaskTrace
from ..graphs.taskgraph import TaskGraph
from ..platform.platform import Platform
from . import events as ev
from .replan import ReplanContext, ReplanPolicy, make_replan_policy
from .scenarios import DeviceFailure, DeviceSlowdown, Job, Scenario
from .stochastic import NoNoise, PerturbationModel

__all__ = ["RuntimeEngine", "JobResult", "RuntimeTrace", "simulate_mapping"]

# heap ranks at equal timestamps: arrivals first; then readies and
# finishes; then scenario mutations; then starts (so a task finishing
# exactly at the scenario time counts as done, while one starting exactly
# then has *not* begun and is replanned under the new platform state — a
# slowdown at t therefore affects every start >= t); job completions
# last.  Rolled-back realizations are invalidated by generation counters.
_ARRIVAL, _READY, _FINISH, _SCENARIO, _START, _JOB_DONE = range(6)

# task states (released -> ready -> running -> done; kills rewind to released)
_RELEASED, _READY_ST, _RUNNING, _DONE = range(4)


@dataclass
class JobResult:
    """Outcome of one job: completion time and per-task execution records."""

    name: str
    arrival: float
    completion: float          # absolute time incl. final host transfers
    tasks: List[TaskTrace]
    n_killed: int = 0          # task executions lost to device failures
    n_remapped: int = 0        # tasks moved off a failed device

    @property
    def makespan(self) -> float:
        """Job-relative makespan (completion − arrival)."""
        return self.completion - self.arrival


@dataclass
class RuntimeTrace:
    """Full record of one engine run.

    Duck-compatible with :class:`repro.evaluation.trace.ScheduleTrace`
    (``tasks`` / ``makespan`` / ``device_busy``), so single-job traces
    render directly through :func:`repro.evaluation.trace.render_gantt`.
    """

    jobs: List[JobResult]
    events: List[ev.Event]
    makespan: float            # latest job completion (absolute time)
    device_busy: List[float]   # summed execution seconds per device
    #: failures whose designated fallback device was itself already dead
    n_fallback_dead: int = 0

    @property
    def tasks(self) -> List[TaskTrace]:
        return [t for job in self.jobs for t in job.tasks]

    @property
    def n_killed(self) -> int:
        return sum(job.n_killed for job in self.jobs)

    def by_device(self, device: int) -> List[TaskTrace]:
        return [t for t in self.tasks if t.device == device]

    def total_wait(self) -> float:
        return sum(t.waited for t in self.tasks)


class _JobState:
    """Mutable per-job simulation state (arrays indexed by task index)."""

    __slots__ = (
        "idx", "name", "arrival", "model", "order", "mapping",
        "exec_f", "trans_f", "init_f", "final_f", "succs",
        "committed", "done", "state", "gen",
        "ready_val", "unknown", "drain", "streamed",
        "start", "finish", "slot", "ready", "exec_actual", "fill_actual",
        "remaining", "completion", "n_killed", "n_remapped",
    )

    def __init__(
        self,
        idx: int,
        job: Job,
        model: CostModel,
        noise: PerturbationModel,
        rng: np.random.Generator,
    ) -> None:
        n = model.n
        self.idx = idx
        self.name = job.name or f"job{idx}"
        self.arrival = float(job.arrival)
        self.model = model
        order = list(job.order) if job.order is not None else list(model.bfs_order)
        if sorted(order) != list(range(n)):
            raise ValueError(f"job {self.name}: order is not a permutation")
        self.order = order
        self.mapping = [int(d) for d in job.mapping]
        if len(self.mapping) != n:
            raise ValueError(f"job {self.name}: mapping has wrong length")
        if min(self.mapping) < 0 or max(self.mapping) >= model.m:
            raise ValueError(f"job {self.name}: device index out of range")

        # noise factors, sampled once in a fixed order (see stochastic.py)
        self.exec_f = [1.0] * n
        self.trans_f: List[List[float]] = [[] for _ in range(n)]
        self.init_f = [1.0] * n
        self.final_f = [1.0] * n
        if not noise.deterministic:
            for i in range(n):
                self.exec_f[i] = noise.exec_factor(rng)
                self.trans_f[i] = [
                    noise.transfer_factor(rng) for _ in model._pred[i]
                ]
                self.init_f[i] = noise.transfer_factor(rng)
                self.final_f[i] = noise.transfer_factor(rng)
        else:
            for i in range(n):
                self.trans_f[i] = [1.0] * len(model._pred[i])

        # successor contributions: succs[p] = [(consumer, pred-position)]
        self.succs: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for s in range(n):
            for k, (p, _row) in enumerate(model._pred[s]):
                self.succs[p].append((s, k))

        self.committed = [False] * n
        self.done = [False] * n
        self.state = [_RELEASED] * n
        self.gen = [0] * n
        self.unknown = [len(model._pred[i]) for i in range(n)]
        self.ready_val = [0.0] * n
        self.drain = [0.0] * n
        self.streamed = [False] * n
        self.start = [0.0] * n
        self.finish = [0.0] * n
        self.slot = [-1] * n
        self.ready = [0.0] * n
        self.exec_actual = [0.0] * n
        self.fill_actual = [0.0] * n
        self.remaining = n
        self.completion = float("inf")
        self.n_killed = 0
        self.n_remapped = 0
        for i in range(n):
            self.ready_val[i] = self.input_ready(i)

    def input_ready(self, i: int) -> float:
        """Arrival plus the (jittered) host→device input transfer."""
        return self.arrival + self.model._initial[i][self.mapping[i]] * self.init_f[i]

    def end_time(self, i: int) -> float:
        """Finish plus the (jittered) device→host result transfer."""
        return self.finish[i] + self.model._final[i][self.mapping[i]] * self.final_f[i]


class RuntimeEngine:
    """Discrete-event executor of static mappings on one platform."""

    def __init__(
        self,
        platform: Platform,
        *,
        noise: Optional[PerturbationModel] = None,
        scenarios: Sequence[Scenario] = (),
        replan_policy: Union[None, str, ReplanPolicy] = None,
    ) -> None:
        self.platform = platform
        self.noise = noise if noise is not None else NoNoise()
        self.replan_policy = make_replan_policy(replan_policy)
        self.scenarios = sorted(scenarios, key=lambda s: s.time)
        m = platform.n_devices
        for scn in self.scenarios:
            if isinstance(scn, (DeviceSlowdown, DeviceFailure)):
                if not 0 <= scn.device < m:
                    raise ValueError(f"scenario device {scn.device} out of range")
                if isinstance(scn, DeviceFailure) and scn.fallback is not None:
                    if not 0 <= scn.fallback < m:
                        raise ValueError(
                            f"fallback device {scn.fallback} out of range"
                        )
            else:
                raise TypeError(f"unknown scenario type {type(scn).__name__}")
        self._models: Dict[int, CostModel] = {}

    # ------------------------------------------------------------------
    def _model_for(self, graph: TaskGraph) -> CostModel:
        model = self._models.get(id(graph))
        if model is None or model.graph is not graph:
            if len(self._models) >= 64:  # bound a long-lived engine's cache
                self._models.clear()
            model = CostModel(graph, self.platform)
            self._models[id(graph)] = model
        return model

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Union[Job, Sequence[Job]],
        rng: Union[None, int, np.random.Generator] = None,
    ) -> RuntimeTrace:
        """Execute ``jobs`` under this engine's noise and scenarios."""
        if isinstance(jobs, Job):
            jobs = [jobs]
        if not jobs:
            raise ValueError("need at least one job")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(0 if rng is None else rng)

        m = self.platform.n_devices
        devices = self.platform.devices
        self._speed = [1.0] * m
        self._alive = [True] * m
        self._avail: List[List[float]] = [
            [0.0] * d.slots if d.serializes else [] for d in devices
        ]
        self._serializes = [d.serializes for d in devices]
        self._streaming = [d.streaming for d in devices]
        self._queues: List[List[Tuple[int, int]]] = [[] for _ in range(m)]
        self._heads = [0] * m
        self._busy = [0.0] * m
        self._jobs: List[_JobState] = []
        self._log: List[ev.Event] = []
        self._heap: List[tuple] = []
        self._seq = 0
        self._now = 0.0
        self._n_fallback_dead = 0

        for k, job in enumerate(sorted(jobs, key=lambda j: j.arrival)):
            self._push(job.arrival, _ARRIVAL, ("arrival", job))
        for scn in self.scenarios:
            self._push(scn.time, _SCENARIO, ("scenario", scn))

        while self._heap:
            t, rank, _seq, payload = heapq.heappop(self._heap)
            self._now = t
            kind = payload[0]
            if kind == "arrival":
                self._handle_arrival(payload[1], rng)
            elif kind == "scenario":
                self._apply_scenario(payload[1])
            elif kind == "ready":
                self._realize_ready(*payload[1:])
            elif kind == "start":
                self._realize_start(*payload[1:])
            elif kind == "finish":
                self._realize_finish(*payload[1:])
            else:  # job-done
                self._realize_job_done(payload[1])

        for js in self._jobs:
            if js.remaining > 0:
                raise ValueError(
                    f"job {js.name}: priority order is not topological "
                    f"({js.remaining} task(s) never became ready)"
                )
        return self._build_trace()

    # ------------------------------------------------------------------
    # heap / log helpers
    # ------------------------------------------------------------------
    def _push(self, time: float, rank: int, payload: tuple) -> None:
        heapq.heappush(self._heap, (time, rank, self._seq, payload))
        self._seq += 1

    def _emit(self, record: ev.Event) -> None:
        self._log.append(record)

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------
    def _handle_arrival(self, job: Job, rng: np.random.Generator) -> None:
        model = self._model_for(job.graph)
        js = _JobState(len(self._jobs), job, model, self.noise, rng)
        self._emit(ev.JobArrived(self._now, js.name))
        # tasks targeted at an already-dead device move to a surviving,
        # area-feasible device; with a replan policy the whole arriving
        # job (nothing has started yet) is spliced onto the policy's
        # mapping for the surviving platform, same as a mid-run failure
        dead = [i for i in range(model.n) if not self._alive[js.mapping[i]]]
        if dead:
            proposal = None
            if self.replan_policy is not None:
                proposal = self.replan_policy.propose(ReplanContext(
                    graph=model.graph,
                    platform=self.platform,
                    alive=tuple(self._alive),
                    mapping=tuple(js.mapping),
                    movable=tuple(range(model.n)),
                    failed=None,
                    fallback=None,
                ))
            if proposal is None:
                targets = self._remap_tasks(js, dead, None)
            else:
                targets = self._remap_tasks(
                    js, list(range(model.n)), None, desired=proposal
                )
            for i, target in targets.items():
                old = js.mapping[i]
                if target == old:
                    continue
                js.mapping[i] = target
                js.ready_val[i] = js.input_ready(i)
                js.n_remapped += 1
                self._emit(ev.TaskRemapped(
                    self._now, js.name, model.tasks[i], old, target
                ))
        if not model.is_feasible(js.mapping):
            raise ValueError(
                f"job {js.name}: mapping violates an area budget "
                f"(usage {model.area_usage(js.mapping)})"
            )
        self._jobs.append(js)
        for i in js.order:
            self._queues[js.mapping[i]].append((js.idx, i))
        self._cascade()

    # ------------------------------------------------------------------
    # commitment cascade (the analytic recurrence, incrementalized)
    # ------------------------------------------------------------------
    def _cascade(self) -> None:
        work = deque(range(self.platform.n_devices))
        while work:
            d = work.popleft()
            q = self._queues[d]
            while self._heads[d] < len(q):
                j, i = q[self._heads[d]]
                js = self._jobs[j]
                if js.unknown[i] > 0:
                    break
                self._heads[d] += 1
                self._commit(js, i, d, work)

    def _commit(self, js: _JobState, i: int, d: int, work: deque) -> None:
        model = js.model
        r = js.ready_val[i]
        slot = -1
        st = r if r > self._now else self._now
        if self._serializes[d]:
            slots_d = self._avail[d]
            slot = 0
            earliest = slots_d[0]
            for k in range(1, len(slots_d)):
                if slots_d[k] < earliest:
                    earliest = slots_d[k]
                    slot = k
            if earliest > st:
                st = earliest
        speed = self._speed[d]
        exec_t = model._exec[i][d] * js.exec_f[i] * speed
        fin = st + exec_t
        if js.drain[i] > fin:
            fin = js.drain[i]
        if slot >= 0:
            self._avail[d][slot] = fin
        js.committed[i] = True
        js.ready[i] = r
        js.start[i] = st
        js.finish[i] = fin
        js.slot[i] = slot
        js.exec_actual[i] = exec_t
        js.fill_actual[i] = model._fill[i][d] * js.exec_f[i] * speed

        gen = js.gen[i]
        if js.state[i] == _RELEASED:
            self._push(max(r, self._now), _READY, ("ready", js.idx, i, gen))
        self._push(st, _START, ("start", js.idx, i, gen))
        self._push(fin, _FINISH, ("finish", js.idx, i, gen))

        # propagate contributions to (necessarily uncommitted) successors
        for s, k in js.succs[i]:
            ds = js.mapping[s]
            if ds == d and self._streaming[d]:
                contrib = st + js.fill_actual[i]
                js.streamed[s] = True
                if fin > js.drain[s]:
                    js.drain[s] = fin
            else:
                contrib = fin + model._pred[s][k][1][d][ds] * js.trans_f[s][k]
            if contrib > js.ready_val[s]:
                js.ready_val[s] = contrib
            js.unknown[s] -= 1
            if js.unknown[s] == 0:
                work.append(ds)

    # ------------------------------------------------------------------
    # realizations
    # ------------------------------------------------------------------
    def _realize_ready(self, j: int, i: int, gen: int) -> None:
        js = self._jobs[j]
        if gen != js.gen[i] or js.state[i] != _RELEASED:
            return
        js.state[i] = _READY_ST
        self._emit(ev.TaskReady(self._now, js.name, js.model.tasks[i], js.mapping[i]))

    def _realize_start(self, j: int, i: int, gen: int) -> None:
        js = self._jobs[j]
        if gen != js.gen[i]:
            return
        js.state[i] = _RUNNING
        self._emit(ev.TaskStarted(
            self._now, js.name, js.model.tasks[i], js.mapping[i], js.slot[i]
        ))

    def _realize_finish(self, j: int, i: int, gen: int) -> None:
        js = self._jobs[j]
        if gen != js.gen[i]:
            return
        js.done[i] = True
        js.state[i] = _DONE
        self._busy[js.mapping[i]] += js.exec_actual[i]
        self._emit(ev.TaskFinished(self._now, js.name, js.model.tasks[i], js.mapping[i]))
        js.remaining -= 1
        if js.remaining == 0:
            completion = max(js.end_time(i) for i in range(js.model.n))
            js.completion = completion
            self._push(completion, _JOB_DONE, ("job-done", j))

    def _realize_job_done(self, j: int) -> None:
        js = self._jobs[j]
        self._emit(ev.JobCompleted(self._now, js.name, js.completion - js.arrival))

    # ------------------------------------------------------------------
    # scenarios: rollback + replan
    # ------------------------------------------------------------------
    def _remap_tasks(
        self,
        js: _JobState,
        tasks: List[int],
        preferred: Optional[int],
        desired: Optional[Dict[int, int]] = None,
    ) -> Dict[int, int]:
        """Pick an alive, area-feasible target device for each task.

        Area budgets are per job (see :mod:`repro.runtime.scenarios`):
        usage counts every task still mapped to an area-limited device —
        including finished ones, whose bitstreams occupied the fabric —
        minus the tasks being moved.  Preference order: the task's entry
        in ``desired`` (a replan policy's proposal — tried first when the
        device is alive, so an overflowing or dead proposal degrades
        gracefully), then the explicit fallback device, then lowest index.
        """
        if not tasks:
            return {}
        model = js.model
        limits = model._area_limits
        moving = set(tasks)
        usage = {d: 0.0 for d in limits}
        for i in range(model.n):
            d = js.mapping[i]
            if d in usage and i not in moving:
                usage[d] += model._area[i]
        candidates = [d for d in range(self.platform.n_devices) if self._alive[d]]
        if not candidates:
            raise RuntimeError("all devices have failed")
        if preferred is not None and preferred in candidates:
            candidates.remove(preferred)
            candidates.insert(0, preferred)
        targets: Dict[int, int] = {}
        for i in tasks:
            order = candidates
            if desired is not None:
                want = desired.get(i, js.mapping[i])
                if self._alive[want]:
                    order = [want] + [d for d in candidates if d != want]
            area = model._area[i]
            for d in order:
                if d in limits and usage[d] + area > limits[d] + 1e-9:
                    continue
                targets[i] = d
                if d in limits:
                    usage[d] += area
                break
            else:
                raise RuntimeError(
                    f"job {js.name}: no surviving device can host task "
                    f"{model.tasks[i]} within its area budget"
                )
        return targets

    def _apply_scenario(self, scn: Scenario) -> None:
        if isinstance(scn, DeviceSlowdown):
            if not self._alive[scn.device]:
                return
            self._speed[scn.device] *= scn.factor
            self._emit(ev.DeviceSlowed(self._now, scn.device, scn.factor))
            self._replan()
        elif isinstance(scn, DeviceFailure):
            if not self._alive[scn.device]:
                return
            self._alive[scn.device] = False
            self._emit(ev.DeviceFailed(self._now, scn.device))
            self._replan(failed=scn.device, fallback=scn.fallback)

    def _replan(
        self, failed: Optional[int] = None, fallback: Optional[int] = None
    ) -> None:
        t = self._now
        # 1) roll back every commitment that has not started yet (start >= t:
        #    same-instant starts realize after the scenario, see the rank
        #    order); kill running tasks on a failed device (done tasks are
        #    never touched)
        for js in self._jobs:
            for i in range(js.model.n):
                if not js.committed[i] or js.done[i]:
                    continue
                if js.start[i] >= t:
                    js.committed[i] = False
                    js.gen[i] += 1
                elif failed is not None and js.mapping[i] == failed:
                    js.committed[i] = False
                    js.gen[i] += 1
                    js.state[i] = _RELEASED
                    js.n_killed += 1
                    self._busy[failed] += t - js.start[i]
                    self._emit(ev.TaskKilled(t, js.name, js.model.tasks[i], failed))

        # 2) move unfinished work off the failed device (area-aware: a
        #    fallback that would blow an FPGA budget is skipped for the
        #    next surviving device).  With a replan policy, *every*
        #    not-yet-started task may move: the policy re-runs a mapper on
        #    the surviving platform and the fresh mapping is spliced in.
        if failed is not None:
            if fallback is not None and not self._alive[fallback]:
                # the designated fallback is itself dead: record it loudly
                # (the area-aware _remap_tasks path takes over) instead of
                # silently coercing to None
                self._n_fallback_dead += 1
                self._emit(ev.FallbackDead(t, fallback, failed))
                fallback = None
            policy = self.replan_policy
            for js in self._jobs:
                movable = [
                    i for i in range(js.model.n)
                    if not js.done[i] and not js.committed[i]
                ]
                proposal = None
                if policy is not None and movable:
                    proposal = policy.propose(ReplanContext(
                        graph=js.model.graph,
                        platform=self.platform,
                        alive=tuple(self._alive),
                        mapping=tuple(js.mapping),
                        movable=tuple(movable),
                        failed=failed,
                        fallback=fallback,
                    ))
                if proposal is None:
                    stranded = [
                        i for i in movable if js.mapping[i] == failed
                    ]
                    targets = self._remap_tasks(js, stranded, fallback)
                else:
                    targets = self._remap_tasks(
                        js, movable, fallback, desired=proposal
                    )
                for i, target in targets.items():
                    old = js.mapping[i]
                    if target == old:
                        continue
                    js.mapping[i] = target
                    # any logged TaskReady named the old device; re-announce
                    # readiness on the device the task will actually run on
                    js.state[i] = _RELEASED
                    js.n_remapped += 1
                    self._emit(ev.TaskRemapped(
                        t, js.name, js.model.tasks[i], old, target
                    ))

        # 3) rebuild the planning frontier of every uncommitted task
        for js in self._jobs:
            model = js.model
            for i in range(model.n):
                if js.committed[i]:
                    continue
                d = js.mapping[i]
                rv = js.input_ready(i)
                drain = 0.0
                streamed = False
                unknown = 0
                for k, (p, row) in enumerate(model._pred[i]):
                    if not js.committed[p]:
                        unknown += 1
                        continue
                    dp = js.mapping[p]
                    if dp == d and self._streaming[d]:
                        contrib = js.start[p] + js.fill_actual[p]
                        streamed = True
                        if js.finish[p] > drain:
                            drain = js.finish[p]
                    else:
                        contrib = js.finish[p] + row[dp][d] * js.trans_f[i][k]
                    if contrib > rv:
                        rv = contrib
                js.ready_val[i] = rv
                js.drain[i] = drain
                js.streamed[i] = streamed
                js.unknown[i] = unknown

        # 4) rebuild device queues and slot availability, then replan
        m = self.platform.n_devices
        self._queues = [[] for _ in range(m)]
        self._heads = [0] * m
        for js in self._jobs:
            for i in js.order:
                if not js.committed[i]:
                    self._queues[js.mapping[i]].append((js.idx, i))
        for d in range(m):
            if not self._serializes[d]:
                continue
            avail = [0.0] * len(self._avail[d])
            for js in self._jobs:
                for i in range(js.model.n):
                    if js.committed[i] and js.mapping[i] == d and js.slot[i] >= 0:
                        if js.finish[i] > avail[js.slot[i]]:
                            avail[js.slot[i]] = js.finish[i]
            self._avail[d] = avail
        self._cascade()

    # ------------------------------------------------------------------
    def _build_trace(self) -> RuntimeTrace:
        jobs = []
        for js in self._jobs:
            model = js.model
            tasks = [
                TaskTrace(
                    task=model.tasks[i],
                    index=i,
                    device=js.mapping[i],
                    slot=js.slot[i],
                    ready=js.ready[i],
                    start=js.start[i],
                    finish=js.finish[i],
                    streamed=js.streamed[i],
                    waited=max(0.0, js.start[i] - js.ready[i]),
                )
                for i in js.order
            ]
            jobs.append(JobResult(
                name=js.name,
                arrival=js.arrival,
                completion=js.completion,
                tasks=tasks,
                n_killed=js.n_killed,
                n_remapped=js.n_remapped,
            ))
        makespan = max((job.completion for job in jobs), default=0.0)
        return RuntimeTrace(
            jobs=jobs,
            events=self._log,
            makespan=makespan,
            device_busy=list(self._busy),
            n_fallback_dead=self._n_fallback_dead,
        )


# ---------------------------------------------------------------------------
def simulate_mapping(
    graph: TaskGraph,
    platform: Platform,
    mapping: Sequence[int],
    *,
    noise: Optional[PerturbationModel] = None,
    scenarios: Sequence[Scenario] = (),
    order: Optional[Sequence[int]] = None,
    rng: Union[None, int, np.random.Generator] = None,
    name: str = "job0",
    replan_policy: Union[None, str, ReplanPolicy] = None,
) -> RuntimeTrace:
    """Run one static mapping through the engine and return its trace."""
    engine = RuntimeEngine(
        platform, noise=noise, scenarios=scenarios, replan_policy=replan_policy
    )
    return engine.run(Job(graph, mapping, name=name, order=order), rng=rng)
