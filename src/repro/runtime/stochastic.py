"""Pluggable perturbation models for execution and transfer times.

A :class:`PerturbationModel` turns the cost model's *nominal* times into
sampled *actual* times by drawing one multiplicative factor per task
execution and per data transfer.  All distributions are normalized to
**mean 1**, so the analytic makespan stays the natural center of the
perturbed ensemble and the degradation metrics in
:mod:`repro.runtime.metrics` measure pure variability cost, not a shifted
workload.

Factors are drawn once per task/transfer when a job is submitted, from the
engine's seeded :class:`numpy.random.Generator`, in a fixed order (task by
task: execution, input transfers, host I/O).  This gives the engine its
reproducibility contract — same seed, same trace — and keeps scenario
replanning (which recommits tasks) from resampling noise.

:class:`NoNoise` never touches the generator, so deterministic runs are
bit-identical regardless of seeding — the zero-noise equivalence invariant
against :meth:`repro.evaluation.costmodel.CostModel.simulate` depends on
this.
"""

from __future__ import annotations

import abc
import math

import numpy as np

__all__ = ["PerturbationModel", "NoNoise", "LognormalNoise", "GammaNoise"]


class PerturbationModel(abc.ABC):
    """Multiplicative noise on execution and transfer times (mean 1)."""

    #: True iff both factors are the constant 1.0 (no RNG consumption).
    deterministic: bool = False

    @abc.abstractmethod
    def exec_factor(self, rng: np.random.Generator) -> float:
        """Factor applied to one task's execution (and pipeline-fill) time."""

    @abc.abstractmethod
    def transfer_factor(self, rng: np.random.Generator) -> float:
        """Factor applied to one data transfer (edge or host I/O) time."""

    def describe(self) -> str:
        return type(self).__name__


class NoNoise(PerturbationModel):
    """Deterministic runtimes: every factor is exactly 1."""

    deterministic = True

    def exec_factor(self, rng: np.random.Generator) -> float:
        return 1.0

    def transfer_factor(self, rng: np.random.Generator) -> float:
        return 1.0

    def describe(self) -> str:
        return "deterministic"


class LognormalNoise(PerturbationModel):
    """Mean-1 lognormal factors: ``exp(N(-sigma^2/2, sigma))``.

    ``sigma`` perturbs execution times; ``transfer_sigma`` (default 0:
    deterministic transfers) perturbs transfer times independently.
    Lognormal is the classic model for multiplicative runtime jitter —
    heavy right tail, never negative.
    """

    def __init__(self, sigma: float, transfer_sigma: float = 0.0) -> None:
        if sigma < 0 or transfer_sigma < 0:
            raise ValueError("noise levels must be non-negative")
        self.sigma = float(sigma)
        self.transfer_sigma = float(transfer_sigma)
        self.deterministic = sigma == 0.0 and transfer_sigma == 0.0

    @staticmethod
    def _factor(sigma: float, rng: np.random.Generator) -> float:
        if sigma == 0.0:
            return 1.0
        return float(math.exp(rng.normal(-0.5 * sigma * sigma, sigma)))

    def exec_factor(self, rng: np.random.Generator) -> float:
        return self._factor(self.sigma, rng)

    def transfer_factor(self, rng: np.random.Generator) -> float:
        return self._factor(self.transfer_sigma, rng)

    def describe(self) -> str:
        return (
            f"lognormal(sigma={self.sigma:g}, "
            f"transfer_sigma={self.transfer_sigma:g})"
        )


class GammaNoise(PerturbationModel):
    """Mean-1 gamma factors with coefficient of variation ``cv``.

    Shape ``1/cv^2`` and scale ``cv^2`` give mean 1 and standard deviation
    ``cv``.  Compared to the lognormal, the gamma has a lighter tail at
    equal variance — useful to check that robustness rankings are not an
    artifact of one distribution's tail.
    """

    def __init__(self, cv: float, transfer_cv: float = 0.0) -> None:
        if cv < 0 or transfer_cv < 0:
            raise ValueError("noise levels must be non-negative")
        self.cv = float(cv)
        self.transfer_cv = float(transfer_cv)
        self.deterministic = cv == 0.0 and transfer_cv == 0.0

    @staticmethod
    def _factor(cv: float, rng: np.random.Generator) -> float:
        if cv == 0.0:
            return 1.0
        shape = 1.0 / (cv * cv)
        return float(rng.gamma(shape, 1.0 / shape))

    def exec_factor(self, rng: np.random.Generator) -> float:
        return self._factor(self.cv, rng)

    def transfer_factor(self, rng: np.random.Generator) -> float:
        return self._factor(self.transfer_cv, rng)

    def describe(self) -> str:
        return f"gamma(cv={self.cv:g}, transfer_cv={self.transfer_cv:g})"
