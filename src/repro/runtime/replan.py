"""Online re-mapping policies: what to do with stranded work on failure.

When a :class:`~repro.runtime.scenarios.DeviceFailure` fires, the engine
must move every unfinished task off the dead device.  The baseline policy
(``"fallback"``) is the paper-era behaviour: dump stranded tasks onto a
fixed fallback device (or the lowest surviving index), area-aware but
blind to load balance — after a GPU failure the whole GPU queue lands on
the host CPU even while an idle FPGA survives.

A :class:`MapperReplanPolicy` instead *re-runs a static mapper on the
surviving platform*: it restricts the platform to the alive devices,
maps the job's graph from scratch with a configurable algorithm
(decomposition / HEFT / min-min), and the engine splices the fresh
mapping into the in-flight job — tasks that already finished or started
keep their devices and results; every not-yet-started task moves to the
device the re-run mapper chose for it.  Area budgets are re-validated at
splice time against the bitstreams the frozen tasks still occupy, so a
proposal that would overflow an FPGA degrades gracefully to the next
surviving feasible device instead of aborting the run.

Policies are deterministic: a policy holds its own seed, so a fixed
engine seed still fully determines the trace — the reproducibility
contract of :mod:`repro.runtime.engine` extends to replanning.

Select a policy by name (:func:`make_replan_policy`,
``repro simulate --replan-policy heft``) or pass an instance to
:class:`~repro.runtime.engine.RuntimeEngine`.
"""

from __future__ import annotations

import abc
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..graphs.taskgraph import TaskGraph
from ..platform.platform import Platform

__all__ = [
    "REPLAN_POLICY_NAMES",
    "ReplanContext",
    "ReplanPolicy",
    "MapperReplanPolicy",
    "make_replan_policy",
]


@dataclass(frozen=True)
class ReplanContext:
    """Snapshot handed to a policy when a device failure triggers a replan.

    ``movable`` lists the task indices the engine may move: tasks neither
    finished nor already started (committed decisions are never
    rewritten).  ``mapping`` is the job's full current mapping, including
    frozen tasks, so a policy can account for occupied FPGA area.
    ``failed`` names the device whose failure triggered the replan, or is
    ``None`` when a job *arrives* onto a platform that already lost
    devices (every task is movable then).
    """

    graph: TaskGraph
    platform: Platform
    alive: Tuple[bool, ...]
    mapping: Tuple[int, ...]
    movable: Tuple[int, ...]
    failed: Optional[int]
    fallback: Optional[int]

    def alive_indices(self) -> List[int]:
        return [d for d, ok in enumerate(self.alive) if ok]


class ReplanPolicy(abc.ABC):
    """Strategy interface: propose new devices for the movable tasks."""

    #: short name used by the CLI and the experiment tables
    name: str = ""

    @abc.abstractmethod
    def propose(self, ctx: ReplanContext) -> Optional[Dict[int, int]]:
        """Return ``{task_index: device_index}`` for (a subset of) the
        movable tasks, in *global* device indices, or ``None`` to fall
        back to the fixed-fallback behaviour.  The engine re-validates
        area feasibility; a proposal is a preference, not a contract.
        """


class _FixedFallbackPolicy(ReplanPolicy):
    """The legacy behaviour, as an explicit policy object."""

    name = "fallback"

    def propose(self, ctx: ReplanContext) -> Optional[Dict[int, int]]:
        return None


def _surviving_platform(platform: Platform, alive: Sequence[int]) -> Platform:
    """Restrict a platform to the given (sorted) device indices."""
    idx = np.asarray(alive, dtype=int)
    return Platform(
        [platform.devices[d] for d in alive],
        platform.bandwidth_gbps[np.ix_(idx, idx)],
        platform.latency_s[np.ix_(idx, idx)],
    )


class MapperReplanPolicy(ReplanPolicy):
    """Re-run a static mapper on the surviving platform and splice.

    ``factory`` builds a fresh :class:`~repro.mappers.base.Mapper` per
    proposal (mappers are cheap to construct; some are stateful during a
    run).  The policy owns its randomness: ``seed`` feeds both the
    evaluator's schedule suite and the mapper, so proposals are a pure
    function of (graph, surviving platform) and the engine's trace stays
    seed-deterministic.  Proposals are cached per (graph, alive-set) —
    weakly keyed on the graph object itself, so entries die with their
    graph and a recycled object can never be served a stale mapping —
    and repeated failures or multiple jobs on the same graph pay for one
    mapper run.

    Requires the host (device 0) to survive — the cost model stages all
    I/O through it — and falls back to the fixed-fallback path otherwise.
    """

    def __init__(
        self,
        factory: Callable[[], "object"],
        name: str,
        *,
        seed: int = 0,
        n_random_schedules: int = 8,
    ) -> None:
        self.factory = factory
        self.name = name
        self.seed = int(seed)
        self.n_random_schedules = int(n_random_schedules)
        self._cache: "weakref.WeakKeyDictionary[TaskGraph, Dict[Tuple[bool, ...], List[int]]]" = (
            weakref.WeakKeyDictionary()
        )

    def propose(self, ctx: ReplanContext) -> Optional[Dict[int, int]]:
        if not ctx.alive[ctx.platform.host_index]:
            return None  # no host left to stage transfers through
        alive = ctx.alive_indices()
        if len(alive) < 2:
            return None  # single survivor: nothing to optimize
        per_graph = self._cache.setdefault(ctx.graph, {})
        full = per_graph.get(ctx.alive)
        if full is None:
            full = self._map_surviving(ctx.graph, ctx.platform, alive)
            per_graph[ctx.alive] = full
        return {i: full[i] for i in ctx.movable}

    def _map_surviving(
        self, graph: TaskGraph, platform: Platform, alive: List[int]
    ) -> List[int]:
        from ..evaluation.evaluator import MappingEvaluator

        sub = _surviving_platform(platform, alive)
        evaluator = MappingEvaluator(
            graph,
            sub,
            rng=np.random.default_rng(self.seed),
            n_random_schedules=self.n_random_schedules,
        )
        result = self.factory().map(
            evaluator, rng=np.random.default_rng(self.seed)
        )
        return [alive[int(d)] for d in result.mapping]


def _decomposition_factory():
    from ..mappers import sp_first_fit

    return sp_first_fit()


def _heft_factory():
    from ..mappers import HeftMapper

    return HeftMapper()


def _minmin_factory():
    from ..mappers import MinMinMapper

    return MinMinMapper()


_FACTORIES: Dict[str, Callable[[], "object"]] = {
    "decomposition": _decomposition_factory,
    "heft": _heft_factory,
    "minmin": _minmin_factory,
}

#: names accepted by :func:`make_replan_policy` and the CLI
REPLAN_POLICY_NAMES: Tuple[str, ...] = ("fallback",) + tuple(sorted(_FACTORIES))


def make_replan_policy(
    spec: Union[None, str, ReplanPolicy], *, seed: int = 0
) -> Optional[ReplanPolicy]:
    """Resolve a policy spec: ``None``/``"fallback"`` → legacy behaviour.

    Returns ``None`` for the fixed-fallback default so the engine's hot
    path stays branch-free; any other name builds the matching
    :class:`MapperReplanPolicy`.  Policy instances pass through.
    """
    if spec is None:
        return None
    if isinstance(spec, ReplanPolicy):
        return None if isinstance(spec, _FixedFallbackPolicy) else spec
    name = str(spec)
    if name == "fallback":
        return None
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown replan policy {name!r}; "
            f"choose from {', '.join(REPLAN_POLICY_NAMES)}"
        )
    return MapperReplanPolicy(factory, name, seed=seed)
