"""Online re-mapping policies: what to do with stranded work on failure.

When a :class:`~repro.runtime.scenarios.DeviceFailure` fires, the engine
must move every unfinished task off the dead device.  The baseline policy
(``"fallback"``) is the paper-era behaviour: dump stranded tasks onto a
fixed fallback device (or the lowest surviving index), area-aware but
blind to load balance — after a GPU failure the whole GPU queue lands on
the host CPU even while an idle FPGA survives.

A :class:`MapperReplanPolicy` instead *re-runs a static mapper on the
surviving platform*: it restricts the platform to the alive devices,
maps the job's graph from scratch with a configurable algorithm
(decomposition / HEFT / min-min), and the engine splices the fresh
mapping into the in-flight job — tasks that already finished or started
keep their devices and results; every not-yet-started task moves to the
device the re-run mapper chose for it.  Area budgets are re-validated at
splice time against the bitstreams the frozen tasks still occupy, so a
proposal that would overflow an FPGA degrades gracefully to the next
surviving feasible device instead of aborting the run.

Failures are not the only trigger any more: a
:class:`~repro.runtime.scenarios.DeviceSlowdown` whose cumulative factor
crosses the engine's ``slowdown_replan_threshold`` asks the policy for a
fresh mapping on the *degraded* platform (device throughput scaled by
``1/factor``), and a job arriving while in-flight jobs hold most of the
FPGA fabric is routed through the policy with the device's
``area_capacity`` reduced to the residual — see
:class:`ReplanContext.speed` / :class:`ReplanContext.area_in_use`.

Policies are deterministic: a policy holds its own seed, so a fixed
engine seed still fully determines the trace — the reproducibility
contract of :mod:`repro.runtime.engine` extends to replanning.

Select a policy by name (:func:`make_replan_policy`,
``repro simulate --replan-policy heft``) or pass an instance to
:class:`~repro.runtime.engine.RuntimeEngine`.
"""

from __future__ import annotations

import abc
import dataclasses
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..graphs.taskgraph import TaskGraph
from ..platform.links import LinkGraph
from ..platform.platform import Platform

__all__ = [
    "REPLAN_POLICY_NAMES",
    "ReplanContext",
    "ReplanPolicy",
    "MapperReplanPolicy",
    "make_replan_policy",
]


@dataclass(frozen=True)
class ReplanContext:
    """Snapshot handed to a policy when the engine asks for a re-mapping.

    ``movable`` lists the task indices the engine may move: tasks neither
    finished nor already started (committed decisions are never
    rewritten).  ``mapping`` is the job's full current mapping, including
    frozen tasks, so a policy can account for occupied FPGA area.
    ``failed`` names the device whose failure triggered the replan;
    ``slowed`` the device whose cumulative slowdown crossed the engine's
    replan threshold.  Both are ``None`` when a job *arrives* onto a
    platform that already lost devices or whose FPGA area is largely
    claimed by in-flight jobs (every task is movable then).

    ``speed`` carries the engine's current per-device slowdown factors
    (execution time multipliers; empty = all 1.0) and ``area_in_use`` the
    reconfigurable area other in-flight jobs still hold per device, so a
    mapper-based policy can optimize against the platform *as it is now*
    rather than its nominal spec.
    """

    graph: TaskGraph
    platform: Platform
    alive: Tuple[bool, ...]
    mapping: Tuple[int, ...]
    movable: Tuple[int, ...]
    failed: Optional[int]
    fallback: Optional[int]
    #: device whose slowdown triggered the replan (None outside slowdowns)
    slowed: Optional[int] = None
    #: per-device execution-time multipliers (empty tuple = all 1.0)
    speed: Tuple[float, ...] = ()
    #: (device, area) pairs: fabric other in-flight jobs still occupy
    area_in_use: Tuple[Tuple[int, float], ...] = ()

    def alive_indices(self) -> List[int]:
        return [d for d, ok in enumerate(self.alive) if ok]


class ReplanPolicy(abc.ABC):
    """Strategy interface: propose new devices for the movable tasks."""

    #: short name used by the CLI and the experiment tables
    name: str = ""

    @abc.abstractmethod
    def propose(self, ctx: ReplanContext) -> Optional[Dict[int, int]]:
        """Return ``{task_index: device_index}`` for (a subset of) the
        movable tasks, in *global* device indices, or ``None`` to fall
        back to the fixed-fallback behaviour.  The engine re-validates
        area feasibility; a proposal is a preference, not a contract.
        """


class _FixedFallbackPolicy(ReplanPolicy):
    """The legacy behaviour, as an explicit policy object."""

    name = "fallback"

    def propose(self, ctx: ReplanContext) -> Optional[Dict[int, int]]:
        return None


def _surviving_platform(
    platform: Platform,
    alive: Sequence[int],
    speed: Sequence[float] = (),
    area_in_use: Sequence[Tuple[int, float]] = (),
) -> Platform:
    """Restrict a platform to the given (sorted) device indices.

    ``speed`` (global per-device execution-time multipliers) degrades a
    slowed device's throughput so a mapper sees it as it currently runs
    — ``lane_gops``/``stream_gops`` scale by ``1/factor``, a first-order
    model that treats the per-task ``setup_s`` as unaffected.
    ``area_in_use`` shrinks a device's ``area_capacity`` by the fabric
    other in-flight jobs still hold, so a proposal only counts on the
    residual area (floored just above zero: the :class:`Device`
    invariant requires a positive capacity, and no real task fits in
    ``1e-12`` area units).

    A topology-aware platform keeps its link graph when the links among
    the surviving devices still connect them (the induced subgraph, with
    endpoints reindexed); if the failure cut the graph — e.g. a star hub
    died — the restriction falls back to slicing the routed *effective*
    matrices, preserving transfer costs as they were even though some
    routes traversed the dead device.
    """
    used = dict(area_in_use)
    devices = []
    for d in alive:
        dev = platform.devices[d]
        changes = {}
        f = speed[d] if d < len(speed) else 1.0
        if f != 1.0:
            changes["lane_gops"] = dev.lane_gops / f
            if dev.stream_gops > 0:
                changes["stream_gops"] = dev.stream_gops / f
        if dev.area_capacity is not None and used.get(d, 0.0) > 0.0:
            changes["area_capacity"] = max(
                dev.area_capacity - used[d], 1e-12
            )
        devices.append(dataclasses.replace(dev, **changes) if changes else dev)
    if platform.link_graph is not None:
        remap = {int(d): k for k, d in enumerate(alive)}
        links = [
            dataclasses.replace(l, a=remap[l.a], b=remap[l.b])
            for l in platform.link_graph.links
            if l.a in remap and l.b in remap
        ]
        try:
            sub_graph = LinkGraph(len(devices), links)
        except ValueError:
            sub_graph = None  # surviving links no longer connect the devices
        if sub_graph is not None:
            return Platform(
                devices, link_slots=platform.link_slots, link_graph=sub_graph
            )
    idx = np.asarray(alive, dtype=int)
    return Platform(
        devices,
        platform.bandwidth_gbps[np.ix_(idx, idx)],
        platform.latency_s[np.ix_(idx, idx)],
        link_slots=platform.link_slots,
    )


class MapperReplanPolicy(ReplanPolicy):
    """Re-run a static mapper on the surviving platform and splice.

    ``factory`` builds a fresh :class:`~repro.mappers.base.Mapper` per
    proposal (mappers are cheap to construct; some are stateful during a
    run).  The policy owns its randomness: ``seed`` feeds both the
    evaluator's schedule suite and the mapper, so proposals are a pure
    function of (graph, surviving platform) and the engine's trace stays
    seed-deterministic.  Proposals are cached per (graph, alive-set,
    speed factors) — weakly keyed on the graph object itself, so entries
    die with their graph and a recycled object can never be served a
    stale mapping — and repeated failures or multiple jobs on the same
    graph pay for one mapper run.  Area-pressured arrivals are the
    exception: the in-flight usage is a fresh float every time, so those
    proposals are computed uncached.

    Requires the host (device 0) to survive — the cost model stages all
    I/O through it — and falls back to the fixed-fallback path otherwise.
    """

    def __init__(
        self,
        factory: Callable[[], "object"],
        name: str,
        *,
        seed: int = 0,
        n_random_schedules: int = 8,
    ) -> None:
        self.factory = factory
        self.name = name
        self.seed = int(seed)
        self.n_random_schedules = int(n_random_schedules)
        self._cache: "weakref.WeakKeyDictionary[TaskGraph, Dict[tuple, List[int]]]" = (
            weakref.WeakKeyDictionary()
        )

    def propose(self, ctx: ReplanContext) -> Optional[Dict[int, int]]:
        if not ctx.alive[ctx.platform.host_index]:
            return None  # no host left to stage transfers through
        alive = ctx.alive_indices()
        if len(alive) < 2:
            return None  # single survivor: nothing to optimize
        if ctx.area_in_use:
            # area-pressured arrivals see an essentially unique in-flight
            # usage every time: caching those floats would miss forever
            # while growing the per-graph dict without bound, so compute
            # fresh and store nothing
            full = self._map_surviving(
                ctx.graph, ctx.platform, alive, ctx.speed, ctx.area_in_use
            )
            return {i: full[i] for i in ctx.movable}
        per_graph = self._cache.setdefault(ctx.graph, {})
        key = (ctx.alive, ctx.speed)
        full = per_graph.get(key)
        if full is None:
            full = self._map_surviving(
                ctx.graph, ctx.platform, alive, ctx.speed
            )
            per_graph[key] = full
        return {i: full[i] for i in ctx.movable}

    def _map_surviving(
        self,
        graph: TaskGraph,
        platform: Platform,
        alive: List[int],
        speed: Tuple[float, ...] = (),
        area_in_use: Tuple[Tuple[int, float], ...] = (),
    ) -> List[int]:
        from ..evaluation.evaluator import MappingEvaluator

        sub = _surviving_platform(platform, alive, speed, area_in_use)
        evaluator = MappingEvaluator(
            graph,
            sub,
            rng=np.random.default_rng(self.seed),
            n_random_schedules=self.n_random_schedules,
        )
        result = self.factory().map(
            evaluator, rng=np.random.default_rng(self.seed)
        )
        return [alive[int(d)] for d in result.mapping]


def _decomposition_factory():
    from ..mappers import sp_first_fit

    return sp_first_fit()


def _heft_factory():
    from ..mappers import HeftMapper

    return HeftMapper()


def _minmin_factory():
    from ..mappers import MinMinMapper

    return MinMinMapper()


_FACTORIES: Dict[str, Callable[[], "object"]] = {
    "decomposition": _decomposition_factory,
    "heft": _heft_factory,
    "minmin": _minmin_factory,
}

#: names accepted by :func:`make_replan_policy` and the CLI
REPLAN_POLICY_NAMES: Tuple[str, ...] = ("fallback",) + tuple(sorted(_FACTORIES))


def make_replan_policy(
    spec: Union[None, str, ReplanPolicy], *, seed: int = 0
) -> Optional[ReplanPolicy]:
    """Resolve a policy spec: ``None``/``"fallback"`` → legacy behaviour.

    Returns ``None`` for the fixed-fallback default so the engine's hot
    path stays branch-free; any other name builds the matching
    :class:`MapperReplanPolicy`.  Policy instances pass through.
    """
    if spec is None:
        return None
    if isinstance(spec, ReplanPolicy):
        return None if isinstance(spec, _FixedFallbackPolicy) else spec
    name = str(spec)
    if name == "fallback":
        return None
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown replan policy {name!r}; "
            f"choose from {', '.join(REPLAN_POLICY_NAMES)}"
        )
    return MapperReplanPolicy(factory, name, seed=seed)
