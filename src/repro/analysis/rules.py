"""The shipped ``repro lint`` rules.

Each rule guards a contract a previous PR pinned with example-based
tests; the linter makes the contract *structural* — new code cannot
quietly drift out of it.  The catalogue (code -> contract -> origin PR)
is mirrored in ``src/repro/analysis/README.md``; rule codes are stable
forever (suppressions and baselines reference them).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Sequence

from .core import Finding, ModuleContext, Rule
from .registry import register

__all__ = [
    "UnseededRandomnessRule",
    "WallClockRule",
    "ObservabilityWriteOnlyRule",
    "BarePrintRule",
    "ToleranceLiteralRule",
    "PicklableParallelCallableRule",
    "BoundedRetryRule",
    "SilentExceptRule",
    "CKernelMirrorRule",
]


def _in_package(ctx: ModuleContext) -> bool:
    return ctx.pkg_rel is not None


@register
class UnseededRandomnessRule(Rule):
    code = "DET001"
    title = "no unseeded randomness"
    contract = (
        "Every result depends only on explicit seeds: drivers shard "
        "numpy SeedSequence children before dispatch and workers never "
        "draw from shared state (PR 2's serial==pooled bit-identity; "
        "contract in parallel/README.md).  The stdlib random global API, "
        "numpy's legacy np.random.* globals and a seedless "
        "default_rng() all read hidden global or OS entropy."
    )
    node_types = (ast.Call,)

    #: numpy.random attributes that are constructors/types, not the
    #: hidden-global-state legacy API
    _NP_ALLOWED = frozenset({
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
    })

    def applies(self, ctx: ModuleContext) -> bool:
        return _in_package(ctx)

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterable[Finding]:
        name = ctx.resolve_call(node.func)
        if name is None:
            return
        if name.startswith("random."):
            tail = name.split(".", 1)[1]
            if tail not in ("Random",):  # random.Random(seed) is explicit
                yield self.finding(
                    ctx, node,
                    f"call to the stdlib global-state RNG `{name}`; "
                    "derive a numpy Generator from a seed instead",
                )
            return
        if name.startswith("numpy.random."):
            tail = name.split(".", 2)[2]
            if "." not in tail and tail not in self._NP_ALLOWED:
                yield self.finding(
                    ctx, node,
                    f"legacy global-state numpy RNG `np.random.{tail}`; "
                    "use np.random.default_rng(seed)",
                )
                return
        if name in ("numpy.random.default_rng", "numpy.random.RandomState"):
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    f"`{name}()` without a seed draws OS entropy; "
                    "pass a seed or SeedSequence",
                )


@register
class WallClockRule(Rule):
    code = "DET002"
    title = "no wall-clock reads in algorithm modules"
    contract = (
        "Simulated results depend only on seeds and model inputs "
        "(PR 1's zero-noise == CostModel.simulate() pin, PR 2's "
        "serial == pooled CSVs).  Wall-clock reads belong to the "
        "observability layer (repro.obs), CLI timing paths and the "
        "benchmark harness — never inside an algorithm."
    )
    node_types = (ast.Call,)

    _WALL_CLOCK = frozenset({
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns", "time.clock_gettime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def applies(self, ctx: ModuleContext) -> bool:
        if not _in_package(ctx):
            return False
        # the sanctioned timing paths
        return not ctx.pkg_rel.startswith("obs/") and ctx.pkg_rel != "cli.py"

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterable[Finding]:
        name = ctx.resolve_call(node.func)
        if name in self._WALL_CLOCK:
            yield self.finding(
                ctx, node,
                f"wall-clock read `{name}` in an algorithm module; "
                "results must depend only on seeds (move timing to "
                "repro.obs or justify with a disable pragma)",
            )


@register
class ObservabilityWriteOnlyRule(Rule):
    code = "OBS001"
    title = "observability is write-only for algorithms"
    contract = (
        "Algorithm modules may create/update spans, counters and "
        "histograms but never read tracer or registry state back into "
        "control flow — the PR 6 hard contract that enabling "
        "observability changes no numeric output."
    )
    node_types = (ast.Call, ast.Attribute)

    _READS = frozenset({"snapshot", "phase_totals"})

    def applies(self, ctx: ModuleContext) -> bool:
        if not _in_package(ctx):
            return False
        # obs/ is the instrument layer itself; cli.py renders reports
        return not ctx.pkg_rel.startswith("obs/") and ctx.pkg_rel != "cli.py"

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in self._READS:
                yield self.finding(
                    ctx, node,
                    f"reads observability state via `.{func.attr}()`; "
                    "algorithms record into instruments, only the obs/CLI "
                    "layer reads them",
                )
        elif isinstance(node, ast.Attribute):
            if node.attr == "spans" and isinstance(node.ctx, ast.Load):
                yield self.finding(
                    ctx, node,
                    "reads collected spans (`.spans`); span data is for "
                    "the obs/CLI layer, not algorithm control flow",
                )


@register
class BarePrintRule(Rule):
    code = "CLI001"
    title = "no bare print() outside the CLI reporter plumbing"
    contract = (
        "PR 6 routed all 61 user-facing lines through the logging-backed "
        "reporter (repro.obs.report) so --verbose/--quiet, stream "
        "redirection and byte-stable default output hold everywhere; a "
        "bare print() bypasses all three."
    )
    node_types = (ast.Call,)

    def applies(self, ctx: ModuleContext) -> bool:
        return _in_package(ctx) and ctx.pkg_rel != "cli.py"

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterable[Finding]:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            yield self.finding(
                ctx, node,
                "bare print(); route through "
                "repro.obs.get_reporter() (.out/.detail/.warn/.error)",
            )


@register
class ToleranceLiteralRule(Rule):
    code = "TOL001"
    title = "no literal shadowing AREA_TOL / AREA_BAND"
    contract = (
        "PR 5 single-sourced area feasibility: one AREA_TOL (and its "
        "AREA_BAND recount guard) in evaluation/costmodel.py governs the "
        "static check, the vectorized mask, the delta evaluator, the "
        "greedy mappers and the runtime ledger.  A re-typed literal can "
        "silently drift when the constant is tuned."
    )
    node_types = (ast.Constant,)

    def __init__(self) -> None:
        # imported lazily: the values themselves stay single-sourced
        from ..evaluation.costmodel import AREA_BAND, AREA_TOL

        self._guarded = {AREA_TOL: "AREA_TOL", AREA_BAND: "AREA_BAND"}

    def applies(self, ctx: ModuleContext) -> bool:
        return _in_package(ctx) and ctx.pkg_rel != "evaluation/costmodel.py"

    def check(self, node: ast.Constant, ctx: ModuleContext) -> Iterable[Finding]:
        value = node.value
        if type(value) is float and value in self._guarded:
            name = self._guarded[value]
            yield self.finding(
                ctx, node,
                f"float literal {value!r} shadows {name}; import it from "
                "repro.evaluation.costmodel (or justify an unrelated "
                "constant with a disable pragma)",
            )


@register
class PicklableParallelCallableRule(Rule):
    code = "PAR001"
    title = "parallel_map callables must be module-level"
    contract = (
        "The repro.parallel contract (parallel/README.md, PR 2): worker "
        "functions cross process boundaries by pickle, which serializes "
        "functions *by reference* — lambdas, closures and nested defs "
        "fail at dispatch time only when workers > 1, the worst kind of "
        "latent breakage."
    )
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterable[Finding]:
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
        if func_name != "parallel_map" or not node.args:
            return
        fn = node.args[0]
        if isinstance(fn, ast.Lambda):
            yield self.finding(
                ctx, fn,
                "lambda passed to parallel_map is not picklable by "
                "reference; use a module-level function",
            )
        elif isinstance(fn, ast.Name) and fn.id in ctx.nested_defs:
            yield self.finding(
                ctx, fn,
                f"`{fn.id}` is defined inside another function; "
                "parallel_map workers must be module-level (picklable "
                "by reference)",
            )


@register
class BoundedRetryRule(Rule):
    code = "PAR002"
    title = "retry loops bounded; no sleeping in algorithm modules"
    contract = (
        "Fault tolerance is owned by the supervised pool (PR 8, "
        "repro.parallel.supervisor): retries are bounded by "
        "RetryPolicy.max_attempts and backoff waits live only there.  A "
        "`while True` retry loop or an ad-hoc time.sleep in an algorithm "
        "module can stall a sweep forever and hides failure handling "
        "from the supervisor's counters; the supervisor/chaos modules "
        "carry justified inline pragmas."
    )
    node_types = (ast.Call, ast.While)

    def applies(self, ctx: ModuleContext) -> bool:
        if not _in_package(ctx):
            return False
        # obs/ and the CLI are control-plane code, same scope as DET002
        return not ctx.pkg_rel.startswith("obs/") and ctx.pkg_rel != "cli.py"

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        if isinstance(node, ast.Call):
            if ctx.resolve_call(node.func) == "time.sleep":
                yield self.finding(
                    ctx, node,
                    "time.sleep in an algorithm module; waiting belongs "
                    "to the parallel supervisor's bounded backoff (or "
                    "justify with a disable pragma)",
                )
            return
        # `while True` whose only way past a failure is except-and-continue
        # (and no break anywhere): an unbounded retry loop
        if not (isinstance(node.test, ast.Constant) and node.test.value is True):
            return
        if any(isinstance(sub, ast.Break) for sub in ast.walk(node)):
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.ExceptHandler) and any(
                isinstance(s, ast.Continue) for s in ast.walk(sub)
            ):
                yield self.finding(
                    ctx, node,
                    "unbounded `while True` retry loop (an except handler "
                    "continues and nothing breaks); bound it with a "
                    "max-attempts counter (see RetryPolicy)",
                )
                return


@register
class SilentExceptRule(Rule):
    code = "EXC001"
    title = "no bare/silent except"
    contract = (
        "Failures are recorded, never swallowed: PR 2 replaced silent "
        "None coercion with explicit dead-fallback accounting "
        "(RuntimeTrace.n_fallback_dead) precisely because a swallowing "
        "except hid a correctness bug.  Catch narrowly and record, "
        "re-raise, or justify the fallback with a disable pragma."
    )
    node_types = (ast.ExceptHandler,)

    def applies(self, ctx: ModuleContext) -> bool:
        return _in_package(ctx)

    @staticmethod
    def _is_silent(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring / ellipsis placeholder
            return False
        return True

    def check(
        self, node: ast.ExceptHandler, ctx: ModuleContext
    ) -> Iterable[Finding]:
        if node.type is None:
            yield self.finding(
                ctx, node,
                "bare `except:` also catches KeyboardInterrupt/SystemExit; "
                "name the exceptions",
            )
        elif self._is_silent(node.body):
            yield self.finding(
                ctx, node,
                "except block swallows the exception without recording "
                "anything; log, count, re-raise, or justify with a "
                "disable pragma",
            )


@register
class CKernelMirrorRule(Rule):
    code = "KER001"
    title = "C kernel constants match their Python mirrors"
    contract = (
        "The compiled kernel must agree with the Python side on every "
        "shared constant: the in-kernel dedup's FNV-1a parameters and "
        "table-sizing factor (PR 4) mirror "
        "repro.evaluation.kernel.DEDUP_* and the infeasible sentinel is "
        "INFINITY == costmodel.INFEASIBLE.  An edit to one side without "
        "the other silently breaks exact-value sharing."
    )

    def check_project(
        self, contexts: Sequence[ModuleContext]
    ) -> Iterable[Finding]:
        target = next(
            (c for c in contexts if c.pkg_rel == "evaluation/_ckernel.py"),
            None,
        )
        if target is None:
            return  # the kernel module is not part of this lint run
        from ..evaluation._ckernel import source_consistency_problems

        for line, message in source_consistency_problems():
            yield self.finding(target, None, message, line=line)


@register
class CKernelTopologyAgnosticRule(Rule):
    code = "KER002"
    title = "C kernel stays topology-agnostic (routing is table-build-time)"
    contract = (
        "Interconnect topology is priced entirely at table-build time: "
        "the platform's effective (routed) matrices feed the CSR "
        "pred_trans tables, so the C inner loop needs no notion of "
        "links, routes or hops — that is the zero-inner-loop-cost "
        "design of the link-graph layer (repro.platform.links).  A "
        "routing identifier appearing in the embedded C source means "
        "someone is moving routing into the hot loop; that needs new "
        "mirrored constants and a conscious KER001 extension, not a "
        "silent drive-by."
    )

    # underscore counts as a boundary so snake_case identifiers like
    # ``hop_count`` or ``n_links`` trip the rule, not just bare words
    _FORBIDDEN = re.compile(
        r"(?<![A-Za-z0-9])(links?|routes?|routing|topolog[a-z]*|hops?)"
        r"(?![A-Za-z0-9])",
        re.IGNORECASE,
    )

    def check_project(
        self, contexts: Sequence[ModuleContext]
    ) -> Iterable[Finding]:
        target = next(
            (c for c in contexts if c.pkg_rel == "evaluation/_ckernel.py"),
            None,
        )
        if target is None:
            return  # the kernel module is not part of this lint run
        from ..evaluation._ckernel import _C_SOURCE

        for off, line in enumerate(_C_SOURCE.splitlines()):
            hit = self._FORBIDDEN.search(line)
            if hit:
                yield self.finding(
                    target, None,
                    f"C kernel source mentions {hit.group(0)!r}: routing "
                    "belongs in the table build (platform effective "
                    "matrices), not the inner loop",
                    line=off + 1,
                )
