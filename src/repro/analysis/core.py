"""AST visitor core of ``repro lint``: contexts, findings, suppressions.

One :class:`ModuleContext` is built per linted file.  It parses the
source once, precomputes everything every rule wants to ask — import
aliases resolved to dotted module names, the package-relative path (so
rules can scope themselves to ``src/repro`` or carve out ``obs/``),
nested-function names (the pickling rules), and the inline suppression
map — and then a single ``ast.walk`` drives every active rule's
per-node check.  Rules never re-walk the tree.

Suppressions are inline comments on the finding's line::

    eps = 1e-9 * scale  # repro-lint: disable=TOL001  # tie-break, not an area tol

Multiple codes separate with commas (``disable=TOL001,DET002``).  A
justification after the pragma is strongly encouraged — the point of a
suppression is a *reviewed* exception, not a silenced one.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintError",
    "ModuleContext",
    "Rule",
    "dotted_name",
]

#: inline pragma: ``# repro-lint: disable=CODE[,CODE...]``
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
)


class LintError(Exception):
    """A file could not be linted (unreadable, syntax error)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str          # as given on the command line, normalized to posix
    line: int          # 1-based
    col: int           # 0-based, matching ast
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    @property
    def baseline_key(self) -> Tuple[str, str, int]:
        """Identity used by the baseline file (column drifts too easily)."""
        return (self.code, self.path, self.line)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ModuleContext:
    """Everything the rules want to know about one parsed module."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise LintError(f"{path}: syntax error: {exc}") from None
        self.pkg_rel = self._package_relative(self.path)
        self.suppressions = self._scan_suppressions(source)
        self.module_aliases = self._scan_imports(self.tree)
        self.nested_defs = self._scan_nested_defs(self.tree)

    # ------------------------------------------------------------------
    @staticmethod
    def _package_relative(path: str) -> Optional[str]:
        """Path inside the ``repro`` package, or None for tests/benchmarks.

        Heuristic: the segment after the *last* directory literally named
        ``repro`` (covers ``src/repro/...`` checkouts and installed
        ``site-packages/repro/...`` trees alike).
        """
        parts = path.split("/")
        for i in range(len(parts) - 2, -1, -1):
            if parts[i] == "repro":
                return "/".join(parts[i + 1:])
        return None

    @staticmethod
    def _scan_suppressions(source: str) -> Dict[int, Set[str]]:
        out: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            m = _SUPPRESS_RE.search(line)
            if m:
                out[lineno] = {c.strip() for c in m.group(1).split(",")}
        return out

    @staticmethod
    def _scan_imports(tree: ast.Module) -> Dict[str, str]:
        """Bound name -> dotted origin, for ``import``/``from`` forms.

        ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
        import default_rng`` maps ``default_rng -> numpy.random.default_rng``;
        ``from datetime import datetime`` maps ``datetime ->
        datetime.datetime``.  Rules resolve call chains against this to
        match module APIs however they were imported.
        """
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    aliases[a.asname or a.name.split(".")[0]] = (
                        a.name if a.asname else a.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports stay package-internal
                for a in node.names:
                    if a.name == "*":
                        continue
                    aliases[a.asname or a.name] = f"{node.module}.{a.name}"
        return aliases

    @staticmethod
    def _scan_nested_defs(tree: ast.Module) -> Set[str]:
        """Names of functions defined inside another function or lambda
        (not picklable by reference — the ``parallel_map`` contract)."""
        nested: Set[str] = set()

        def walk(node: ast.AST, inside: bool) -> None:
            for child in ast.iter_child_nodes(node):
                is_fn = isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                if is_fn and inside:
                    nested.add(child.name)
                walk(child, inside or is_fn or isinstance(child, ast.Lambda))

        walk(tree, False)
        return nested

    # ------------------------------------------------------------------
    def resolve_call(self, func: ast.AST) -> Optional[str]:
        """Dotted name of a call target with the root import expanded.

        ``np.random.rand`` -> ``numpy.random.rand`` under ``import numpy
        as np``; a bare ``default_rng`` imported from ``numpy.random``
        -> ``numpy.random.default_rng``.
        """
        name = dotted_name(func)
        if name is None:
            return None
        root, _, rest = name.partition(".")
        origin = self.module_aliases.get(root)
        if origin is None:
            return name
        return f"{origin}.{rest}" if rest else origin

    def suppressed(self, code: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        return codes is not None and code in codes


class Rule:
    """One invariant checker with a stable ``REPRO###``-style code.

    Subclasses set ``code``/``title``/``contract`` and implement any of:

    - ``check(node, ctx)`` for nodes whose type is in ``node_types``
      (driven by the shared single walk in :mod:`repro.analysis.runner`);
    - ``check_module(ctx)``, called once per module;
    - ``check_project(contexts)``, called once per lint run with every
      module context (cross-file invariants, e.g. the C-kernel constant
      mirror check).

    ``applies(ctx)`` scopes a rule by path; the default is everything.
    """

    code: str = ""
    title: str = ""
    #: the repo contract this rule guards, and which PR established it
    contract: str = ""
    node_types: Tuple[type, ...] = ()

    def applies(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(
        self, contexts: Sequence[ModuleContext]
    ) -> Iterable[Finding]:
        return ()

    # ------------------------------------------------------------------
    def finding(
        self, ctx_or_path, node: Optional[ast.AST], message: str,
        *, line: int = 1, col: int = 0,
    ) -> Finding:
        path = (
            ctx_or_path.path
            if isinstance(ctx_or_path, ModuleContext)
            else str(ctx_or_path)
        )
        if node is not None:
            line = node.lineno
            col = node.col_offset
        return Finding(self.code, path, line, col, message)
