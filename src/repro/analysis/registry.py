"""Rule registry: stable codes, registration, and --select/--ignore.

Codes are permanent once shipped (a baseline or suppression written
against ``DET001`` must keep meaning the same check forever); the
registry enforces the ``ABC###`` shape and rejects duplicates at import
time so two rules can never race for one code.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Type

from .core import Rule

__all__ = ["register", "all_rules", "rule_codes", "resolve_codes", "RuleSelectionError"]

_CODE_RE = re.compile(r"^[A-Z]{3}\d{3}$")

_REGISTRY: Dict[str, Type[Rule]] = {}


class RuleSelectionError(ValueError):
    """An unknown or malformed rule code in --select/--ignore."""


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (code must be new)."""
    code = cls.code
    if not _CODE_RE.match(code or ""):
        raise ValueError(f"{cls.__name__}: rule code {code!r} is not ABC###")
    if code in _REGISTRY:
        raise ValueError(
            f"rule code {code} already taken by {_REGISTRY[code].__name__}"
        )
    _REGISTRY[code] = cls
    return cls


def rule_codes() -> List[str]:
    """Every registered code, sorted."""
    return sorted(_REGISTRY)


def resolve_codes(spec: Optional[str]) -> Optional[List[str]]:
    """Parse a comma-separated ``--select``/``--ignore`` value.

    Returns None for an absent spec; raises :class:`RuleSelectionError`
    on codes that are not registered (a typo must fail loudly, not
    silently lint nothing).
    """
    if spec is None:
        return None
    codes = [c.strip() for c in spec.split(",") if c.strip()]
    unknown = [c for c in codes if c not in _REGISTRY]
    if unknown:
        raise RuleSelectionError(
            f"unknown rule code(s) {', '.join(unknown)}; "
            f"known: {', '.join(rule_codes())}"
        )
    return codes


def all_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Instantiate the active rule set, sorted by code."""
    selected = set(select) if select is not None else set(_REGISTRY)
    selected -= set(ignore or ())
    return [_REGISTRY[code]() for code in sorted(selected)]
