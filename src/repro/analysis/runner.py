"""Lint driver: file discovery, the shared AST walk, and the report.

One :func:`run_lint` call is one lint run: discover ``.py`` files under
the given paths (sorted, deterministic), build a
:class:`~repro.analysis.core.ModuleContext` per file, drive every active
rule over a **single** ``ast.walk`` per module, then run project-level
rules once across all contexts.  Suppressions are applied per finding,
an optional baseline subtracts grandfathered findings, and the result is
a :class:`LintReport` with a stable JSON schema (version field; bump on
any shape change)::

    {
      "version": 1,
      "rules": ["CLI001", "DET001", ...],   # active after --select/--ignore
      "n_files": 12,
      "counts": {"TOL001": 2},              # findings per code (only nonzero)
      "n_suppressed": 3,                    # inline-pragma suppressions hit
      "findings": [{"code", "path", "line", "col", "message"}, ...]
    }
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .baseline import apply_baseline, load_baseline
from .core import Finding, LintError, ModuleContext, Rule
from .registry import all_rules, resolve_codes

__all__ = ["LintReport", "collect_files", "lint_sources", "run_lint"]

JSON_SCHEMA_VERSION = 1


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]
    n_files: int
    rules: List[str]           # active rule codes
    n_suppressed: int = 0
    n_baselined: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return out

    def to_json(self) -> Dict[str, object]:
        return {
            "version": JSON_SCHEMA_VERSION,
            "rules": list(self.rules),
            "n_files": self.n_files,
            "counts": self.counts(),
            "n_suppressed": self.n_suppressed,
            "findings": [f.to_dict() for f in self.findings],
        }


def collect_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths``, sorted and deduplicated.

    Hidden directories and ``__pycache__`` are skipped.  A path that is
    neither a ``.py`` file nor a directory raises :class:`LintError` —
    a typo'd path must not silently lint nothing.
    """
    seen: Set[str] = set()
    out: List[str] = []

    def add(p: str) -> None:
        norm = os.path.normpath(p).replace(os.sep, "/")
        if norm not in seen:
            seen.add(norm)
            out.append(norm)

    for path in paths:
        if os.path.isfile(path):
            if not path.endswith(".py"):
                raise LintError(f"{path}: not a Python file")
            add(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        add(os.path.join(dirpath, name))
        else:
            raise LintError(f"{path}: no such file or directory")
    return sorted(out)


def _lint_module(
    ctx: ModuleContext, rules: Sequence[Rule]
) -> Tuple[List[Finding], int]:
    """All rule findings for one module; returns (kept, n_suppressed)."""
    import ast

    active = [r for r in rules if r.applies(ctx)]
    raw: List[Finding] = []
    for rule in active:
        raw.extend(rule.check_module(ctx))
    per_node = [r for r in active if r.node_types]
    if per_node:
        for node in ast.walk(ctx.tree):
            for rule in per_node:
                if isinstance(node, rule.node_types):
                    raw.extend(rule.check(node, ctx))
    kept, suppressed = [], 0
    for f in raw:
        if ctx.suppressed(f.code, f.line):
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed


def lint_sources(
    sources: Iterable[Tuple[str, str]],
    rules: Sequence[Rule],
) -> LintReport:
    """Lint in-memory ``(path, source)`` pairs (the test-fixture entry)."""
    contexts: List[ModuleContext] = []
    errors: List[str] = []
    findings: List[Finding] = []
    n_suppressed = 0
    for path, source in sources:
        try:
            ctx = ModuleContext(path, source)
        except LintError as exc:
            errors.append(str(exc))
            continue
        contexts.append(ctx)
        kept, suppressed = _lint_module(ctx, rules)
        findings.extend(kept)
        n_suppressed += suppressed
    for rule in rules:
        for f in rule.check_project(contexts):
            ctx = next((c for c in contexts if c.path == f.path), None)
            if ctx is not None and ctx.suppressed(f.code, f.line):
                n_suppressed += 1
            else:
                findings.append(f)
    findings.sort(key=lambda f: f.sort_key)
    return LintReport(
        findings=findings,
        n_files=len(contexts),
        rules=sorted(r.code for r in rules),
        n_suppressed=n_suppressed,
        errors=errors,
    )


def run_lint(
    paths: Sequence[str],
    *,
    select: Optional[str] = None,
    ignore: Optional[str] = None,
    baseline: Optional[str] = None,
) -> LintReport:
    """Lint ``paths`` with the active rule set; see the module docstring.

    Raises :class:`~repro.analysis.core.LintError` for unusable inputs
    (missing path, unreadable baseline) and
    :class:`~repro.analysis.registry.RuleSelectionError` for unknown
    codes — the CLI maps both to exit status 2.
    """
    rules = all_rules(resolve_codes(select), resolve_codes(ignore))
    files = collect_files(paths)

    def read_all():
        for path in files:
            try:
                with open(path, encoding="utf-8") as fh:
                    yield path, fh.read()
            except OSError as exc:
                raise LintError(f"cannot read {path}: {exc}") from None

    report = lint_sources(read_all(), rules)
    if baseline is not None:
        known = load_baseline(baseline)
        before = len(report.findings)
        report.findings = apply_baseline(report.findings, known)
        report.n_baselined = before - len(report.findings)
    return report
