"""Optional finding baseline: grandfather known debt, block new debt.

A baseline is a JSON list of finding identities (code, path, line).  A
lint run with ``--baseline FILE`` subtracts exactly those findings and
reports everything else — the standard ratchet for introducing a linter
to a tree that is not yet clean.  This repo's own tree lints clean (the
meta-test in ``tests/test_analysis.py`` pins that), so no baseline file
is committed; the mechanism exists for downstream forks and for staging
new rules.

Intentional, *reviewed* exceptions should prefer an inline
``# repro-lint: disable=CODE  # reason`` next to the code they excuse —
a baseline entry is anonymous and silently outlives refactors.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Set, Tuple

from .core import Finding, LintError

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]

_Key = Tuple[str, str, int]


def load_baseline(path: str) -> Set[_Key]:
    """Read a baseline file into a set of finding identities."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise LintError(f"cannot read baseline {path!r}: {exc}") from None
    entries = doc.get("findings") if isinstance(doc, dict) else None
    if not isinstance(entries, list):
        raise LintError(
            f"baseline {path!r}: expected an object with a 'findings' list"
        )
    out: Set[_Key] = set()
    for entry in entries:
        try:
            out.add((entry["code"], entry["path"], int(entry["line"])))
        except (TypeError, KeyError, ValueError):
            raise LintError(
                f"baseline {path!r}: malformed entry {entry!r}"
            ) from None
    return out


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write the current findings as a baseline; returns the entry count."""
    entries = [
        {"code": f.code, "path": f.path, "line": f.line, "message": f.message}
        for f in sorted(findings, key=lambda f: f.sort_key)
    ]
    with open(path, "w") as fh:
        json.dump({"version": 1, "findings": entries}, fh, indent=2)
        fh.write("\n")
    return len(entries)


def apply_baseline(
    findings: Iterable[Finding], baseline: Set[_Key]
) -> List[Finding]:
    """Findings not covered by the baseline, order preserved."""
    return [f for f in findings if f.baseline_key not in baseline]
