"""Static analysis of the repo's own invariants — ``repro lint``.

Six PRs of contracts (bit-identical serial↔pooled runs, kernel ==
reference exactness, one AREA_TOL, write-only observability, byte-stable
CLI output, picklable ``parallel_map`` payloads) were enforced only by
example-based tests.  This package enforces them *structurally*: an AST
visitor core (:mod:`~repro.analysis.core`), a registry of rules with
stable ``REPRO``-style codes (:mod:`~repro.analysis.registry` /
:mod:`~repro.analysis.rules`), inline
``# repro-lint: disable=CODE  # reason`` suppressions, an optional
baseline file (:mod:`~repro.analysis.baseline`) and a driver with a
stable JSON report (:mod:`~repro.analysis.runner`) behind the
``repro lint`` CLI verb.

Shipped rules (catalogue with provenance in ``analysis/README.md``):

======  =====================================================
DET001  no unseeded randomness under ``src/repro``
DET002  no wall-clock reads in algorithm modules
OBS001  observability is write-only for algorithms
CLI001  no bare ``print()`` outside the CLI reporter plumbing
TOL001  no literal shadowing ``AREA_TOL``/``AREA_BAND``
PAR001  ``parallel_map`` callables must be module-level
EXC001  no bare/silent ``except``
KER001  C kernel constants match their Python mirrors
======  =====================================================

Typical use::

    repro lint                           # src/ tests/ benchmarks/ if present
    repro lint src/repro --json
    repro lint --select DET001,DET002 src/
    repro lint --ignore TOL001 src/ --baseline lint-baseline.json

Exit status: 0 clean, 1 findings, 2 usage/input errors.  The repo's own
tree lints clean — pinned by the meta-test in ``tests/test_analysis.py``
and the ``static-analysis`` CI job.
"""

from __future__ import annotations

from .baseline import apply_baseline, load_baseline, write_baseline
from .core import Finding, LintError, ModuleContext, Rule
from .registry import (
    RuleSelectionError,
    all_rules,
    resolve_codes,
    rule_codes,
)
from .runner import LintReport, collect_files, lint_sources, run_lint
from . import rules  # noqa: F401  - importing registers the shipped rules

__all__ = [
    "Finding",
    "LintError",
    "LintReport",
    "ModuleContext",
    "Rule",
    "RuleSelectionError",
    "all_rules",
    "apply_baseline",
    "collect_files",
    "lint_sources",
    "load_baseline",
    "resolve_codes",
    "rule_codes",
    "run_lint",
    "write_baseline",
]
