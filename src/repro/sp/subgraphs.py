"""Candidate subgraph sets for decomposition-based mapping (paper Sec. III-B/C).

Two strategies are provided:

- **single-node** (Sec. III-B): every task is its own candidate subgraph;
- **series-parallel** (Sec. III-C): single nodes *plus*, for every inner
  operation of every tree in the SP decomposition forest,

  * series operation  -> all nodes of the operation **except** its start and
    end node (they may have outside edges),
  * parallel operation -> all nodes of the operation **including** start and
    end node (they act as the single input/output of the subgraph).

For the Fig. 1 example this yields exactly the paper's
``S = {{0},...,{5},{1,2,3},{0,1,2,3,4,5}}``.

Candidates are deduplicated and returned in a deterministic order (size, then
sorted members), which keeps the greedy mapping algorithms reproducible.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

import numpy as np

from ..graphs.taskgraph import TaskGraph
from .forest import DecompositionForest, grow_decomposition_forest
from .sptree import SPParallel, SPSeries

__all__ = [
    "single_node_candidates",
    "series_parallel_candidates",
    "candidates_from_forest",
    "schedule_span",
]


def schedule_span(members, pos) -> "tuple[int, int]":
    """``(first, last)`` schedule positions a candidate subgraph occupies.

    ``pos`` maps task index -> position in a fixed schedule order.  Under
    that fixed order, remapping the candidate can only change simulation
    state from ``first`` onward — this is what lets the incremental
    evaluator (:class:`repro.evaluation.delta.DeltaEvaluator`) re-simulate
    just the suffix, and lets callers group moves that share a prefix.
    """
    it = iter(members)
    t0 = next(it)
    first = last = pos[t0]
    for t in it:
        p = pos[t]
        if p < first:
            first = p
        elif p > last:
            last = p
    return first, last


def _ordered(sets: set, g: TaskGraph) -> List[FrozenSet[int]]:
    pos = {t: i for i, t in enumerate(g.tasks())}
    return sorted(sets, key=lambda s: (len(s), sorted(pos[t] for t in s)))


def single_node_candidates(g: TaskGraph) -> List[FrozenSet[int]]:
    """The single-node decomposition: one candidate per task (Sec. III-B)."""
    return [frozenset({t}) for t in g.tasks()]


def _collect_candidates(op, real_tasks: set, sets: set) -> FrozenSet[int]:
    """Post-order walk adding one candidate per inner operation.

    Returns the node set of ``op``; computing the sets bottom-up (each
    operation unions its children's sets) replaces the original
    per-operation ``op.nodes()`` leaf walks, which re-enumerated every
    leaf edge once per tree level — a measurable cost in the mapper hot
    path now that evaluation itself is cheap.
    """
    if not isinstance(op, (SPSeries, SPParallel)):  # leaf edge
        return frozenset((op.source, op.sink))
    nodes = frozenset().union(
        *(_collect_candidates(c, real_tasks, sets) for c in op.children)
    )
    cand = nodes - {op.source, op.sink} if isinstance(op, SPSeries) else nodes
    cand = cand & real_tasks  # drop virtual/normalization nodes
    if cand:
        sets.add(cand)
    return nodes


def candidates_from_forest(
    g: TaskGraph, forest: DecompositionForest
) -> List[FrozenSet[int]]:
    """Extract the Sec. III-C candidate set from a decomposition forest."""
    real_tasks = set(g.tasks())
    sets = {frozenset({t}) for t in g.tasks()}
    for tree in forest.trees:
        _collect_candidates(tree, real_tasks, sets)
    return _ordered(sets, g)


def series_parallel_candidates(
    g: TaskGraph,
    *,
    rng: Optional[np.random.Generator] = None,
    cut_strategy: str = "random",
) -> List[FrozenSet[int]]:
    """Series-parallel decomposition candidates for an arbitrary DAG.

    Runs Algorithm 1 (:func:`repro.sp.forest.grow_decomposition_forest`) and
    extracts the candidate sets of its forest.  The result always contains
    all single-node subgraphs, so the strategy is a strict superset of the
    single-node decomposition.
    """
    forest = grow_decomposition_forest(g, rng=rng, cut_strategy=cut_strategy)
    return candidates_from_forest(g, forest)
