"""Series-parallel machinery: trees, recognition, Algorithm 1 forest, candidates."""

from .analysis import ForestStats, core_fraction, forest_stats, sp_distance
from .forest import (
    CUT_STRATEGIES,
    VIRTUAL_SINK,
    VIRTUAL_SOURCE,
    DecompositionForest,
    grow_decomposition_forest,
)
from .recognition import (
    NotSeriesParallelError,
    decomposition_tree,
    decomposition_tree_from_edges,
    is_series_parallel,
)
from .sptree import SPLeaf, SPParallel, SPSeries, SPTree, parallel, series
from .subgraphs import (
    candidates_from_forest,
    series_parallel_candidates,
    single_node_candidates,
)

__all__ = [
    "CUT_STRATEGIES",
    "ForestStats",
    "core_fraction",
    "forest_stats",
    "sp_distance",
    "VIRTUAL_SINK",
    "VIRTUAL_SOURCE",
    "DecompositionForest",
    "grow_decomposition_forest",
    "NotSeriesParallelError",
    "decomposition_tree",
    "decomposition_tree_from_edges",
    "is_series_parallel",
    "SPLeaf",
    "SPParallel",
    "SPSeries",
    "SPTree",
    "parallel",
    "series",
    "candidates_from_forest",
    "series_parallel_candidates",
    "single_node_candidates",
]
