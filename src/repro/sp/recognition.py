"""Recognition of two-terminal series-parallel DAGs by reduction.

A DAG with a unique source ``s`` and sink ``t`` is (two-terminal)
series-parallel iff it can be reduced to the single edge ``(s, t)`` by
repeatedly applying

- **series reductions**: replace ``(u, w), (w, v)`` by ``(u, v)`` when ``w``
  is an interior node with in-degree = out-degree = 1, and
- **parallel reductions**: collapse multi-edges ``(u, v)`` into one.

(Valdes/Tarjan/Lawler; cf. Eppstein [21] cited in the paper.)  The reducer
simultaneously builds the series-parallel decomposition tree of Fig. 1, with
maximal n-ary series/parallel nodes.  Runs in O(E) with the worklist
bookkeeping below.

This module is the *validator* counterpart to :mod:`repro.sp.forest` (the
paper's Algorithm 1): the forest grower handles arbitrary DAGs by cutting,
while this recognizer decides exact SP-ness and is used in tests to verify
that every tree produced by the forest algorithm is a genuine SP subgraph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..graphs.taskgraph import TaskGraph
from .sptree import SPLeaf, SPTree, parallel, series

__all__ = [
    "NotSeriesParallelError",
    "decomposition_tree",
    "is_series_parallel",
    "decomposition_tree_from_edges",
]

Node = Hashable


class NotSeriesParallelError(ValueError):
    """Raised when a graph is not two-terminal series-parallel."""


class _Edge:
    __slots__ = ("u", "v", "tree", "alive")

    def __init__(self, u: Node, v: Node, tree: SPTree) -> None:
        self.u = u
        self.v = v
        self.tree = tree
        self.alive = True


def decomposition_tree_from_edges(
    edges: List[Tuple[Node, Node]],
    source: Node,
    sink: Node,
) -> SPTree:
    """Build the SP decomposition tree of an edge list, or raise.

    ``edges`` may contain duplicates (multi-edges); they are handled by
    parallel reductions.  Raises :class:`NotSeriesParallelError` if the graph
    cannot be fully reduced.
    """
    if not edges:
        raise NotSeriesParallelError("empty graph")
    out_edges: Dict[Node, Set[_Edge]] = {}
    in_edges: Dict[Node, Set[_Edge]] = {}
    by_pair: Dict[Tuple[Node, Node], List[_Edge]] = {}

    def add_edge(e: _Edge) -> None:
        out_edges.setdefault(e.u, set()).add(e)
        in_edges.setdefault(e.v, set()).add(e)
        by_pair.setdefault((e.u, e.v), []).append(e)

    def drop_edge(e: _Edge) -> None:
        e.alive = False
        out_edges[e.u].discard(e)
        in_edges[e.v].discard(e)

    for u, v in edges:
        add_edge(_Edge(u, v, SPLeaf(u, v)))

    pair_queue: deque = deque(by_pair.keys())
    node_queue: deque = deque(out_edges.keys() | in_edges.keys())
    in_pair_queue: Set[Tuple[Node, Node]] = set(pair_queue)
    in_node_queue: Set[Node] = set(node_queue)

    def push_pair(p: Tuple[Node, Node]) -> None:
        if p not in in_pair_queue:
            in_pair_queue.add(p)
            pair_queue.append(p)

    def push_node(n: Node) -> None:
        if n not in in_node_queue:
            in_node_queue.add(n)
            node_queue.append(n)

    while pair_queue or node_queue:
        while pair_queue:
            p = pair_queue.popleft()
            in_pair_queue.discard(p)
            alive = [e for e in by_pair.get(p, ()) if e.alive]
            by_pair[p] = alive
            if len(alive) >= 2:
                for e in alive:
                    drop_edge(e)
                merged = _Edge(p[0], p[1], parallel([e.tree for e in alive]))
                add_edge(merged)
                by_pair[p] = [merged]
                push_node(p[0])
                push_node(p[1])
        while node_queue:
            w = node_queue.popleft()
            in_node_queue.discard(w)
            if w == source or w == sink:
                continue
            ins = in_edges.get(w, set())
            outs = out_edges.get(w, set())
            if len(ins) == 1 and len(outs) == 1:
                (e_in,) = ins
                (e_out,) = outs
                drop_edge(e_in)
                drop_edge(e_out)
                merged = _Edge(e_in.u, e_out.v, series(e_in.tree, e_out.tree))
                add_edge(merged)
                push_pair((merged.u, merged.v))
                push_node(merged.u)
                push_node(merged.v)
                break  # re-drain the pair queue first
        else:
            continue
        # a series reduction happened; loop back to parallel reductions
        push_node(w)

    remaining = [e for es in out_edges.values() for e in es if e.alive]
    if len(remaining) == 1 and remaining[0].u == source and remaining[0].v == sink:
        return remaining[0].tree
    raise NotSeriesParallelError(
        f"graph is not series-parallel: {len(remaining)} irreducible edges remain"
    )


def decomposition_tree(g: TaskGraph) -> SPTree:
    """SP decomposition tree of a task graph with unique source and sink."""
    sources = g.sources()
    sinks = g.sinks()
    if len(sources) != 1 or len(sinks) != 1:
        raise NotSeriesParallelError(
            f"two-terminal SP graphs need unique source/sink, "
            f"got {len(sources)} sources and {len(sinks)} sinks"
        )
    if g.n_tasks == 1:
        raise NotSeriesParallelError("single-node graph has no defining edge")
    return decomposition_tree_from_edges(g.edges(), sources[0], sinks[0])


def is_series_parallel(g: TaskGraph) -> bool:
    """True iff ``g`` is a two-terminal series-parallel DAG."""
    try:
        decomposition_tree(g)
        return True
    except NotSeriesParallelError:
        return False
