"""Algorithm 1: a forest of series-parallel decomposition trees for general DAGs.

This is the paper's original algorithmic contribution (Sec. III-C, Alg. 1,
Fig. 2).  Decomposition trees are *grown* from the start node towards the end
node:

- ``grow_series`` extends a tree along its sink while **all** incoming edges
  of the sink belong to the tree (``indegree(v) <= outsize(T)``), appending
  either a single edge (out-degree 1) or a recursively grown parallel
  operation;
- ``grow_parallel`` maintains a *wavefront* of active subtrees rooted at a
  branching node, repeatedly merging same-terminal subtrees into parallel
  nodes and growing the rest;
- when the wavefront stalls (no merge or growth possible), the input graph is
  not series-parallel: one active subtree is **cut** from the DAG — it is
  moved to the forest and the expected in-degree of its sink is reduced —
  which unblocks its siblings.

The graph is virtually extended with ``VIRTUAL_SOURCE -> s`` and
``t -> VIRTUAL_SINK`` edges (the paper's ``(eps, s)`` / ``(t, eps)``), so the
core tree of the forest spans from virtual edge to virtual edge.

With careful bookkeeping the algorithm runs in linear time in the number of
edges.  Every edge of the DAG ends up in exactly one tree of the forest; the
test-suite checks this invariant together with the SP-ness of every tree (via
:mod:`repro.sp.recognition`).

Cut choice
----------
The paper cuts a *random* active subtree and notes that "a well-designed
heuristic might exploit" the freedom of choice (the Fig. 2 discussion: cutting
the single edge ``1-4`` instead of the five-edge subtree ``1-5`` keeps the
larger structure intact).  We implement the strategies

``random``    paper default — uniformly among active subtrees,
``first``     deterministic first-in-wavefront,
``smallest``  cut the subtree with the fewest edges (keeps large trees whole),
``largest``   adversarial counterpart, for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.taskgraph import TaskGraph
from .sptree import SPLeaf, SPTree, parallel, series

__all__ = [
    "VIRTUAL_SOURCE",
    "VIRTUAL_SINK",
    "DecompositionForest",
    "grow_decomposition_forest",
    "CUT_STRATEGIES",
]

Node = Hashable


class _Virtual:
    """Sentinel node; never equal to any task id."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


VIRTUAL_SOURCE: Node = _Virtual("eps_in")
VIRTUAL_SINK: Node = _Virtual("eps_out")

CUT_STRATEGIES = ("random", "first", "smallest", "largest")


@dataclass
class DecompositionForest:
    """Result of Algorithm 1.

    ``trees[0]`` is the core tree (spanning virtual source to virtual sink);
    the remaining entries are the subtrees cut during growth, in cut order.
    ``original_tasks`` records the input graph's node set, so that nodes
    introduced by single-source/sink normalization can be filtered out again.
    """

    trees: List[SPTree]
    n_cuts: int
    n_completion_edges: int = 0
    source: Node = None
    sink: Node = None
    original_tasks: frozenset = frozenset()

    @property
    def core(self) -> SPTree:
        return self.trees[0]

    def task_nodes(self) -> set:
        """All original-graph nodes covered by the forest."""
        out = set()
        for t in self.trees:
            out |= t.nodes()
        return out & set(self.original_tasks)

    def real_edges(self) -> List[Tuple[Node, Node]]:
        """All original-graph edges across the forest (virtual and
        normalization edges removed)."""
        keep = self.original_tasks
        out = []
        for t in self.trees:
            for u, v in t.leaf_edges():
                if u in keep and v in keep:
                    out.append((u, v))
        return out


class _ForestGrower:
    """Mutable state shared by the recursive growth functions."""

    def __init__(
        self,
        succ: Dict[Node, List[Node]],
        indeg: Dict[Node, int],
        rng: Optional[np.random.Generator],
        cut_strategy: str,
    ) -> None:
        self.succ = succ
        self.indeg = indeg
        self.rng = rng
        self.cut_strategy = cut_strategy
        self.forest: List[SPTree] = []
        self.n_cuts = 0

    # -- Alg. 1, GROW_SERIES -------------------------------------------
    def grow_series(self, tree: SPTree) -> SPTree:
        while tree.sink is not VIRTUAL_SINK and self.indeg[tree.sink] <= tree.outsize:
            v = tree.sink
            out = self.succ[v]
            if len(out) == 1:
                tree = series(tree, SPLeaf(v, out[0]))
            else:
                tree = series(tree, self.grow_parallel(v))
        return tree

    # -- Alg. 1, GROW_PARALLEL -------------------------------------------
    def grow_parallel(self, v: Node) -> SPTree:
        wavefront: List[SPTree] = [SPLeaf(v, w) for w in self.succ[v]]
        while True:
            changed = True
            while changed:
                changed = False
                wavefront, merged = self._merge(wavefront)
                changed = changed or merged
                if len(wavefront) == 1:
                    return wavefront[0]
                for i, t in enumerate(wavefront):
                    grown = self.grow_series(t)
                    if grown is not t:
                        wavefront[i] = grown
                        changed = True
            # No merge or growth happened: the graph is not series-parallel
            # here.  Cut one active subtree from the DAG (Alg. 1 l. 38-40).
            idx = self._choose_cut(wavefront)
            cut = wavefront.pop(idx)
            self.forest.append(cut)
            self.n_cuts += 1
            self.indeg[cut.sink] -= cut.outsize

    @staticmethod
    def _merge(wavefront: List[SPTree]) -> Tuple[List[SPTree], bool]:
        """Combine same-terminal subtrees into parallel operations."""
        groups: Dict[Tuple[Node, Node], List[SPTree]] = {}
        for t in wavefront:
            groups.setdefault((t.source, t.sink), []).append(t)
        if all(len(g) == 1 for g in groups.values()):
            return wavefront, False
        out: List[SPTree] = []
        for g in groups.values():
            out.append(parallel(g) if len(g) > 1 else g[0])
        return out, True

    def _choose_cut(self, wavefront: Sequence[SPTree]) -> int:
        if self.cut_strategy == "first":
            return 0
        if self.cut_strategy == "smallest":
            return min(range(len(wavefront)), key=lambda i: wavefront[i].n_edges)
        if self.cut_strategy == "largest":
            return max(range(len(wavefront)), key=lambda i: wavefront[i].n_edges)
        if self.rng is None:
            return 0
        return int(self.rng.integers(len(wavefront)))


def grow_decomposition_forest(
    g: TaskGraph,
    *,
    rng: Optional[np.random.Generator] = None,
    cut_strategy: str = "random",
) -> DecompositionForest:
    """Run Algorithm 1 on an arbitrary task DAG.

    The graph is normalized to a single source/sink internally (virtual
    zero-cost nodes, Sec. III-C); the forest's core tree spans
    ``VIRTUAL_SOURCE`` to ``VIRTUAL_SINK``.

    Coverage guarantee: the paper's growth process consumes each edge exactly
    once, but on adversarial inputs repeated cuts can block the core before
    the sink is reached, stranding edges behind a starved node.  Any such
    leftover edges are appended to the forest as single-edge trees
    (``n_completion_edges`` reports how many; it is 0 on all paper-style
    inputs).
    """
    if cut_strategy not in CUT_STRATEGIES:
        raise ValueError(
            f"unknown cut strategy {cut_strategy!r}; choose from {CUT_STRATEGIES}"
        )
    if g.n_tasks == 0:
        raise ValueError("empty graph")
    norm, src, snk = g.normalized()

    succ: Dict[Node, List[Node]] = {t: norm.successors(t) for t in norm.tasks()}
    succ[snk] = [VIRTUAL_SINK]
    indeg: Dict[Node, int] = {t: norm.in_degree(t) for t in norm.tasks()}
    indeg[src] = 1  # the virtual edge (eps, s)
    indeg[VIRTUAL_SINK] = 1

    grower = _ForestGrower(succ, indeg, rng, cut_strategy)
    core = grower.grow_series(SPLeaf(VIRTUAL_SOURCE, src))
    trees = [core] + grower.forest

    # Coverage completion (see docstring).
    covered = set()
    for t in trees:
        covered.update(t.leaf_edges())
    n_completion = 0
    for u in norm.tasks():
        for v in succ[u]:
            if v is VIRTUAL_SINK:
                continue
            if (u, v) not in covered:
                trees.append(SPLeaf(u, v))
                n_completion += 1

    return DecompositionForest(
        trees=trees,
        n_cuts=grower.n_cuts,
        n_completion_edges=n_completion,
        source=src,
        sink=snk,
        original_tasks=frozenset(g.tasks()),
    )
