"""Series-parallel decomposition trees (paper Sec. II-C, Fig. 1).

A decomposition tree describes how a two-terminal series-parallel DAG is
composed from single edges:

- a **leaf** represents one edge of the original graph,
- a **series** node represents the sequential composition of its children
  (child ``i``'s sink equals child ``i+1``'s source) — drawn rectangular in
  the paper's figures,
- a **parallel** node represents the parallel composition of its children
  (all children share the same source and sink) — drawn round.

Series and parallel nodes are kept *n-ary and maximal* (a series chain
``a - b - c`` is one series node with three children), matching the paper's
Fig. 1 and the subgraph-extraction rules of Sec. III-C.

Every tree knows the two terminals ``source``/``sink`` of the subgraph it
represents and its ``outsize`` — the number of its edges whose endpoint is
the sink (needed by Algorithm 1's growth condition).
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Sequence, Set, Tuple

__all__ = ["SPTree", "SPLeaf", "SPSeries", "SPParallel", "series", "parallel"]

Node = Hashable


class SPTree:
    """Base class for decomposition-tree nodes."""

    source: Node
    sink: Node

    @property
    def outsize(self) -> int:
        """Number of edges in this tree whose endpoint is :attr:`sink`."""
        raise NotImplementedError

    def leaf_edges(self) -> Iterator[Tuple[Node, Node]]:
        """All original-graph edges represented by this tree, in order."""
        raise NotImplementedError

    def nodes(self) -> Set[Node]:
        """All graph nodes covered by this tree (terminals included)."""
        out: Set[Node] = set()
        for u, v in self.leaf_edges():
            out.add(u)
            out.add(v)
        return out

    def inner_nodes(self) -> Iterator["SPTree"]:
        """All non-leaf descendants including ``self`` (pre-order)."""
        raise NotImplementedError

    @property
    def n_edges(self) -> int:
        return sum(1 for _ in self.leaf_edges())

    # -- pretty printing ------------------------------------------------
    def pretty(self, indent: int = 0) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.pretty()


class SPLeaf(SPTree):
    """A single edge ``(u, v)`` — the paper's ``[u, v]`` notation."""

    __slots__ = ("source", "sink")

    def __init__(self, u: Node, v: Node) -> None:
        self.source = u
        self.sink = v

    @property
    def outsize(self) -> int:
        return 1

    def leaf_edges(self) -> Iterator[Tuple[Node, Node]]:
        yield (self.source, self.sink)

    def inner_nodes(self) -> Iterator[SPTree]:
        return iter(())

    def pretty(self, indent: int = 0) -> str:
        return " " * indent + f"[{self.source} - {self.sink}]"

    def __repr__(self) -> str:
        return f"SPLeaf({self.source!r}, {self.sink!r})"


class SPSeries(SPTree):
    """Sequential composition; terminals are first child's source, last child's sink."""

    __slots__ = ("children", "source", "sink")

    def __init__(self, children: Sequence[SPTree]) -> None:
        if len(children) < 2:
            raise ValueError("series node needs at least 2 children")
        for a, b in zip(children, children[1:]):
            if a.sink != b.source:
                raise ValueError(
                    f"series children do not chain: {a.sink!r} != {b.source!r}"
                )
        self.children: List[SPTree] = list(children)
        self.source = children[0].source
        self.sink = children[-1].sink

    @property
    def outsize(self) -> int:
        return self.children[-1].outsize

    def leaf_edges(self) -> Iterator[Tuple[Node, Node]]:
        for c in self.children:
            yield from c.leaf_edges()

    def inner_nodes(self) -> Iterator[SPTree]:
        yield self
        for c in self.children:
            yield from c.inner_nodes()

    def pretty(self, indent: int = 0) -> str:
        head = " " * indent + f"S[{self.source} - {self.sink}]"
        return "\n".join([head] + [c.pretty(indent + 2) for c in self.children])

    def __repr__(self) -> str:
        return f"SPSeries({self.source!r} -> {self.sink!r}, {len(self.children)} children)"


class SPParallel(SPTree):
    """Parallel composition; all children share the same terminals."""

    __slots__ = ("children", "source", "sink")

    def __init__(self, children: Sequence[SPTree]) -> None:
        if len(children) < 2:
            raise ValueError("parallel node needs at least 2 children")
        src, snk = children[0].source, children[0].sink
        for c in children[1:]:
            if c.source != src or c.sink != snk:
                raise ValueError("parallel children must share terminals")
        self.children: List[SPTree] = list(children)
        self.source = src
        self.sink = snk

    @property
    def outsize(self) -> int:
        return sum(c.outsize for c in self.children)

    def leaf_edges(self) -> Iterator[Tuple[Node, Node]]:
        for c in self.children:
            yield from c.leaf_edges()

    def inner_nodes(self) -> Iterator[SPTree]:
        yield self
        for c in self.children:
            yield from c.inner_nodes()

    def pretty(self, indent: int = 0) -> str:
        head = " " * indent + f"P({self.source} - {self.sink})"
        return "\n".join([head] + [c.pretty(indent + 2) for c in self.children])

    def __repr__(self) -> str:
        return f"SPParallel({self.source!r} -> {self.sink!r}, {len(self.children)} children)"


def series(left: SPTree, right: SPTree) -> SPTree:
    """Sequential composition keeping series nodes maximal (flattening)."""
    if left.sink != right.source:
        raise ValueError(f"cannot chain {left!r} and {right!r}")
    parts: List[SPTree] = []
    for t in (left, right):
        if isinstance(t, SPSeries):
            parts.extend(t.children)
        else:
            parts.append(t)
    return SPSeries(parts)


def parallel(trees: Sequence[SPTree]) -> SPTree:
    """Parallel composition keeping parallel nodes maximal (flattening)."""
    if len(trees) == 1:
        return trees[0]
    parts: List[SPTree] = []
    for t in trees:
        if isinstance(t, SPParallel):
            parts.extend(t.children)
        else:
            parts.append(t)
    return SPParallel(parts)
