"""Analysis of decomposition forests and SP-ness of graphs.

Quantifies what Fig. 7 varies: *how* series-parallel a DAG is, and what the
decomposition forest looks like (tree-size distribution, how much of the
graph the core tree retains).  The experiment drivers use these metrics for
reporting; they are also the foundation of the cut-strategy ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graphs.taskgraph import TaskGraph
from .forest import DecompositionForest, grow_decomposition_forest
from .recognition import is_series_parallel

__all__ = ["ForestStats", "forest_stats", "sp_distance", "core_fraction"]


@dataclass(frozen=True)
class ForestStats:
    """Shape summary of a decomposition forest."""

    n_trees: int
    n_cuts: int
    n_edges_total: int
    core_edges: int            # real edges in the core tree
    largest_tree_edges: int
    mean_tree_edges: float
    core_fraction: float       # core real edges / all real edges
    single_edge_trees: int     # degenerate trees (the SN-convergence signal)


def forest_stats(g: TaskGraph, forest: DecompositionForest) -> ForestStats:
    """Compute the shape summary of a forest over its original graph."""
    real = set(g.tasks())

    def real_edge_count(tree) -> int:
        return sum(1 for u, v in tree.leaf_edges() if u in real and v in real)

    sizes = [real_edge_count(t) for t in forest.trees]
    total = sum(sizes)
    core = sizes[0] if sizes else 0
    return ForestStats(
        n_trees=len(forest.trees),
        n_cuts=forest.n_cuts,
        n_edges_total=total,
        core_edges=core,
        largest_tree_edges=max(sizes, default=0),
        mean_tree_edges=float(np.mean(sizes)) if sizes else 0.0,
        core_fraction=core / total if total else 0.0,
        single_edge_trees=sum(1 for s in sizes if s == 1),
    )


def sp_distance(
    g: TaskGraph,
    *,
    rng: Optional[np.random.Generator] = None,
    cut_strategy: str = "smallest",
    trials: int = 1,
) -> float:
    """Fraction of edges that had to be cut away from the core structure.

    0.0 for series-parallel graphs; grows towards 1 as conflicts shatter
    the decomposition (the x-axis regime of Fig. 7).  An upper bound on the
    true (NP-hard, [23]) minimum, taken as the best over ``trials`` runs.
    """
    if g.n_edges == 0:
        return 0.0
    if is_series_parallel(g):
        return 0.0
    best = 1.0
    for k in range(max(1, trials)):
        forest = grow_decomposition_forest(
            g,
            rng=rng if rng is not None else np.random.default_rng(k),
            cut_strategy=cut_strategy,
        )
        stats = forest_stats(g, forest)
        cut_edges = stats.n_edges_total - stats.core_edges
        best = min(best, cut_edges / max(1, stats.n_edges_total))
    return best


def core_fraction(
    g: TaskGraph,
    *,
    rng: Optional[np.random.Generator] = None,
    cut_strategy: str = "smallest",
) -> float:
    """Share of the graph's edges kept in the core decomposition tree."""
    forest = grow_decomposition_forest(g, rng=rng, cut_strategy=cut_strategy)
    return forest_stats(g, forest).core_fraction
