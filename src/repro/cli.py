"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   create a task graph (random SP / almost-SP / workflow) as JSON
``decompose``  run Algorithm 1 on a graph, print the forest and its stats
``map``        map a graph with any algorithm, write the mapping JSON
``evaluate``   evaluate a mapping (makespan, improvement, optional Gantt)
``compare``    run several algorithms head-to-head on one graph
``simulate``   stress-test a mapping in the runtime engine (noise, failures,
               arrival streams, shared link slots, online re-mapping
               policies) and print a robustness/throughput report with
               energy and shared-resource wait accounting
``experiment`` regenerate a paper figure/table (fig3..fig7, table1) or an
               extension study (robustness, replan, contention);
               ``--workers N`` fans the replications across a process
               pool with bit-identical results
``profile``    run one mapper (and optionally a multi-job engine stream)
               under full instrumentation: phase-time breakdown table,
               metrics summary, optional Perfetto trace (``--trace``)
``env``        print the environment diagnostic header (version, kernel
               compile status, numpy/BLAS) for bug reports and benchmarks
``lint``       statically check the repo's reproducibility invariants
               (seeded randomness, no wall-clock in algorithms, write-only
               observability, single-sourced tolerances, picklable
               ``parallel_map`` payloads, C-kernel constant mirrors)

``--trace out.json`` on ``simulate``/``experiment`` records spans (and,
for engine runs, the simulated-time timeline) to a Chrome trace-event
file viewable at https://ui.perfetto.dev.  ``--verbose/--quiet`` adjust
report volume; the default output is unchanged.

Examples
--------
::

    python -m repro generate --kind sp --n 50 --seed 7 -o graph.json
    python -m repro decompose graph.json --strategy smallest
    python -m repro map graph.json --algorithm sp-first-fit -o mapping.json
    python -m repro evaluate graph.json mapping.json --gantt
    python -m repro compare graph.json --algorithms heft peft sp-first-fit
    python -m repro simulate graph.json mapping.json --noise lognormal \
        --sigma 0.3 --replications 50
    python -m repro simulate graph.json --algorithm heft --fail vega56@0.5 \
        --replan-policy decomposition
    python -m repro simulate graph.json mapping.json --arrivals 8 \
        --period 0.05 --link-slots 1
    python -m repro experiment fig4 --scale smoke
    python -m repro experiment robustness --scale small --workers 4
    python -m repro experiment contention --scale smoke
    python -m repro profile graph.json --algorithm sp-first-fit \
        --arrivals 8 --period 0.05 --trace profile.json
    python -m repro simulate graph.json mapping.json --trace run.json
    python -m repro env
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

import numpy as np

from . import obs
from .evaluation import MappingEvaluator, render_gantt, simulate_trace
from .graphs.generators import (
    WORKFLOW_FAMILIES,
    augment_workflow,
    make_workflow,
    random_almost_sp_graph,
    random_sp_graph,
)
from .io import (
    graph_to_dot,
    load_graph,
    load_platform,
    mapping_from_dict,
    mapping_to_dict,
    save_graph,
)
from .mappers import (
    HeftMapper,
    NsgaIIMapper,
    PeftMapper,
    WgdpDeviceMapper,
    WgdpTimeMapper,
    ZhouLiuMapper,
    series_parallel,
    single_node,
    sn_first_fit,
    sp_first_fit,
)
from .mappers import CpopMapper, MaxMinMapper, MinMinMapper, TabuSearchMapper
from .mappers.annealing import SimulatedAnnealingMapper
from .mappers.lookahead import LookaheadHeftMapper
from .platform import paper_platform
from .sp import grow_decomposition_forest
from .sp.analysis import forest_stats, sp_distance

__all__ = ["main", "MAPPER_FACTORIES"]

#: every user-facing line goes through the logging-backed reporter
#: (``--verbose``/``--quiet``); default-level output is byte-identical
#: to the bare ``print()`` calls it replaced
R = obs.get_reporter()

#: simulated-time Chrome events gathered by commands that run the
#: engine while ``--trace`` is active; written next to the wall-clock
#: spans by :func:`main` (reset at each invocation)
_TRACE_EXTRA: List[dict] = []

MAPPER_FACTORIES: Dict[str, Callable[[], object]] = {
    "single-node": single_node,
    "series-parallel": series_parallel,
    "sn-first-fit": sn_first_fit,
    "sp-first-fit": sp_first_fit,
    "heft": HeftMapper,
    "peft": PeftMapper,
    "cpop": CpopMapper,
    "min-min": MinMinMapper,
    "max-min": MaxMinMapper,
    "tabu": TabuSearchMapper,
    "la-heft": LookaheadHeftMapper,
    "nsga2": lambda: NsgaIIMapper(generations=100),
    "annealing": SimulatedAnnealingMapper,
    "wgdp-dev": lambda: WgdpDeviceMapper(time_limit_s=30),
    "wgdp-time": lambda: WgdpTimeMapper(time_limit_s=60),
    "zhou-liu": lambda: ZhouLiuMapper(time_limit_s=120),
}


def _load_platform(args) -> object:
    if getattr(args, "platform", None):
        return load_platform(args.platform)
    return paper_platform()


def _evaluator(graph, args, platform=None) -> MappingEvaluator:
    return MappingEvaluator(
        graph,
        platform if platform is not None else _load_platform(args),
        rng=np.random.default_rng(getattr(args, "eval_seed", 0)),
        n_random_schedules=getattr(args, "schedules", 100),
    )


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------

def cmd_generate(args) -> int:
    rng = np.random.default_rng(args.seed)
    if args.kind == "sp":
        g = random_sp_graph(args.n, rng)
    elif args.kind == "almost-sp":
        g = random_almost_sp_graph(args.n, args.extra_edges, rng)
    elif args.kind in WORKFLOW_FAMILIES:
        g = make_workflow(args.kind, args.n, rng)
        augment_workflow(g, rng)
    else:
        R.error(f"unknown kind {args.kind!r}")
        return 2
    if args.output:
        save_graph(g, args.output)
        R.out(f"wrote {g.n_tasks} tasks / {g.n_edges} edges to {args.output}")
    else:
        from .io import graph_to_dict

        json.dump(graph_to_dict(g), sys.stdout, indent=2)
        R.out()
    return 0


def cmd_decompose(args) -> int:
    g = load_graph(args.graph)
    rng = np.random.default_rng(args.seed)
    forest = grow_decomposition_forest(
        g, rng=rng, cut_strategy=args.strategy
    )
    stats = forest_stats(g, forest)
    R.out(f"graph: {g.n_tasks} tasks, {g.n_edges} edges")
    R.out(
        f"forest: {stats.n_trees} trees, {stats.n_cuts} cuts, "
        f"core fraction {stats.core_fraction:.1%}, "
        f"sp-distance {sp_distance(g):.3f}"
    )
    if args.trees:
        for k, tree in enumerate(forest.trees):
            R.out(f"--- tree {k} {'(core)' if k == 0 else '(cut)'} ---")
            R.out(tree.pretty())
    if args.dot:
        from .io import forest_to_dot

        with open(args.dot, "w") as fh:
            fh.write(forest_to_dot(g, forest))
        R.out(f"wrote {args.dot}")
    return 0


def cmd_map(args) -> int:
    try:
        g = load_graph(args.graph)
        evaluator = _evaluator(g, args)
    except (OSError, ValueError, KeyError) as exc:
        R.error(f"cannot load inputs: {exc}")
        return 2
    mapper = MAPPER_FACTORIES[args.algorithm]()
    result = mapper.map(evaluator, rng=np.random.default_rng(args.seed))
    improvement = evaluator.relative_improvement(result.mapping)
    R.out(
        f"{mapper.name}: makespan {result.makespan * 1e3:.2f} ms, "
        f"improvement {improvement:.1%}, "
        f"{result.n_evaluations} evaluations in {result.elapsed_s * 1e3:.1f} ms"
    )
    if args.output:
        doc = mapping_to_dict(
            g,
            evaluator.platform,
            result.mapping,
            makespan=result.makespan,
            algorithm=mapper.name,
        )
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2)
        R.out(f"wrote {args.output}")
    if args.dot:
        with open(args.dot, "w") as fh:
            fh.write(
                graph_to_dot(g, mapping=result.mapping,
                             platform=evaluator.platform)
            )
        R.out(f"wrote {args.dot}")
    return 0


def cmd_evaluate(args) -> int:
    g = load_graph(args.graph)
    evaluator = _evaluator(g, args)
    with open(args.mapping) as fh:
        mapping = mapping_from_dict(json.load(fh), g, evaluator.platform)
    reported = evaluator.reported_makespan(mapping)
    R.out(f"reported makespan : {reported * 1e3:.2f} ms")
    R.out(f"cpu baseline      : {evaluator.cpu_reported_makespan * 1e3:.2f} ms")
    R.out(f"improvement       : {evaluator.relative_improvement(mapping):.1%}")
    if args.gantt:
        trace = simulate_trace(evaluator.model, mapping)
        R.out(render_gantt(trace, evaluator.model))
    return 0


def cmd_compare(args) -> int:
    g = load_graph(args.graph)
    evaluator = _evaluator(g, args)
    R.out(f"{'algorithm':>16s} | {'improvement':>11s} | {'time':>10s}")
    R.out("-" * 45)
    for name in args.algorithms:
        mapper = MAPPER_FACTORIES[name]()
        res = mapper.map(evaluator, rng=np.random.default_rng(args.seed))
        imp = evaluator.relative_improvement(res.mapping)
        R.out(
            f"{mapper.name:>16s} | {imp:>10.1%} | {res.elapsed_s * 1e3:>8.1f}ms"
        )
    return 0


def _parse_device(spec: str, platform) -> int:
    try:
        return platform.index_of(spec)
    # not a device name: fall through to the numeric-index parse below,
    # which owns the error message
    except KeyError:  # repro-lint: disable=EXC001
        pass
    try:
        d = int(spec)
    except ValueError:
        names = ", ".join(dev.name for dev in platform.devices)
        raise ValueError(
            f"unknown device {spec!r}; use an index or one of: {names}"
        ) from None
    if not 0 <= d < platform.n_devices:
        raise ValueError(f"device index {d} out of range")
    return d


def _parse_float(text: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"{what} {text!r} is not a number") from None


def _parse_scenarios(args, platform) -> List:
    """``--fail DEV@T`` and ``--slowdown DEV@T:FACTOR`` into scenario objects.

    Malformed specs, unknown devices, out-of-range indices and invalid
    times/factors all raise :class:`ValueError` with the offending spec
    named — ``repro simulate`` turns these into a clean non-zero exit
    instead of a traceback from deep inside :mod:`repro.runtime`.
    """
    from .runtime import DeviceFailure, DeviceSlowdown

    scenarios = []
    for spec in args.fail or []:
        dev, sep, at = spec.rpartition("@")
        if not sep or not dev:
            raise ValueError(f"--fail {spec!r}: expected DEV@T")
        try:
            scenarios.append(DeviceFailure(
                _parse_float(at, "time"),
                device=_parse_device(dev, platform),
            ))
        except ValueError as exc:
            raise ValueError(f"--fail {spec!r}: {exc}") from None
    for spec in args.slowdown or []:
        dev, sep, rest = spec.rpartition("@")
        at, sep2, factor = rest.partition(":")
        if not sep or not dev or not sep2:
            raise ValueError(f"--slowdown {spec!r}: expected DEV@T:FACTOR")
        try:
            scenarios.append(DeviceSlowdown(
                _parse_float(at, "time"),
                device=_parse_device(dev, platform),
                factor=_parse_float(factor, "factor"),
            ))
        except ValueError as exc:
            raise ValueError(f"--slowdown {spec!r}: {exc}") from None
    return scenarios


def _make_noise(args):
    from .runtime import GammaNoise, LognormalNoise, NoNoise

    if args.noise == "none":
        if args.sigma is not None or args.transfer_noise is not None:
            raise ValueError(
                "--sigma/--transfer-noise have no effect without "
                "--noise lognormal|gamma"
            )
        return NoNoise()
    sigma = 0.2 if args.sigma is None else args.sigma
    transfer = 0.0 if args.transfer_noise is None else args.transfer_noise
    if args.noise == "lognormal":
        return LognormalNoise(sigma, transfer_sigma=transfer)
    return GammaNoise(sigma, transfer_cv=transfer)


def cmd_simulate(args) -> int:
    from .evaluation.costmodel import CostModel
    from .runtime import (
        RuntimeEngine,
        periodic_stream,
        replicate,
        robustness_report,
        simulate_mapping,
        throughput_report,
    )

    # cheap argument validation first — before any graph/mapper work
    if args.mapping and args.algorithm:
        R.error("give a mapping file or --algorithm, not both")
        return 2
    if not args.mapping and not args.algorithm:
        R.error("need a mapping file or --algorithm")
        return 2
    if args.replications < 1:
        R.error("--replications must be at least 1")
        return 2
    if args.arrivals < 1:
        R.error("--arrivals must be at least 1")
        return 2
    if args.replications > 1 and args.arrivals > 1:
        R.error("--arrivals and --replications are mutually exclusive")
        return 2
    if args.gantt and (args.replications > 1 or args.arrivals > 1):
        R.error("--gantt needs a single run (no --replications/--arrivals)")
        return 2
    try:
        noise = _make_noise(args)
    except ValueError as exc:
        R.error(exc)
        return 2
    if args.replications > 1 and noise.deterministic:
        R.error("deterministic replications are identical; --replications "
              "needs a nonzero --noise level")
        return 2
    if (
        args.replan_policy != "fallback"
        and not args.fail
        and not args.slowdown
        and args.arrivals <= 1
    ):
        # with a multi-job stream the policy still matters: arrivals under
        # FPGA area pressure are routed through it (no scenario needed)
        R.error(f"--replan-policy {args.replan_policy} has no effect without "
              "a --fail/--slowdown scenario or a multi-job --arrivals "
              "stream")
        return 2
    if args.link_slots is not None and args.link_slots < 0:
        R.error("--link-slots must be >= 0 (0 = unlimited)")
        return 2
    if args.slowdown_replan_threshold <= 1.0:
        R.error("--slowdown-replan-threshold must exceed 1")
        return 2

    try:
        g = load_graph(args.graph)
        platform = _load_platform(args)
    except (OSError, ValueError, KeyError) as exc:
        R.error(f"cannot load inputs: {exc}")
        return 2
    try:
        scenarios = _parse_scenarios(args, platform)
    except ValueError as exc:
        R.error(exc)
        return 2

    model = None
    if args.mapping:
        try:
            with open(args.mapping) as fh:
                mapping = mapping_from_dict(json.load(fh), g, platform)
        except (OSError, ValueError, KeyError) as exc:
            R.error(f"cannot load mapping {args.mapping!r}: {exc}")
            return 2
        source = "stored mapping"
    else:
        evaluator = _evaluator(g, args, platform)
        mapper = MAPPER_FACTORIES[args.algorithm]()
        result = mapper.map(evaluator, rng=np.random.default_rng(args.seed))
        mapping, source = result.mapping, mapper.name
        model = evaluator.model

    mapping = list(mapping)
    if model is None:
        model = CostModel(g, platform)
    if not model.is_feasible(mapping):
        R.error(f"mapping violates an area budget "
              f"(usage {model.area_usage(mapping)})")
        return 2
    analytic = model.simulate(mapping)

    R.out(f"mapping           : {source}")
    R.out(f"analytic makespan : {analytic * 1e3:.2f} ms")
    for scn in scenarios:
        R.out(f"scenario          : {scn.describe()}")
    if args.replan_policy != "fallback":
        R.out(f"replan policy     : {args.replan_policy}")
        if args.slowdown:
            R.out(f"slowdown replan   : at cumulative factor >= "
                  f"{args.slowdown_replan_threshold:g}")
    if args.link_slots is not None:
        R.out(f"link slots        : "
              f"{args.link_slots if args.link_slots else 'unlimited'}")

    def _print_shared(trace) -> None:
        R.out(f"energy            : {trace.energy_j:.1f} J "
              f"(compute {trace.compute_energy_j:.1f}, "
              f"transfers {trace.transfer_energy_j:.2f}, "
              f"idle {trace.idle_energy_j:.1f})")
        if trace.wasted_energy_j:
            R.out(f"wasted energy     : {trace.wasted_energy_j:.1f} J "
                  f"(rolled-back work)")
        if trace.n_area_waits:
            R.out(f"area waits        : {trace.n_area_waits} task(s), "
                  f"{trace.area_wait_time * 1e3:.1f} ms total")
        if trace.n_link_waits:
            R.out(f"link waits        : {trace.n_link_waits} transfer(s), "
                  f"{trace.link_wait_time * 1e3:.1f} ms total")

    try:
        if args.arrivals > 1:
            jobs = periodic_stream(g, mapping, args.arrivals, period=args.period)
            engine = RuntimeEngine(
                platform, noise=noise, scenarios=scenarios,
                replan_policy=args.replan_policy,
                link_slots=args.link_slots,
                slowdown_replan_threshold=args.slowdown_replan_threshold,
            )
            trace = engine.run(jobs, rng=args.seed)
            if obs.enabled():
                _TRACE_EXTRA.extend(
                    obs.runtime_trace_to_chrome_events(trace, platform)
                )
            R.out(f"stream            : {args.arrivals} arrivals, "
                  f"period {args.period * 1e3:g} ms")
            R.out(f"serving           : {throughput_report(trace)}")
            _print_shared(trace)
            return 0

        if args.replications > 1:
            traces = replicate(
                g, platform, mapping, n=args.replications, noise=noise,
                scenarios=scenarios, seed=args.seed,
                replan_policy=args.replan_policy,
                link_slots=args.link_slots,
                slowdown_replan_threshold=args.slowdown_replan_threshold,
            )
            report = robustness_report(traces, analytic)
            R.out(f"replications      : {report.n} ({noise.describe()})")
            R.out(f"mean makespan     : {report.mean * 1e3:.2f} ms "
                  f"(degradation {report.degradation:+.1%})")
            R.out(f"p95 makespan      : {report.p95 * 1e3:.2f} ms "
                  f"(degradation {report.p95_degradation:+.1%})")
            R.out(f"best / worst      : {report.best * 1e3:.2f} ms / "
                  f"{report.worst * 1e3:.2f} ms")
            R.out(f"mean energy       : "
                  f"{float(np.mean([t.energy_j for t in traces])):.1f} J "
                  f"per run")
            mean_we = float(np.mean([t.wasted_energy_j for t in traces]))
            if mean_we > 0:
                R.out(f"mean wasted energy: {mean_we:.1f} J "
                      f"(rolled-back work)")
            mean_aw = float(np.mean([t.area_wait_time for t in traces]))
            mean_lw = float(np.mean([t.link_wait_time for t in traces]))
            if mean_aw > 0:
                R.out(f"mean area wait    : {mean_aw * 1e3:.1f} ms")
            if mean_lw > 0:
                R.out(f"mean link wait    : {mean_lw * 1e3:.1f} ms")
            return 0

        trace = simulate_mapping(
            g, platform, mapping, noise=noise, scenarios=scenarios,
            rng=args.seed, replan_policy=args.replan_policy,
            link_slots=args.link_slots,
            slowdown_replan_threshold=args.slowdown_replan_threshold,
        )
    except ValueError as exc:  # bad stream/job parameters
        R.error(exc)
        return 2
    except RuntimeError as exc:  # the scenario left no feasible platform
        R.error(f"simulation aborted: {exc}")
        return 1
    if obs.enabled():
        _TRACE_EXTRA.extend(
            obs.runtime_trace_to_chrome_events(trace, platform)
        )
    R.out(f"simulated makespan: {trace.makespan * 1e3:.2f} ms")
    if trace.n_killed:
        R.out(f"tasks killed      : {trace.n_killed}")
    n_remapped = sum(job.n_remapped for job in trace.jobs)
    if n_remapped:
        R.out(f"tasks remapped    : {n_remapped}")
    if trace.n_fallback_dead:
        R.out(f"dead fallbacks    : {trace.n_fallback_dead}")
    _print_shared(trace)
    if args.gantt:
        R.out(render_gantt(trace, model))
    return 0


def cmd_experiment(args) -> int:
    from .experiments import (
        contention, fig3, fig4, fig5, fig6, fig7, robustness, table1,
    )
    from .experiments.reporting import print_sweep
    from .experiments.table1 import format_table

    drivers = {
        "fig3": fig3.run, "fig4": fig4.run, "fig5": fig5.run,
        "fig6": fig6.run, "fig7": fig7.run,
    }
    workers = args.workers
    # every driver takes a progress callback; at the default level it is
    # dropped by the reporter, with --verbose it streams per-point lines
    kw = dict(scale=args.scale, workers=workers, progress=R.detail)
    if getattr(args, "topology", None) is not None and args.name != "contention":
        R.error("--topology is only supported for the contention experiment")
        return 2
    if args.checkpoint or args.resume:
        if args.name not in ("table1", "robustness", "replan", "contention"):
            R.error(
                f"--checkpoint/--resume is not supported for {args.name} "
                "(available for table1, robustness, replan, contention)"
            )
            return 2
        if args.resume and not args.checkpoint:
            R.error("--resume requires --checkpoint")
            return 2
        kw.update(checkpoint=args.checkpoint, resume=args.resume)
    if args.name == "table1":
        R.out(format_table(table1.run(**kw)))
    elif args.name == "robustness":
        robustness.print_report(robustness.run(**kw))
    elif args.name == "replan":
        robustness.print_report(robustness.run_replan(**kw))
    elif args.name == "contention":
        if getattr(args, "topology", None) is not None:
            try:
                result = contention.run_topologies(
                    topologies=args.topology or None, **kw
                )
            except ValueError as exc:
                R.error(str(exc))
                return 2
            R.out(contention.format_topology_table(result))
            R.out(
                "csv written to "
                + contention.write_topology_csv(result)
            )
        else:
            contention.print_report(contention.run(**kw))
    else:
        print_sweep(drivers[args.name](**kw))
    return 0


def _metric_line(name: str, value) -> str:
    """One rendered metrics row (counters, gauges and histograms)."""
    if isinstance(value, dict):
        if "gauge" in value:
            value = value["gauge"]
        else:  # histogram snapshot
            mean = value.get("mean")
            return (
                f"{name:<28s} n={value['n']}"
                + (f" mean={mean:.6g}" if mean is not None else "")
                + (f" max={value['max']:.6g}"
                   if value.get("max") is not None else "")
            )
    if isinstance(value, float):
        return f"{name:<28s} {value:.6g}"
    return f"{name:<28s} {value}"


def cmd_profile(args) -> int:
    from .runtime import RuntimeEngine, periodic_stream

    if args.arrivals < 0:
        R.error("--arrivals must be >= 0")
        return 2
    try:
        g = load_graph(args.graph)
        platform = _load_platform(args)
    except (OSError, ValueError, KeyError) as exc:
        R.error(f"cannot load inputs: {exc}")
        return 2

    tracer, registry = obs.observe()
    # pre-touch the supervision counters so the metrics dump always shows
    # them (zero on a run that needed no retries/rebuilds)
    for name in ("parallel.retries", "parallel.timeouts",
                 "parallel.pool_rebuilds"):
        registry.counter(name).inc(0)
    try:
        evaluator = _evaluator(g, args, platform)
        mapper = MAPPER_FACTORIES[args.algorithm]()
        result = mapper.map(evaluator, rng=np.random.default_rng(args.seed))
        extra_events: List[dict] = []
        rtrace = None
        if args.arrivals > 1:
            jobs = periodic_stream(
                g, list(result.mapping), args.arrivals, period=args.period
            )
            engine = RuntimeEngine(platform)
            rtrace = engine.run(jobs, rng=args.seed)
            extra_events = obs.runtime_trace_to_chrome_events(
                rtrace, platform
            )
    finally:
        obs.shutdown()

    R.out(f"profile           : {mapper.name} on {g.n_tasks} tasks / "
          f"{platform.n_devices} devices")
    R.out(f"makespan          : {result.makespan * 1e3:.2f} ms "
          f"({result.n_evaluations} evaluations)")
    if rtrace is not None:
        R.out(f"stream            : {args.arrivals} arrivals, "
              f"period {args.period * 1e3:g} ms, "
              f"simulated makespan {rtrace.makespan * 1e3:.2f} ms")
    R.out("")
    totals = tracer.phase_totals()
    run_ns = sum(
        ns for name, (_c, ns) in totals.items()
        if name in ("mapper.run", "engine.run")
    ) or 1
    R.out(f"{'phase':<28s} {'calls':>6s} {'total':>12s} {'share':>7s}")
    R.out("-" * 56)
    for name, (calls, total_ns) in totals.items():
        R.out(f"{name:<28s} {calls:>6d} {total_ns / 1e6:>9.2f} ms "
              f"{total_ns / run_ns:>6.1%}")
    snapshot = registry.snapshot()
    if snapshot:
        R.out("")
        R.out("metrics")
        R.out("-" * 56)
        for name, value in snapshot.items():
            R.out(_metric_line(name, value))
    if args.trace:
        obs.write_chrome(tracer, args.trace, extra_events=extra_events)
        R.out("")
        R.out(f"wrote {args.trace} (open at https://ui.perfetto.dev)")
    return 0


def cmd_env(args) -> int:
    env = obs.collect_env()
    if args.json:
        R.out(json.dumps(env, indent=2))
    else:
        R.out(obs.format_env(env))
    return 0


def _default_lint_paths() -> List[str]:
    """``src tests benchmarks`` when run from a checkout, else the
    installed package directory."""
    import os

    paths = [p for p in ("src", "tests", "benchmarks") if os.path.isdir(p)]
    if paths:
        return paths
    return [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]


def cmd_lint(args) -> int:
    from . import analysis

    if args.list_rules:
        for rule in analysis.all_rules():
            R.out(f"{rule.code}  {rule.title}")
            R.out(f"        {rule.contract}")
        return 0
    paths = args.paths or _default_lint_paths()
    try:
        report = analysis.run_lint(
            paths,
            select=args.select,
            ignore=args.ignore,
            baseline=args.baseline,
        )
    except (analysis.LintError, analysis.RuleSelectionError) as exc:
        R.error(f"lint: {exc}")
        return 2
    if args.write_baseline:
        n = analysis.write_baseline(args.write_baseline, report.findings)
        R.out(f"wrote {args.write_baseline} ({n} entries)")
        return 0
    if args.json:
        R.out(json.dumps(report.to_json(), indent=2))
    else:
        for f in report.findings:
            R.out(f.render())
        for err in report.errors:
            R.out(f"error: {err}")
        tail = f"{len(report.findings)} finding(s) in {report.n_files} file(s)"
        if report.n_suppressed:
            tail += f", {report.n_suppressed} suppressed"
        if report.n_baselined:
            tail += f", {report.n_baselined} baselined"
        R.out(tail)
    return 0 if report.clean else 1


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also show debug-level report lines")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the report body (warnings/errors only)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a task graph")
    p.add_argument("--kind", default="sp",
                   help=f"sp | almost-sp | {' | '.join(sorted(WORKFLOW_FAMILIES))}")
    p.add_argument("--n", type=int, default=50)
    p.add_argument("--extra-edges", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("decompose", help="run Algorithm 1 on a graph")
    p.add_argument("graph")
    p.add_argument("--strategy", default="random",
                   choices=["random", "first", "smallest", "largest"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trees", action="store_true", help="print every tree")
    p.add_argument("--dot", help="write a clustered DOT file")
    p.set_defaults(func=cmd_decompose)

    p = sub.add_parser("map", help="map a graph")
    p.add_argument("graph")
    p.add_argument("--algorithm", default="sp-first-fit",
                   choices=sorted(MAPPER_FACTORIES))
    p.add_argument("--platform", help="platform JSON (default: paper platform)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--eval-seed", type=int, default=0)
    p.add_argument("--schedules", type=int, default=100)
    p.add_argument("-o", "--output", help="mapping JSON output")
    p.add_argument("--dot", help="write a colored DOT file")
    p.set_defaults(func=cmd_map)

    p = sub.add_parser("evaluate", help="evaluate a stored mapping")
    p.add_argument("graph")
    p.add_argument("mapping")
    p.add_argument("--platform")
    p.add_argument("--eval-seed", type=int, default=0)
    p.add_argument("--schedules", type=int, default=100)
    p.add_argument("--gantt", action="store_true")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("compare", help="compare algorithms on one graph")
    p.add_argument("graph")
    p.add_argument("--algorithms", nargs="+",
                   default=["heft", "peft", "sn-first-fit", "sp-first-fit"],
                   choices=sorted(MAPPER_FACTORIES))
    p.add_argument("--platform")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--eval-seed", type=int, default=0)
    p.add_argument("--schedules", type=int, default=100)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "simulate",
        help="stress-test a mapping in the runtime engine",
    )
    p.add_argument("graph")
    p.add_argument("mapping", nargs="?",
                   help="mapping JSON (or use --algorithm to map first)")
    p.add_argument("--algorithm", choices=sorted(MAPPER_FACTORIES),
                   help="map the graph with this algorithm instead of a file")
    p.add_argument("--platform", help="platform JSON (default: paper platform)")
    p.add_argument("--noise", default="none",
                   choices=["none", "lognormal", "gamma"])
    p.add_argument("--sigma", type=float, default=None,
                   help="noise level (lognormal sigma / gamma cv; default 0.2)")
    p.add_argument("--transfer-noise", type=float, default=None,
                   help="noise level for data transfers (default: none)")
    p.add_argument("--replications", type=int, default=1,
                   help="independently-seeded runs for a robustness report")
    p.add_argument("--fail", action="append", metavar="DEV@T",
                   help="fail a device at time T (repeatable)")
    p.add_argument("--slowdown", action="append", metavar="DEV@T:FACTOR",
                   help="slow a device by FACTOR from time T (repeatable)")
    from .runtime.replan import REPLAN_POLICY_NAMES

    p.add_argument("--replan-policy", default="fallback",
                   choices=list(REPLAN_POLICY_NAMES),
                   help="on --fail (or a past-threshold --slowdown), rescue "
                        "work with the fixed fallback or by re-running a "
                        "mapper on the surviving/degraded platform")
    p.add_argument("--slowdown-replan-threshold", type=float, default=2.0,
                   help="cumulative --slowdown factor at which the replan "
                        "policy re-maps the degraded device's work "
                        "(must exceed 1; default 2.0)")
    p.add_argument("--arrivals", type=int, default=1,
                   help="simulate N periodic arrivals of the workflow")
    p.add_argument("--period", type=float, default=0.0,
                   help="arrival period in seconds (with --arrivals)")
    p.add_argument("--link-slots", type=int, default=None,
                   help="bound concurrent host<->device transfers on the "
                        "shared interconnect (0 = unlimited; default: "
                        "platform setting)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--eval-seed", type=int, default=0)
    p.add_argument("--schedules", type=int, default=100)
    p.add_argument("--gantt", action="store_true",
                   help="render the simulated schedule as ASCII Gantt")
    p.add_argument("--trace", metavar="OUT.json",
                   help="record a Chrome trace (wall-clock spans + the "
                        "simulated-time engine timeline) viewable in "
                        "Perfetto")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("experiment", help="regenerate a paper figure/table")
    p.add_argument("name",
                   choices=["fig3", "fig4", "fig5", "fig6", "fig7", "table1",
                            "robustness", "replan", "contention"])
    p.add_argument("--scale", default="smoke",
                   choices=["smoke", "small", "paper"])
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size for the experiment backbone "
                        "(default: scale config; 0 = one worker per CPU)")
    p.add_argument("--trace", metavar="OUT.json",
                   help="record a Chrome trace of the sweep (per-point "
                        "spans, per-worker lanes) viewable in Perfetto")
    p.add_argument("--checkpoint", nargs="?", const="auto", metavar="PATH",
                   help="journal completed cells so an interrupted sweep "
                        "can restart (default path under "
                        "results/checkpoints); table1, robustness, replan "
                        "and contention only")
    p.add_argument("--resume", action="store_true",
                   help="with --checkpoint: reuse journalled cells from an "
                        "interrupted run, recomputing only the rest "
                        "(byte-identical output)")
    p.add_argument("--topology", nargs="*", metavar="NAME", default=None,
                   help="contention only: sweep interconnect shapes instead "
                        "of the link-slot axis and write "
                        "results/topology_sweep.csv; bare --topology uses "
                        "the scale's defaults, or name any of: shared, "
                        "mesh, numa, ring, star")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "profile",
        help="phase-time breakdown of a mapper (and optional engine) run",
    )
    p.add_argument("graph")
    p.add_argument("--algorithm", default="sp-first-fit",
                   choices=sorted(MAPPER_FACTORIES))
    p.add_argument("--platform", help="platform JSON (default: paper platform)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--eval-seed", type=int, default=0)
    p.add_argument("--schedules", type=int, default=100)
    p.add_argument("--arrivals", type=int, default=0,
                   help="also run a multi-job engine stream of N arrivals "
                        "and include its simulated-time timeline")
    p.add_argument("--period", type=float, default=0.0,
                   help="arrival period in seconds (with --arrivals)")
    p.add_argument("--trace", metavar="OUT.json",
                   help="write the Chrome trace for https://ui.perfetto.dev")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "env", help="print the environment diagnostic header"
    )
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON")
    p.set_defaults(func=cmd_env)

    p = sub.add_parser(
        "lint",
        help="check the repo's reproducibility invariants (AST lint)",
        description="Static checks for the invariants the test suite "
                    "enforces by example: seeded randomness, no wall-clock "
                    "reads in algorithms, write-only observability, "
                    "single-sourced tolerances, picklable parallel_map "
                    "payloads, no silent excepts, and C-kernel constant "
                    "mirrors.  Exit status: 0 clean, 1 findings, 2 usage "
                    "errors.",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: src tests "
                        "benchmarks, when present)")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report (schema v1)")
    p.add_argument("--select", metavar="CODES",
                   help="comma-separated rule codes to run (default: all)")
    p.add_argument("--ignore", metavar="CODES",
                   help="comma-separated rule codes to skip")
    p.add_argument("--baseline", metavar="FILE",
                   help="subtract findings recorded in this baseline file")
    p.add_argument("--write-baseline", metavar="FILE",
                   help="record current findings as the new baseline and exit")
    p.add_argument("--list-rules", action="store_true",
                   help="list rule codes with their contracts and exit")
    p.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    R.configure(verbose=args.verbose, quiet=args.quiet)
    # --trace on simulate/experiment: observe around the whole command
    # and write the combined document afterwards.  (profile manages its
    # own tracer so its report can read the collected data.)
    trace_path = getattr(args, "trace", None)
    if trace_path and args.func is not cmd_profile:
        _TRACE_EXTRA.clear()
        tracer, _registry = obs.observe()
        try:
            rc = args.func(args)
        finally:
            obs.shutdown()
        if rc == 0:
            obs.write_chrome(tracer, trace_path, extra_events=_TRACE_EXTRA)
            R.out(f"wrote {trace_path} (open at https://ui.perfetto.dev)")
        return rc
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
