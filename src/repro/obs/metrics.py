"""Counters, gauges and histograms behind one snapshot/merge API.

The codebase accumulates many ad-hoc counters — ``CostModel``'s
``n_simulations``/``n_delta_evaluations``, evaluator-cache hits,
``RuntimeTrace``'s wait times and wasted energy, per-mapper batch-size
means.  They remain where they are (they are part of those objects'
public contracts), but when observability is enabled the instrumented
layers additionally publish them into one process-wide
:class:`MetricsRegistry`, so a profile run or an experiment can read
*everything* from a single ``snapshot()`` dict and parents can
``merge()`` worker snapshots.

Three instrument kinds, all nameable on the fly (get-or-create):

* :class:`Counter` — monotonically increasing float/int total.
* :class:`Gauge` — last-written value (e.g. ``batch_size_mean``).
* :class:`Histogram` — power-of-two bucketed distribution of
  non-negative values, plus count/total/min/max.  Bucket ``b`` holds
  values ``v`` with ``v.bit_length() == b`` for ints, i.e. the
  ``2**(b-1) <= v < 2**b`` range (bucket 0 holds zeros), which makes
  :meth:`Histogram.observe_int` a single list-index increment — cheap
  enough for the delta-evaluator hot path.

Like tracing (:mod:`repro.obs.trace`), the registry is off by default:
:func:`get_registry` returns ``None`` and instrumented code skips its
publishing step.  Enabling never changes numeric results — instruments
only *record*, they are never read back by any algorithm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enable",
    "disable",
    "enabled",
    "get_registry",
]

Number = Union[int, float]

#: Buckets above this are clamped into the last one (2**63 covers any
#: realistic batch size / suffix length / event count).
_MAX_BUCKETS = 64


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def snapshot(self) -> Number:
        return self.value

    def merge(self, other: Number) -> None:
        self.value += other


class Gauge:
    """A last-written value (merge keeps the maximum, a stable choice
    for the "how bad did it get" readings gauges are used for here).

    Snapshots as ``{"gauge": value}`` so a merged snapshot re-creates a
    gauge (not a counter) on the receiving registry."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"gauge": self.value}

    def merge(self, other: Optional[Number]) -> None:
        if other is not None and (self.value is None or other > self.value):
            self.value = other


class Histogram:
    """Power-of-two bucketed distribution of non-negative values.

    ``counts[b]`` is the number of observations whose integer value has
    ``bit_length() == b`` (``counts[0]`` counts zeros).  The snapshot
    trims trailing empty buckets so small distributions stay small.
    """

    __slots__ = ("name", "counts", "n", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: List[int] = [0] * _MAX_BUCKETS
        self.n = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe_int(self, value: int) -> None:
        """Hot-path record: one increment, no min/max bookkeeping."""
        self.counts[value.bit_length()] += 1
        self.n += 1
        self.total += value

    def observe(self, value: Number) -> None:
        """Full record, accepts floats (bucketed by their integer part)."""
        iv = int(value)
        self.counts[min(iv.bit_length(), _MAX_BUCKETS - 1)] += 1
        self.n += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.n if self.n else None

    def snapshot(self) -> dict:
        counts = self.counts
        hi = _MAX_BUCKETS
        while hi > 0 and counts[hi - 1] == 0:
            hi -= 1
        return {
            "n": self.n,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": counts[:hi],
        }

    def merge(self, other: dict) -> None:
        for b, c in enumerate(other.get("buckets", [])):
            self.counts[b] += c
        self.n += other.get("n", 0)
        self.total += other.get("total", 0)
        omin, omax = other.get("min"), other.get("max")
        if omin is not None and (self.min is None or omin < self.min):
            self.min = omin
        if omax is not None and (self.max is None or omax > self.max):
            self.max = omax


class MetricsRegistry:
    """Name-addressed instruments with one snapshot()/merge() surface.

    Names are dotted (``mapper.n_simulations``, ``kernel.batch_size``,
    ``runtime.area_wait_time``); the kind is fixed by whichever of
    :meth:`counter`/:meth:`gauge`/:meth:`histogram` first creates the
    name — asking for the same name as a different kind is a bug and
    raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(inst).__name__}, "
                f"not a {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All instruments as a plain, JSON-serializable, sorted dict.

        Counters map to their value, gauges to ``{"gauge": v}``,
        histograms to a stats dict with a ``"buckets"`` key — the value
        shape encodes the kind, which is what lets :meth:`merge`
        reconstruct the right instrument on the other side.
        """
        return {
            name: inst.snapshot()
            for name, inst in sorted(self._instruments.items())
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        This is how a parent absorbs per-worker registries shipped back
        through the pool (snapshots are picklable and JSON-safe; live
        registries never cross process boundaries).
        """
        for name, value in snapshot.items():
            if isinstance(value, dict):
                if "gauge" in value:
                    self.gauge(name).merge(value["gauge"])
                else:
                    self.histogram(name).merge(value)
            else:
                self.counter(name).merge(value)


# ---------------------------------------------------------------------------
# module-level registry (the instrumentation entry point)
# ---------------------------------------------------------------------------

_registry: Optional[MetricsRegistry] = None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the process registry."""
    global _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return _registry


def disable() -> Optional[MetricsRegistry]:
    """Uninstall and return the process registry (None if already off)."""
    global _registry
    registry, _registry = _registry, None
    return registry


def enabled() -> bool:
    return _registry is not None


def get_registry() -> Optional[MetricsRegistry]:
    """The process registry, or ``None`` when metrics are off.

    Instrumented code holds this to one cheap call per *event batch*:
    fetch once, publish everything, skip entirely on ``None``.
    """
    return _registry
