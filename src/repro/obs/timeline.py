"""Simulated-time timeline export for runtime-engine traces.

A :class:`~repro.runtime.engine.RuntimeTrace` already contains a full
per-task execution record (:class:`~repro.evaluation.trace.TaskTrace`
per task per job) plus the typed event log — everything a timeline
needs.  This module converts that *simulated-time* record into Chrome
trace events so a multi-job engine run renders in Perfetto as device
lanes with task blocks, job rows, and wait/failure markers.

The conversion reads a finished trace; it never touches the engine's
event loop, so enabling it cannot perturb simulation results.

Simulated seconds map to trace microseconds at :data:`TIME_SCALE`
(1 s → 1 ms by default) purely for display; ``args`` on every event
carry the true simulated seconds.  The events use their own Chrome
``pid`` so a combined export (wall-clock mapper spans + simulated
engine timeline, as written by ``repro profile --trace``) shows the two
time domains as separate processes instead of interleaving them.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..platform import Platform
    from ..runtime.engine import RuntimeTrace

__all__ = ["runtime_trace_to_chrome_events", "TIME_SCALE"]

#: Trace microseconds per simulated second (display scale only).
TIME_SCALE = 1e3

#: Event kinds exported as instant markers, and the lane they land on:
#: ``"device"`` pins the marker to the event's device lane, ``"jobs"``
#: to the per-job overview lane.  ``link-wait`` records that name a
#: specific link (``link >= 0``, topology-aware platforms) get their own
#: per-link lane after the device lanes instead, so routed contention
#: shows *which* channel queued; legacy shared-pool waits (``link ==
#: -1``) stay on the jobs lane, and runs without waits add no lanes.
_INSTANT_KINDS = {
    "area-wait": "device",
    "link-wait": "jobs",
    "device-slowed": "device",
    "device-failed": "device",
    "fallback-dead": "jobs",
    "task-killed": "device",
    "task-remapped": "device",
    "job-arrived": "jobs",
    "job-completed": "jobs",
}


def runtime_trace_to_chrome_events(
    trace: "RuntimeTrace",
    platform: Optional["Platform"] = None,
    *,
    pid: int = 1,
) -> List[dict]:
    """Chrome trace events (one flat list) for a finished engine run.

    Lanes: tid 0 is a per-job overview row (one block per job from
    arrival to completion); tid ``1 + d`` is device ``d``, carrying one
    block per task execution and instant markers for waits, kills,
    remaps, slowdowns and failures; tid ``1 + n_devices + l`` is link
    ``l``, created only when some ``link-wait`` record names it.  Feed
    the result to :func:`repro.obs.trace.to_chrome` via ``extra_events``
    or wrap it in ``{"traceEvents": [...]}`` directly.
    """
    n_devices = len(trace.device_busy)
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "engine (simulated time)"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "jobs"},
        },
    ]
    for d in range(n_devices):
        label = (
            platform.devices[d].name
            if platform is not None and d < len(platform.devices)
            else f"device {d}"
        )
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 1 + d,
            "args": {"name": label},
        })
    # per-link lanes, only for links that actually queued a transfer
    # (healthy no-wait runs keep exactly the legacy lane set)
    waited_links = sorted({
        record.link
        for record in trace.events
        if record.kind == "link-wait" and getattr(record, "link", -1) >= 0
    })
    for link in waited_links:
        label = (
            platform.link_label(link)
            if platform is not None
            else f"link {link}"
        )
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 1 + n_devices + link,
            "args": {"name": f"link {label}"},
        })

    for job in trace.jobs:
        events.append({
            "name": job.name,
            "cat": "job",
            "ph": "X",
            "ts": job.arrival * TIME_SCALE,
            "dur": max(0.0, (job.completion - job.arrival)) * TIME_SCALE,
            "pid": pid,
            "tid": 0,
            "args": {
                "arrival_s": job.arrival,
                "completion_s": job.completion,
                "n_tasks": len(job.tasks),
                "n_killed": job.n_killed,
                "n_remapped": job.n_remapped,
            },
        })
        for rec in job.tasks:
            ev = {
                "name": f"{job.name}:t{rec.task}",
                "cat": "task",
                "ph": "X",
                "ts": rec.start * TIME_SCALE,
                "dur": max(0.0, rec.finish - rec.start) * TIME_SCALE,
                "pid": pid,
                "tid": 1 + rec.device,
                "args": {
                    "job": job.name,
                    "task": rec.task,
                    "ready_s": rec.ready,
                    "start_s": rec.start,
                    "finish_s": rec.finish,
                    "waited_s": rec.waited,
                },
            }
            if rec.slot >= 0:
                ev["args"]["slot"] = rec.slot
            if rec.streamed:
                ev["args"]["streamed"] = True
            events.append(ev)

    for record in trace.events:
        kind = record.kind
        lane_rule = _INSTANT_KINDS.get(kind)
        if lane_rule is None:
            continue
        device = getattr(record, "device", None)
        tid = (
            1 + device
            if lane_rule == "device" and device is not None
            else 0
        )
        if kind == "link-wait":
            link = getattr(record, "link", -1)
            if link >= 0:
                tid = 1 + n_devices + link
        args = {
            k: v
            for k, v in vars(record).items()
            if k != "time" and not isinstance(v, (list, dict))
        }
        events.append({
            "name": kind,
            "cat": "event",
            "ph": "i",
            "s": "t",
            "ts": record.time * TIME_SCALE,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return events
