"""Hierarchical span tracing with Chrome trace-event export.

A :class:`Tracer` records *spans* — named wall-clock intervals with an
optional category and attribute dict — on integer *lanes* (Chrome trace
``tid``\\ s).  Spans are plain tuples appended to a list; nesting is by
containment (a span opened inside another span lies within its interval,
which is exactly how the Chrome trace-event viewer and Perfetto render
hierarchy for ``ph: "X"`` complete events).  A run therefore renders as
a real timeline: ``repro profile`` and the ``--trace`` CLI flags write
the export of :func:`to_chrome` straight to a file Perfetto can open.

Off by default, and cheap when off: the module-level :func:`span` /
:func:`instant` helpers return a shared no-op singleton when no tracer
is installed — no tracer lookup beyond one module-global load, no
allocation, no clock read.  Instrumented code therefore never needs its
own "is tracing on" branches, and the disabled cost is a function call
returning a cached object.

The clock is monotonic (:func:`time.perf_counter_ns`) and injectable,
so tests can drive a deterministic fake clock.  Span *values* are wall
clock and therefore nondeterministic; span *structure* (names,
categories, lanes, order) is deterministic for a fixed workload, which
the multi-worker merge test pins.

Worker merge (see :mod:`repro.parallel`): a worker process records
spans into its own fresh tracer and ships ``tracer.spans`` back with
its result; the parent calls :meth:`Tracer.merge` once per work item,
**in submission order**, which re-lanes the item's spans onto a private
lane and shifts their (item-local) timestamps to the merge anchor.  The
merged structure is identical for ``workers=1`` and ``workers=N``
because it depends only on the item order, never on pool scheduling.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Tracer",
    "SpanRecord",
    "span",
    "instant",
    "enable",
    "disable",
    "enabled",
    "get_tracer",
    "to_chrome",
    "write_chrome",
    "spans_from_chrome",
]

#: One finished span: (name, category, start_ns, duration_ns, lane, args).
#: ``args`` is ``None`` or a dict of JSON-serializable attributes.
SpanRecord = Tuple[str, str, int, int, int, Optional[Dict[str, Any]]]

#: One instant event: (name, category, time_ns, lane, args).
InstantRecord = Tuple[str, str, int, int, Optional[Dict[str, Any]]]


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    """Live span: opened by ``with tracer.span(...)``, recorded on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        self._t0 = self._tracer._clock()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        t0 = self._t0
        tracer.spans.append(
            (self.name, self.cat, t0, tracer._clock() - t0,
             tracer.lane, self.args)
        )
        return False


class Tracer:
    """Collects span/instant records on integer lanes.

    ``clock`` must return monotonically nondecreasing integers
    (nanoseconds); it defaults to :func:`time.perf_counter_ns` and is
    injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns) -> None:
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self._clock = clock
        #: lane (Chrome ``tid``) new spans are recorded on
        self.lane = 0
        #: lane -> display label (Chrome ``thread_name`` metadata)
        self.lane_labels: Dict[int, str] = {0: "main"}
        self._next_lane = 1

    # ------------------------------------------------------------------
    def span(self, name: str, cat: str = "", args: Optional[dict] = None) -> _Span:
        """A context manager recording one span on the current lane."""
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "", args: Optional[dict] = None) -> None:
        """Record a zero-duration marker at the current time."""
        self.instants.append((name, cat, self._clock(), self.lane, args))

    # ------------------------------------------------------------------
    def alloc_lane(self, label: str) -> int:
        """Reserve a fresh lane with a display label."""
        lane = self._next_lane
        self._next_lane = lane + 1
        self.lane_labels[lane] = label
        return lane

    def merge(
        self,
        spans: Sequence[SpanRecord],
        *,
        label: str,
        anchor_ns: Optional[int] = None,
    ) -> int:
        """Merge spans recorded elsewhere (a worker process) onto a new lane.

        The spans' timestamps are shifted so the earliest starts at
        ``anchor_ns`` (default: now) — worker clocks are process-local
        and not comparable to ours, so only their *relative* layout is
        preserved.  Called once per work item in submission order, this
        yields a lane assignment and span order that depend only on the
        item order (deterministic across pool schedules and pool sizes).
        Returns the allocated lane.
        """
        lane = self.alloc_lane(label)
        if not spans:
            return lane
        shift = (
            self._clock() if anchor_ns is None else anchor_ns
        ) - min(s[2] for s in spans)
        for name, cat, t0, dur, _lane, args in spans:
            self.spans.append((name, cat, t0 + shift, dur, lane, args))
        return lane

    # ------------------------------------------------------------------
    def phase_totals(self) -> Dict[str, Tuple[int, int]]:
        """Aggregate spans by name: ``{name: (count, total_ns)}``.

        Preserves first-appearance order (insertion-ordered dict), which
        the ``repro profile`` table relies on to read top-down like the
        run itself.
        """
        out: Dict[str, Tuple[int, int]] = {}
        for name, _cat, _t0, dur, _lane, _args in self.spans:
            count, total = out.get(name, (0, 0))
            out[name] = (count + 1, total + dur)
        return out


# ---------------------------------------------------------------------------
# module-level tracer (the instrumentation entry point)
# ---------------------------------------------------------------------------

_tracer: Optional[Tracer] = None


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process tracer."""
    global _tracer
    _tracer = tracer if tracer is not None else Tracer()
    return _tracer


def disable() -> Optional[Tracer]:
    """Uninstall and return the process tracer (None if already off)."""
    global _tracer
    tracer, _tracer = _tracer, None
    return tracer


def enabled() -> bool:
    return _tracer is not None


def get_tracer() -> Optional[Tracer]:
    return _tracer


def span(name: str, cat: str = "", args: Optional[dict] = None):
    """Open a span on the process tracer, or the shared no-op when off.

    The disabled path performs no allocation: it returns the module
    singleton.  Callers building an expensive ``args`` dict should do so
    only when :func:`enabled` — the span itself costs nothing either way.
    """
    tracer = _tracer
    if tracer is None:
        return _NOOP
    return _Span(tracer, name, cat, args)


def instant(name: str, cat: str = "", args: Optional[dict] = None) -> None:
    """Record an instant marker on the process tracer (no-op when off)."""
    tracer = _tracer
    if tracer is not None:
        tracer.instants.append((name, cat, tracer._clock(), tracer.lane, args))


# ---------------------------------------------------------------------------
# Chrome trace-event export (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------

def to_chrome(
    tracer: Tracer,
    *,
    pid: int = 0,
    process_name: str = "repro",
    extra_events: Optional[List[dict]] = None,
) -> dict:
    """Export a tracer as a Chrome trace-event document.

    Spans become ``ph: "X"`` complete events, instants ``ph: "i"``;
    timestamps are microseconds relative to the earliest record, so the
    viewer opens at t=0.  ``extra_events`` lets callers append events
    from other time domains (the runtime engine's *simulated* timeline
    uses its own pid — see :mod:`repro.obs.timeline`).
    """
    records = tracer.spans
    t_min = min(
        [s[2] for s in records] + [i[2] for i in tracer.instants],
        default=0,
    )
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for lane, label in sorted(tracer.lane_labels.items()):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": lane,
            "args": {"name": label},
        })
    for name, cat, t0, dur, lane, args in records:
        ev = {
            "name": name,
            "ph": "X",
            "ts": (t0 - t_min) / 1000.0,
            "dur": dur / 1000.0,
            "pid": pid,
            "tid": lane,
        }
        if cat:
            ev["cat"] = cat
        if args:
            ev["args"] = args
        events.append(ev)
    for name, cat, t, lane, args in tracer.instants:
        ev = {
            "name": name,
            "ph": "i",
            "s": "t",
            "ts": (t - t_min) / 1000.0,
            "pid": pid,
            "tid": lane,
        }
        if cat:
            ev["cat"] = cat
        if args:
            ev["args"] = args
        events.append(ev)
    if extra_events:
        events.extend(extra_events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_from_chrome(doc: dict) -> List[SpanRecord]:
    """Reconstruct span records from an exported document.

    The inverse of :func:`to_chrome` up to the time origin (exported
    timestamps are re-based at the earliest record): names, categories,
    lanes, args, durations and *relative* start times survive the round
    trip exactly — pinned by ``tests/test_obs.py``.
    """
    out: List[SpanRecord] = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        out.append((
            ev["name"],
            ev.get("cat", ""),
            round(ev["ts"] * 1000),
            round(ev["dur"] * 1000),
            ev.get("tid", 0),
            ev.get("args") or None,
        ))
    return out


def write_chrome(tracer: Tracer, path: str, **kwargs) -> None:
    """Write :func:`to_chrome` output as JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(to_chrome(tracer, **kwargs), fh, indent=1)
        fh.write("\n")
